//! Figure 8: impact of the preemption latency constraint (5/10/15/20 µs) on
//! (a) Chimera's deadline violations, (b) its throughput overhead, and
//! (c) the mix of techniques Chimera uses.
//!
//! Paper: (a) 2.00/1.08/0.24/0.00 %, (b) 16.5/12.2/10.0/9.0 %,
//! (c) flush share grows as the constraint tightens; drain stays ~19 %.

use bench::report::f1;
use bench::scenarios::{periodic_matrix, periodic_oracle, write_observability};
use bench::{RunArgs, Table};
use chimera::policy::Policy;
use gpu_sim::Technique;
use workloads::Suite;

fn main() {
    let args = RunArgs::from_env();
    let suite = Suite::standard();
    eprintln!("fig8: oracle baselines ...");
    let oracle = periodic_oracle(&suite, &args);
    let constraints = [5.0, 10.0, 15.0, 20.0];
    let mut rows = Vec::new();
    for &c in &constraints {
        eprintln!("fig8: constraint {c} us ...");
        let m = periodic_matrix(&suite, &[Policy::chimera_us(c)], c, &args, false);
        let mut reqs = 0u64;
        let mut viol = 0u64;
        let mut useful = 0u64;
        let mut oracle_useful = 0u64;
        let mut tech = [0u64; 3];
        for ((name, results), (oname, o)) in m.rows.iter().zip(&oracle) {
            assert_eq!(name, oname);
            let r = &results[0];
            reqs += r.requests;
            viol += r.violations;
            useful += r.useful_insts;
            oracle_useful += o.useful_insts;
            tech[0] += r
                .technique_counts
                .get(&Technique::Switch)
                .copied()
                .unwrap_or(0);
            tech[1] += r
                .technique_counts
                .get(&Technique::Drain)
                .copied()
                .unwrap_or(0);
            tech[2] += r
                .technique_counts
                .get(&Technique::Flush)
                .copied()
                .unwrap_or(0);
        }
        rows.push((c, reqs, viol, useful, oracle_useful, tech));
    }
    println!("Figure 8: impact of the preemption latency constraint on Chimera\n");
    let mut t = Table::new(&[
        "constraint",
        "(a) violations",
        "(b) overhead",
        "(c) switch",
        "(c) drain",
        "(c) flush",
    ]);
    for (c, reqs, viol, useful, oracle_useful, tech) in rows {
        let vp = 100.0 * viol as f64 / reqs.max(1) as f64;
        let ov = 100.0 * (1.0 - useful as f64 / oracle_useful.max(1) as f64);
        let total = (tech[0] + tech[1] + tech[2]).max(1) as f64;
        t.row(vec![
            format!("{c} us"),
            f1(vp),
            f1(ov),
            f1(100.0 * tech[0] as f64 / total),
            f1(100.0 * tech[1] as f64 / total),
            f1(100.0 * tech[2] as f64 / total),
        ]);
    }
    print!("{t}");
    println!("\npaper: (a) 2.00/1.08/0.24/0.00  (b) 16.5/12.2/10.0/9.0");
    println!("paper (c): flush share grows as the constraint tightens; drain stays ~19%");
    write_observability(&args, &suite, 15.0);
}
