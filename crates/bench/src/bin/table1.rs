//! Table 1: system configuration.

use bench::{RunArgs, Table};
use gpu_sim::GpuConfig;

fn main() {
    let args = RunArgs::from_env();
    let c = GpuConfig::fermi();
    println!("Table 1: System configuration (paper values in parentheses)\n");
    let mut t = Table::new(&["parameter", "value", "paper"]);
    t.row(vec!["SMs".into(), c.num_sms.to_string(), "30".into()]);
    t.row(vec![
        "clock".into(),
        format!("{} MHz", c.clock_mhz),
        "1400 MHz".into(),
    ]);
    t.row(vec![
        "SIMT width".into(),
        c.simt_width.to_string(),
        "8".into(),
    ]);
    t.row(vec![
        "registers per SM".into(),
        c.registers_per_sm.to_string(),
        "32768".into(),
    ]);
    t.row(vec![
        "max thread blocks per SM".into(),
        c.max_blocks_per_sm.to_string(),
        "8".into(),
    ]);
    t.row(vec![
        "shared memory per SM".into(),
        format!("{} kB", c.shared_mem_per_sm / 1024),
        "48 kB".into(),
    ]);
    t.row(vec![
        "memory partitions".into(),
        c.num_mem_partitions.to_string(),
        "6".into(),
    ]);
    t.row(vec![
        "memory bandwidth".into(),
        format!("{:.1} GB/s", c.mem_bandwidth_gbps),
        "177.4 GB/s".into(),
    ]);
    print!("{t}");
    println!(
        "\nderived: {:.2} B/cycle total, {:.2} B/cycle per SM share",
        c.bytes_per_cycle_total(),
        c.bytes_per_cycle_per_sm()
    );
    bench::scenarios::write_observability(&args, &workloads::Suite::standard(), 15.0);
}
