//! Figure 4: theoretical cost of each preemption technique as a function of
//! thread-block progress — the intuition Chimera is built on.
//!
//! The cost of switching is ~constant, draining falls toward the end, and
//! flushing rises from zero; the crossovers define which technique is optimal
//! at each progress point. This binary evaluates the §3.2 cost model on a
//! representative long-block kernel (CP-shaped: 30 000-instruction blocks at
//! CPI 16, 24 kB context, 4 blocks/SM — the regime where all three regions
//! exist; short-block kernels degenerate to flush-then-drain) across progress
//! 0–100 % and reports the per-technique costs and optimal-region boundaries.

use bench::report::f1;
use bench::{RunArgs, Table};
use chimera::cost::{CostModel, KernelObs, TbProgress};
use gpu_sim::{GpuConfig, Technique};

fn main() {
    let args = RunArgs::from_env();
    let cfg = GpuConfig::fermi();
    let total = 30_000.0f64;
    let cpi = 16.0;
    let obs = KernelObs {
        avg_tb_insts: Some(total),
        avg_tb_cpi: Some(cpi),
        std_tb_insts: 0.0,
        max_tb_insts: total as u64,
        quantile_tb_insts: None,
    };
    let model = CostModel::new(&cfg, 24 * 1024, obs);
    println!("Figure 4: cost vs thread-block progress (normalised)\n");
    // An aggregate cost in the figure's spirit: latency and overhead in
    // common units (cycles; overhead converted at the kernel's IPC).
    let ipc = 4.0 / cpi;
    let aggregate = |latency: u64, overhead: u64| latency as f64 + overhead as f64 / ipc;
    let mut t = Table::new(&["progress %", "switch", "drain", "flush", "optimal"]);
    let mut boundaries: Vec<(f64, Technique)> = Vec::new();
    // Sweep to 95%: a block at 100% has completed and is not preemptible
    // (the estimator treats blocks at/over the expected length as
    // unestimable stragglers).
    for step in 0..20 {
        let p = step as f64 / 20.0;
        let executed = (p * total) as u64;
        let costs = model.estimate(
            TbProgress {
                executed_insts: executed,
                flushable: true,
            },
            4,
            executed,
        );
        let cost_of = |tech: Technique| {
            costs
                .iter()
                .find(|c| c.technique == tech)
                .map(|c| aggregate(c.latency_cycles, c.overhead_insts))
                .unwrap_or(f64::INFINITY)
        };
        let (sw, dr, fl) = (
            cost_of(Technique::Switch),
            cost_of(Technique::Drain),
            cost_of(Technique::Flush),
        );
        let best = [
            (sw, Technique::Switch),
            (dr, Technique::Drain),
            (fl, Technique::Flush),
        ]
        .into_iter()
        .min_by(|a, b| a.0.total_cmp(&b.0))
        .expect("three candidates")
        .1;
        if boundaries.last().map(|&(_, t)| t) != Some(best) {
            boundaries.push((100.0 * p, best));
        }
        t.row(vec![
            format!("{:.0}", 100.0 * p),
            f1(sw),
            f1(dr),
            f1(fl),
            best.to_string(),
        ]);
    }
    print!("{t}");
    println!("\noptimal regions (paper's Figure 4: flush early, switch mid, drain late):");
    for (from, tech) in &boundaries {
        println!("  from {from:>5.1}% progress: {tech}");
    }
    let sequence: Vec<Technique> = boundaries.iter().map(|&(_, t)| t).collect();
    assert_eq!(
        sequence,
        vec![Technique::Flush, Technique::Switch, Technique::Drain],
        "the figure's flush->switch->drain ordering must hold"
    );
    bench::scenarios::write_observability(&args, &workloads::Suite::standard(), 15.0);
}
