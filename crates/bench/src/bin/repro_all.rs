//! One-shot driver: regenerate every table and figure by invoking the
//! sibling binaries in sequence, forwarding all CLI arguments verbatim —
//! including `--jobs <n>`, so each binary parallelises its own experiment
//! matrix across that many worker threads.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe = std::env::current_exe().expect("current exe");
    let dir = exe.parent().expect("bin dir");
    let bins = [
        "table1",
        "table2",
        "fig2",
        "fig3",
        "fig4",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "est-accuracy",
    ];
    for bin in bins {
        println!("\n==================== {bin} ====================\n");
        let status = Command::new(dir.join(bin))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to run {bin}: {e}"));
        if !status.success() {
            eprintln!("{bin} exited with {status}");
            std::process::exit(1);
        }
    }
    println!("\nAll tables and figures regenerated.");
}
