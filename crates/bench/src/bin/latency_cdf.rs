//! Hand-over latency distribution per policy (not a paper figure, but the
//! natural companion to Figure 6: *how late* are the late hand-overs?).
//!
//! Prints per-policy latency percentiles across all periodic requests of all
//! benchmarks, with unfulfilled requests reported separately.

use bench::report::f1;
use bench::scenarios::PERIODIC_HORIZON_US;
use bench::{RunArgs, Table};
use chimera::policy::Policy;
use chimera::runner::periodic::{run_periodic, PeriodicConfig};
use workloads::Suite;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let ix = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[ix]
}

fn main() {
    let args = RunArgs::from_env();
    let suite = Suite::standard();
    let cfg = suite.config();
    let pcfg = PeriodicConfig {
        horizon_us: PERIODIC_HORIZON_US * args.scale,
        seed: args.seed,
        ..PeriodicConfig::paper_default(cfg)
    };
    println!("Hand-over latency distribution (us) across all benchmarks, 15 us constraint\n");
    let mut t = Table::new(&["policy", "p50", "p90", "p99", "max", "unfulfilled %"]);
    for policy in Policy::paper_lineup(15.0) {
        eprintln!("latency-cdf: {policy} ...");
        let mut lats: Vec<f64> = Vec::new();
        let mut unfulfilled = 0u32;
        let mut total = 0u32;
        for bench in suite.benchmarks() {
            let r = run_periodic(cfg, bench, policy, &pcfg);
            for (_, lat, _) in &r.request_log {
                total += 1;
                match lat {
                    Some(l) => lats.push(*l),
                    None => unfulfilled += 1,
                }
            }
        }
        lats.sort_by(f64::total_cmp);
        t.row(vec![
            policy.to_string(),
            f1(percentile(&lats, 0.5)),
            f1(percentile(&lats, 0.9)),
            f1(percentile(&lats, 0.99)),
            f1(percentile(&lats, 1.0)),
            f1(100.0 * f64::from(unfulfilled) / f64::from(total.max(1))),
        ]);
    }
    print!("{t}");
    println!("\nunfulfilled = the request never received all its SMs within the horizon");
    println!("(draining a 10 ms block, or flushing a kernel that never leaves its");
    println!("non-idempotent region)");
}
