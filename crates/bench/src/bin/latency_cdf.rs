//! Hand-over latency distribution per policy (not a paper figure, but the
//! natural companion to Figure 6: *how late* are the late hand-overs?).
//!
//! Prints per-policy latency percentiles across all periodic requests of all
//! benchmarks, with unfulfilled requests reported separately.

use bench::pool;
use bench::progress::Progress;
use bench::report::f1;
use bench::scenarios::{write_observability, PERIODIC_HORIZON_US};
use bench::{RunArgs, Table};
use chimera::policy::Policy;
use chimera::runner::periodic::{run_periodic, PeriodicConfig};
use workloads::Suite;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let ix = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[ix]
}

fn main() {
    let args = RunArgs::from_env();
    let suite = Suite::standard();
    let cfg = suite.config();
    let pcfg = PeriodicConfig::paper_default(cfg).common(args.common(PERIODIC_HORIZON_US, 15.0));
    println!("Hand-over latency distribution (us) across all benchmarks, 15 us constraint\n");
    let mut t = Table::new(&["policy", "p50", "p90", "p99", "max", "unfulfilled %"]);
    let policies = Policy::paper_lineup(15.0);
    let benches = suite.benchmarks();
    let progress = Progress::new("latency-cdf", policies.len() * benches.len());
    // One cell per (policy, benchmark); each returns its request log slice,
    // which the serial reduction below folds into per-policy percentiles.
    let tasks: Vec<_> = policies
        .iter()
        .flat_map(|&policy| {
            let (pcfg, progress) = (&pcfg, &progress);
            benches.iter().map(move |bench| {
                move || {
                    let r = run_periodic(cfg, bench, policy, pcfg);
                    progress.cell_done(&format!("{}/{policy}", bench.name()));
                    let mut lats = Vec::new();
                    let mut unfulfilled = 0u32;
                    let mut total = 0u32;
                    for (_, lat, _) in &r.request_log {
                        total += 1;
                        match lat {
                            Some(l) => lats.push(*l),
                            None => unfulfilled += 1,
                        }
                    }
                    (lats, unfulfilled, total)
                }
            })
        })
        .collect();
    let mut cells = pool::run_tasks(args.jobs, tasks).into_iter();
    for policy in &policies {
        let mut lats: Vec<f64> = Vec::new();
        let mut unfulfilled = 0u32;
        let mut total = 0u32;
        for (cell_lats, cell_unfulfilled, cell_total) in cells.by_ref().take(benches.len()) {
            lats.extend(cell_lats);
            unfulfilled += cell_unfulfilled;
            total += cell_total;
        }
        lats.sort_by(f64::total_cmp);
        t.row(vec![
            policy.to_string(),
            f1(percentile(&lats, 0.5)),
            f1(percentile(&lats, 0.9)),
            f1(percentile(&lats, 0.99)),
            f1(percentile(&lats, 1.0)),
            f1(100.0 * f64::from(unfulfilled) / f64::from(total.max(1))),
        ]);
    }
    progress.finish(args.jobs);
    print!("{t}");
    println!("\nunfulfilled = the request never received all its SMs within the horizon");
    println!("(draining a 10 ms block, or flushing a kernel that never leaves its");
    println!("non-idempotent region)");
    write_observability(&args, &suite, 15.0);
}
