//! Figure 9: strict vs relaxed idempotence condition for SM flushing —
//! the percentage of preemptions violating the 15 µs constraint, plotted as
//! a sorted curve across workloads.
//!
//! Paper averages: strict 50.0 %, relaxed 0.2 %.
//!
//! The paper's relaxed average equals its Chimera number from Figure 6, so
//! this binary reports both readings: flushing in isolation, and flushing as
//! used inside Chimera.

use bench::report::f1;
use bench::scenarios::{periodic_matrix, write_observability};
use bench::{RunArgs, Table};
use chimera::policy::Policy;
use workloads::Suite;

fn sorted_violations(m: &bench::scenarios::PeriodicMatrix) -> (Vec<(String, f64)>, f64) {
    let mut v: Vec<(String, f64)> = m
        .rows
        .iter()
        .map(|(n, r)| (n.clone(), r[0].violation_pct()))
        .collect();
    v.sort_by(|a, b| a.1.total_cmp(&b.1));
    let avg = v.iter().map(|x| x.1).sum::<f64>() / v.len() as f64;
    (v, avg)
}

fn print_curves(
    title: &str,
    strict: &[(String, f64)],
    relaxed: &[(String, f64)],
    sa: f64,
    ra: f64,
) {
    println!("{title}\n");
    let mut t = Table::new(&[
        "rank",
        "strict (workload)",
        "strict %",
        "relaxed (workload)",
        "relaxed %",
    ]);
    for i in 0..strict.len() {
        t.row(vec![
            (i + 1).to_string(),
            strict[i].0.clone(),
            f1(strict[i].1),
            relaxed[i].0.clone(),
            f1(relaxed[i].1),
        ]);
    }
    t.row(vec![
        "avg".into(),
        String::new(),
        f1(sa),
        String::new(),
        f1(ra),
    ]);
    print!("{t}");
    println!();
}

fn main() {
    let args = RunArgs::from_env();
    let relaxed_suite = Suite::standard();
    let strict_suite = Suite::strict();

    eprintln!("fig9: pure flushing, relaxed ...");
    let fr = periodic_matrix(&relaxed_suite, &[Policy::Flush], 15.0, &args, false);
    eprintln!("fig9: pure flushing, strict ...");
    let fs = periodic_matrix(&strict_suite, &[Policy::Flush], 15.0, &args, true);
    eprintln!("fig9: Chimera, relaxed ...");
    let cr = periodic_matrix(
        &relaxed_suite,
        &[Policy::chimera_us(15.0)],
        15.0,
        &args,
        false,
    );
    eprintln!("fig9: Chimera, strict ...");
    let cs = periodic_matrix(
        &strict_suite,
        &[Policy::chimera_us(15.0)],
        15.0,
        &args,
        true,
    );

    let (fs_v, fs_a) = sorted_violations(&fs);
    let (fr_v, fr_a) = sorted_violations(&fr);
    let (cs_v, cs_a) = sorted_violations(&cs);
    let (cr_v, cr_a) = sorted_violations(&cr);

    println!("Figure 9: violations (%) vs 15 us constraint, sorted across workloads\n");
    print_curves("(a) SM flushing in isolation", &fs_v, &fr_v, fs_a, fr_a);
    print_curves(
        "(b) flushing as used inside Chimera",
        &cs_v,
        &cr_v,
        cs_a,
        cr_a,
    );
    println!("paper averages: strict 50.0, relaxed 0.2");
    println!(
        "(without the relaxed condition flushing cannot deliver its promised instant preemption)"
    );
    write_observability(&args, &relaxed_suite, 15.0);
}
