//! Ablation: static vs online drain/flush cost estimation.
//!
//! The paper's §4.1 drain bound — `max(avg + 2σ, observed max)` remaining
//! instructions — is deliberately conservative: Algorithm 1 must never pick a
//! drain that busts the deadline. The online estimator replaces that bound
//! with a live per-kernel quantile (P² tracker fed by every block
//! completion), and the `--risk-quantile` knob sets how much of the tail it
//! keeps. This ablation measures what that buys and what it risks across the
//! two scenario families:
//!
//! * the §4.1 periodic slice (fig7/fig8 shape): total deadline violations
//!   and useful benchmark throughput under Chimera at 5/10/15/20 µs
//!   constraints, for `static`, `online q=0.50` (median — aggressive) and
//!   `online q=0.95` (tail-aware — the default);
//! * the §4.4 multiprogrammed slice (fig10/fig11 shape): geomean ANTT and
//!   STP of LUD paired with every other benchmark under Chimera-30 µs.
//!
//! Expected shape: online estimation unlocks drains the static bound
//! rejected (sharper estimates fit the latency budget more often), so
//! violations fall or hold while throughput stays within noise of static;
//! the median quantile is the upper bound on that effect but gambles on
//! stragglers, and q=0.95 keeps most of the win at far lower risk.

use bench::report::f2;
use bench::scenarios::{multiprog_matrix, multiprog_suite, periodic_matrix};
use bench::{RunArgs, Table};
use chimera::metrics::geomean;
use chimera::policy::Policy;
use chimera::EstimatorConfig;
use workloads::Suite;

fn main() {
    let args = RunArgs::from_env();
    let estimators = [
        ("static", EstimatorConfig::default()),
        ("online q=0.50", EstimatorConfig::online(0.5)),
        ("online q=0.95", EstimatorConfig::online(0.95)),
    ];
    println!("Ablation: static vs online drain/flush cost estimation");
    println!("(periodic slice: whole suite under Chimera; multiprog slice: LUD pairs)\n");

    // (1) Periodic: violations and throughput per latency constraint.
    let suite = Suite::standard();
    println!("(1) periodic hard-deadline slice (fig7/fig8 shape):");
    let mut t = Table::new(&[
        "constraint",
        "estimator",
        "violations",
        "requests",
        "violations %",
        "useful Ginsts",
        "vs static %",
    ]);
    for &c in &[5.0, 10.0, 15.0, 20.0] {
        let mut static_useful = None;
        for (label, est) in estimators {
            let a = RunArgs {
                estimator: est,
                ..args.clone()
            };
            let m = periodic_matrix(&suite, &[Policy::chimera_us(c)], c, &a, false);
            let (mut reqs, mut viol, mut useful) = (0u64, 0u64, 0u64);
            for (_, results) in &m.rows {
                reqs += results[0].requests;
                viol += results[0].violations;
                useful += results[0].useful_insts;
            }
            let base = *static_useful.get_or_insert(useful);
            t.row(vec![
                format!("{c} us"),
                label.to_string(),
                viol.to_string(),
                reqs.to_string(),
                f2(100.0 * viol as f64 / reqs.max(1) as f64),
                f2(useful as f64 / 1e9),
                f2(100.0 * useful as f64 / base.max(1) as f64),
            ]);
        }
    }
    print!("{t}");

    // (2) Multiprogramming: ANTT/STP of the LUD pair study.
    println!("\n(2) multiprogrammed slice (fig10/fig11 shape, Chimera 30 us):");
    let msuite = multiprog_suite(&args);
    let mut t = Table::new(&["estimator", "geomean ANTT", "geomean STP", "preemptions"]);
    for (label, est) in estimators {
        let a = RunArgs {
            estimator: est,
            ..args.clone()
        };
        let m = multiprog_matrix(&msuite, &[Policy::chimera_us(30.0)], &a);
        let antts: Vec<f64> = m.rows.iter().map(|(_, p)| p[0].antt).collect();
        let stps: Vec<f64> = m.rows.iter().map(|(_, p)| p[0].stp).collect();
        let preempts: usize = m.rows.iter().map(|(_, p)| p[0].preemptions).sum();
        t.row(vec![
            label.to_string(),
            f2(geomean(&antts)),
            f2(geomean(&stps)),
            preempts.to_string(),
        ]);
    }
    print!("{t}");
    println!("\n(lower ANTT / higher STP is better; `vs static %` is useful-instruction");
    println!("throughput relative to the static bound at the same constraint — the");
    println!("acceptance bar is violations no worse than static with throughput within");
    println!("2% of it. q=0.50 trusts the median block, q=0.95 keeps tail headroom)");
}
