//! Figure 11: STP improvement over non-preemptive FCFS when LUD is
//! co-scheduled with each other benchmark.
//!
//! Paper averages: switch 16.5 %, drain 36.6 %, flush 31.4 %, Chimera 41.7 %.

use bench::report::f1;
use bench::scenarios::{multiprog_matrix, multiprog_suite, write_observability};
use bench::{RunArgs, Table};
use chimera::policy::Policy;

fn main() {
    let args = RunArgs::from_env();
    let suite = multiprog_suite(&args);
    let policies = Policy::paper_lineup(30.0);
    eprintln!("fig11: running LUD x 13 partners x (FCFS + 4 policies) ...");
    let m = multiprog_matrix(&suite, &policies, &args);
    println!("Figure 11: STP improvement (%) over non-preemptive FCFS\n");
    let mut t = Table::new(&["workload", "Switch", "Drain", "Flush", "Chimera"]);
    let mut sums = [0.0f64; 4];
    for (fcfs, per_policy) in &m.rows {
        let v: Vec<f64> = per_policy
            .iter()
            .map(|p| 100.0 * (p.stp - fcfs.stp) / fcfs.stp)
            .collect();
        for (s, x) in sums.iter_mut().zip(&v) {
            *s += x;
        }
        t.row(vec![
            format!("LUD/{}", fcfs.other),
            f1(v[0]),
            f1(v[1]),
            f1(v[2]),
            f1(v[3]),
        ]);
    }
    let n = m.rows.len() as f64;
    t.row(vec![
        "average".into(),
        f1(sums[0] / n),
        f1(sums[1] / n),
        f1(sums[2] / n),
        f1(sums[3] / n),
    ]);
    print!("{t}");
    println!("\npaper averages: switch 16.5, drain 36.6, flush 31.4, chimera 41.7");
    write_observability(&args, &suite, 30.0);
}
