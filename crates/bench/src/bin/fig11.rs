//! Figure 11: STP improvement over non-preemptive FCFS when LUD is
//! co-scheduled with each other benchmark.
//!
//! Paper averages: switch 16.5 %, drain 36.6 %, flush 31.4 %, Chimera 41.7 %.

use bench::report::{f1, f2};
use bench::scenarios::{multiprog_matrix, multiprog_suite, write_observability};
use bench::{RunArgs, Table};
use chimera::policy::Policy;
use chimera::runner::cluster::Placement;

fn main() {
    let args = RunArgs::from_env();
    let suite = multiprog_suite(&args);
    let policies = Policy::paper_lineup(30.0);
    eprintln!("fig11: running LUD x 13 partners x (FCFS + 4 policies) ...");
    let m = multiprog_matrix(&suite, &policies, &args);
    println!("Figure 11: STP improvement (%) over non-preemptive FCFS\n");
    let mut t = Table::new(&["workload", "Switch", "Drain", "Flush", "Chimera"]);
    let mut sums = [0.0f64; 4];
    for (fcfs, per_policy) in &m.rows {
        let v: Vec<f64> = per_policy
            .iter()
            .map(|p| 100.0 * (p.stp - fcfs.stp) / fcfs.stp)
            .collect();
        for (s, x) in sums.iter_mut().zip(&v) {
            *s += x;
        }
        t.row(vec![
            format!("LUD/{}", fcfs.other),
            f1(v[0]),
            f1(v[1]),
            f1(v[2]),
            f1(v[3]),
        ]);
    }
    let n = m.rows.len() as f64;
    t.row(vec![
        "average".into(),
        f1(sums[0] / n),
        f1(sums[1] / n),
        f1(sums[2] / n),
        f1(sums[3] / n),
    ]);
    print!("{t}");
    println!("\npaper averages: switch 16.5, drain 36.6, flush 31.4, chimera 41.7");

    // Cluster appendix under `--devices N` (N>1): the 13 pairs are
    // independent jobs, so a multi-GPU deployment places each pair on one
    // device (Chimera scheduling below, placement above). Reported per
    // device: placed pairs, aggregate Chimera STP, and the inter-device
    // imbalance `(max - min) / mean` of per-device STP. Round-robin places
    // by row order, least-loaded greedily levels cumulative STP, and
    // tenant-affine keys on the partner benchmark name.
    if args.devices > 1 {
        let chim = m.policies.len() - 1; // Chimera is the lineup's last column
        let mut dev_stp = vec![0.0f64; args.devices];
        let mut dev_pairs = vec![Vec::new(); args.devices];
        for (i, (fcfs, per_policy)) in m.rows.iter().enumerate() {
            let stp = per_policy[chim].stp;
            let d = match args.placement {
                Placement::RoundRobin => i % args.devices,
                Placement::LeastLoaded => (0..args.devices)
                    .min_by(|&a, &b| dev_stp[a].total_cmp(&dev_stp[b]).then(a.cmp(&b)))
                    .expect("at least one device"),
                Placement::TenantAffine => {
                    fcfs.other
                        .bytes()
                        .fold(0usize, |h, b| h.wrapping_mul(31).wrapping_add(b as usize))
                        % args.devices
                }
            };
            dev_stp[d] += stp;
            dev_pairs[d].push(fcfs.other.clone());
        }
        println!(
            "\nmulti-device placement of the {} pairs across {} devices ({})\n",
            m.rows.len(),
            args.devices,
            args.placement.name()
        );
        let mut t = Table::new(&["device", "pairs", "sum STP", "workloads"]);
        for (d, stp) in dev_stp.iter().enumerate() {
            t.row(vec![
                d.to_string(),
                dev_pairs[d].len().to_string(),
                f2(*stp),
                dev_pairs[d].join(","),
            ]);
        }
        print!("{t}");
        let mean = dev_stp.iter().sum::<f64>() / dev_stp.len() as f64;
        let imbalance = if mean > 0.0 {
            let max = dev_stp.iter().cloned().fold(f64::MIN, f64::max);
            let min = dev_stp.iter().cloned().fold(f64::MAX, f64::min);
            (max - min) / mean
        } else {
            0.0
        };
        println!("\ninter-device STP imbalance: {}", f2(imbalance));
    }
    write_observability(&args, &suite, 30.0);
}
