//! Ablation: warp scheduling policy (loose round-robin vs greedy-then-oldest).
//!
//! The paper's drain-overhead estimate assumes blocks run roughly in sync,
//! which round-robin scheduling encourages. Greedy scheduling skews block
//! progress, widening drain-time skew and shifting Chimera's technique mix.

use bench::pool;
use bench::progress::Progress;
use bench::report::f1;
use bench::{RunArgs, Table};
use chimera::policy::Policy;
use chimera::runner::periodic::{run_periodic, PeriodicConfig};
use gpu_sim::{GpuConfig, WarpSched};
use workloads::{Suite, SuiteOptions};

fn main() {
    let args = RunArgs::from_env();
    println!("Ablation: warp scheduler (Chimera, 15 us constraint)\n");
    let mut t = Table::new(&[
        "benchmark",
        "RR viol %",
        "GTO viol %",
        "RR insts",
        "GTO insts",
    ]);
    let mk = |sched| {
        let cfg = GpuConfig {
            warp_sched: sched,
            ..GpuConfig::fermi()
        };
        let suite = Suite::with_options(
            cfg.clone(),
            SuiteOptions {
                instrumented: true,
                grid_scale: 1.0,
                ..SuiteOptions::default()
            },
        );
        (cfg, suite)
    };
    let (cfg_rr, suite_rr) = mk(WarpSched::LooseRoundRobin);
    let (cfg_gto, suite_gto) = mk(WarpSched::GreedyThenOldest);
    let names = ["BS", "BT", "KM", "SAD", "ST"];
    let progress = Progress::new("ablation-warp-sched", names.len());
    let tasks: Vec<_> = names
        .iter()
        .map(|&name| {
            let (cfg_rr, suite_rr, cfg_gto, suite_gto, progress, args) =
                (&cfg_rr, &suite_rr, &cfg_gto, &suite_gto, &progress, &args);
            move || {
                let pcfg = |cfg: &GpuConfig| {
                    PeriodicConfig::paper_default(cfg).common(args.common(8_000.0, 15.0))
                };
                let rr = run_periodic(
                    cfg_rr,
                    suite_rr.benchmark(name).expect("known benchmark"),
                    Policy::chimera_us(15.0),
                    &pcfg(cfg_rr),
                );
                let gto = run_periodic(
                    cfg_gto,
                    suite_gto.benchmark(name).expect("known benchmark"),
                    Policy::chimera_us(15.0),
                    &pcfg(cfg_gto),
                );
                progress.cell_done(name);
                vec![
                    name.to_string(),
                    f1(rr.violation_pct()),
                    f1(gto.violation_pct()),
                    rr.useful_insts.to_string(),
                    gto.useful_insts.to_string(),
                ]
            }
        })
        .collect();
    for row in pool::run_tasks(args.jobs, tasks) {
        t.row(row);
    }
    progress.finish(args.jobs);
    print!("{t}");
    println!("\nGTO skews per-block progress: more drain-skew overhead, same deadlines");
    bench::scenarios::write_observability(&args, &Suite::standard(), 15.0);
}
