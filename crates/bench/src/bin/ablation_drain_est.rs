//! Ablation: drain-latency estimation from instructions vs from cycles.
//!
//! §3.2 argues for estimating drain latency as `remaining instructions ×
//! average CPI` rather than from average per-block *cycles* directly, because
//! block execution cycles have much higher variance — blocks accumulate
//! stalls from context-switch halts, restore stalls and memory contention
//! that say nothing about how much *work* remains. This ablation measures
//! both estimators' prediction error against ground truth while the kernel
//! is being periodically disturbed by context switches (as it would be in a
//! multitasking system).

use bench::pool;
use bench::progress::Progress;
use bench::report::f1;
use bench::{RunArgs, Table};
use gpu_sim::{Engine, Event, GpuConfig, SmPreemptPlan, Technique};
use std::collections::HashMap;
use workloads::{build_kernel, table2};

struct Sample {
    t: u64,
    est_inst: f64,
    est_cycle: f64,
}

fn main() {
    let args = RunArgs::from_env();
    let cfg = GpuConfig::fermi();
    println!("Ablation: drain-latency estimator error (instructions vs cycles)");
    println!("(kernel disturbed by periodic context switches, as under multitasking)\n");
    let mut t = Table::new(&["kernel", "jitter", "inst-based err %", "cycle-based err %"]);
    let labels = ["SAD.0", "SAD.1", "KM.1", "ST.0", "NW.0"];
    let progress = Progress::new("ablation-drain-est", labels.len());
    let tasks: Vec<_> = labels
        .iter()
        .map(|&label| {
            let (cfg, progress) = (&cfg, &progress);
            move || {
                let spec = table2()
                    .into_iter()
                    .find(|s| s.label() == label)
                    .expect("known label");
                let k = build_kernel(cfg, &spec, true);
                let mut engine = Engine::with_seed(cfg.clone(), args.seed);
                let kid = engine.launch_kernel(k);
                for sm in 0..cfg.num_sms {
                    engine.assign_sm(sm, Some(kid));
                }
                // Warm up statistics.
                engine.run_until(cfg.us_to_cycles(spec.drain_us * 3.0 + 50.0));
                let mut pending: HashMap<u32, Vec<Sample>> = HashMap::new();
                let mut errs_inst = Vec::new();
                let mut errs_cycle = Vec::new();
                let sample_every = cfg.us_to_cycles((spec.drain_us / 7.0).max(1.0));
                for round in 0..600u64 {
                    // Disturb: context-switch one SM out and back every few rounds,
                    // so resident blocks accumulate stall cycles.
                    if round % 9 == 0 {
                        let sm = ((round / 9) % cfg.num_sms as u64) as usize;
                        if !engine.sm_is_preempting(sm) && engine.sm_resident_count(sm) > 0 {
                            let plan = SmPreemptPlan::uniform(
                                engine.sm_resident_indices(sm),
                                Technique::Switch,
                            );
                            let _ = engine.preempt_sm(sm, &plan);
                        }
                    }
                    for sm in 0..cfg.num_sms {
                        if !engine.sm_is_preempting(sm) && engine.sm_assigned(sm).is_none() {
                            engine.assign_sm(sm, Some(kid));
                        }
                    }
                    let stats = engine.kernel_stats(kid);
                    let (avg_insts, avg_cpi, avg_cycles) =
                        match (stats.avg_tb_insts(), stats.avg_tb_cpi()) {
                            (Some(i), Some(c)) => (
                                i,
                                c,
                                stats.sum_completed_cycles as f64 / f64::from(stats.completed_tbs),
                            ),
                            _ => {
                                engine.run_for(sample_every);
                                continue;
                            }
                        };
                    let now = engine.cycle();
                    for sm in 0..cfg.num_sms {
                        for b in engine.sm_snapshot(sm).blocks {
                            let est_inst =
                                ((avg_insts - b.executed_insts as f64) * avg_cpi).max(0.0);
                            let est_cycle = (avg_cycles - b.elapsed_cycles as f64).max(0.0);
                            pending.entry(b.index).or_default().push(Sample {
                                t: now,
                                est_inst,
                                est_cycle,
                            });
                        }
                    }
                    for ev in engine.run_until(now + sample_every) {
                        if let Event::TbCompleted { block, .. } = ev {
                            if let Some(samples) = pending.remove(&block) {
                                for s in samples {
                                    let actual = (engine.cycle() - s.t) as f64;
                                    if actual > 0.0 {
                                        errs_inst.push((s.est_inst - actual).abs() / actual);
                                        errs_cycle.push((s.est_cycle - actual).abs() / actual);
                                    }
                                }
                            }
                        }
                    }
                    if engine.kernel_stats(kid).finished {
                        break;
                    }
                }
                let mean = |v: &[f64]| {
                    if v.is_empty() {
                        f64::NAN
                    } else {
                        100.0 * v.iter().sum::<f64>() / v.len() as f64
                    }
                };
                progress.cell_done(label);
                vec![
                    label.to_string(),
                    format!("±{:.0}%", spec.jitter * 100.0),
                    f1(mean(&errs_inst)),
                    f1(mean(&errs_cycle)),
                ]
            }
        })
        .collect();
    for row in pool::run_tasks(args.jobs, tasks) {
        t.row(row);
    }
    progress.finish(args.jobs);
    print!("{t}");
    println!("\nlower is better; instructions ignore stall cycles that say nothing about");
    println!("remaining work. In this substrate the halt model applies stalls to all");
    println!("resident blocks uniformly, so the two estimators land close together —");
    println!("the instruction estimate wins where per-block stall noise decouples");
    println!("cycles from work (see NW above, whose small blocks restart mid-stream).");
    bench::scenarios::write_observability(&args, &workloads::Suite::standard(), 15.0);
}
