//! Figure 7: throughput overhead under the periodic real-time task, 15 µs
//! constraint, measured as effective-throughput loss versus the zero-cost
//! oracle baseline.
//!
//! Paper overall: switch 12.2 %, drain 8.9 %, flush 19.3 %, Chimera 10.1 %.

use bench::report::f1;
use bench::scenarios::{periodic_matrix, sanitized_periodic_check, write_observability};
use bench::{RunArgs, Table};
use chimera::metrics::geomean;
use chimera::policy::Policy;
use workloads::Suite;

fn main() {
    let args = RunArgs::from_env();
    let suite = Suite::standard();
    let mut policies = Policy::paper_lineup(15.0).to_vec();
    policies.push(Policy::Oracle);
    eprintln!(
        "fig7: running {} benchmarks x {} policies ...",
        suite.benchmarks().len(),
        5
    );
    let m = periodic_matrix(&suite, &policies, 15.0, &args, false);
    println!("Figure 7: throughput overhead (%) vs oracle, 15 us constraint\n");
    let mut t = Table::new(&["benchmark", "Switch", "Drain", "Flush", "Chimera"]);
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for (name, results) in &m.rows {
        let oracle = &results[4];
        let v: Vec<f64> = results[..4]
            .iter()
            .map(|r| r.overhead_pct_vs(oracle))
            .collect();
        for (i, x) in v.iter().enumerate() {
            // Geomean over throughput ratios (paper reports geomean).
            ratios[i].push((1.0 - x / 100.0).max(1e-6));
        }
        t.row(vec![name.clone(), f1(v[0]), f1(v[1]), f1(v[2]), f1(v[3])]);
    }
    let g: Vec<f64> = ratios.iter().map(|r| 100.0 * (1.0 - geomean(r))).collect();
    t.row(vec![
        "geomean".into(),
        f1(g[0]),
        f1(g[1]),
        f1(g[2]),
        f1(g[3]),
    ]);
    print!("{t}");
    println!("\npaper overall: switch 12.2, drain 8.9, flush 19.3, chimera 10.1");
    write_observability(&args, &suite, 15.0);
    if args.sanitize {
        // Separate sanitized pass (stdout above stays byte-identical): every
        // flush across the suite is validated against the block's recorded
        // memory footprint; any unsafe flush or static/dynamic disagreement
        // fails the process. This is the CI gate.
        match sanitized_periodic_check(&suite, 15.0, &args) {
            Ok(summary) => eprintln!("fig7: {summary}"),
            Err(failures) => {
                eprintln!("fig7: sanitizer FAILED\n{failures}");
                std::process::exit(1);
            }
        }
    }
}
