//! Ablation: charge context save/restore traffic to the memory subsystem.
//!
//! The paper (§4) implements context switching by halting the SM for the
//! estimated switch time and admits the result is optimistic: real save/
//! restore traffic would also slow down the other SMs. This ablation turns
//! the traffic charging on and measures how much throughput the optimism
//! hides, per benchmark, under the pure Switch policy.

use bench::pool;
use bench::progress::Progress;
use bench::report::f1;
use bench::scenarios::{write_observability, PERIODIC_HORIZON_US};
use bench::{RunArgs, Table};
use chimera::policy::Policy;
use chimera::runner::periodic::{run_periodic, PeriodicConfig};
use gpu_sim::GpuConfig;
use workloads::Suite;

fn main() {
    let args = RunArgs::from_env();
    let suite = Suite::standard();
    let base_cfg = GpuConfig::fermi();
    let charged_cfg = GpuConfig {
        charge_ctx_switch_bandwidth: true,
        ..base_cfg.clone()
    };
    let pcfg =
        PeriodicConfig::paper_default(&base_cfg).common(args.common(PERIODIC_HORIZON_US, 15.0));
    println!("Ablation: context-switch bandwidth charging (Switch policy, 15 us task)\n");
    let mut t = Table::new(&["benchmark", "halt-only insts", "charged insts", "delta %"]);
    let progress = Progress::new("ablation-ctx-bw", suite.benchmarks().len());
    let tasks: Vec<_> = suite
        .benchmarks()
        .iter()
        .map(|bench| {
            let (base_cfg, charged_cfg, pcfg, progress) =
                (&base_cfg, &charged_cfg, &pcfg, &progress);
            move || {
                let a = run_periodic(base_cfg, bench, Policy::Switch, pcfg);
                let b = run_periodic(charged_cfg, bench, Policy::Switch, pcfg);
                progress.cell_done(bench.name());
                let delta = 100.0 * (1.0 - b.useful_insts as f64 / a.useful_insts.max(1) as f64);
                vec![
                    bench.name().to_string(),
                    a.useful_insts.to_string(),
                    b.useful_insts.to_string(),
                    f1(delta),
                ]
            }
        })
        .collect();
    for row in pool::run_tasks(args.jobs, tasks) {
        t.row(row);
    }
    progress.finish(args.jobs);
    print!("{t}");
    println!("\npositive delta = throughput the paper's halt-only model over-credits");
    write_observability(&args, &suite, 15.0);
}
