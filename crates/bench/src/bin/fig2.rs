//! Figure 2: estimated preemption latency per technique per kernel.
//!
//! Paper averages: switch 14.5 µs, drain 830.4 µs, flush 0 µs.

use bench::report::f1;
use bench::{RunArgs, Table};
use chimera::cost::analytic;
use workloads::{solve_resources, table2};

fn main() {
    let args = RunArgs::from_env();
    let cfg = gpu_sim::GpuConfig::fermi();
    println!("Figure 2: estimated preemption latency (us) per technique\n");
    let mut t = Table::new(&["kernel", "switch", "drain", "flush"]);
    let (mut s_sum, mut d_sum) = (0.0, 0.0);
    let specs = table2();
    for spec in &specs {
        let res = solve_resources(spec.ctx_bytes, spec.tbs_per_sm);
        let sw = analytic::switch_latency_us(&cfg, res.context_bytes().into(), spec.tbs_per_sm);
        let dr = analytic::drain_latency_us(spec.drain_us);
        s_sum += sw;
        d_sum += dr;
        t.row(vec![
            spec.label(),
            f1(sw),
            f1(dr),
            f1(analytic::flush_latency_us()),
        ]);
    }
    let n = specs.len() as f64;
    t.row(vec![
        "average".into(),
        f1(s_sum / n),
        f1(d_sum / n),
        "0.0".into(),
    ]);
    print!("{t}");
    println!("\npaper averages: switch 14.5, drain 830.4, flush 0.0");
    // The figure itself is analytic; a traced simulated run is still served
    // so `--trace`/`--events` behave uniformly across all binaries.
    bench::scenarios::write_observability(&args, &workloads::Suite::standard(), 15.0);
}
