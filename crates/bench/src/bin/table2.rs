//! Table 2: benchmark characterisation — measured on the simulator and
//! compared to the paper's values.
//!
//! Drain time is *measured* by simulation (the paper's methodology);
//! context size, blocks/SM, and switch time come from the solved kernels.

use bench::report::f1;
use bench::{RunArgs, Table};
use idem::KernelIdempotence;
use workloads::{build_kernel, build_program, measure_drain_time_us, Suite};

fn main() {
    let args = RunArgs::from_env();
    let suite = Suite::standard();
    let cfg = suite.config();
    println!("Table 2: Benchmark specification (measured vs paper)\n");
    let mut t = Table::new(&[
        "kernel",
        "drain us",
        "(paper)",
        "ctx kB/TB",
        "(paper)",
        "TBs/SM",
        "(paper)",
        "switch us",
        "idem",
        "(paper)",
    ]);
    for spec in suite.specs() {
        let k = build_kernel(cfg, spec, true);
        let samples = if spec.drain_us > 1000.0 { 6 } else { 24 };
        let drain = measure_drain_time_us(cfg, &k, samples);
        let occ = gpu_sim::occupancy(cfg, &k);
        let ctx_kb = k.block_context_bytes() as f64 / 1024.0;
        let switch_us = cfg.cycles_to_us(
            cfg.sm_transfer_cycles(k.block_context_bytes() * u64::from(occ.blocks_per_sm)),
        );
        // Classify the uninstrumented program: the protect store itself is
        // not part of the original kernel.
        let idem = KernelIdempotence::of(&k.with_program(build_program(cfg, spec)));
        t.row(vec![
            spec.label(),
            f1(drain),
            f1(spec.drain_us),
            f1(ctx_kb),
            f1(spec.ctx_bytes as f64 / 1024.0),
            occ.blocks_per_sm.to_string(),
            spec.tbs_per_sm.to_string(),
            f1(switch_us),
            idem.to_string(),
            if spec.is_idempotent() {
                "Yes".into()
            } else {
                "No".into()
            },
        ]);
    }
    print!("{t}");
    println!("\n(the paper's per-kernel switch-time column appears as the Switch series of fig2)");
    bench::scenarios::write_observability(&args, &suite, 15.0);
}
