//! Ablation: real-time task as a reservation vs as an executing kernel.
//!
//! The paper measures only the benchmark's throughput and neglects the
//! synthetic task's, so this reproduction models the task as an SM
//! reservation by default. This ablation executes the task's kernel for real
//! — its instruction issue costs nothing extra (disjoint SMs) but its memory
//! traffic contends with the benchmark, quantifying the reservation model's
//! optimism.

use bench::pool;
use bench::progress::Progress;
use bench::report::f1;
use bench::{RunArgs, Table};
use chimera::policy::Policy;
use chimera::runner::periodic::{run_periodic, PeriodicConfig};
use gpu_sim::GpuConfig;
use workloads::Suite;

fn main() {
    let args = RunArgs::from_env();
    let suite = Suite::standard();
    let cfg = GpuConfig::fermi();
    println!("Ablation: reservation vs executed RT task (Chimera, 15 us)\n");
    let mut t = Table::new(&[
        "benchmark",
        "reserved insts",
        "executed insts",
        "delta %",
        "viol res %",
        "viol exec %",
    ]);
    let progress = Progress::new("ablation-task-sim", suite.benchmarks().len());
    let tasks: Vec<_> = suite
        .benchmarks()
        .iter()
        .map(|bench| {
            let (cfg, progress, args) = (&cfg, &progress, &args);
            move || {
                let mk = |simulate| {
                    PeriodicConfig::paper_default(cfg)
                        .common(args.common(8_000.0, 15.0))
                        .simulate_task(simulate)
                };
                let res = run_periodic(cfg, bench, Policy::chimera_us(15.0), &mk(false));
                let sim = run_periodic(cfg, bench, Policy::chimera_us(15.0), &mk(true));
                progress.cell_done(bench.name());
                let delta =
                    100.0 * (1.0 - sim.useful_insts as f64 / res.useful_insts.max(1) as f64);
                vec![
                    bench.name().to_string(),
                    res.useful_insts.to_string(),
                    sim.useful_insts.to_string(),
                    f1(delta),
                    f1(res.violation_pct()),
                    f1(sim.violation_pct()),
                ]
            }
        })
        .collect();
    for row in pool::run_tasks(args.jobs, tasks) {
        t.row(row);
    }
    progress.finish(args.jobs);
    print!("{t}");
    println!("\npositive delta = benchmark throughput hidden by the reservation model");
    bench::scenarios::write_observability(&args, &suite, 15.0);
}
