//! Open-loop serving: offered load swept through saturation into overload.
//!
//! Not a paper figure — the paper's runners are closed-loop — but the
//! natural stress test for collaborative preemption as a serving substrate:
//! Poisson arrivals at a growing fraction of the workload's analytic
//! saturation rate, with admission control shedding what cannot meet its
//! deadline. Reports goodput versus offered load, deadline-slack
//! percentiles, shed counts, and per-tenant fairness; a second table
//! compares arrival shapes (Poisson, bursty, diurnal) at the same mean
//! load. Output is byte-identical for every `--jobs` value.

use bench::report::{f1, f2};
use bench::scenarios::{serve_sweep, SERVE_HORIZON_US, TRACE_EVENT_CAPACITY};
use bench::{RunArgs, Table};
use chimera::runner::cluster::{run_serve_cluster, ClusterServeConfig, Placement};
use chimera::runner::serve::{run_serve, run_serve_traced, ArrivalProcess, ServeConfig};
use gpu_sim::GpuConfig;
use workloads::ServeWorkload;

/// Offered-load factors relative to the analytic saturation rate; the tail
/// crosses 1.0 into overload, where admission control must shed.
const LOAD_FACTORS: [f64; 8] = [0.25, 0.5, 0.75, 0.9, 1.0, 1.25, 1.5, 2.0];

fn opt_us(v: Option<f64>) -> String {
    v.map(f1).unwrap_or_else(|| "-".to_string())
}

fn main() {
    let args = RunArgs::from_env();
    let cfg = GpuConfig::fermi();
    let wl = ServeWorkload::standard(&cfg);
    let base = ServeConfig::paper_default()
        .horizon_us(SERVE_HORIZON_US * args.scale)
        .seed(args.seed)
        .estimator(args.estimator);
    let sat = wl.saturation_per_ms();
    println!("Open-loop serving under Chimera-15us: offered load vs goodput and deadline slack\n");
    println!(
        "standard workload: mean service {} us, analytic saturation {} req/ms\n",
        f1(wl.mean_service_us()),
        f2(sat)
    );

    let rows = serve_sweep(&cfg, &wl, &base, &LOAD_FACTORS, &args);
    let mut t = Table::new(&[
        "load",
        "offered/s",
        "goodput/s",
        "admit",
        "shed q",
        "shed inf",
        "shed late",
        "viol",
        "p50 slack",
        "p99 slack",
        "p999 slack",
        "max q",
    ]);
    for (factor, r) in &rows {
        t.row(vec![
            format!("{factor:.2}x"),
            format!("{:.0}", r.offered_per_s),
            format!("{:.0}", r.goodput_per_s),
            r.admitted.to_string(),
            r.shed_queue_full.to_string(),
            r.shed_infeasible.to_string(),
            r.shed_late.to_string(),
            r.violations.to_string(),
            opt_us(r.slack_p50_us),
            opt_us(r.slack_p99_us),
            opt_us(r.slack_p999_us),
            r.max_queue_depth.to_string(),
        ]);
    }
    println!("{t}");

    // Arrival-shape comparison at 0.9x saturation: same mean load, three
    // temporal shapes. Burstiness and diurnal swing stress admission in
    // ways the constant-rate sweep cannot.
    let mean = 0.9 * sat;
    let shapes: [(&str, ArrivalProcess); 3] = [
        ("poisson", ArrivalProcess::poisson(mean)),
        (
            "bursty",
            ArrivalProcess::Bursty {
                calm_per_ms: mean / 2.0,
                burst_per_ms: 2.0 * mean,
                mean_calm_us: 3_000.0,
                mean_burst_us: 1_500.0,
            },
        ),
        (
            "diurnal",
            ArrivalProcess::Diurnal {
                mean_per_ms: mean,
                relative_amplitude: 0.6,
                period_us: 10_000.0,
            },
        ),
    ];
    println!("arrival-shape comparison at 0.90x saturation\n");
    let mut t = Table::new(&[
        "shape",
        "offered",
        "goodput/s",
        "shed",
        "viol",
        "p99 slack",
        "max q",
    ]);
    for (name, arr) in &shapes {
        let r = run_serve(&cfg, &wl, &base.clone().arrivals(arr.clone()));
        t.row(vec![
            name.to_string(),
            r.offered.to_string(),
            format!("{:.0}", r.goodput_per_s),
            (r.shed_queue_full + r.shed_infeasible + r.shed_late).to_string(),
            r.violations.to_string(),
            opt_us(r.slack_p99_us),
            r.max_queue_depth.to_string(),
        ]);
    }
    println!("{t}");

    // Per-tenant fairness at 2x overload: the weighted-fair dispatcher must
    // keep the light tenant alive while the heavy ones absorb the shedding.
    let overload = base.clone().arrivals(ArrivalProcess::poisson(2.0 * sat));
    let r = run_serve(&cfg, &wl, &overload);
    println!("per-tenant outcomes at 2.00x saturation\n");
    let mut t = Table::new(&[
        "tenant",
        "offered",
        "admit",
        "shed",
        "done",
        "viol",
        "ANTT",
        "viol share",
    ]);
    for tn in &r.tenants {
        t.row(vec![
            tn.name.clone(),
            tn.offered.to_string(),
            tn.admitted.to_string(),
            tn.shed.to_string(),
            tn.completed.to_string(),
            tn.violations.to_string(),
            tn.antt.map(f2).unwrap_or_else(|| "-".to_string()),
            f2(tn.violation_share),
        ]);
    }
    println!("{t}");

    // Multi-device cluster tables, appended only under `--devices N` (N>1)
    // so the default single-device stdout stays byte-identical. The offered
    // stream is fixed at 0.9x the *cluster's* saturation (N devices): one
    // device alone is deep in overload, and each added device claws back
    // goodput — STP climbs toward N while ANTT and shedding fall.
    if args.devices > 1 {
        let nmax = args.devices;
        let swept = base
            .clone()
            .arrivals(ArrivalProcess::poisson(0.9 * sat * nmax as f64));
        let opt_f2 = |v: Option<f64>| v.map(f2).unwrap_or_else(|| "-".to_string());
        println!(
            "multi-device serving: STP/ANTT vs device count at fixed cluster load \
             (0.90x of {nmax}-device saturation, {} placement)\n",
            args.placement.name()
        );
        let mut t = Table::new(&[
            "devices",
            "goodput/s",
            "STP",
            "ANTT",
            "imbalance",
            "shed",
            "viol",
        ]);
        for d in 1..=nmax {
            let ccfg = ClusterServeConfig::new(swept.clone(), d).placement(args.placement);
            let r = run_serve_cluster(&cfg, &wl, &ccfg);
            t.row(vec![
                d.to_string(),
                format!("{:.0}", r.goodput_per_s),
                f2(r.stp),
                opt_f2(r.antt),
                f2(r.imbalance),
                r.shed.to_string(),
                r.violations.to_string(),
            ]);
        }
        println!("{t}");

        println!("placement comparison at {nmax} devices, same offered stream\n");
        let mut t = Table::new(&["placement", "goodput/s", "STP", "ANTT", "imbalance", "shed"]);
        for p in [
            Placement::RoundRobin,
            Placement::LeastLoaded,
            Placement::TenantAffine,
        ] {
            let ccfg = ClusterServeConfig::new(swept.clone(), nmax).placement(p);
            let r = run_serve_cluster(&cfg, &wl, &ccfg);
            t.row(vec![
                p.name().to_string(),
                format!("{:.0}", r.goodput_per_s),
                f2(r.stp),
                opt_f2(r.antt),
                f2(r.imbalance),
                r.shed.to_string(),
            ]);
        }
        println!("{t}");

        let ccfg = ClusterServeConfig::new(swept, nmax).placement(args.placement);
        let r = run_serve_cluster(&cfg, &wl, &ccfg);
        println!(
            "per-device outcomes at {nmax} devices ({} placement)\n",
            args.placement.name()
        );
        let mut t = Table::new(&[
            "device", "offered", "admit", "shed", "done", "viol", "STP", "ANTT",
        ]);
        for d in &r.devices {
            t.row(vec![
                d.device.to_string(),
                d.offered.to_string(),
                d.admitted.to_string(),
                d.shed.to_string(),
                d.completed.to_string(),
                d.violations.to_string(),
                f2(d.stp),
                opt_f2(d.antt),
            ]);
        }
        println!("{t}");
    }

    // Observability sinks mirror the figure binaries: a separate traced run
    // (overloaded, so the shed track is populated) keeps stdout identical.
    if args.trace.is_some() || args.events.is_some() {
        let (_, gpu) = run_serve_traced(&cfg, &wl, &overload, TRACE_EVENT_CAPACITY);
        let log = gpu.engine().event_log().expect("tracing was enabled");
        if let Some(path) = &args.trace {
            let json =
                gpu_sim::trace::chrome_trace_json(gpu.engine()).expect("tracing was enabled");
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!("wrote Chrome trace of the 2x-overload serve run to {path}");
        }
        if let Some(path) = &args.events {
            std::fs::write(path, log.to_json_lines())
                .unwrap_or_else(|e| panic!("writing {path}: {e}"));
            eprintln!(
                "wrote {} events ({} dropped) of the 2x-overload serve run to {path}",
                log.len(),
                log.dropped()
            );
        }
    }
}
