//! Estimator-accuracy report: predicted vs. actual drain latency per kernel.
//!
//! For every benchmark, runs the §4.1 periodic scenario under Chimera with
//! the observability event log enabled, then joins each *drain* decision
//! (which carries the §3.2 cost-model prediction) with the cycles the block
//! actually took to finish ([`chimera::obs::drain_accuracy`]). A small mean
//! error is what licenses Algorithm 1 to trust the estimates when choosing
//! between drain, switch and flush.
//!
//! Output is byte-identical for every `--jobs` value; `--trace`/`--events`
//! additionally dump one representative traced run (see `OBSERVABILITY.md`).

use bench::pool;
use bench::progress::Progress;
use bench::report::f1;
use bench::scenarios::{write_observability, PERIODIC_HORIZON_US, TRACE_EVENT_CAPACITY};
use bench::{RunArgs, Table};
use chimera::obs::drain_accuracy;
use chimera::policy::Policy;
use chimera::runner::periodic::{run_periodic_traced, PeriodicConfig};
use workloads::Suite;

fn main() {
    let args = RunArgs::from_env();
    let suite = Suite::standard();
    let cfg = suite.config();
    let pcfg = PeriodicConfig {
        constraint_us: 15.0,
        horizon_us: PERIODIC_HORIZON_US * args.scale,
        seed: args.seed,
        ..PeriodicConfig::paper_default(cfg)
    };
    let benches = suite.benchmarks();
    let progress = Progress::new("est-accuracy", benches.len());
    // One traced Chimera run per benchmark; each cell owns its engine, so
    // the matrix parallelises like every other figure.
    let tasks: Vec<_> = benches
        .iter()
        .map(|bench| {
            let (pcfg, progress) = (&pcfg, &progress);
            move || {
                let (_, engine) = run_periodic_traced(
                    cfg,
                    bench,
                    Policy::chimera_us(15.0),
                    pcfg,
                    TRACE_EVENT_CAPACITY,
                );
                let report = drain_accuracy(&engine);
                progress.cell_done(bench.name());
                (bench.name().to_string(), report)
            }
        })
        .collect();
    let results = pool::run_tasks(args.jobs, tasks);
    println!("Drain estimator accuracy under Chimera (15 us constraint)\n");
    let mut t = Table::new(&[
        "kernel",
        "drained blocks",
        "est us",
        "actual us",
        "mean |err| %",
    ]);
    let (mut total_samples, mut err_sum) = (0usize, 0.0f64);
    for (bench_name, report) in &results {
        if report.is_empty() {
            t.row(vec![
                bench_name.clone(),
                "0".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        for k in report {
            total_samples += k.samples;
            err_sum += k.mean_abs_err_pct * k.samples as f64;
            t.row(vec![
                k.kernel.clone(),
                k.samples.to_string(),
                f1(k.mean_est_us),
                f1(k.mean_actual_us),
                f1(k.mean_abs_err_pct),
            ]);
        }
    }
    if total_samples > 0 {
        t.row(vec![
            "overall".into(),
            total_samples.to_string(),
            "".into(),
            "".into(),
            f1(err_sum / total_samples as f64),
        ]);
    }
    progress.finish(args.jobs);
    print!("{t}");
    println!("\n(blocks Algorithm 1 chose to drain, joined with their observed completion;");
    println!("kernels with 0 drained blocks were served by flush/switch or idle SMs.");
    println!("est >= actual by design: the drain estimate carries the paper's s4.1");
    println!("headroom — remaining work is bounded by max(avg + 2 sigma, observed max)");
    println!("— so drains that must meet a deadline finish early, never late)");
    write_observability(&args, &suite, 15.0);
}
