//! Estimator-accuracy report: predicted vs. actual drain latency per kernel,
//! for the paper's static §4.1 bound *and* the online quantile estimator.
//!
//! For every benchmark, runs the §4.1 periodic scenario under Chimera twice —
//! once per estimator — and joins each *drain* decision (which carries the
//! §3.2 cost-model prediction) with the cycles the block actually took to
//! finish (the incremental [`chimera::DrainTracker`] join, accumulated live
//! by the runner). A small mean error is what licenses Algorithm 1 to trust
//! the estimates when choosing between drain, switch and flush; the online
//! column shows how much of the static bound's headroom the live quantile
//! trackers win back once per-kernel samples accumulate.
//!
//! The second table slices the same samples chronologically (horizon
//! quarters, by decision cycle) — live-vs-static error over time. The online
//! estimator starts on the static bound (trackers below `min_samples`) and
//! sharpens as completions feed back.
//!
//! With `--estimator online` the binary also acts as a smoke gate: it exits
//! non-zero if the online estimator's overall error exceeds the static
//! bound's on the same slice (`--risk-quantile` picks the online risk level).
//!
//! Output is byte-identical for every `--jobs` value; `--trace`/`--events`
//! additionally dump one representative traced run (see `OBSERVABILITY.md`).

use bench::pool;
use bench::progress::Progress;
use bench::report::f1;
use bench::scenarios::{write_observability, PERIODIC_HORIZON_US};
use bench::{RunArgs, Table};
use chimera::obs::{accuracy_per_kernel, DrainSample};
use chimera::policy::Policy;
use chimera::runner::periodic::{run_periodic, PeriodicConfig};
use chimera::{EstimatorConfig, EstimatorMode};
use workloads::Suite;

/// Weighted overall mean-absolute-relative-error over a set of samples.
fn overall_mare(samples: &[&DrainSample]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    Some(samples.iter().map(|s| s.abs_err_pct()).sum::<f64>() / samples.len() as f64)
}

fn main() {
    let args = RunArgs::from_env();
    let suite = Suite::standard();
    let cfg = suite.config();
    let horizon_us = PERIODIC_HORIZON_US * args.scale;
    let estimators = [
        EstimatorConfig::default(),
        EstimatorConfig::online(args.estimator.risk_quantile),
    ];
    let benches = suite.benchmarks();
    let progress = Progress::new("est-accuracy", benches.len() * estimators.len());
    // One Chimera run per (benchmark, estimator); each cell owns its engine,
    // so the matrix parallelises like every other figure.
    let tasks: Vec<_> = benches
        .iter()
        .flat_map(|bench| {
            let progress = &progress;
            estimators.iter().map(move |&est| {
                move || {
                    let pcfg = PeriodicConfig::paper_default(cfg)
                        .horizon_us(horizon_us)
                        .constraint_us(15.0)
                        .seed(args.seed)
                        .estimator(est);
                    let r = run_periodic(cfg, bench, Policy::chimera_us(15.0), &pcfg);
                    progress.cell_done(&format!("{}/{}", bench.name(), est.mode));
                    r.drain_samples
                }
            })
        })
        .collect();
    let mut results = pool::run_tasks(args.jobs, tasks).into_iter();
    let per_bench: Vec<(String, Vec<DrainSample>, Vec<DrainSample>)> = benches
        .iter()
        .map(|b| {
            let st = results.next().expect("static run for every benchmark");
            let on = results.next().expect("online run for every benchmark");
            (b.name().to_string(), st, on)
        })
        .collect();
    progress.finish(args.jobs);

    println!("Drain estimator accuracy under Chimera (15 us constraint)\n");
    let mut t = Table::new(&[
        "kernel",
        "blocks st/on",
        "est us st",
        "est us on",
        "actual us",
        "|err| % static",
        "|err| % online",
    ]);
    let (mut all_static, mut all_online) = (Vec::new(), Vec::new());
    for (bench_name, st, on) in &per_bench {
        let stk = accuracy_per_kernel(cfg, st);
        let onk = accuracy_per_kernel(cfg, on);
        if stk.is_empty() && onk.is_empty() {
            t.row(vec![
                bench_name.clone(),
                "0/0".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        // Same kernel set in both runs is not guaranteed (the online bound
        // can unlock drains the static bound rejected); union the names.
        let mut names: Vec<&str> = stk.iter().chain(&onk).map(|k| k.kernel.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        for name in names {
            let s = stk.iter().find(|k| k.kernel == name);
            let o = onk.iter().find(|k| k.kernel == name);
            let opt = |v: Option<f64>| v.map_or_else(|| "-".into(), f1);
            t.row(vec![
                name.to_string(),
                format!(
                    "{}/{}",
                    s.map_or(0, |k| k.samples),
                    o.map_or(0, |k| k.samples)
                ),
                opt(s.map(|k| k.mean_est_us)),
                opt(o.map(|k| k.mean_est_us)),
                opt(o.or(s).map(|k| k.mean_actual_us)),
                opt(s.map(|k| k.mean_abs_err_pct)),
                opt(o.map(|k| k.mean_abs_err_pct)),
            ]);
        }
        all_static.extend(st.iter());
        all_online.extend(on.iter());
    }
    let static_mare = overall_mare(&all_static);
    let online_mare = overall_mare(&all_online);
    let opt = |v: Option<f64>| v.map_or_else(|| "-".into(), f1);
    t.row(vec![
        "overall".into(),
        format!("{}/{}", all_static.len(), all_online.len()),
        "".into(),
        "".into(),
        "".into(),
        opt(static_mare),
        opt(online_mare),
    ]);
    print!("{t}");

    // Live-vs-static error over time: the same samples, sliced by when
    // Algorithm 1 made the decision (horizon quarters).
    println!("\nError over time (mean |err| % by decision time, horizon quarters):");
    let quarter = cfg.us_to_cycles(horizon_us / 4.0).max(1);
    let mut t = Table::new(&["estimator", "Q1", "Q2", "Q3", "Q4"]);
    for (label, samples) in [("static", &all_static), ("online", &all_online)] {
        let mut row = vec![label.to_string()];
        for q in 0..4u64 {
            let slice: Vec<&DrainSample> = samples
                .iter()
                .copied()
                .filter(|s| s.decided_at / quarter == q || (q == 3 && s.decided_at / quarter > 3))
                .collect();
            row.push(opt(overall_mare(&slice)));
        }
        t.row(row);
    }
    print!("{t}");
    println!("\n(blocks Algorithm 1 chose to drain, joined live with their observed");
    println!("completion; kernels with 0 drained blocks were served by flush/switch or");
    println!("idle SMs. est >= actual by design: the static estimate carries the paper's");
    println!("s4.1 headroom — remaining work bounded by max(avg + 2 sigma, observed max)");
    println!("— so drains that must meet a deadline finish early, never late. The online");
    println!("estimator replaces that bound with a live per-kernel quantile once enough");
    println!("completions accumulate, trading slack for accuracy at the risk level q)");
    write_observability(&args, &suite, 15.0);

    if args.estimator.mode == EstimatorMode::Online {
        match (static_mare, online_mare) {
            (Some(st), Some(on)) if on > st => {
                eprintln!(
                    "GATE FAIL: online estimator error {} % exceeds static {} %",
                    f1(on),
                    f1(st)
                );
                std::process::exit(1);
            }
            (Some(st), Some(on)) => {
                eprintln!("gate ok: online {} % <= static {} %", f1(on), f1(st));
            }
            _ => {
                eprintln!("GATE FAIL: no drain samples to compare");
                std::process::exit(1);
            }
        }
    }
}
