//! Sensitivity exploration beyond the paper's evaluation: how do Chimera's
//! deadline violations and technique mix respond to the platform and task
//! parameters (SM count, memory bandwidth, task period and size)?
//!
//! This is "future work"-style analysis the paper does not include; it uses
//! the same machinery as fig6/fig8.

use bench::pool;
use bench::progress::Progress;
use bench::report::f1;
use bench::{RunArgs, Table};
use chimera::policy::Policy;
use chimera::runner::periodic::{run_periodic, PeriodicConfig};
use gpu_sim::{GpuConfig, Technique};
use workloads::{RtTask, Suite, SuiteOptions};

fn one(
    cfg: &GpuConfig,
    suite: &Suite,
    bench_name: &str,
    pcfg: &PeriodicConfig,
) -> (f64, f64, [f64; 3]) {
    let bench = suite.benchmark(bench_name).expect("known benchmark");
    let r = run_periodic(
        cfg,
        bench,
        Policy::chimera_us(pcfg.common.constraint_us),
        pcfg,
    );
    let total: u64 = r.technique_counts.values().sum();
    let share = |t: Technique| {
        100.0 * r.technique_counts.get(&t).copied().unwrap_or(0) as f64 / total.max(1) as f64
    };
    (
        r.violation_pct(),
        r.mean_ok_latency_us.unwrap_or(f64::NAN),
        [
            share(Technique::Switch),
            share(Technique::Drain),
            share(Technique::Flush),
        ],
    )
}

fn main() {
    let args = RunArgs::from_env();
    let horizon = 8_000.0 * args.scale;
    let bench_name = "BS";
    println!("Sensitivity exploration (Chimera on {bench_name}, 15 us constraint)\n");

    // (1) SM count.
    println!("(1) SM count (task takes half):");
    let mut t = Table::new(&["SMs", "violations %", "mean latency us", "sw/dr/fl %"]);
    let progress = Progress::new("explore: SM count", 4);
    let tasks: Vec<_> = [8usize, 16, 30, 60]
        .into_iter()
        .map(|sms| {
            let progress = &progress;
            move || {
                let cfg = GpuConfig {
                    num_sms: sms,
                    ..GpuConfig::fermi()
                };
                let suite = Suite::with_options(cfg.clone(), SuiteOptions::default());
                let pcfg = PeriodicConfig::paper_default(&cfg)
                    .horizon_us(horizon)
                    .seed(args.seed)
                    .task(RtTask::paper_default(&cfg));
                let (v, lat, mix) = one(&cfg, &suite, bench_name, &pcfg);
                progress.cell_done(&format!("{sms} SMs"));
                vec![
                    sms.to_string(),
                    f1(v),
                    f1(lat),
                    format!("{}/{}/{}", f1(mix[0]), f1(mix[1]), f1(mix[2])),
                ]
            }
        })
        .collect();
    for row in pool::run_tasks(args.jobs, tasks) {
        t.row(row);
    }
    progress.finish(args.jobs);
    println!("{t}");

    // (2) Memory bandwidth: switching gets cheaper as bandwidth grows.
    println!("(2) memory bandwidth:");
    let mut t = Table::new(&["GB/s", "violations %", "mean latency us", "sw/dr/fl %"]);
    let progress = Progress::new("explore: memory bandwidth", 4);
    let tasks: Vec<_> = [88.7, 177.4, 354.8, 709.6]
        .into_iter()
        .map(|bw| {
            let progress = &progress;
            move || {
                let cfg = GpuConfig {
                    mem_bandwidth_gbps: bw,
                    ..GpuConfig::fermi()
                };
                let suite = Suite::with_options(cfg.clone(), SuiteOptions::default());
                let pcfg = PeriodicConfig::paper_default(&cfg)
                    .horizon_us(horizon)
                    .seed(args.seed);
                let (v, lat, mix) = one(&cfg, &suite, bench_name, &pcfg);
                progress.cell_done(&format!("{bw} GB/s"));
                vec![
                    format!("{bw}"),
                    f1(v),
                    f1(lat),
                    format!("{}/{}/{}", f1(mix[0]), f1(mix[1]), f1(mix[2])),
                ]
            }
        })
        .collect();
    for row in pool::run_tasks(args.jobs, tasks) {
        t.row(row);
    }
    progress.finish(args.jobs);
    println!("{t}");

    // (3) Task pressure: shorter periods mean more preemption churn.
    println!("(3) task period (200 us execution):");
    let mut t = Table::new(&[
        "period us",
        "requests served/ms",
        "violations %",
        "sw/dr/fl %",
    ]);
    let progress = Progress::new("explore: task period", 4);
    let tasks: Vec<_> = [400.0, 700.0, 1000.0, 2000.0]
        .into_iter()
        .map(|period| {
            let progress = &progress;
            move || {
                let cfg = GpuConfig::fermi();
                let suite = Suite::standard();
                let pcfg = PeriodicConfig::paper_default(&cfg)
                    .horizon_us(horizon)
                    .seed(args.seed)
                    .task(RtTask {
                        period_us: period,
                        ..RtTask::paper_default(&cfg)
                    });
                let (v, _, mix) = one(&cfg, &suite, bench_name, &pcfg);
                progress.cell_done(&format!("{period} us period"));
                vec![
                    format!("{period}"),
                    f1(1000.0 / period),
                    f1(v),
                    format!("{}/{}/{}", f1(mix[0]), f1(mix[1]), f1(mix[2])),
                ]
            }
        })
        .collect();
    for row in pool::run_tasks(args.jobs, tasks) {
        t.row(row);
    }
    progress.finish(args.jobs);
    println!("{t}");

    // (3b) Idempotence-point position: the BT/FWT phenomenon isolated.
    // Pure flushing against a 10 us-block kernel whose overwrite lands at
    // varying progress: the later the point, the longer blocks stay
    // flushable and the fewer violations.
    println!("(3b) idempotence-point position (pure Flush on a 10 us-block kernel):");
    let mut t = Table::new(&["idem point %", "flush violations %"]);
    let progress = Progress::new("explore: idempotence point", 5);
    let tasks: Vec<_> = [0.3, 0.5, 0.7, 0.9, 0.97]
        .into_iter()
        .map(|frac| {
            let progress = &progress;
            move || {
                let cfg = GpuConfig::fermi();
                let k = workloads::SyntheticKernel::new("sweep")
                    .block_time_us(10.0)
                    .blocks_per_sm(6)
                    .non_idem_at(frac)
                    .grid_blocks(20_000)
                    .build(&cfg);
                let bench = workloads::Benchmark::new("sweep", vec![k]);
                let pcfg = PeriodicConfig::paper_default(&cfg)
                    .horizon_us(horizon)
                    .seed(args.seed);
                let r = run_periodic(&cfg, &bench, Policy::Flush, &pcfg);
                progress.cell_done(&format!("idem at {frac}"));
                vec![f1(100.0 * frac), f1(r.violation_pct())]
            }
        })
        .collect();
    for row in pool::run_tasks(args.jobs, tasks) {
        t.row(row);
    }
    progress.finish(args.jobs);
    println!("{t}");

    // (4) Task footprint: how many SMs the task demands.
    println!("(4) task SM demand:");
    let mut t = Table::new(&["SMs needed", "violations %", "mean latency us"]);
    let progress = Progress::new("explore: task SM demand", 4);
    let tasks: Vec<_> = [5usize, 10, 15, 25]
        .into_iter()
        .map(|needed| {
            let progress = &progress;
            move || {
                let cfg = GpuConfig::fermi();
                let suite = Suite::standard();
                let pcfg = PeriodicConfig::paper_default(&cfg)
                    .horizon_us(horizon)
                    .seed(args.seed)
                    .task(RtTask {
                        sms_needed: needed,
                        ..RtTask::paper_default(&cfg)
                    });
                let (v, lat, _) = one(&cfg, &suite, bench_name, &pcfg);
                progress.cell_done(&format!("{needed} SMs needed"));
                vec![needed.to_string(), f1(v), f1(lat)]
            }
        })
        .collect();
    for row in pool::run_tasks(args.jobs, tasks) {
        t.row(row);
    }
    progress.finish(args.jobs);
    print!("{t}");
    bench::scenarios::write_observability(&args, &Suite::standard(), 15.0);
}
