//! Table 2 idempotence column, derived — not asserted — by the `idem`
//! dataflow analysis over each kernel's access regions, with per-kernel
//! breaking sites and clobbered-read provenance.
//!
//! The checked-in capture lives at `results/table2_idem.txt` and is pinned
//! by a golden test (`bench::idem_report::tests::golden_file_matches_render`).

use workloads::Suite;

fn main() {
    print!("{}", bench::idem_report::render(&Suite::standard()));
}
