//! Figure 6: deadline violations with a periodic real-time task, 15 µs
//! preemption latency constraint.
//!
//! Paper averages: switch 56.0 %, drain 61.3 %, flush 7.3 %, Chimera 0.2 %.

use bench::report::f1;
use bench::scenarios::{periodic_matrix, write_observability};
use bench::{RunArgs, Table};
use chimera::policy::Policy;
use workloads::Suite;

fn main() {
    let args = RunArgs::from_env();
    let suite = Suite::standard();
    let policies = Policy::paper_lineup(15.0);
    eprintln!(
        "fig6: running {} benchmarks x {} policies ...",
        suite.benchmarks().len(),
        4
    );
    let m = periodic_matrix(&suite, &policies, 15.0, &args, false);
    println!("Figure 6: deadline violations (%), 15 us constraint\n");
    let mut t = Table::new(&["benchmark", "Switch", "Drain", "Flush", "Chimera"]);
    let mut sums = [0.0f64; 4];
    for (name, results) in &m.rows {
        let v: Vec<f64> = results.iter().map(|r| r.violation_pct()).collect();
        for (s, x) in sums.iter_mut().zip(&v) {
            *s += x;
        }
        t.row(vec![name.clone(), f1(v[0]), f1(v[1]), f1(v[2]), f1(v[3])]);
    }
    let n = m.rows.len() as f64;
    t.row(vec![
        "average".into(),
        f1(sums[0] / n),
        f1(sums[1] / n),
        f1(sums[2] / n),
        f1(sums[3] / n),
    ]);
    print!("{t}");
    println!("\npaper averages: switch 56.0, drain 61.3, flush 7.3, chimera 0.2");
    write_observability(&args, &suite, 15.0);
}
