//! Ablation: preempted-block queue priority.
//!
//! The thread-block scheduler "always prefers to schedule the preempted
//! thread blocks first so that the size of the preempted thread block queue
//! can be limited" (§3.1). This ablation compares preempted-first against
//! fresh-first dispatch under Chimera, reporting throughput and violations.

use bench::pool;
use bench::progress::Progress;
use bench::report::f1;
use bench::scenarios::PERIODIC_HORIZON_US;
use bench::{RunArgs, Table};
use chimera::policy::Policy;
use chimera::runner::periodic::{run_periodic, PeriodicConfig};
use gpu_sim::GpuConfig;
use workloads::Suite;

fn main() {
    let args = RunArgs::from_env();
    let suite = Suite::standard();
    let cfg = GpuConfig::fermi();
    println!("Ablation: preempted-first vs fresh-first block dispatch (Chimera, 15 us)\n");
    let mut t = Table::new(&[
        "benchmark",
        "preempted-first insts",
        "fresh-first insts",
        "delta %",
        "viol pf %",
        "viol ff %",
    ]);
    let progress = Progress::new("ablation-tb-queue", suite.benchmarks().len());
    let tasks: Vec<_> = suite
        .benchmarks()
        .iter()
        .map(|bench| {
            let (cfg, progress, args) = (&cfg, &progress, &args);
            move || {
                let mk = |prefer| {
                    PeriodicConfig::paper_default(cfg)
                        .common(args.common(PERIODIC_HORIZON_US, 15.0))
                        .prefer_preempted(prefer)
                };
                let a = run_periodic(cfg, bench, Policy::chimera_us(15.0), &mk(true));
                let b = run_periodic(cfg, bench, Policy::chimera_us(15.0), &mk(false));
                progress.cell_done(bench.name());
                let delta = 100.0 * (b.useful_insts as f64 / a.useful_insts.max(1) as f64 - 1.0);
                vec![
                    bench.name().to_string(),
                    a.useful_insts.to_string(),
                    b.useful_insts.to_string(),
                    f1(delta),
                    f1(a.violation_pct()),
                    f1(b.violation_pct()),
                ]
            }
        })
        .collect();
    for row in pool::run_tasks(args.jobs, tasks) {
        t.row(row);
    }
    progress.finish(args.jobs);
    print!("{t}");
    bench::scenarios::write_observability(&args, &suite, 15.0);
}
