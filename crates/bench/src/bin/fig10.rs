//! Figure 10: ANTT improvement over non-preemptive FCFS when LUD is
//! co-scheduled with each other benchmark.
//!
//! Paper averages: switch 20.9x, drain 19.3x, flush 23.6x, Chimera 25.4x.

use bench::report::f1;
use bench::scenarios::{multiprog_matrix, multiprog_suite, write_observability};
use bench::{RunArgs, Table};
use chimera::metrics::geomean;
use chimera::policy::Policy;

fn main() {
    let args = RunArgs::from_env();
    let suite = multiprog_suite(&args);
    let policies = Policy::paper_lineup(30.0);
    eprintln!("fig10: running LUD x 13 partners x (FCFS + 4 policies) ...");
    let m = multiprog_matrix(&suite, &policies, &args);
    println!("Figure 10: ANTT improvement (x) over non-preemptive FCFS\n");
    let mut t = Table::new(&["workload", "Switch", "Drain", "Flush", "Chimera"]);
    let mut impr: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for (fcfs, per_policy) in &m.rows {
        let v: Vec<f64> = per_policy.iter().map(|p| fcfs.antt / p.antt).collect();
        for (i, x) in v.iter().enumerate() {
            impr[i].push(*x);
        }
        t.row(vec![
            format!("LUD/{}", fcfs.other),
            f1(v[0]),
            f1(v[1]),
            f1(v[2]),
            f1(v[3]),
        ]);
    }
    let g: Vec<f64> = impr.iter().map(|xs| geomean(xs)).collect();
    t.row(vec![
        "geomean".into(),
        f1(g[0]),
        f1(g[1]),
        f1(g[2]),
        f1(g[3]),
    ]);
    print!("{t}");
    println!("\npaper averages: switch 20.9x, drain 19.3x, flush 23.6x, chimera 25.4x");
    println!("(absolute factors scale with the instruction budget; see EXPERIMENTS.md)");
    write_observability(&args, &suite, 30.0);
}
