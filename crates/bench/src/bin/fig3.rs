//! Figure 3: estimated throughput overhead per technique.
//!
//! Paper averages: switch 47.7 %, drain 0 %, flush 30.7 %.

use bench::report::f1;
use bench::{RunArgs, Table};
use chimera::cost::analytic;
use workloads::{solve_resources, table2};

fn main() {
    let args = RunArgs::from_env();
    let cfg = gpu_sim::GpuConfig::fermi();
    println!("Figure 3: estimated throughput overhead (%) per technique\n");
    let mut t = Table::new(&["kernel", "switch", "drain", "flush"]);
    let mut s_sum = 0.0;
    let specs = table2();
    for spec in &specs {
        let res = solve_resources(spec.ctx_bytes, spec.tbs_per_sm);
        let sw_lat = analytic::switch_latency_us(&cfg, res.context_bytes().into(), spec.tbs_per_sm);
        let sw = analytic::switch_overhead_pct(sw_lat, spec.drain_us);
        s_sum += sw;
        t.row(vec![
            spec.label(),
            f1(sw),
            f1(analytic::drain_overhead_pct()),
            f1(analytic::flush_overhead_pct()),
        ]);
    }
    let n = specs.len() as f64;
    t.row(vec![
        "average".into(),
        f1(s_sum / n),
        f1(0.0),
        f1(analytic::flush_overhead_pct()),
    ]);
    print!("{t}");
    println!("\npaper averages: switch 47.7, drain 0.0, flush 30.7");
    bench::scenarios::write_observability(&args, &workloads::Suite::standard(), 15.0);
}
