//! Shared experiment orchestration for the reproduction binaries.

use crate::args::RunArgs;
use crate::pool;
use crate::progress::Progress;
use chimera::metrics::{antt, stp};
use chimera::policy::Policy;
use chimera::runner::multiprog::{run_fcfs, run_pair, MultiprogConfig};
use chimera::runner::periodic::{
    run_periodic, run_periodic_traced, PeriodicConfig, PeriodicResult,
};
use chimera::runner::serve::{run_serve, ArrivalProcess, ServeConfig, ServeResult};
use chimera::runner::solo::run_solo;
use gpu_sim::GpuConfig;
use workloads::{ServeWorkload, Suite, SuiteOptions};

/// Default horizon for periodic experiments (µs) before `--scale`.
pub const PERIODIC_HORIZON_US: f64 = 16_000.0;

/// Event-log ring capacity used for `--trace` / `--events` runs: large
/// enough to hold every event of a paper-scale periodic run.
pub const TRACE_EVENT_CAPACITY: usize = 1 << 20;

/// Serve the `--trace` / `--events` observability sinks: when either path is
/// set, re-run one *representative* scenario with the event log enabled — the
/// suite's first benchmark under Chimera at `constraint_us`, over the same
/// scaled horizon and seed the figure used — and write the requested files.
///
/// The traced run is separate from the figure's own cells, so the figure's
/// stdout stays byte-identical whether or not tracing was requested (and the
/// zero-cost-when-disabled property of the log is preserved for normal runs).
/// Progress notes go to stderr only.
///
/// The Chrome-trace JSON (`--trace`) opens in `chrome://tracing` or Perfetto;
/// the JSON-lines event log (`--events`) is the raw schema documented in
/// `OBSERVABILITY.md`. Both are byte-stable for a fixed `(--scale, --seed)`
/// and independent of `--jobs` (the traced run is always serial).
pub fn write_observability(args: &RunArgs, suite: &Suite, constraint_us: f64) {
    if args.trace.is_none() && args.events.is_none() {
        return;
    }
    let cfg = suite.config();
    let bench = &suite.benchmarks()[0];
    let pcfg =
        PeriodicConfig::paper_default(cfg).common(args.common(PERIODIC_HORIZON_US, constraint_us));
    let (_, engine) = run_periodic_traced(
        cfg,
        bench,
        Policy::chimera_us(constraint_us),
        &pcfg,
        TRACE_EVENT_CAPACITY,
    );
    let log = engine.event_log().expect("tracing was enabled");
    if log.dropped() > 0 {
        eprintln!(
            "warning: event ring overflowed, {} oldest events dropped",
            log.dropped()
        );
    }
    if let Some(path) = &args.trace {
        let json = gpu_sim::trace::chrome_trace_json(&engine).expect("tracing was enabled");
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!(
            "wrote Chrome trace of {} under chimera-{constraint_us}us to {path} \
             (open in chrome://tracing)",
            bench.name()
        );
    }
    if let Some(path) = &args.events {
        std::fs::write(path, log.to_json_lines()).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!(
            "wrote {} events ({} dropped) of {} under chimera-{constraint_us}us to {path}",
            log.len(),
            log.dropped(),
            bench.name()
        );
    }
}

/// Re-run the periodic scenario for every benchmark under the flushing
/// policies (Flush and Chimera — the only ones that restart blocks) with the
/// dynamic [flush sanitizer](gpu_sim::FlushSanitizer) enabled, and aggregate
/// the verdict.
///
/// Returns `Ok` with a one-line summary when every run is clean, `Err` with
/// the offending runs' reports when any block was flushed after overwriting
/// a location it read (unsafe flush), the static analysis missed dynamic
/// dirt (false negative), or a statically-dirty program finished with a
/// clean footprint (static/dynamic disagreement). Serves `--sanitize` in the
/// figure binaries and the CI gate on the fig-7 slice.
pub fn sanitized_periodic_check(
    suite: &Suite,
    constraint_us: f64,
    args: &RunArgs,
) -> Result<String, String> {
    let cfg = suite.config();
    let policies = [Policy::Flush, Policy::chimera_us(constraint_us)];
    let pcfg = PeriodicConfig::paper_default(cfg)
        .common(args.common(PERIODIC_HORIZON_US, constraint_us))
        .sanitize(true);
    let benches = suite.benchmarks();
    let progress = Progress::new("sanitized periodic", benches.len() * policies.len());
    let tasks: Vec<_> = benches
        .iter()
        .flat_map(|bench| {
            let (pcfg, progress) = (&pcfg, &progress);
            policies.iter().map(move |&p| {
                move || {
                    let (_, mut engine) = run_periodic_traced(cfg, bench, p, pcfg, 0);
                    let rep = engine
                        .take_sanitizer()
                        .expect("sanitizer was enabled")
                        .report()
                        .clone();
                    progress.cell_done(&format!("{}/{p} sanitized", bench.name()));
                    (bench.name().to_string(), p.to_string(), rep)
                }
            })
        })
        .collect();
    let results = pool::run_tasks(args.jobs, tasks);
    progress.finish(args.jobs);
    let mut blocks = 0u64;
    let mut flushes = 0u64;
    let mut failures = Vec::new();
    for (bench, policy, rep) in results {
        blocks += rep.blocks_completed;
        flushes += rep.flushes_checked;
        if !rep.is_clean() || rep.static_dirty_but_clean > 0 {
            failures.push(format!("{bench}/{policy}: {rep}"));
        }
    }
    if failures.is_empty() {
        Ok(format!(
            "sanitizer clean: {blocks} blocks, {flushes} flushes checked, \
             0 unsafe, 0 disagreements"
        ))
    } else {
        Err(failures.join("\n"))
    }
}

/// Results of running every benchmark under a set of policies.
#[derive(Debug)]
pub struct PeriodicMatrix {
    /// Policy lineup, in column order.
    pub policies: Vec<Policy>,
    /// One row per benchmark: `(name, one result per policy)`.
    pub rows: Vec<(String, Vec<PeriodicResult>)>,
}

/// Run the §4.1 periodic scenario for every benchmark under each policy.
pub fn periodic_matrix(
    suite: &Suite,
    policies: &[Policy],
    constraint_us: f64,
    args: &RunArgs,
    strict: bool,
) -> PeriodicMatrix {
    let cfg = suite.config();
    let pcfg = PeriodicConfig::paper_default(cfg)
        .common(args.common(PERIODIC_HORIZON_US, constraint_us))
        .strict_idem(strict);
    let benches = suite.benchmarks();
    let progress = Progress::new("periodic matrix", benches.len() * policies.len());
    // Each (benchmark, policy) cell is a pure function of its inputs — it
    // builds its own Engine from the shared seed — so the cells can run on
    // any number of worker threads. Results are collected by index, keeping
    // the table byte-identical to a serial run.
    let tasks: Vec<_> = benches
        .iter()
        .flat_map(|bench| {
            let (pcfg, progress) = (&pcfg, &progress);
            policies.iter().map(move |&p| {
                move || {
                    let r = run_periodic(cfg, bench, p, pcfg);
                    progress.cell_done(&format!("{}/{p}", bench.name()));
                    r
                }
            })
        })
        .collect();
    let mut results = pool::run_tasks(args.jobs, tasks).into_iter();
    let rows = benches
        .iter()
        .map(|bench| {
            (
                bench.name().to_string(),
                results.by_ref().take(policies.len()).collect(),
            )
        })
        .collect();
    progress.finish(args.jobs);
    PeriodicMatrix {
        policies: policies.to_vec(),
        rows,
    }
}

/// Oracle (zero-cost preemption) baselines per benchmark, for throughput
/// overhead (§4.1 "effective throughput").
pub fn periodic_oracle(suite: &Suite, args: &RunArgs) -> Vec<(String, PeriodicResult)> {
    let m = periodic_matrix(suite, &[Policy::Oracle], 15.0, args, false);
    m.rows
        .into_iter()
        .map(|(name, mut rs)| (name, rs.remove(0)))
        .collect()
}

/// Metrics of one pairwise multiprogrammed workload under one scheme.
#[derive(Debug, Clone)]
pub struct PairMetrics {
    /// The partner benchmark (LUD is always the first job).
    pub other: String,
    /// ANTT of the pair (lower is better).
    pub antt: f64,
    /// STP of the pair (higher is better).
    pub stp: f64,
    /// SM preemptions performed.
    pub preemptions: usize,
}

/// All §4.4 pair results: FCFS baseline plus each policy.
#[derive(Debug)]
pub struct MultiprogMatrix {
    /// Policy lineup (columns after FCFS).
    pub policies: Vec<Policy>,
    /// One row per partner benchmark: `(FCFS, per-policy)`.
    pub rows: Vec<(PairMetrics, Vec<PairMetrics>)>,
}

/// The suite variant used for §4.4 (smaller grids, fewer LUD iterations) so
/// the FCFS baseline — which serialises kernels — stays simulable.
pub fn multiprog_suite(args: &RunArgs) -> Suite {
    let lud_iters = ((12.0 * args.scale.min(1.0)).round() as u32).max(5);
    Suite::with_options(
        GpuConfig::fermi(),
        SuiteOptions {
            instrumented: true,
            grid_scale: 0.5 * args.scale.min(1.0),
            lud_iterations: lud_iters,
        },
    )
}

/// Run the §4.4 case study: LUD paired with every other benchmark, under
/// FCFS and each policy, with solo baselines for ANTT/STP.
pub fn multiprog_matrix(suite: &Suite, policies: &[Policy], args: &RunArgs) -> MultiprogMatrix {
    let cfg = suite.config();
    // The multiprog horizon is a generous cutoff, not a measurement
    // window, so `--scale` shrinks the instruction budget instead.
    let mcfg = MultiprogConfig::paper_default()
        .horizon_us(2_000_000.0)
        .constraint_us(30.0)
        .seed(args.seed)
        .estimator(args.estimator)
        .budget_insts((2_000_000.0 * args.scale) as u64);
    let solo_horizon = cfg.us_to_cycles(200_000.0);
    let lud = suite.benchmark("LUD").expect("suite contains LUD");
    let partners: Vec<_> = suite
        .benchmarks()
        .iter()
        .filter(|b| b.name() != "LUD")
        .collect();
    // One scheme per column: FCFS first, then each preemption policy.
    let schemes = 1 + policies.len();
    let progress = Progress::new(
        "multiprog matrix",
        1 + partners.len() + partners.len() * schemes,
    );

    // Phase 1: solo baselines (LUD, then each partner) — all independent.
    let solo_tasks: Vec<_> = std::iter::once(&lud)
        .chain(partners.iter())
        .map(|&bench| {
            let progress = &progress;
            move || {
                let r = run_solo(cfg, bench, Some(mcfg.budget_insts), solo_horizon, args.seed);
                progress.cell_done(&format!("{} solo", bench.name()));
                r
            }
        })
        .collect();
    let mut solos = pool::run_tasks(args.jobs, solo_tasks).into_iter();
    let lud_solo = solos.next().expect("LUD solo baseline ran");
    let partner_solos: Vec<_> = solos.collect();

    // Phase 2: every (partner, scheme) pair run — also independent; the
    // ANTT/STP reduction against the solos happens serially afterwards.
    let pair_tasks: Vec<_> = partners
        .iter()
        .flat_map(|&other| {
            let (mcfg, progress) = (&mcfg, &progress);
            (0..schemes).map(move |s| {
                move || {
                    let (label, out) = if s == 0 {
                        ("FCFS".to_string(), run_fcfs(cfg, lud, other, mcfg))
                    } else {
                        let p = policies[s - 1];
                        (p.to_string(), run_pair(cfg, lud, other, p, mcfg))
                    };
                    progress.cell_done(&format!("LUD/{} {label}", other.name()));
                    out
                }
            })
        })
        .collect();
    let mut outcomes = pool::run_tasks(args.jobs, pair_tasks).into_iter();

    let mut rows = Vec::new();
    for (other, other_solo) in partners.iter().zip(&partner_solos) {
        let singles = [lud_solo.cycles as f64, other_solo.cycles as f64];
        let metrics = |out: &chimera::runner::multiprog::PairOutcome| {
            let multis = [
                out.jobs[0]
                    .t_multi
                    .unwrap_or(cfg.us_to_cycles(mcfg.common.horizon_us)) as f64,
                out.jobs[1]
                    .t_multi
                    .unwrap_or(cfg.us_to_cycles(mcfg.common.horizon_us)) as f64,
            ];
            let pairs = [(multis[0], singles[0]), (multis[1], singles[1])];
            PairMetrics {
                other: other.name().to_string(),
                antt: antt(&pairs),
                stp: stp(&pairs),
                preemptions: out.preemptions,
            }
        };
        let fcfs = metrics(&outcomes.next().expect("FCFS outcome for every partner"));
        let per_policy: Vec<PairMetrics> = outcomes
            .by_ref()
            .take(policies.len())
            .map(|out| metrics(&out))
            .collect();
        rows.push((fcfs, per_policy));
    }
    progress.finish(args.jobs);
    MultiprogMatrix {
        policies: policies.to_vec(),
        rows,
    }
}

/// Default horizon for open-loop serving experiments (µs) before `--scale`.
pub const SERVE_HORIZON_US: f64 = 40_000.0;

/// Sweep offered load through saturation: run the serving front-end once
/// per `factor`, with Poisson arrivals at `factor ×` the workload's
/// analytic saturation rate. Each cell is a pure function of its inputs, so
/// the sweep parallelises across `--jobs` with byte-identical results.
pub fn serve_sweep(
    cfg: &GpuConfig,
    wl: &ServeWorkload,
    base: &ServeConfig,
    factors: &[f64],
    args: &RunArgs,
) -> Vec<(f64, ServeResult)> {
    let progress = Progress::new("serve sweep", factors.len());
    let sat = wl.saturation_per_ms();
    let tasks: Vec<_> = factors
        .iter()
        .map(|&f| {
            let (progress, base) = (&progress, base);
            move || {
                let scfg = base.clone().arrivals(ArrivalProcess::poisson(f * sat));
                let r = run_serve(cfg, wl, &scfg);
                progress.cell_done(&format!("load {f:.2}x"));
                r
            }
        })
        .collect();
    let results = pool::run_tasks(args.jobs, tasks);
    progress.finish(args.jobs);
    factors.iter().copied().zip(results).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_matrix_shape() {
        let suite = Suite::standard();
        let args = RunArgs {
            scale: 0.08,
            seed: 42,
            jobs: 2,
            ..RunArgs::default()
        };
        // Two benchmarks only would be nicer, but the matrix API runs the
        // full suite; a very small scale keeps this test quick.
        let m = periodic_matrix(&suite, &[Policy::Drain], 15.0, &args, false);
        assert_eq!(m.rows.len(), 14);
        assert!(m.rows.iter().all(|(_, r)| r.len() == 1));
    }

    #[test]
    fn periodic_matrix_is_deterministic_across_jobs() {
        // The whole point of the pool: `--jobs 4` must produce exactly the
        // results of `--jobs 1`. PeriodicResult has no PartialEq, so compare
        // the full Debug rendering — any numeric drift would show up there.
        let suite = Suite::standard();
        let serial = RunArgs {
            scale: 0.05,
            seed: 7,
            jobs: 1,
            ..RunArgs::default()
        };
        let parallel = RunArgs {
            jobs: 4,
            ..serial.clone()
        };
        let policies = [Policy::Switch, Policy::chimera_us(15.0)];
        let a = periodic_matrix(&suite, &policies, 15.0, &serial, false);
        let b = periodic_matrix(&suite, &policies, 15.0, &parallel, false);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn online_estimator_matrix_is_deterministic_across_jobs() {
        // The online estimator feeds block completions back into the cost
        // model mid-run; its results must still be a pure function of the
        // inputs — byte-identical for any `--jobs`.
        let suite = Suite::standard();
        let serial = RunArgs {
            scale: 0.05,
            seed: 7,
            jobs: 1,
            estimator: chimera::EstimatorConfig::online(0.95),
            ..RunArgs::default()
        };
        let parallel = RunArgs {
            jobs: 4,
            ..serial.clone()
        };
        let policies = [Policy::chimera_us(15.0)];
        let a = periodic_matrix(&suite, &policies, 15.0, &serial, false);
        let b = periodic_matrix(&suite, &policies, 15.0, &parallel, false);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn write_observability_emits_valid_files() {
        let suite = Suite::standard();
        let dir = std::env::temp_dir();
        let trace = dir.join(format!("chimera-obs-test-{}.json", std::process::id()));
        let events = dir.join(format!("chimera-obs-test-{}.jsonl", std::process::id()));
        let args = RunArgs {
            scale: 0.15,
            trace: Some(trace.to_string_lossy().into_owned()),
            events: Some(events.to_string_lossy().into_owned()),
            ..RunArgs::default()
        };
        write_observability(&args, &suite, 15.0);
        let json = std::fs::read_to_string(&trace).unwrap();
        let summary = gpu_sim::trace::validate_chrome_trace(&json).expect("valid Chrome trace");
        assert!(summary.spans > 0, "traced run must record block residency");
        let lines = std::fs::read_to_string(&events).unwrap();
        assert!(lines.lines().count() > 0);
        assert!(lines.lines().all(|l| l.starts_with("{\"kind\":\"")));
        std::fs::remove_file(&trace).ok();
        std::fs::remove_file(&events).ok();
    }

    #[test]
    fn write_observability_without_sinks_is_a_no_op() {
        // Must not run anything or write anywhere when both sinks are unset.
        write_observability(&RunArgs::default(), &Suite::standard(), 15.0);
    }

    #[test]
    fn serve_sweep_is_deterministic_across_jobs() {
        // The serve acceptance bar: `--jobs 4` must reproduce `--jobs 1`
        // byte for byte, including the overloaded cell.
        let cfg = GpuConfig::fermi();
        let wl = ServeWorkload::standard(&cfg);
        let base = ServeConfig::paper_default().horizon_us(2_000.0).seed(7);
        let factors = [0.5, 2.0];
        let serial = RunArgs {
            jobs: 1,
            ..RunArgs::default()
        };
        let parallel = RunArgs {
            jobs: 4,
            ..RunArgs::default()
        };
        let a = serve_sweep(&cfg, &wl, &base, &factors, &serial);
        let b = serve_sweep(&cfg, &wl, &base, &factors, &parallel);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn multiprog_suite_shrinks_lud() {
        let args = RunArgs {
            scale: 0.5,
            seed: 42,
            jobs: 1,
            ..RunArgs::default()
        };
        let s = multiprog_suite(&args);
        let lud = s.require("LUD");
        assert!(lud.launches().len() < 40);
    }
}
