//! Shared experiment orchestration for the reproduction binaries.

use crate::args::RunArgs;
use chimera::metrics::{antt, stp};
use chimera::policy::Policy;
use chimera::runner::multiprog::{run_fcfs, run_pair, MultiprogConfig};
use chimera::runner::periodic::{run_periodic, PeriodicConfig, PeriodicResult};
use chimera::runner::solo::run_solo;
use gpu_sim::GpuConfig;
use workloads::{Suite, SuiteOptions};

/// Default horizon for periodic experiments (µs) before `--scale`.
pub const PERIODIC_HORIZON_US: f64 = 16_000.0;

/// Results of running every benchmark under a set of policies.
#[derive(Debug)]
pub struct PeriodicMatrix {
    /// Policy lineup, in column order.
    pub policies: Vec<Policy>,
    /// One row per benchmark: `(name, one result per policy)`.
    pub rows: Vec<(String, Vec<PeriodicResult>)>,
}

/// Run the §4.1 periodic scenario for every benchmark under each policy.
pub fn periodic_matrix(
    suite: &Suite,
    policies: &[Policy],
    constraint_us: f64,
    args: &RunArgs,
    strict: bool,
) -> PeriodicMatrix {
    let cfg = suite.config();
    let pcfg = PeriodicConfig {
        constraint_us,
        horizon_us: PERIODIC_HORIZON_US * args.scale,
        seed: args.seed,
        strict_idem: strict,
        ..PeriodicConfig::paper_default(cfg)
    };
    let mut rows = Vec::new();
    for bench in suite.benchmarks() {
        eprint!("  {} ...", bench.name());
        let results: Vec<PeriodicResult> = policies
            .iter()
            .map(|&p| run_periodic(cfg, bench, p, &pcfg))
            .collect();
        eprintln!(" done");
        rows.push((bench.name().to_string(), results));
    }
    PeriodicMatrix {
        policies: policies.to_vec(),
        rows,
    }
}

/// Oracle (zero-cost preemption) baselines per benchmark, for throughput
/// overhead (§4.1 "effective throughput").
pub fn periodic_oracle(suite: &Suite, args: &RunArgs) -> Vec<(String, PeriodicResult)> {
    let m = periodic_matrix(suite, &[Policy::Oracle], 15.0, args, false);
    m.rows
        .into_iter()
        .map(|(name, mut rs)| (name, rs.remove(0)))
        .collect()
}

/// Metrics of one pairwise multiprogrammed workload under one scheme.
#[derive(Debug, Clone)]
pub struct PairMetrics {
    /// The partner benchmark (LUD is always the first job).
    pub other: String,
    /// ANTT of the pair (lower is better).
    pub antt: f64,
    /// STP of the pair (higher is better).
    pub stp: f64,
    /// SM preemptions performed.
    pub preemptions: usize,
}

/// All §4.4 pair results: FCFS baseline plus each policy.
#[derive(Debug)]
pub struct MultiprogMatrix {
    /// Policy lineup (columns after FCFS).
    pub policies: Vec<Policy>,
    /// One row per partner benchmark: `(FCFS, per-policy)`.
    pub rows: Vec<(PairMetrics, Vec<PairMetrics>)>,
}

/// The suite variant used for §4.4 (smaller grids, fewer LUD iterations) so
/// the FCFS baseline — which serialises kernels — stays simulable.
pub fn multiprog_suite(args: &RunArgs) -> Suite {
    let lud_iters = ((12.0 * args.scale.min(1.0)).round() as u32).max(5);
    Suite::with_options(
        GpuConfig::fermi(),
        SuiteOptions {
            instrumented: true,
            grid_scale: 0.5 * args.scale.min(1.0),
            lud_iterations: lud_iters,
        },
    )
}

/// Run the §4.4 case study: LUD paired with every other benchmark, under
/// FCFS and each policy, with solo baselines for ANTT/STP.
pub fn multiprog_matrix(suite: &Suite, policies: &[Policy], args: &RunArgs) -> MultiprogMatrix {
    let cfg = suite.config();
    let mcfg = MultiprogConfig {
        budget_insts: (2_000_000.0 * args.scale) as u64,
        constraint_us: 30.0,
        horizon_us: 2_000_000.0,
        seed: args.seed,
        ..MultiprogConfig::paper_default()
    };
    let solo_horizon = cfg.us_to_cycles(200_000.0);
    let lud = suite.benchmark("LUD").expect("suite contains LUD");
    let lud_solo = run_solo(cfg, lud, Some(mcfg.budget_insts), solo_horizon, args.seed);
    let mut rows = Vec::new();
    for other in suite.benchmarks() {
        if other.name() == "LUD" {
            continue;
        }
        eprint!("  LUD/{} ...", other.name());
        let other_solo = run_solo(cfg, other, Some(mcfg.budget_insts), solo_horizon, args.seed);
        let singles = [lud_solo.cycles as f64, other_solo.cycles as f64];
        let metrics = |out: &chimera::runner::multiprog::PairOutcome| {
            let multis = [
                out.jobs[0]
                    .t_multi
                    .unwrap_or(cfg.us_to_cycles(mcfg.horizon_us)) as f64,
                out.jobs[1]
                    .t_multi
                    .unwrap_or(cfg.us_to_cycles(mcfg.horizon_us)) as f64,
            ];
            let pairs = [(multis[0], singles[0]), (multis[1], singles[1])];
            PairMetrics {
                other: other.name().to_string(),
                antt: antt(&pairs),
                stp: stp(&pairs),
                preemptions: out.preemptions,
            }
        };
        let fcfs = metrics(&run_fcfs(cfg, lud, other, &mcfg));
        let per_policy: Vec<PairMetrics> = policies
            .iter()
            .map(|&p| metrics(&run_pair(cfg, lud, other, p, &mcfg)))
            .collect();
        eprintln!(" done");
        rows.push((fcfs, per_policy));
    }
    MultiprogMatrix {
        policies: policies.to_vec(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_matrix_shape() {
        let suite = Suite::standard();
        let args = RunArgs {
            scale: 0.08,
            seed: 42,
        };
        // Two benchmarks only would be nicer, but the matrix API runs the
        // full suite; a very small scale keeps this test quick.
        let m = periodic_matrix(&suite, &[Policy::Drain], 15.0, &args, false);
        assert_eq!(m.rows.len(), 14);
        assert!(m.rows.iter().all(|(_, r)| r.len() == 1));
    }

    #[test]
    fn multiprog_suite_shrinks_lud() {
        let args = RunArgs {
            scale: 0.5,
            seed: 42,
        };
        let s = multiprog_suite(&args);
        let lud = s.benchmark("LUD").unwrap();
        assert!(lud.launches().len() < 40);
    }
}
