//! Shared harness code for the figure/table reproduction binaries.
//!
//! Every binary regenerates one table or figure of the paper and prints the
//! same rows/series the paper reports, alongside the paper's published values
//! where available. Absolute numbers differ (the substrate is a simulator,
//! not the authors' testbed); the *shapes* — who wins, by what factor, where
//! crossovers fall — are the reproduction target. See EXPERIMENTS.md.

pub mod args;
pub mod idem_report;
pub mod pool;
pub mod progress;
pub mod report;
pub mod scenarios;

pub use args::RunArgs;
pub use report::Table;
