//! Plain-text table rendering for the reproduction binaries.

/// A simple left-padded text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row/header length mismatch"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for i in 0..ncols {
                if i > 0 {
                    out.push_str("  ");
                }
                let c = &cells[i];
                out.push_str(c);
                for _ in c.len()..widths[i] {
                    out.push(' ');
                }
            }
            out.push('\n');
        };
        line(&self.headers, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "2".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a      "));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn rejects_bad_row() {
        Table::new(&["a", "b"]).row(vec!["x".into()]);
    }

    #[test]
    fn float_formats() {
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(f2(1.267), "1.27");
        assert_eq!(pct(56.04), "56.0%");
    }
}
