//! Thread-safe progress reporting for long experiment runs.
//!
//! The old harness printed `eprint!("  {} ...", name)` before each serial
//! cell, which interleaves uselessly once cells run concurrently and says
//! nothing about overall progress. This reporter prints one complete line
//! per finished cell (a single `eprintln!` call, so lines never shear even
//! across threads) plus a final wall-clock/job-count footer. Everything
//! goes to stderr: stdout carries only the tables, which must stay
//! byte-identical across `--jobs` settings.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Progress over a fixed number of cells.
#[derive(Debug)]
pub struct Progress {
    what: String,
    total: usize,
    done: AtomicUsize,
    started: Instant,
}

impl Progress {
    /// Start tracking `total` cells of an experiment called `what`.
    pub fn new(what: &str, total: usize) -> Self {
        eprintln!("{what}: {total} cells queued");
        Progress {
            what: what.to_string(),
            total,
            done: AtomicUsize::new(0),
            started: Instant::now(),
        }
    }

    /// Record one finished cell and print its completion line.
    pub fn cell_done(&self, label: &str) {
        let k = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        eprintln!(
            "  [{k:>3}/{total}] {label} done ({elapsed:.1}s elapsed)",
            total = self.total,
            elapsed = self.started.elapsed().as_secs_f64(),
        );
    }

    /// Print the run footer: cells completed, worker count and wall-clock.
    pub fn finish(&self, jobs: usize) {
        eprintln!(
            "{}: {} cells on {} worker thread{} in {:.2}s wall-clock",
            self.what,
            self.done.load(Ordering::Relaxed),
            jobs,
            if jobs == 1 { "" } else { "s" },
            self.started.elapsed().as_secs_f64(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_cells_across_threads() {
        let p = Progress::new("test", 20);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..5 {
                        p.cell_done("cell");
                    }
                });
            }
        });
        assert_eq!(p.done.load(Ordering::Relaxed), 20);
        p.finish(4);
    }
}
