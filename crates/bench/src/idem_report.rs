//! Rendering of the Table 2 idempotence column as *derived* by the `idem`
//! dataflow analysis, with per-kernel breaking sites and provenance.
//!
//! Shared between the `idem-report` binary (which regenerates
//! `results/table2_idem.txt`) and the golden-file test that pins the
//! checked-in capture — the analysis result is a pure function of the suite,
//! so the file must reproduce bit-for-bit.

use crate::report::f2;
use crate::Table;
use workloads::{build_program, Suite};

/// Render the full idempotence report for a suite.
///
/// One row per Table 2 kernel: the declared access pattern, the derived
/// classification, the idempotent fraction of the block (how long the
/// *relaxed* condition keeps it flushable), and each breaking site with the
/// read it clobbers. The final lines restate the paper's §2.3 split.
pub fn render(suite: &Suite) -> String {
    let cfg = suite.config();
    let mut out = String::new();
    out.push_str("Table 2 idempotence column, derived by dataflow analysis\n");
    out.push_str("(sites name the earliest read each overwrite clobbers)\n\n");
    let mut t = Table::new(&[
        "kernel",
        "access pattern",
        "derived",
        "idem frac",
        "insts to 1st site",
        "sites",
    ]);
    let mut idem_count = 0;
    for spec in suite.specs() {
        let program = build_program(cfg, spec);
        let report = idem::analyze(&program);
        if report.strict_idempotent {
            idem_count += 1;
        }
        let sites = if report.sites.is_empty() {
            "-".to_string()
        } else {
            report
                .sites
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        };
        t.row(vec![
            spec.label(),
            spec.access.to_string(),
            if report.strict_idempotent {
                "Yes".into()
            } else {
                "No".into()
            },
            f2(report.idempotent_fraction),
            format!("{}/{}", report.insts_before_first_site, report.total_insts),
            sites,
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\nderived split: {idem_count}/{} idempotent (paper \u{a7}2.3: 12/27)\n",
        suite.specs().len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_split_is_twelve_of_twenty_seven() {
        let s = render(&Suite::standard());
        assert!(s.contains("derived split: 12/27 idempotent"), "{s}");
    }

    #[test]
    fn report_names_provenance_for_in_place_kernels() {
        let s = render(&Suite::standard());
        assert!(s.contains("overwrites read of seg 0"), "{s}");
    }

    #[test]
    fn golden_file_matches_render() {
        // Regenerate with:
        //   cargo run --release -p bench --bin idem-report > results/table2_idem.txt
        let golden = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/table2_idem.txt");
        let want = std::fs::read_to_string(golden)
            .expect("results/table2_idem.txt is checked in; regenerate with the idem-report bin");
        assert_eq!(
            render(&Suite::standard()),
            want,
            "idem-report drifted from results/table2_idem.txt; \
             regenerate it if the change is intended"
        );
    }
}
