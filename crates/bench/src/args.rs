//! Minimal CLI argument handling shared by the figure binaries.

use crate::pool;
use chimera::runner::cluster::Placement;
use chimera::{EstimatorConfig, EstimatorMode, RunCommon};

/// Common knobs: `--scale <f64>` (shrinks horizons/budgets for quick runs),
/// `--seed <u64>`, `--jobs <usize>` (worker threads for the experiment
/// matrices; results are byte-identical for every value), `--par-shards
/// <usize>` (worker threads *inside* each simulated run — the engine's
/// parallel execution mode, also byte-identical for every value; see
/// `PARALLELISM.md`), plus the observability sinks `--trace <path>`
/// (Chrome-trace JSON of one representative traced run, openable in
/// `chrome://tracing`) and `--events <path>` (the same run's raw event log
/// as JSON lines). See `OBSERVABILITY.md` at the repository root for the
/// schema.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Scale factor on horizons and budgets (1.0 = paper-shaped defaults).
    pub scale: f64,
    /// Determinism seed.
    pub seed: u64,
    /// Worker threads for experiment matrices. Defaults to the machine's
    /// available parallelism; `1` runs every cell inline on the caller's
    /// thread. Output tables are identical either way.
    pub jobs: usize,
    /// SM shards for the engine's intra-run parallel mode
    /// ([`gpu_sim::ExecMode::Parallel`]). `0` (the default) keeps each run
    /// on the serial event calendar. Orthogonal to `jobs`: `jobs`
    /// parallelises *across* experiment cells, `par_shards` *within* one
    /// simulated run. Output is byte-identical for every value.
    pub par_shards: usize,
    /// Write a Chrome-trace JSON file of a representative traced run here.
    /// `None` (the default) keeps tracing disabled — zero cost.
    pub trace: Option<String>,
    /// Write the raw structured event log (JSON lines) here. `None` (the
    /// default) keeps the log disabled.
    pub events: Option<String>,
    /// Re-run the experiment's periodic slice with the dynamic
    /// [flush sanitizer](gpu_sim::FlushSanitizer) enabled and fail the
    /// process on any unsafe flush or static/dynamic disagreement. The
    /// sanitized pass is separate from the figure's own cells, so stdout
    /// stays byte-identical; the verdict goes to stderr.
    pub sanitize: bool,
    /// Run every cell with the [shard-race sanitizer](gpu_sim::RaceSanitizer)
    /// enabled (`--race-check`): any access to shared engine state during
    /// the parallel engine's pure Phase A that is not routed through the
    /// serial replay fails the process with a full violation report. The
    /// sanitizer never perturbs simulation output, so stdout stays
    /// byte-identical; it is zero-cost unless `--par-shards` puts the
    /// engine in parallel mode.
    pub race_check: bool,
    /// Drain/flush cost estimator: `--estimator static` (paper §4.1 bound,
    /// the default) or `--estimator online` (live per-kernel quantile
    /// tracking), with `--risk-quantile <q>` picking the online risk level.
    pub estimator: EstimatorConfig,
    /// Number of independent GPU devices behind the cluster front-end
    /// (`--devices <n>`, serve/multiprog binaries). `1` (the default)
    /// keeps the single-device paper-shaped output byte-identical; higher
    /// values append multi-device STP/ANTT/imbalance tables.
    pub devices: usize,
    /// Cluster placement policy (`--placement rr|least-loaded|tenant`),
    /// used only when `devices > 1`.
    pub placement: Placement,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            scale: 1.0,
            seed: 42,
            jobs: pool::default_jobs(),
            par_shards: 0,
            trace: None,
            events: None,
            sanitize: false,
            race_check: false,
            estimator: EstimatorConfig::default(),
            devices: 1,
            placement: Placement::RoundRobin,
        }
    }
}

impl RunArgs {
    /// Parse from `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// The shared runner knobs these args select, with the paper-shaped
    /// `horizon_us` scaled by `--scale` and the latency constraint taken
    /// verbatim. `sanitize` stays off here: the `--sanitize` flag drives a
    /// *separate* verification pass so stdout stays byte-identical.
    /// `race_check` *does* thread through: the race sanitizer never changes
    /// simulation output (it only observes), so the run itself carries it.
    pub fn common(&self, horizon_us: f64, constraint_us: f64) -> RunCommon {
        RunCommon::new(horizon_us * self.scale, constraint_us)
            .seed(self.seed)
            .estimator(self.estimator)
            .par_shards(self.par_shards)
            .race_check(self.race_check)
    }

    /// Parse from an iterator (testable).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    let v = it.next().expect("--scale needs a value");
                    out.scale = v.parse().expect("--scale must be a number");
                    assert!(out.scale > 0.0, "--scale must be positive");
                }
                "--seed" => {
                    let v = it.next().expect("--seed needs a value");
                    out.seed = v.parse().expect("--seed must be an integer");
                }
                "--jobs" => {
                    let v = it.next().expect("--jobs needs a value");
                    out.jobs = v.parse().expect("--jobs must be a positive integer");
                    assert!(out.jobs >= 1, "--jobs must be at least 1");
                }
                "--par-shards" => {
                    let v = it.next().expect("--par-shards needs a value");
                    out.par_shards = v
                        .parse()
                        .expect("--par-shards must be a non-negative integer");
                }
                "--trace" => {
                    out.trace = Some(it.next().expect("--trace needs a path"));
                }
                "--events" => {
                    out.events = Some(it.next().expect("--events needs a path"));
                }
                "--sanitize" => {
                    out.sanitize = true;
                }
                "--race-check" => {
                    out.race_check = true;
                }
                "--estimator" => {
                    let v = it.next().expect("--estimator needs a value");
                    out.estimator.mode = v
                        .parse::<EstimatorMode>()
                        .expect("--estimator must be `static` or `online`");
                }
                "--risk-quantile" => {
                    let v = it.next().expect("--risk-quantile needs a value");
                    let q: f64 = v.parse().expect("--risk-quantile must be a number");
                    assert!(q > 0.0 && q <= 1.0, "--risk-quantile must be in (0, 1]");
                    out.estimator.risk_quantile = q;
                }
                "--devices" => {
                    let v = it.next().expect("--devices needs a value");
                    out.devices = v.parse().expect("--devices must be a positive integer");
                    assert!(out.devices >= 1, "--devices must be at least 1");
                }
                "--placement" => {
                    let v = it.next().expect("--placement needs a value");
                    out.placement = Placement::parse(&v).unwrap_or_else(|| {
                        panic!("--placement must be `rr`, `least-loaded` or `tenant`, got {v:?}")
                    });
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--scale <f>] [--seed <n>] [--jobs <n>] \
                         [--par-shards <n>] [--trace <path>] [--events <path>] \
                         [--sanitize] [--race-check] [--estimator static|online] \
                         [--risk-quantile <q>] [--devices <n>] \
                         [--placement rr|least-loaded|tenant]"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown argument: {other}"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let a = RunArgs::parse(s(&[]));
        assert!((a.scale - 1.0).abs() < 1e-12);
        assert_eq!(a.seed, 42);
        assert!(a.jobs >= 1, "default jobs follows available parallelism");
        assert_eq!(a.jobs, pool::default_jobs());
    }

    #[test]
    fn parses_scale_and_seed() {
        let a = RunArgs::parse(s(&["--scale", "0.25", "--seed", "7"]));
        assert!((a.scale - 0.25).abs() < 1e-12);
        assert_eq!(a.seed, 7);
    }

    #[test]
    fn parses_jobs() {
        let a = RunArgs::parse(s(&["--jobs", "8"]));
        assert_eq!(a.jobs, 8);
        let a = RunArgs::parse(s(&["--jobs", "1", "--scale", "0.5"]));
        assert_eq!(a.jobs, 1);
    }

    #[test]
    #[should_panic(expected = "--jobs must be at least 1")]
    fn rejects_zero_jobs() {
        RunArgs::parse(s(&["--jobs", "0"]));
    }

    #[test]
    fn parses_par_shards() {
        let a = RunArgs::parse(s(&[]));
        assert_eq!(a.par_shards, 0, "serial engine by default");
        let a = RunArgs::parse(s(&["--par-shards", "4"]));
        assert_eq!(a.par_shards, 4);
        let c = a.common(1_000.0, 15.0);
        assert_eq!(c.par_shards, 4);
        assert_eq!(c.exec_mode(), gpu_sim::ExecMode::Parallel { shards: 4 });
    }

    #[test]
    fn observability_sinks_default_off() {
        let a = RunArgs::parse(s(&[]));
        assert_eq!(a.trace, None);
        assert_eq!(a.events, None);
        assert!(!a.sanitize);
    }

    #[test]
    fn parses_sanitize_flag() {
        let a = RunArgs::parse(s(&["--sanitize", "--scale", "0.1"]));
        assert!(a.sanitize);
        assert!((a.scale - 0.1).abs() < 1e-12);
    }

    #[test]
    fn parses_race_check_flag_and_threads_it_through_common() {
        let a = RunArgs::parse(s(&[]));
        assert!(!a.race_check, "race sanitizer off by default");
        let a = RunArgs::parse(s(&["--race-check", "--par-shards", "2"]));
        assert!(a.race_check);
        let c = a.common(1_000.0, 15.0);
        assert!(
            c.race_check,
            "unlike --sanitize, --race-check rides the run itself"
        );
    }

    #[test]
    fn par_shards_zero_is_serial_and_oversized_counts_clamp() {
        // `--par-shards 0` (the default) keeps the serial event calendar.
        let a = RunArgs::parse(s(&["--par-shards", "0"]));
        let c = a.common(1_000.0, 15.0);
        assert_eq!(c.exec_mode(), gpu_sim::ExecMode::Event);
        // A shard count above the SM count is accepted at the CLI and
        // clamped to one shard per SM by `Engine::set_exec_mode` — the
        // documented resolution, not an error.
        let a = RunArgs::parse(s(&["--par-shards", "9999"]));
        let mut e = gpu_sim::Engine::with_seed(gpu_sim::GpuConfig::tiny(), a.seed);
        let n = e.config().num_sms;
        e.set_exec_mode(a.common(1_000.0, 15.0).exec_mode());
        assert_eq!(e.exec_mode(), gpu_sim::ExecMode::Parallel { shards: n });
    }

    #[test]
    fn parses_trace_and_events_paths() {
        let a = RunArgs::parse(s(&["--trace", "out.json", "--events", "ev.jsonl"]));
        assert_eq!(a.trace.as_deref(), Some("out.json"));
        assert_eq!(a.events.as_deref(), Some("ev.jsonl"));
    }

    #[test]
    #[should_panic(expected = "--trace needs a path")]
    fn trace_requires_a_path() {
        RunArgs::parse(s(&["--trace"]));
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn rejects_unknown() {
        RunArgs::parse(s(&["--wat"]));
    }

    #[test]
    fn common_applies_scale_seed_and_estimator() {
        let a = RunArgs::parse(s(&[
            "--scale",
            "0.5",
            "--seed",
            "9",
            "--estimator",
            "online",
        ]));
        let c = a.common(24_000.0, 15.0);
        assert!((c.horizon_us - 12_000.0).abs() < 1e-9);
        assert_eq!(c.seed, 9);
        assert_eq!(c.constraint_us, 15.0);
        assert_eq!(c.estimator.mode, EstimatorMode::Online);
        assert!(!c.sanitize, "--sanitize drives a separate pass");
    }

    #[test]
    fn estimator_defaults_to_static() {
        let a = RunArgs::parse(s(&[]));
        assert_eq!(a.estimator, EstimatorConfig::default());
        assert_eq!(a.estimator.mode, EstimatorMode::Static);
    }

    #[test]
    fn parses_estimator_and_risk_quantile() {
        let a = RunArgs::parse(s(&["--estimator", "online", "--risk-quantile", "0.9"]));
        assert_eq!(a.estimator.mode, EstimatorMode::Online);
        assert!((a.estimator.risk_quantile - 0.9).abs() < 1e-12);
        let a = RunArgs::parse(s(&["--estimator", "static"]));
        assert_eq!(a.estimator.mode, EstimatorMode::Static);
    }

    #[test]
    #[should_panic(expected = "--estimator must be `static` or `online`")]
    fn rejects_unknown_estimator() {
        RunArgs::parse(s(&["--estimator", "psychic"]));
    }

    #[test]
    #[should_panic(expected = "--risk-quantile must be in (0, 1]")]
    fn rejects_out_of_range_quantile() {
        RunArgs::parse(s(&["--risk-quantile", "1.5"]));
    }

    #[test]
    fn devices_default_to_single_gpu() {
        let a = RunArgs::parse(s(&[]));
        assert_eq!(a.devices, 1);
        assert_eq!(a.placement, Placement::RoundRobin);
    }

    #[test]
    fn parses_devices_and_placement() {
        let a = RunArgs::parse(s(&["--devices", "4", "--placement", "least-loaded"]));
        assert_eq!(a.devices, 4);
        assert_eq!(a.placement, Placement::LeastLoaded);
        let a = RunArgs::parse(s(&["--placement", "tenant"]));
        assert_eq!(a.placement, Placement::TenantAffine);
        let a = RunArgs::parse(s(&["--placement", "rr"]));
        assert_eq!(a.placement, Placement::RoundRobin);
    }

    #[test]
    #[should_panic(expected = "--devices must be at least 1")]
    fn rejects_zero_devices() {
        RunArgs::parse(s(&["--devices", "0"]));
    }

    #[test]
    #[should_panic(expected = "--placement must be")]
    fn rejects_unknown_placement() {
        RunArgs::parse(s(&["--placement", "psychic"]));
    }
}
