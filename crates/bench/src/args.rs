//! Minimal CLI argument handling shared by the figure binaries.

/// Common knobs: `--scale <f64>` (shrinks horizons/budgets for quick runs),
/// `--seed <u64>`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunArgs {
    /// Scale factor on horizons and budgets (1.0 = paper-shaped defaults).
    pub scale: f64,
    /// Determinism seed.
    pub seed: u64,
}

impl Default for RunArgs {
    fn default() -> Self {
        RunArgs {
            scale: 1.0,
            seed: 42,
        }
    }
}

impl RunArgs {
    /// Parse from `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse from an iterator (testable).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    let v = it.next().expect("--scale needs a value");
                    out.scale = v.parse().expect("--scale must be a number");
                    assert!(out.scale > 0.0, "--scale must be positive");
                }
                "--seed" => {
                    let v = it.next().expect("--seed needs a value");
                    out.seed = v.parse().expect("--seed must be an integer");
                }
                "--help" | "-h" => {
                    eprintln!("usage: [--scale <f>] [--seed <n>]");
                    std::process::exit(0);
                }
                other => panic!("unknown argument: {other}"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let a = RunArgs::parse(s(&[]));
        assert_eq!(
            a,
            RunArgs {
                scale: 1.0,
                seed: 42
            }
        );
    }

    #[test]
    fn parses_scale_and_seed() {
        let a = RunArgs::parse(s(&["--scale", "0.25", "--seed", "7"]));
        assert!((a.scale - 0.25).abs() < 1e-12);
        assert_eq!(a.seed, 7);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn rejects_unknown() {
        RunArgs::parse(s(&["--wat"]));
    }
}
