//! A dependency-free work-stealing thread pool for the experiment matrices.
//!
//! Every figure binary runs an embarrassingly parallel `(benchmark, policy)`
//! matrix whose cells are pure functions of their inputs — each cell builds
//! its own `Engine` from an explicit seed and shares no mutable state. This
//! module executes such a cell list on `jobs` scoped threads pulling from a
//! shared deque, and collects results **by cell index**, so the assembled
//! output is byte-identical to a serial run regardless of scheduling order
//! or thread count (`jobs = 1` executes inline on the caller's thread).
//!
//! Determinism contract: a task must depend only on its inputs (captured
//! state + its own derived seed), never on execution order, wall-clock time
//! or thread identity. All runner entry points in `chimera::runner` satisfy
//! this — `gpu_sim::Engine` is `Send` (compile-time-asserted in
//! `gpu-sim/src/engine.rs`) and each run constructs its own.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::Mutex;

/// The default worker count: one per available hardware thread.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run every task and return the results in task order.
///
/// With `jobs <= 1` (or fewer than two tasks) the tasks run inline, in
/// order, on the calling thread — exactly the historical serial behaviour.
/// Otherwise `min(jobs, tasks)` scoped worker threads repeatedly steal the
/// next pending task from a shared queue. Results land in a slot per task,
/// so the returned `Vec` is independent of completion order.
///
/// A panicking task propagates its panic to the caller once all workers
/// have been joined (via `std::thread::scope`).
pub fn run_tasks<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<T>
where
    F: FnOnce() -> T + Send,
    T: Send,
{
    let n = tasks.len();
    if jobs <= 1 || n <= 1 {
        return tasks.into_iter().map(|task| task()).collect();
    }
    let queue: Mutex<VecDeque<(usize, F)>> = Mutex::new(tasks.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(n) {
            scope.spawn(|| loop {
                // Take the lock only to steal; run the task unlocked.
                let stolen = queue.lock().expect("task queue poisoned").pop_front();
                match stolen {
                    Some((ix, task)) => {
                        let result = task();
                        *slots[ix].lock().expect("result slot poisoned") = Some(result);
                    }
                    None => break,
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every task ran to completion")
        })
        .collect()
}

/// Derive an independent per-cell seed from a base seed and the cell's
/// coordinates (splitmix64 over the packed coordinates).
///
/// Both the serial and the parallel path use this, so results do not depend
/// on `--jobs`. Distinct cells get decorrelated streams even when the base
/// seed is small and sequential.
pub fn derive_seed(base: u64, row: usize, col: usize) -> u64 {
    let mut z = base
        ^ (row as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (col as u64)
            .rotate_left(32)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_task_order_regardless_of_jobs() {
        for jobs in [1, 2, 4, 16] {
            let tasks: Vec<_> = (0..37usize).map(|i| move || i * i).collect();
            let out = run_tasks(jobs, tasks);
            assert_eq!(
                out,
                (0..37).map(|i| i * i).collect::<Vec<_>>(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn all_tasks_run_exactly_once() {
        let counter = AtomicUsize::new(0);
        let tasks: Vec<_> = (0..64)
            .map(|_| {
                let counter = &counter;
                move || counter.fetch_add(1, Ordering::Relaxed)
            })
            .collect();
        let mut out = run_tasks(8, tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
        out.sort_unstable();
        assert_eq!(
            out,
            (0..64).collect::<Vec<_>>(),
            "each increment observed once"
        );
    }

    #[test]
    fn zero_jobs_and_empty_task_lists_are_fine() {
        assert_eq!(run_tasks::<u32, fn() -> u32>(0, vec![]), vec![]);
        assert_eq!(run_tasks(0, vec![|| 7u32]), vec![7]);
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        assert_eq!(derive_seed(42, 3, 1), derive_seed(42, 3, 1));
        let mut seen = std::collections::HashSet::new();
        for row in 0..16 {
            for col in 0..8 {
                assert!(
                    seen.insert(derive_seed(42, row, col)),
                    "collision at {row},{col}"
                );
            }
        }
        assert_ne!(derive_seed(42, 0, 0), derive_seed(43, 0, 0));
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let result = std::panic::catch_unwind(|| {
            run_tasks(
                4,
                (0..8)
                    .map(|i| move || if i == 5 { panic!("boom") } else { i })
                    .collect(),
            )
        });
        assert!(result.is_err());
    }
}
