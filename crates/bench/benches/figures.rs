//! Criterion end-to-end benchmark: one shortened periodic experiment per
//! policy (the fig6/fig7 inner loop), so `cargo bench` exercises the whole
//! stack — workload build, scheduling, preemption, metrics.

use chimera::policy::Policy;
use chimera::runner::periodic::{run_periodic, PeriodicConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workloads::Suite;

fn bench_periodic(c: &mut Criterion) {
    let suite = Suite::standard();
    let cfg = suite.config().clone();
    let bench = suite.benchmark("LUD").expect("LUD in suite").clone();
    let mut group = c.benchmark_group("periodic_lud_2ms");
    group.sample_size(10);
    for policy in Policy::paper_lineup(15.0) {
        group.bench_with_input(BenchmarkId::from_parameter(policy), &policy, |b, &p| {
            b.iter(|| {
                let pcfg = PeriodicConfig::paper_default(&cfg).horizon_us(2_000.0);
                let r = run_periodic(&cfg, &bench, p, &pcfg);
                std::hint::black_box(r.useful_insts)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_periodic);
criterion_main!(benches);
