//! Criterion micro-benchmark: per-block cost estimation (§3.2).
//!
//! Chimera estimates costs on every preemption request; the estimate must be
//! negligible against microsecond-scale latencies.

use chimera::cost::{CostModel, KernelObs, TbProgress};
use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::GpuConfig;

fn bench_cost(c: &mut Criterion) {
    let cfg = GpuConfig::fermi();
    let model = CostModel::new(
        &cfg,
        24 * 1024,
        KernelObs {
            avg_tb_insts: Some(1200.0),
            avg_tb_cpi: Some(18.5),
            ..KernelObs::default()
        },
    );
    c.bench_function("estimate_one_block", |b| {
        b.iter(|| {
            let costs = model.estimate(
                std::hint::black_box(TbProgress {
                    executed_insts: 431,
                    flushable: true,
                }),
                8,
                990,
            );
            std::hint::black_box(costs)
        })
    });
    c.bench_function("estimate_full_sm", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for i in 0..8u64 {
                for cost in model.estimate(
                    TbProgress {
                        executed_insts: i * 137,
                        flushable: i % 3 != 0,
                    },
                    8,
                    7 * 137,
                ) {
                    total = total.wrapping_add(cost.overhead_insts);
                }
            }
            std::hint::black_box(total)
        })
    });
}

criterion_group!(benches, bench_cost);
criterion_main!(benches);
