//! Criterion micro-benchmark: Algorithm 1 scaling in SMs and blocks.
//!
//! The paper argues the selection is `O(N·T·logT + N·logN)` and negligible
//! against preemption latencies; this bench verifies the wall-clock claim.

use chimera::cost::KernelObs;
use chimera::select::{select_preemptions, SelectionRequest};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpu_sim::{GpuConfig, SmSnapshot, TbSnapshotInfo};

fn snapshots(n_sms: usize, blocks: u32) -> Vec<SmSnapshot> {
    (0..n_sms)
        .map(|sm| SmSnapshot {
            sm,
            kernel: None,
            blocks: (0..blocks)
                .map(|i| TbSnapshotInfo {
                    index: sm as u32 * blocks + i,
                    executed_insts: u64::from(i) * 137 % 1000,
                    elapsed_cycles: u64::from(i) * 137 * 16 % 16_000,
                    past_idem_point: i % 5 == 4,
                })
                .collect(),
        })
        .collect()
}

fn bench_selection(c: &mut Criterion) {
    let cfg = GpuConfig::fermi();
    let mut group = c.benchmark_group("algorithm1");
    for &(sms, blocks) in &[(15usize, 4u32), (15, 8), (30, 8), (60, 16)] {
        let snaps = snapshots(sms, blocks);
        let req = SelectionRequest {
            limit_cycles: cfg.us_to_cycles(15.0),
            num_preempts: sms / 2,
            ctx_bytes_per_tb: 24 * 1024,
            obs: KernelObs {
                avg_tb_insts: Some(1000.0),
                avg_tb_cpi: Some(16.0),
                ..KernelObs::default()
            },
            flush_allowed: true,
            estimator: Default::default(),
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{sms}sm_{blocks}tb")),
            &snaps,
            |b, snaps| b.iter(|| select_preemptions(&cfg, &req, std::hint::black_box(snaps))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
