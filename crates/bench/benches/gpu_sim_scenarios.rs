//! Tracked engine-throughput scenarios behind `BENCH_gpu_sim.json`.
//!
//! Eight scenarios span the engine's hot-path regimes — solo drain,
//! two-kernel multiprogramming, a preemption storm, a figure-style
//! workload slice built from the Table 1 suite, the online-estimator
//! feedback loop (P² quantile updates + Algorithm 1 against live
//! observations) layered on the engine, the open-loop serving front-end
//! driven through the full scheduler stack, its two-device cluster
//! variant stepped in lockstep (all on 15-SM GPUs), and a 30-SM
//! memory-resident sweep that stresses the per-tick calendar path.
//! Every scenario runs under all three execution modes (see
//! `gpu_sim::ExecMode` and `PARALLELISM.md`): the event calendar, the
//! legacy linear-scan reference, and the sharded parallel engine. The
//! harness asserts identical simulation results across all three and
//! records cycles-simulated-per-second for each, so the file doubles as a
//! perf trajectory and a coarse equivalence check.
//!
//! Environment knobs:
//! - `CHIMERA_BENCH_FAST=1` — CI smoke mode: shorter horizons, 2 samples.
//! - `CHIMERA_BENCH_ONLY=substr` — run only scenarios whose name contains
//!   `substr` (local iteration; the emitted JSON is then partial).
//! - `CHIMERA_BENCH_OUT=path` — where to write the JSON (defaults to
//!   `BENCH_gpu_sim.json` at the workspace root).
//! - `CHIMERA_BENCH_BASELINE=path` — compare against a checked-in baseline
//!   and exit non-zero when any scenario's event-mode throughput regressed
//!   by more than 2x (slack for machine-to-machine variance).
//! - `CHIMERA_BENCH_SHARDS=n` — shard count for the parallel-mode timing
//!   rows (defaults to the machine's available parallelism, capped at 8).

use std::io::Write as _;

use chimera::runner::cluster::{run_serve_cluster, ClusterServeConfig, Placement};
use chimera::runner::serve::{run_serve_on, ArrivalProcess, ServeConfig};
use chimera::select::{select_preemptions, SelectionRequest};
use chimera::{EstimatorConfig, GpuScheduler, ObsBank, PartitionPolicy};
use criterion::{BenchmarkId, Criterion, Throughput};
use gpu_sim::{
    Engine, Event, ExecMode, GpuConfig, KernelDesc, Program, Segment, SmPreemptPlan, Technique,
};
use workloads::{ServeWorkload, Suite};

/// 15-SM variant of the paper's GPU used by all scenarios.
fn gpu15() -> GpuConfig {
    GpuConfig {
        num_sms: 15,
        ..GpuConfig::fermi()
    }
}

fn synthetic(name: &str, compute: u32, mem: u32, grid: u32) -> KernelDesc {
    KernelDesc::builder(name)
        .grid_blocks(grid)
        .threads_per_block(128)
        .regs_per_thread(20)
        .program(Program::new(vec![
            Segment::load(mem),
            Segment::compute(compute),
            Segment::store(mem.max(1)),
        ]))
        .build()
        .expect("valid kernel")
}

/// Deterministic result fingerprint used to check event/scan equivalence.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    cycle: u64,
    issued: u64,
    bytes: u64,
}

fn fingerprint(e: &Engine) -> Outcome {
    let g = e.gpu_stats();
    Outcome {
        cycle: g.cycle,
        issued: g.total_issued_insts,
        bytes: g.mem_bytes_served,
    }
}

/// One flat compute-heavy kernel draining across all 15 SMs.
fn solo_drain(mode: ExecMode, horizon: u64) -> Outcome {
    let cfg = gpu15();
    let mut e = Engine::with_seed(cfg.clone(), 7);
    e.set_exec_mode(mode);
    let k = e.launch_kernel(synthetic("solo", 3000, 6, 4096));
    for sm in 0..cfg.num_sms {
        e.assign_sm(sm, Some(k));
    }
    e.run_until(horizon);
    fingerprint(&e)
}

/// A compute-bound and a memory-heavy kernel on a 10/5 SM partition.
fn multiprog(mode: ExecMode, horizon: u64) -> Outcome {
    let cfg = gpu15();
    let mut e = Engine::with_seed(cfg.clone(), 7);
    e.set_exec_mode(mode);
    let a = e.launch_kernel(synthetic("mp_compute", 2500, 4, 4096));
    let b = e.launch_kernel(synthetic("mp_memory", 300, 180, 2048));
    for sm in 0..10 {
        e.assign_sm(sm, Some(a));
    }
    for sm in 10..cfg.num_sms {
        e.assign_sm(sm, Some(b));
    }
    e.run_until(horizon);
    fingerprint(&e)
}

/// Five SMs ping-pong between two kernels via context-switch preemption
/// every 10k cycles — dispatch/preempt bookkeeping under stress.
fn preempt_storm(mode: ExecMode, horizon: u64) -> Outcome {
    let cfg = gpu15();
    let mut e = Engine::with_seed(cfg.clone(), 7);
    e.set_exec_mode(mode);
    let a = e.launch_kernel(synthetic("storm_a", 1500, 20, 4096));
    let b = e.launch_kernel(synthetic("storm_b", 1500, 20, 4096));
    for sm in 0..cfg.num_sms {
        e.assign_sm(sm, Some(a));
    }
    let mut owner_is_a = true;
    while e.cycle() < horizon {
        e.run_for(10_000.min(horizon - e.cycle()));
        let next = if owner_is_a { b } else { a };
        for sm in 0..5 {
            if e.sm_resident_count(sm) > 0 && !e.sm_is_preempting(sm) {
                let plan = SmPreemptPlan::uniform(e.sm_resident_indices(sm), Technique::Switch);
                e.preempt_sm(sm, &plan).expect("switch is always legal");
            }
            e.assign_sm(sm, Some(next));
        }
        owner_is_a = !owner_is_a;
    }
    fingerprint(&e)
}

/// A figure-style slice: two Table 1 suite benchmarks multiprogrammed on a
/// 10/5 split with kernel relaunch on finish and periodic switch
/// preemptions — the access pattern the fig6/fig7 runners generate, driven
/// through plain `run_until` windows.
fn figure_slice(mode: ExecMode, horizon: u64) -> Outcome {
    let cfg = gpu15();
    let suite = Suite::with_config(cfg.clone(), true);
    let desc_a = suite.benchmarks()[0].launches()[0].clone();
    let desc_b = suite.benchmarks()[1].launches()[0].clone();
    let mut e = Engine::with_seed(cfg.clone(), 7);
    e.set_exec_mode(mode);
    let mut a = e.launch_kernel(desc_a.clone());
    let mut b = e.launch_kernel(desc_b.clone());
    for sm in 0..10 {
        e.assign_sm(sm, Some(a));
    }
    for sm in 10..cfg.num_sms {
        e.assign_sm(sm, Some(b));
    }
    let mut windows = 0u64;
    while e.cycle() < horizon {
        e.run_for(50_000.min(horizon - e.cycle()));
        windows += 1;
        // Keep the machine loaded: relaunch a benchmark pass when it ends.
        if e.kernel_stats(a).finished {
            a = e.launch_kernel(desc_a.clone());
            for sm in 0..10 {
                e.assign_sm(sm, Some(a));
            }
        }
        if e.kernel_stats(b).finished {
            b = e.launch_kernel(desc_b.clone());
            for sm in 10..cfg.num_sms {
                e.assign_sm(sm, Some(b));
            }
        }
        // Every fourth window, switch two of A's SMs over to B and back.
        if windows.is_multiple_of(4) {
            for sm in 0..2 {
                if e.sm_resident_count(sm) > 0 && !e.sm_is_preempting(sm) {
                    let plan = SmPreemptPlan::uniform(e.sm_resident_indices(sm), Technique::Switch);
                    e.preempt_sm(sm, &plan).expect("switch is always legal");
                }
                e.assign_sm(sm, Some(b));
            }
        } else if windows % 4 == 1 {
            for sm in 0..2 {
                if e.sm_resident_count(sm) > 0 && !e.sm_is_preempting(sm) {
                    let plan = SmPreemptPlan::uniform(e.sm_resident_indices(sm), Technique::Switch);
                    e.preempt_sm(sm, &plan).expect("switch is always legal");
                }
                e.assign_sm(sm, Some(a));
            }
        }
    }
    fingerprint(&e)
}

/// The online-estimator hot path layered on the engine loop: every block
/// completion feeds the per-kernel P² quantile trackers, and each 5k-cycle
/// window runs Algorithm 1 against the live observations (the per-decision
/// work `--estimator online` adds to the periodic runner). The estimator
/// state is identical under both schedulers, so the event/scan equivalence
/// check still holds; the timing captures engine + estimator together.
fn estimator_online(mode: ExecMode, horizon: u64) -> Outcome {
    let cfg = gpu15();
    let mut e = Engine::with_seed(cfg.clone(), 7);
    e.set_exec_mode(mode);
    let k = e.launch_kernel(synthetic("est", 1200, 10, 8192));
    for sm in 0..cfg.num_sms {
        e.assign_sm(sm, Some(k));
    }
    let est = EstimatorConfig::online(0.95);
    let mut bank = ObsBank::with_estimator(est);
    while e.cycle() < horizon {
        let events = e.run_for(5_000.min(horizon - e.cycle()));
        for ev in events {
            if let Event::TbCompleted { insts, cycles, .. } = ev {
                bank.record_tb("est", insts, cycles);
            }
        }
        let req = SelectionRequest {
            limit_cycles: cfg.us_to_cycles(15.0),
            num_preempts: 4,
            ctx_bytes_per_tb: 24 * 1024,
            obs: bank.obs("est"),
            flush_allowed: true,
            estimator: est,
        };
        let snaps: Vec<_> = (0..4).map(|sm| e.sm_snapshot(sm)).collect();
        std::hint::black_box(select_preemptions(&cfg, &req, &snaps));
    }
    fingerprint(&e)
}

/// The open-loop serving front-end at 1.5x its analytic saturation rate:
/// arrival admission, weighted-fair dispatch, and Chimera preemptions all
/// driven through the public runner API on the full scheduler stack.
fn serve_open_loop(mode: ExecMode, horizon: u64) -> Outcome {
    let cfg = gpu15();
    let wl = ServeWorkload::standard(&cfg);
    let scfg = ServeConfig::paper_default()
        .horizon_us(cfg.cycles_to_us(horizon))
        .arrivals(ArrivalProcess::poisson(1.5 * wl.saturation_per_ms()));
    let mut gpu = GpuScheduler::builder(cfg.clone())
        .policy(scfg.effective_policy())
        .partition(PartitionPolicy::SmartEven)
        .seed(7)
        .scan_scheduler(mode == ExecMode::Scan)
        .par_shards(match mode {
            ExecMode::Parallel { shards } => shards,
            _ => 0,
        })
        .build();
    std::hint::black_box(run_serve_on(&mut gpu, &wl, &scfg));
    fingerprint(gpu.engine())
}

/// The cluster front-end over two devices with least-loaded placement at
/// 1.5x the *cluster* saturation rate: two full scheduler stacks stepped
/// in lockstep, plus the placement policy on the arrival path. Roughly
/// twice the simulated work of `serve_open_loop_15sm` per wall-second of
/// horizon, and the scenario that keeps the multi-device path on the perf
/// trajectory.
fn serve_open_loop_2dev(mode: ExecMode, horizon: u64) -> Outcome {
    let cfg = gpu15();
    let wl = ServeWorkload::standard(&cfg);
    let scfg = ServeConfig::paper_default()
        .horizon_us(cfg.cycles_to_us(horizon))
        .arrivals(ArrivalProcess::poisson(2.0 * 1.5 * wl.saturation_per_ms()))
        .seed(7);
    let mut ccfg = ClusterServeConfig::new(scfg, 2).placement(Placement::LeastLoaded);
    ccfg.exec_mode = Some(mode);
    let res = run_serve_cluster(&cfg, &wl, &ccfg);
    // No engine to fingerprint (the cluster owns its schedulers), so fold
    // the result counters into the equivalence fingerprint instead.
    Outcome {
        cycle: horizon,
        issued: res.completed + (res.violations << 32),
        bytes: res.admitted + (res.shed << 32),
    }
}

/// Thirty SMs saturated with warps whose loads almost always hit L1: the
/// one regime where the serial engines replay every load tick through the
/// full per-tick scheduler path (loads never batch), so the parallel
/// engine's epoch loop — which commits pure ticks in a tight per-SM loop
/// between barriers — is the intended winner. This is the scenario the
/// `speedup_par_vs_event` acceptance gate watches.
fn mem_resident_30sm(mode: ExecMode, horizon: u64) -> Outcome {
    let cfg = GpuConfig {
        num_sms: 30,
        l1_hit_fraction: 1.0,
        ..GpuConfig::fermi()
    };
    let mut e = Engine::with_seed(cfg.clone(), 7);
    e.set_exec_mode(mode);
    let k = e.launch_kernel(
        KernelDesc::builder("mem_resident")
            .grid_blocks(16_384)
            .threads_per_block(128)
            .regs_per_thread(20)
            .program(Program::new(vec![
                Segment::load(800),
                Segment::compute(100),
                Segment::load(800),
            ]))
            .build()
            .expect("valid kernel"),
    );
    for sm in 0..cfg.num_sms {
        e.assign_sm(sm, Some(k));
    }
    e.run_until(horizon);
    fingerprint(&e)
}

struct Scenario {
    name: &'static str,
    run: fn(ExecMode, u64) -> Outcome,
    /// Simulated-cycle horizon in full mode (fast mode divides by 10).
    full_horizon: u64,
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "solo_drain_15sm",
        run: solo_drain,
        full_horizon: 2_000_000,
    },
    Scenario {
        name: "multiprog_2k_15sm",
        run: multiprog,
        full_horizon: 2_000_000,
    },
    Scenario {
        name: "preempt_storm_15sm",
        run: preempt_storm,
        full_horizon: 1_000_000,
    },
    Scenario {
        name: "figure_slice_15sm",
        run: figure_slice,
        full_horizon: 2_000_000,
    },
    Scenario {
        name: "estimator_online_15sm",
        run: estimator_online,
        full_horizon: 2_000_000,
    },
    Scenario {
        name: "serve_open_loop_15sm",
        run: serve_open_loop,
        full_horizon: 2_000_000,
    },
    Scenario {
        name: "serve_open_loop_2dev",
        run: serve_open_loop_2dev,
        full_horizon: 1_000_000,
    },
    Scenario {
        name: "mem_resident_30sm",
        run: mem_resident_30sm,
        full_horizon: 1_000_000,
    },
];

struct Row {
    name: &'static str,
    cycles: u64,
    event_ns: u128,
    scan_ns: u128,
    par_ns: u128,
}

impl Row {
    fn cycles_per_sec(&self, ns: u128) -> f64 {
        if ns == 0 {
            0.0
        } else {
            self.cycles as f64 * 1e9 / ns as f64
        }
    }
}

/// Shard count for the parallel-mode timing rows: `CHIMERA_BENCH_SHARDS`
/// if set, else the machine's available parallelism capped at 8. The
/// differential checks also run at other shard counts — output is
/// byte-identical for every value, only the timing depends on this.
fn bench_shards() -> usize {
    if let Ok(v) = std::env::var("CHIMERA_BENCH_SHARDS") {
        let n: usize = v.parse().expect("CHIMERA_BENCH_SHARDS must be an integer");
        return n.max(1);
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8)
}

fn main() {
    let fast = std::env::var("CHIMERA_BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty());
    let samples = if fast { 2 } else { 5 };
    let only = std::env::var("CHIMERA_BENCH_ONLY").ok();
    let shards = bench_shards();
    let par = ExecMode::Parallel { shards };
    let mut c = Criterion::default();
    let mut rows = Vec::new();
    for s in SCENARIOS {
        if let Some(f) = &only {
            if !s.name.contains(f.as_str()) {
                continue;
            }
        }
        let horizon = if fast {
            s.full_horizon / 10
        } else {
            s.full_horizon
        };
        // Differential check before timing: all three execution modes (and
        // a second shard count, for shard-count independence) must agree.
        let event_out = (s.run)(ExecMode::Event, horizon);
        for mode in [
            ExecMode::Scan,
            par,
            ExecMode::Parallel {
                shards: if shards == 2 { 3 } else { 2 },
            },
        ] {
            let got = (s.run)(mode, horizon);
            assert_eq!(
                got, event_out,
                "{}: {mode:?} diverged from the event calendar",
                s.name
            );
        }
        let mut g = c.benchmark_group(s.name);
        g.sample_size(samples)
            .throughput(Throughput::Elements(horizon));
        g.bench_with_input(BenchmarkId::from_parameter("event"), &horizon, |b, &h| {
            b.iter(|| std::hint::black_box((s.run)(ExecMode::Event, h)))
        });
        g.bench_with_input(BenchmarkId::from_parameter("scan"), &horizon, |b, &h| {
            b.iter(|| std::hint::black_box((s.run)(ExecMode::Scan, h)))
        });
        g.bench_with_input(BenchmarkId::from_parameter("par"), &horizon, |b, &h| {
            b.iter(|| std::hint::black_box((s.run)(par, h)))
        });
        g.finish();
        let results = c.take_results();
        // Fastest sample, not the mean: background load only ever slows a
        // sample, so the minimum tracks the engine, not the machine.
        let min = |suffix: &str| {
            results
                .iter()
                .find(|r| r.id.ends_with(suffix))
                .map(|r| r.min_ns)
                .unwrap_or(0)
        };
        rows.push(Row {
            name: s.name,
            cycles: event_out.cycle.max(horizon),
            event_ns: min("/event"),
            scan_ns: min("/scan"),
            par_ns: min("/par"),
        });
    }
    let json = render_json(&rows, fast, shards);
    let out_path = std::env::var("CHIMERA_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_gpu_sim.json", env!("CARGO_MANIFEST_DIR")));
    let mut f = std::fs::File::create(&out_path).expect("create bench output");
    f.write_all(json.as_bytes()).expect("write bench output");
    println!("\nwrote {out_path}");
    if let Ok(baseline) = std::env::var("CHIMERA_BENCH_BASELINE") {
        check_regression(&rows, &baseline);
    }
}

fn render_json(rows: &[Row], fast: bool, shards: usize) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"chimera-bench-gpu-sim/v2\",\n");
    s.push_str(&format!(
        "  \"mode\": \"{}\",\n  \"par_shards\": {},\n  \"scenarios\": [\n",
        if fast { "fast" } else { "full" },
        shards
    ));
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\n      \"name\": \"{}\",\n      \"cycles\": {},\n      \
             \"wall_ns_event\": {},\n      \"wall_ns_scan\": {},\n      \
             \"wall_ns_par\": {},\n      \
             \"cycles_per_sec_event\": {:.0},\n      \"cycles_per_sec_scan\": {:.0},\n      \
             \"cycles_per_sec_par\": {:.0},\n      \
             \"speedup_vs_scan\": {:.2},\n      \"speedup_par_vs_event\": {:.2}\n    }}{}\n",
            r.name,
            r.cycles,
            r.event_ns,
            r.scan_ns,
            r.par_ns,
            r.cycles_per_sec(r.event_ns),
            r.cycles_per_sec(r.scan_ns),
            r.cycles_per_sec(r.par_ns),
            if r.event_ns == 0 {
                0.0
            } else {
                r.scan_ns as f64 / r.event_ns as f64
            },
            if r.par_ns == 0 {
                0.0
            } else {
                r.event_ns as f64 / r.par_ns as f64
            },
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extract `"cycles_per_sec_event"` for `name` from a baseline JSON file
/// written by this harness (field-order dependent, which we control).
fn baseline_rate(text: &str, name: &str) -> Option<f64> {
    let at = text.find(&format!("\"name\": \"{name}\""))?;
    let rest = &text[at..];
    let key = "\"cycles_per_sec_event\": ";
    let k = rest.find(key)? + key.len();
    let tail = &rest[k..];
    let end = tail.find([',', '\n', '}'])?;
    tail[..end].trim().parse().ok()
}

fn check_regression(rows: &[Row], baseline_path: &str) {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("no baseline at {baseline_path} ({e}); skipping regression gate");
            return;
        }
    };
    let mut failed = false;
    for r in rows {
        let Some(base) = baseline_rate(&text, r.name) else {
            eprintln!("{}: not in baseline; skipping", r.name);
            continue;
        };
        let cur = r.cycles_per_sec(r.event_ns);
        let ratio = if cur > 0.0 { base / cur } else { f64::INFINITY };
        println!(
            "{:<24} baseline {base:>14.0} cyc/s, current {cur:>14.0} cyc/s ({ratio:.2}x slower)",
            r.name
        );
        if ratio > 2.0 {
            eprintln!("{}: >2x regression vs baseline", r.name);
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
