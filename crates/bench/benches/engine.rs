//! Criterion micro-benchmark: simulator cycle-engine throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gpu_sim::{Engine, GpuConfig, KernelDesc, Program, Segment};

fn kernel(compute: u32, mem: u32) -> KernelDesc {
    KernelDesc::builder("bench")
        .grid_blocks(512)
        .threads_per_block(128)
        .regs_per_thread(20)
        .program(Program::new(vec![
            Segment::load(mem),
            Segment::compute(compute),
            Segment::store(mem.max(1)),
        ]))
        .build()
        .expect("valid kernel")
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for &(name, compute, mem) in &[("compute_bound", 2000u32, 4u32), ("memory_heavy", 400, 200)] {
        let horizon = 400_000u64;
        group.throughput(Throughput::Elements(horizon));
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(compute, mem),
            |b, &(cp, m)| {
                b.iter(|| {
                    let cfg = GpuConfig::fermi();
                    let mut e = Engine::new(cfg.clone());
                    let k = e.launch_kernel(kernel(cp, m));
                    for sm in 0..cfg.num_sms {
                        e.assign_sm(sm, Some(k));
                    }
                    e.run_until(horizon);
                    std::hint::black_box(e.gpu_stats().total_issued_insts)
                })
            },
        );
    }
    group.finish();
}

fn bench_preempt_roundtrip(c: &mut Criterion) {
    use gpu_sim::{SmPreemptPlan, Technique};
    c.bench_function("flush_preempt_roundtrip", |b| {
        b.iter(|| {
            let cfg = GpuConfig::fermi();
            let mut e = Engine::new(cfg.clone());
            let k = e.launch_kernel(kernel(5000, 2));
            e.assign_sm(0, Some(k));
            e.run_until(10_000);
            let plan = SmPreemptPlan::uniform(e.sm_resident_indices(0), Technique::Flush);
            let done = e.preempt_sm(0, &plan).expect("flushable");
            std::hint::black_box(done)
        })
    });
}

criterion_group!(benches, bench_engine, bench_preempt_roundtrip);
criterion_main!(benches);
