//! Execution tracing: sampled SM utilization and preemption timelines.
//!
//! The runner-level experiments report aggregates; this module records the
//! *shape* of an execution — which SMs were active/halted/preempting over
//! time and when preemptions started and ended — for debugging schedulers
//! and for the `timeline` example's ASCII rendering.

use crate::{Engine, SmMode};

/// The sampled state of one SM at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmSample {
    /// No resident blocks.
    Idle,
    /// Executing blocks.
    Busy {
        /// Resident block count at the sample.
        resident: u8,
    },
    /// Halted for a context save/restore.
    Halted,
    /// Mid-preemption.
    Preempting,
}

impl SmSample {
    /// One-character glyph for timeline rendering.
    pub fn glyph(&self) -> char {
        match self {
            SmSample::Idle => '.',
            SmSample::Busy { resident } => {
                char::from_digit(u32::from(*resident).min(9), 10).unwrap_or('9')
            }
            SmSample::Halted => 'H',
            SmSample::Preempting => 'P',
        }
    }
}

/// A sampled utilization timeline across all SMs.
#[derive(Debug, Clone, Default)]
pub struct UtilizationTrace {
    /// Sample interval in cycles.
    pub interval_cycles: u64,
    /// Sample instants (cycles).
    pub times: Vec<u64>,
    /// `samples[i][sm]` is the state of `sm` at `times[i]`.
    pub samples: Vec<Vec<SmSample>>,
}

impl UtilizationTrace {
    /// Create an empty trace with the given sample interval.
    pub fn new(interval_cycles: u64) -> Self {
        UtilizationTrace {
            interval_cycles: interval_cycles.max(1),
            ..Self::default()
        }
    }

    /// The next cycle at which a sample is due.
    pub fn next_due(&self) -> u64 {
        match self.times.last() {
            Some(&t) => t + self.interval_cycles,
            None => 0,
        }
    }

    /// Record a sample of every SM's state.
    pub fn sample(&mut self, engine: &Engine) {
        let cfg = engine.config();
        let row: Vec<SmSample> = (0..cfg.num_sms)
            .map(|sm| match engine.sm_mode(sm) {
                SmMode::Preempting => SmSample::Preempting,
                SmMode::Halted => SmSample::Halted,
                SmMode::Active => {
                    let r = engine.sm_resident_count(sm);
                    if r == 0 {
                        SmSample::Idle
                    } else {
                        SmSample::Busy {
                            resident: r.min(255) as u8,
                        }
                    }
                }
            })
            .collect();
        self.times.push(engine.cycle());
        self.samples.push(row);
    }

    /// Fraction of samples in which `sm` was busy.
    pub fn busy_fraction(&self, sm: usize) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let busy = self
            .samples
            .iter()
            .filter(|row| matches!(row.get(sm), Some(SmSample::Busy { .. })))
            .count();
        busy as f64 / self.samples.len() as f64
    }

    /// GPU-wide busy fraction over the trace.
    pub fn overall_busy_fraction(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let n = self.samples[0].len().max(1);
        (0..n).map(|sm| self.busy_fraction(sm)).sum::<f64>() / n as f64
    }

    /// Render an ASCII timeline: one row per SM, one column per sample.
    ///
    /// Glyphs: `.` idle, digits = resident blocks, `H` halted, `P`
    /// preempting. Long traces are downsampled to at most `max_cols`.
    pub fn render(&self, max_cols: usize) -> String {
        if self.samples.is_empty() {
            return String::from("(empty trace)\n");
        }
        let n_sms = self.samples[0].len();
        let cols = self.samples.len().min(max_cols.max(1));
        let stride = self.samples.len().div_ceil(cols);
        let mut out = String::new();
        for sm in 0..n_sms {
            out.push_str(&format!("SM{sm:02} "));
            for c in (0..self.samples.len()).step_by(stride) {
                out.push(self.samples[c][sm].glyph());
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpuConfig, KernelDesc, Program, Segment};

    fn engine_with_work() -> (Engine, crate::KernelId) {
        let cfg = GpuConfig::tiny();
        let mut e = Engine::new(cfg.clone());
        let k = e.launch_kernel(
            KernelDesc::builder("t")
                .grid_blocks(16)
                .threads_per_block(64)
                .program(Program::new(vec![Segment::compute(500)]))
                .build()
                .unwrap(),
        );
        e.assign_sm(0, Some(k));
        (e, k)
    }

    #[test]
    fn samples_capture_busy_and_idle() {
        let (mut e, _) = engine_with_work();
        let mut tr = UtilizationTrace::new(1000);
        tr.sample(&e); // before anything ran: dispatch happens inside run
        e.run_for(5_000);
        tr.sample(&e);
        assert_eq!(tr.samples.len(), 2);
        assert!(matches!(tr.samples[1][0], SmSample::Busy { .. }));
        assert_eq!(tr.samples[1][1], SmSample::Idle, "SM1 unassigned");
        assert!(tr.busy_fraction(0) > 0.0);
        assert_eq!(tr.busy_fraction(1), 0.0);
        assert!(tr.overall_busy_fraction() > 0.0);
    }

    #[test]
    fn render_produces_one_row_per_sm() {
        let (mut e, _) = engine_with_work();
        let mut tr = UtilizationTrace::new(1000);
        for _ in 0..10 {
            e.run_for(1_000);
            tr.sample(&e);
        }
        let s = tr.render(5);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2); // tiny config: 2 SMs
        assert!(lines[0].starts_with("SM00 "));
        // Downsampled to at most 5 columns (+ the "SM00 " prefix).
        assert!(lines[0].len() <= 5 + 5);
    }

    #[test]
    fn preempting_and_halted_states_are_captured() {
        use crate::{SmPreemptPlan, Technique};
        let (mut e, _k) = engine_with_work();
        e.run_for(5_000);
        // Begin a context switch: the SM halts for the save.
        let plan = SmPreemptPlan::uniform(e.sm_resident_indices(0), Technique::Switch);
        e.preempt_sm(0, &plan).unwrap();
        let mut tr = UtilizationTrace::new(100);
        tr.sample(&e);
        assert_eq!(tr.samples[0][0], SmSample::Preempting);
        assert_eq!(tr.samples[0][0].glyph(), 'P');
    }

    #[test]
    fn glyphs_are_stable() {
        assert_eq!(SmSample::Idle.glyph(), '.');
        assert_eq!(SmSample::Busy { resident: 3 }.glyph(), '3');
        assert_eq!(SmSample::Busy { resident: 12 }.glyph(), '9');
        assert_eq!(SmSample::Halted.glyph(), 'H');
        assert_eq!(SmSample::Preempting.glyph(), 'P');
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let tr = UtilizationTrace::new(10);
        assert_eq!(tr.render(10), "(empty trace)\n");
        assert_eq!(tr.overall_busy_fraction(), 0.0);
        assert_eq!(tr.next_due(), 0);
    }
}
