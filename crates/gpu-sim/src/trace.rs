//! Execution tracing: sampled SM utilization and Chrome-trace export.
//!
//! The runner-level experiments report aggregates; this module records the
//! *shape* of an execution — which SMs were active/halted/preempting over
//! time and when preemptions started and ended — in two forms:
//!
//! * [`UtilizationTrace`]: sampled per-SM state glyphs for the `timeline`
//!   example's ASCII rendering;
//! * [`chrome_trace_json`]: the engine's [event log](crate::events) rendered
//!   as Chrome-trace JSON — one track per SM, a span per block residency and
//!   per preemption window, instant events for preemption boundaries and
//!   Algorithm 1 decisions — openable in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev). [`validate_chrome_trace`] parses
//!   such a file back and checks its structure, for tests and tooling.
//!
//! Both renderings consume the [event log](crate::events), which is
//! byte-identical under every engine execution mode ([`crate::ExecMode`]:
//! event calendar, legacy scan, or sharded parallel at any shard count) —
//! traces exported from a parallel run diff clean against a serial run of
//! the same config and seed. See the ordering contract in
//! [`crate::events`] and the full argument in `PARALLELISM.md`.

use std::collections::BTreeMap;

use crate::events::ObsEvent;
use crate::{Engine, KernelId, SmMode};

/// The sampled state of one SM at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmSample {
    /// No resident blocks.
    Idle,
    /// Executing blocks.
    Busy {
        /// Resident block count at the sample.
        resident: u8,
    },
    /// Halted for a context save/restore.
    Halted,
    /// Mid-preemption.
    Preempting,
}

impl SmSample {
    /// One-character glyph for timeline rendering.
    pub fn glyph(&self) -> char {
        match self {
            SmSample::Idle => '.',
            SmSample::Busy { resident } => {
                char::from_digit(u32::from(*resident).min(9), 10).unwrap_or('9')
            }
            SmSample::Halted => 'H',
            SmSample::Preempting => 'P',
        }
    }
}

/// A sampled utilization timeline across all SMs.
#[derive(Debug, Clone, Default)]
pub struct UtilizationTrace {
    /// Sample interval in cycles.
    pub interval_cycles: u64,
    /// Sample instants (cycles).
    pub times: Vec<u64>,
    /// `samples[i][sm]` is the state of `sm` at `times[i]`.
    pub samples: Vec<Vec<SmSample>>,
}

impl UtilizationTrace {
    /// Create an empty trace with the given sample interval.
    pub fn new(interval_cycles: u64) -> Self {
        UtilizationTrace {
            interval_cycles: interval_cycles.max(1),
            ..Self::default()
        }
    }

    /// The next cycle at which a sample is due.
    pub fn next_due(&self) -> u64 {
        match self.times.last() {
            Some(&t) => t + self.interval_cycles,
            None => 0,
        }
    }

    /// Record a sample of every SM's state.
    pub fn sample(&mut self, engine: &Engine) {
        let cfg = engine.config();
        let row: Vec<SmSample> = (0..cfg.num_sms)
            .map(|sm| match engine.sm_mode(sm) {
                SmMode::Preempting => SmSample::Preempting,
                SmMode::Halted => SmSample::Halted,
                SmMode::Active => {
                    let r = engine.sm_resident_count(sm);
                    if r == 0 {
                        SmSample::Idle
                    } else {
                        SmSample::Busy {
                            // simlint: allow(as-narrowing) -- clamped to 255 on the same expression
                            resident: r.min(255) as u8,
                        }
                    }
                }
            })
            .collect();
        self.times.push(engine.cycle());
        self.samples.push(row);
    }

    /// Fraction of samples in which `sm` was busy.
    pub fn busy_fraction(&self, sm: usize) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let busy = self
            .samples
            .iter()
            .filter(|row| matches!(row.get(sm), Some(SmSample::Busy { .. })))
            .count();
        busy as f64 / self.samples.len() as f64
    }

    /// GPU-wide busy fraction over the trace.
    pub fn overall_busy_fraction(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let n = self.samples[0].len().max(1);
        (0..n).map(|sm| self.busy_fraction(sm)).sum::<f64>() / n as f64
    }

    /// Render an ASCII timeline: one row per SM, one column per sample.
    ///
    /// Glyphs: `.` idle, digits = resident blocks, `H` halted, `P`
    /// preempting. Long traces are downsampled to at most `max_cols`.
    pub fn render(&self, max_cols: usize) -> String {
        if self.samples.is_empty() {
            return String::from("(empty trace)\n");
        }
        let n_sms = self.samples[0].len();
        let cols = self.samples.len().min(max_cols.max(1));
        let stride = self.samples.len().div_ceil(cols);
        let mut out = String::new();
        for sm in 0..n_sms {
            out.push_str(&format!("SM{sm:02} "));
            for c in (0..self.samples.len()).step_by(stride) {
                out.push(self.samples[c][sm].glyph());
            }
            out.push('\n');
        }
        out
    }
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out
}

/// One pre-serialised trace row, carrying its deterministic sort key.
struct TraceRow {
    ts_cycles: u64,
    tid: usize,
    /// Tie-break within one `(ts, tid)`: spans before instants.
    order: u8,
    name: String,
    dur_cycles: Option<u64>,
    ph: char,
    cat: &'static str,
    args: String,
}

/// Render the engine's [event log](crate::events) as Chrome-trace JSON.
///
/// Returns `None` when the event log is disabled. The output is the
/// "JSON object format" understood by `chrome://tracing` and Perfetto:
/// `{"traceEvents": [...]}` with
///
/// * one metadata-named track per SM (`tid` = SM index, `pid` 0);
/// * a complete (`"ph":"X"`) span per block residency, named after the
///   kernel and grid block, with the exit reason and instruction count in
///   `args` (blocks still resident at export time are closed at the current
///   cycle with `"exit":"open"`);
/// * a complete span per preemption window (request → SM vacated);
/// * instant (`"ph":"i"`) events for preemption begin/end and for every
///   recorded Algorithm 1 [decision](crate::events::ObsEvent::Decision),
///   with the per-technique estimates in `args`;
/// * when the log contains serving request-stream events
///   ([`crate::events::ObsEvent::RequestArrival`] and friends), an extra
///   `requests` track past the SM tracks (`tid` = SM count) with one instant
///   per arrival/admission/shed. Non-serving traces are unaffected.
///
/// Timestamps are microseconds (the Chrome-trace unit), converted with
/// [`crate::GpuConfig::cycles_to_us`] and printed with three decimals.
/// Events are sorted by `(time, SM, kind, name)`, so the bytes produced for
/// a given log are stable regardless of event insertion order — a fixed
/// seed yields a byte-identical file (golden-tested in
/// `tests/observability.rs`).
///
/// ```
/// use gpu_sim::trace::{chrome_trace_json, validate_chrome_trace};
/// use gpu_sim::{Engine, GpuConfig, KernelDesc, Program, Segment};
///
/// let mut engine = Engine::new(GpuConfig::tiny());
/// engine.enable_event_log(4096);
/// let k = engine.launch_kernel(
///     KernelDesc::builder("demo")
///         .grid_blocks(8)
///         .threads_per_block(64)
///         .program(Program::new(vec![Segment::compute(200)]))
///         .build()
///         .unwrap(),
/// );
/// engine.assign_sm(0, Some(k));
/// engine.run_until(1_000_000);
/// let json = chrome_trace_json(&engine).expect("log is enabled");
/// let summary = validate_chrome_trace(&json).expect("valid Chrome trace");
/// assert_eq!(summary.spans, 8, "one residency span per block");
/// ```
pub fn chrome_trace_json(engine: &Engine) -> Option<String> {
    let log = engine.event_log()?;
    let cfg = engine.config();
    let now = engine.cycle();
    let kname = |k: KernelId| json_escape(&engine.kernel_stats(k).name);
    let mut rows: Vec<TraceRow> = Vec::with_capacity(log.len());
    // Request-stream events get a dedicated track past the per-SM ones; the
    // track (and its metadata row) only exists when such events were logged,
    // so traces from non-serving runs are byte-identical to before.
    let request_tid = cfg.num_sms;
    let mut has_requests = false;
    // (sm, kernel, block) -> (begin cycle, resumed)
    let mut open_blocks: BTreeMap<(usize, usize, u32), (u64, bool)> = BTreeMap::new();
    let block_span = |rows: &mut Vec<TraceRow>,
                      begin: u64,
                      end: u64,
                      sm: usize,
                      kernel: KernelId,
                      block: u32,
                      resumed: bool,
                      exit: &str,
                      insts: u64| {
        rows.push(TraceRow {
            ts_cycles: begin,
            tid: sm,
            order: 0,
            name: format!("{} b{}", kname(kernel), block),
            dur_cycles: Some(end.saturating_sub(begin)),
            ph: 'X',
            cat: "block",
            args: format!(
                "{{\"kernel\":{},\"block\":{},\"resumed\":{},\"exit\":\"{}\",\"insts\":{}}}",
                kernel.0, block, resumed, exit, insts
            ),
        });
    };
    for ev in log.iter() {
        match *ev {
            ObsEvent::BlockBegin {
                cycle,
                sm,
                kernel,
                block,
                resumed,
            } => {
                open_blocks.insert((sm, kernel.0, block), (cycle, resumed));
            }
            ObsEvent::BlockEnd {
                cycle,
                sm,
                kernel,
                block,
                exit,
                insts,
            } => {
                // A missing begin means the ring dropped it; fall back to a
                // zero-length span at the end cycle.
                let (begin, resumed) = open_blocks
                    .remove(&(sm, kernel.0, block))
                    .unwrap_or((cycle, false));
                block_span(
                    &mut rows,
                    begin,
                    cycle,
                    sm,
                    kernel,
                    block,
                    resumed,
                    exit.as_str(),
                    insts,
                );
            }
            ObsEvent::PreemptRequested {
                cycle,
                sm,
                kernel,
                blocks,
            } => {
                rows.push(TraceRow {
                    ts_cycles: cycle,
                    tid: sm,
                    order: 1,
                    name: "preempt begin".to_string(),
                    dur_cycles: None,
                    ph: 'i',
                    cat: "preempt",
                    args: format!("{{\"kernel\":{},\"blocks\":{}}}", kernel.0, blocks),
                });
            }
            ObsEvent::PreemptCompleted {
                cycle,
                sm,
                kernel,
                latency_cycles,
            } => {
                rows.push(TraceRow {
                    ts_cycles: cycle.saturating_sub(latency_cycles),
                    tid: sm,
                    order: 0,
                    name: format!("preempt {}", kname(kernel)),
                    dur_cycles: Some(latency_cycles),
                    ph: 'X',
                    cat: "preempt",
                    args: format!(
                        "{{\"kernel\":{},\"latency_cycles\":{}}}",
                        kernel.0, latency_cycles
                    ),
                });
                rows.push(TraceRow {
                    ts_cycles: cycle,
                    tid: sm,
                    order: 2,
                    name: "preempt end".to_string(),
                    dur_cycles: None,
                    ph: 'i',
                    cat: "preempt",
                    args: format!(
                        "{{\"kernel\":{},\"latency_cycles\":{}}}",
                        kernel.0, latency_cycles
                    ),
                });
            }
            ObsEvent::Decision {
                cycle,
                sm,
                kernel,
                limit_cycles,
                slack_cycles,
                decision,
            } => {
                let est = |e: Option<crate::events::TechniqueEstimate>| match e {
                    None => "null".to_string(),
                    Some(t) => format!(
                        "{{\"latency_cycles\":{},\"overhead_insts\":{}}}",
                        t.latency_cycles, t.overhead_insts
                    ),
                };
                rows.push(TraceRow {
                    ts_cycles: cycle,
                    tid: sm,
                    order: 3,
                    name: format!("decision b{} {}", decision.block, decision.chosen),
                    dur_cycles: None,
                    ph: 'i',
                    cat: "decision",
                    args: format!(
                        "{{\"kernel\":{},\"block\":{},\"chosen\":\"{}\",\
                         \"limit_cycles\":{},\"slack_cycles\":{},\
                         \"est\":{{\"switch\":{},\"drain\":{},\"flush\":{}}}}}",
                        kernel.0,
                        decision.block,
                        decision.chosen,
                        limit_cycles,
                        slack_cycles,
                        est(decision.est_switch),
                        est(decision.est_drain),
                        est(decision.est_flush),
                    ),
                });
            }
            ObsEvent::EstimatorUpdate {
                cycle,
                kernel,
                samples,
                mean_tb_insts,
                quantile_tb_insts,
                risk_pct,
            } => {
                // Kernel-wide (not SM-scoped): rendered as an instant event
                // on track 0 so the distribution snapshots line up with the
                // decisions they informed.
                rows.push(TraceRow {
                    ts_cycles: cycle,
                    tid: 0,
                    order: 4,
                    name: format!("estimator {}", kname(kernel)),
                    dur_cycles: None,
                    ph: 'i',
                    cat: "estimator",
                    args: format!(
                        "{{\"kernel\":{},\"samples\":{},\"mean_tb_insts\":{},\
                         \"quantile_tb_insts\":{},\"risk_pct\":{}}}",
                        kernel.0, samples, mean_tb_insts, quantile_tb_insts, risk_pct
                    ),
                });
            }
            ObsEvent::RequestArrival {
                cycle,
                request,
                tenant,
                class,
                deadline_cycle,
            } => {
                has_requests = true;
                rows.push(TraceRow {
                    ts_cycles: cycle,
                    tid: request_tid,
                    order: 5,
                    name: format!("arrival r{request}"),
                    dur_cycles: None,
                    ph: 'i',
                    cat: "request",
                    args: format!(
                        "{{\"request\":{request},\"tenant\":{tenant},\"class\":{class},\
                         \"deadline_cycle\":{deadline_cycle}}}"
                    ),
                });
            }
            ObsEvent::RequestAdmitted {
                cycle,
                request,
                tenant,
                queued,
            } => {
                has_requests = true;
                rows.push(TraceRow {
                    ts_cycles: cycle,
                    tid: request_tid,
                    order: 5,
                    name: format!("admit r{request}"),
                    dur_cycles: None,
                    ph: 'i',
                    cat: "request",
                    args: format!(
                        "{{\"request\":{request},\"tenant\":{tenant},\"queued\":{queued}}}"
                    ),
                });
            }
            ObsEvent::RequestShed {
                cycle,
                request,
                tenant,
                reason,
            } => {
                has_requests = true;
                rows.push(TraceRow {
                    ts_cycles: cycle,
                    tid: request_tid,
                    order: 5,
                    name: format!("shed r{request}"),
                    dur_cycles: None,
                    ph: 'i',
                    cat: "request",
                    args: format!(
                        "{{\"request\":{request},\"tenant\":{tenant},\"reason\":\"{}\"}}",
                        reason.as_str()
                    ),
                });
            }
        }
    }
    // Close spans for blocks still resident at export time.
    for (&(sm, kernel, block), &(begin, resumed)) in &open_blocks {
        block_span(
            &mut rows,
            begin,
            now,
            sm,
            KernelId(kernel),
            block,
            resumed,
            "open",
            0,
        );
    }
    // Deterministic order: the exporter sorts so the bytes cannot depend on
    // event arrival order.
    rows.sort_by(|a, b| {
        (a.ts_cycles, a.tid, a.order, &a.name, a.dur_cycles).cmp(&(
            b.ts_cycles,
            b.tid,
            b.order,
            &b.name,
            b.dur_cycles,
        ))
    });
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let emit = |line: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
        out.push_str(&line);
    };
    emit(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"gpu-sim\"}}"
            .to_string(),
        &mut out,
        &mut first,
    );
    for sm in 0..cfg.num_sms {
        emit(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{sm},\
                 \"args\":{{\"name\":\"SM {sm:02}\"}}}}"
            ),
            &mut out,
            &mut first,
        );
    }
    if has_requests {
        emit(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{request_tid},\
                 \"args\":{{\"name\":\"requests\"}}}}"
            ),
            &mut out,
            &mut first,
        );
    }
    for r in rows {
        let ts = cfg.cycles_to_us(r.ts_cycles);
        let line = match r.ph {
            'X' => format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                 \"pid\":0,\"tid\":{},\"args\":{}}}",
                json_escape(&r.name),
                r.cat,
                ts,
                cfg.cycles_to_us(r.dur_cycles.unwrap_or(0)),
                r.tid,
                r.args
            ),
            _ => format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\
                 \"pid\":0,\"tid\":{},\"args\":{}}}",
                json_escape(&r.name),
                r.cat,
                ts,
                r.tid,
                r.args
            ),
        };
        emit(line, &mut out, &mut first);
    }
    out.push_str("\n]}\n");
    Some(out)
}

/// Structural summary returned by [`validate_chrome_trace`].
///
/// ```
/// use gpu_sim::trace::validate_chrome_trace;
///
/// let summary = validate_chrome_trace(
///     r#"{"traceEvents":[
///         {"name":"process_name","ph":"M","pid":0,"args":{"name":"gpu-sim"}},
///         {"name":"k b0","cat":"block","ph":"X","ts":1.0,"dur":2.5,"pid":0,"tid":3,"args":{}},
///         {"name":"preempt begin","cat":"preempt","ph":"i","s":"t","ts":2.0,"pid":0,"tid":3,"args":{}}
///     ]}"#,
/// )
/// .unwrap();
/// assert_eq!(summary.spans, 1);
/// assert_eq!(summary.instants, 1);
/// assert_eq!(summary.metadata, 1);
/// assert_eq!(summary.tracks, 1);
/// assert!((summary.max_ts_us - 3.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeTraceSummary {
    /// Total entries in `traceEvents`.
    pub events: usize,
    /// Complete (`"ph":"X"`) spans.
    pub spans: usize,
    /// Instant (`"ph":"i"`) events.
    pub instants: usize,
    /// Metadata (`"ph":"M"`) entries.
    pub metadata: usize,
    /// Distinct `tid`s among non-metadata events (SM tracks with activity).
    pub tracks: usize,
    /// Latest timestamp (span end or instant), µs.
    pub max_ts_us: f64,
}

/// Parse a Chrome-trace JSON document produced by [`chrome_trace_json`]
/// (or any tool emitting the object format) and validate its structure.
///
/// Checks performed: the document is well-formed JSON; the root is an object
/// with a `traceEvents` array; every event is an object with a one-letter
/// `ph` in `{X, i, M}` and a numeric `pid`; `X` events carry `name`,
/// numeric `ts`/`dur` and `tid`; `i` events carry `name`, `ts` and `tid`;
/// and non-metadata events appear in non-decreasing `ts` order (the sorted
/// order [`chrome_trace_json`] guarantees).
///
/// # Errors
///
/// Returns a human-readable description of the first structural violation.
///
/// See [`ChromeTraceSummary`] for a usage example.
pub fn validate_chrome_trace(json: &str) -> Result<ChromeTraceSummary, String> {
    use mini_json::Value;
    let root = mini_json::parse(json)?;
    let Value::Obj(fields) = &root else {
        return Err("root is not a JSON object".to_string());
    };
    let events = fields
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("missing traceEvents field")?;
    let Value::Arr(items) = events else {
        return Err("traceEvents is not an array".to_string());
    };
    let mut summary = ChromeTraceSummary {
        events: items.len(),
        spans: 0,
        instants: 0,
        metadata: 0,
        tracks: 0,
        max_ts_us: 0.0,
    };
    let mut tids = std::collections::BTreeSet::new();
    let mut last_ts = f64::NEG_INFINITY;
    for (i, item) in items.iter().enumerate() {
        let Value::Obj(ev) = item else {
            return Err(format!("event {i} is not an object"));
        };
        let get = |key: &str| ev.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let num = |key: &str| -> Result<f64, String> {
            match get(key) {
                Some(Value::Num(n)) => Ok(*n),
                _ => Err(format!("event {i}: missing numeric \"{key}\"")),
            }
        };
        let Some(Value::Str(ph)) = get("ph") else {
            return Err(format!("event {i}: missing string \"ph\""));
        };
        num("pid")?;
        match ph.as_str() {
            "M" => {
                if !matches!(get("name"), Some(Value::Str(_))) {
                    return Err(format!("event {i}: metadata without a name"));
                }
                summary.metadata += 1;
            }
            "X" | "i" => {
                if !matches!(get("name"), Some(Value::Str(_))) {
                    return Err(format!("event {i}: missing string \"name\""));
                }
                let ts = num("ts")?;
                tids.insert(num("tid")? as i64);
                if ts + 1e-9 < last_ts {
                    return Err(format!(
                        "event {i}: ts {ts} goes backwards (exporter must sort)"
                    ));
                }
                last_ts = ts;
                let end = if ph == "X" {
                    summary.spans += 1;
                    ts + num("dur")?
                } else {
                    summary.instants += 1;
                    ts
                };
                summary.max_ts_us = summary.max_ts_us.max(end);
            }
            other => return Err(format!("event {i}: unknown phase \"{other}\"")),
        }
    }
    summary.tracks = tids.len();
    Ok(summary)
}

/// A minimal recursive-descent JSON parser — just enough to validate the
/// exporter's output without an external dependency (the build environment
/// is offline; see the workspace manifest).
mod mini_json {
    /// A parsed JSON value.
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(#[allow(dead_code)] bool),
        /// Any JSON number.
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, as ordered key/value pairs.
        Obj(Vec<(String, Value)>),
    }

    /// Parse a JSON document; `Err` carries a byte offset and reason.
    pub fn parse(s: &str) -> Result<Value, String> {
        let b = s.as_bytes();
        let mut pos = 0usize;
        let v = value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        skip_ws(b, pos);
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, pos))
        }
    }

    fn value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            None => Err("unexpected end of input".to_string()),
            Some(b'{') => {
                *pos += 1;
                let mut fields = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(fields));
                }
                loop {
                    skip_ws(b, pos);
                    let key = match string(b, pos)? {
                        Value::Str(s) => s,
                        _ => unreachable!("string() returns Str"),
                    };
                    expect(b, pos, b':')?;
                    let v = value(b, pos)?;
                    fields.push((key, v));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Obj(fields));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                    }
                }
            }
            Some(b'"') => string(b, pos),
            Some(b't') => lit(b, pos, "true", Value::Bool(true)),
            Some(b'f') => lit(b, pos, "false", Value::Bool(false)),
            Some(b'n') => lit(b, pos, "null", Value::Null),
            Some(_) => number(b, pos),
        }
    }

    fn lit(b: &[u8], pos: &mut usize, word: &str, v: Value) -> Result<Value, String> {
        if b[*pos..].starts_with(word.as_bytes()) {
            *pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {pos}"))
        }
    }

    fn string(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected string at byte {pos}"));
        }
        *pos += 1;
        let mut out = String::new();
        while let Some(&c) = b.get(*pos) {
            *pos += 1;
            match c {
                b'"' => return Ok(Value::Str(out)),
                b'\\' => {
                    let esc = *b.get(*pos).ok_or("unterminated escape")?;
                    *pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = b.get(*pos..*pos + 4).ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            *pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                c => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    let start = *pos - 1;
                    let len = utf8_len(c);
                    let end = start + len;
                    let chunk = b.get(start..end).ok_or("truncated UTF-8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                    *pos = end;
                }
            }
        }
        Err("unterminated string".to_string())
    }

    fn utf8_len(first: u8) -> usize {
        match first {
            0x00..=0x7f => 1,
            0xc0..=0xdf => 2,
            0xe0..=0xef => 3,
            _ => 4,
        }
    }

    fn number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        let start = *pos;
        while let Some(&c) = b.get(*pos) {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                *pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or(format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GpuConfig, KernelDesc, Program, Segment};

    fn engine_with_work() -> (Engine, crate::KernelId) {
        let cfg = GpuConfig::tiny();
        let mut e = Engine::new(cfg.clone());
        let k = e.launch_kernel(
            KernelDesc::builder("t")
                .grid_blocks(16)
                .threads_per_block(64)
                .program(Program::new(vec![Segment::compute(500)]))
                .build()
                .unwrap(),
        );
        e.assign_sm(0, Some(k));
        (e, k)
    }

    #[test]
    fn samples_capture_busy_and_idle() {
        let (mut e, _) = engine_with_work();
        let mut tr = UtilizationTrace::new(1000);
        tr.sample(&e); // before anything ran: dispatch happens inside run
        e.run_for(5_000);
        tr.sample(&e);
        assert_eq!(tr.samples.len(), 2);
        assert!(matches!(tr.samples[1][0], SmSample::Busy { .. }));
        assert_eq!(tr.samples[1][1], SmSample::Idle, "SM1 unassigned");
        assert!(tr.busy_fraction(0) > 0.0);
        assert_eq!(tr.busy_fraction(1), 0.0);
        assert!(tr.overall_busy_fraction() > 0.0);
    }

    #[test]
    fn render_produces_one_row_per_sm() {
        let (mut e, _) = engine_with_work();
        let mut tr = UtilizationTrace::new(1000);
        for _ in 0..10 {
            e.run_for(1_000);
            tr.sample(&e);
        }
        let s = tr.render(5);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2); // tiny config: 2 SMs
        assert!(lines[0].starts_with("SM00 "));
        // Downsampled to at most 5 columns (+ the "SM00 " prefix).
        assert!(lines[0].len() <= 5 + 5);
    }

    #[test]
    fn preempting_and_halted_states_are_captured() {
        use crate::{SmPreemptPlan, Technique};
        let (mut e, _k) = engine_with_work();
        e.run_for(5_000);
        // Begin a context switch: the SM halts for the save.
        let plan = SmPreemptPlan::uniform(e.sm_resident_indices(0), Technique::Switch);
        e.preempt_sm(0, &plan).unwrap();
        let mut tr = UtilizationTrace::new(100);
        tr.sample(&e);
        assert_eq!(tr.samples[0][0], SmSample::Preempting);
        assert_eq!(tr.samples[0][0].glyph(), 'P');
    }

    #[test]
    fn glyphs_are_stable() {
        assert_eq!(SmSample::Idle.glyph(), '.');
        assert_eq!(SmSample::Busy { resident: 3 }.glyph(), '3');
        assert_eq!(SmSample::Busy { resident: 12 }.glyph(), '9');
        assert_eq!(SmSample::Halted.glyph(), 'H');
        assert_eq!(SmSample::Preempting.glyph(), 'P');
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let tr = UtilizationTrace::new(10);
        assert_eq!(tr.render(10), "(empty trace)\n");
        assert_eq!(tr.overall_busy_fraction(), 0.0);
        assert_eq!(tr.next_due(), 0);
    }

    #[test]
    fn chrome_trace_requires_enabled_log() {
        let (e, _) = engine_with_work();
        assert!(chrome_trace_json(&e).is_none());
    }

    #[test]
    fn chrome_trace_round_trips_through_validator() {
        let (mut e, _) = engine_with_work();
        e.enable_event_log(1 << 16);
        e.run_until(2_000_000);
        let json = chrome_trace_json(&e).unwrap();
        let summary = validate_chrome_trace(&json).unwrap();
        assert_eq!(summary.metadata, 1 + e.config().num_sms);
        assert_eq!(summary.spans, 16, "one residency span per block");
        assert_eq!(summary.tracks, 1, "only SM0 was assigned");
        assert!(summary.max_ts_us > 0.0);
        assert_eq!(
            summary.events,
            summary.spans + summary.instants + summary.metadata
        );
    }

    #[test]
    fn chrome_trace_covers_preemption_and_decisions() {
        use crate::events::{BlockDecision, TechniqueEstimate};
        use crate::{SmPreemptPlan, Technique};
        let (mut e, k) = engine_with_work();
        e.enable_event_log(1 << 16);
        e.run_for(5_000);
        let resident = e.sm_resident_indices(0);
        for &b in &resident {
            e.record_decision(
                0,
                k,
                2_000,
                BlockDecision {
                    block: b,
                    chosen: Technique::Drain,
                    est_switch: Some(TechniqueEstimate {
                        latency_cycles: 900,
                        overhead_insts: 40,
                    }),
                    est_drain: Some(TechniqueEstimate {
                        latency_cycles: 700,
                        overhead_insts: 0,
                    }),
                    est_flush: None,
                },
            );
        }
        let plan = SmPreemptPlan::uniform(resident.clone(), Technique::Drain);
        e.preempt_sm(0, &plan).unwrap();
        e.run_until(2_000_000);
        let json = chrome_trace_json(&e).unwrap();
        let summary = validate_chrome_trace(&json).unwrap();
        // preempt begin + end + one decision instant per resident block.
        assert_eq!(summary.instants, 2 + resident.len());
        assert!(json.contains("\"cat\":\"decision\""));
        assert!(json.contains("\"chosen\":\"drain\""));
        assert!(json.contains("preempt begin"));
        assert!(json.contains("\"exit\":\"drained\"") || json.contains("\"exit\":\"completed\""));
    }

    #[test]
    fn chrome_trace_renders_request_track_only_when_present() {
        use crate::ShedReason;
        let (mut e, _) = engine_with_work();
        e.enable_event_log(1 << 16);
        e.run_until(2_000_000);
        let without = chrome_trace_json(&e).unwrap();
        assert!(
            !without.contains("\"name\":\"requests\""),
            "no request track without request events"
        );
        e.record_request_arrival(0, 1, 0, 9_000);
        e.record_request_admitted(0, 1, 1);
        e.record_request_shed(1, 0, ShedReason::QueueFull);
        let with = chrome_trace_json(&e).unwrap();
        let summary = validate_chrome_trace(&with).unwrap();
        assert_eq!(summary.metadata, 1 + e.config().num_sms + 1);
        assert!(with.contains("\"name\":\"requests\""));
        assert!(with.contains("\"cat\":\"request\""));
        assert!(with.contains("arrival r0"));
        assert!(with.contains("shed r1"));
        assert!(with.contains("\"reason\":\"queue_full\""));
        // The request track sits past the per-SM tracks.
        assert!(with.contains(&format!("\"tid\":{}", e.config().num_sms)));
    }

    #[test]
    fn chrome_trace_bytes_are_stable_for_fixed_seed() {
        let run = || {
            let (mut e, _) = engine_with_work();
            e.enable_event_log(1 << 16);
            e.run_until(2_000_000);
            chrome_trace_json(&e).unwrap()
        };
        assert_eq!(run(), run(), "fixed seed must give byte-identical traces");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("[]").is_err());
        assert!(validate_chrome_trace("{\"other\":1}").is_err());
        assert!(
            validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"Z\",\"pid\":0}]}").is_err(),
            "unknown phase must be rejected"
        );
        let unsorted = r#"{"traceEvents":[
            {"name":"a","ph":"i","s":"t","ts":5.0,"pid":0,"tid":0,"args":{}},
            {"name":"b","ph":"i","s":"t","ts":1.0,"pid":0,"tid":0,"args":{}}
        ]}"#;
        assert!(
            validate_chrome_trace(unsorted)
                .unwrap_err()
                .contains("backwards"),
            "out-of-order timestamps must be rejected"
        );
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
