//! System configuration (Table 1 of the paper).

/// Simulation cycles per microsecond at the modelled 1400 MHz core clock.
pub const CYCLES_PER_US: f64 = 1400.0;

/// Warp scheduling policy of an SM's issue stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarpSched {
    /// Loose round-robin across all resident warps (fairness; keeps blocks
    /// of a drain in sync — the default, matching the paper's assumptions).
    #[default]
    LooseRoundRobin,
    /// Greedy-then-oldest: keep issuing from the last warp until it stalls,
    /// then fall back to the oldest ready warp. Better cache locality on
    /// real hardware; skews block progress.
    GreedyThenOldest,
}

/// GPU system parameters.
///
/// The default configuration ([`GpuConfig::fermi`]) matches Table 1 of the
/// paper: 30 SMs at 1400 MHz with 8-wide SIMT, 32768 registers and 48 kB of
/// shared memory per SM, at most 8 resident thread blocks per SM, and a memory
/// subsystem with 6 partitions totalling 177.4 GB/s.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Core clock in MHz.
    pub clock_mhz: u32,
    /// SIMT width (lanes). A 32-thread warp instruction occupies the issue
    /// pipeline for `32 / simt_width` cycles.
    pub simt_width: u32,
    /// Registers per SM (32-bit each).
    pub registers_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: u32,
    /// Number of memory partitions (each holds an L2 bank + memory controller).
    pub num_mem_partitions: usize,
    /// Aggregate DRAM bandwidth in GB/s (10^9 bytes per second).
    pub mem_bandwidth_gbps: f64,
    /// Base (uncontended) memory latency in cycles.
    pub mem_latency_cycles: u64,
    /// Fraction of global accesses served by the per-SM L1 data cache.
    pub l1_hit_fraction: f64,
    /// L1 hit latency in cycles.
    pub l1_latency_cycles: u64,
    /// Warp scheduling policy.
    pub warp_sched: WarpSched,
    /// Number of warp instructions issued per issue event (fidelity knob).
    ///
    /// Chunking coarsens round-robin granularity to speed up simulation; the
    /// resulting timing error is bounded by
    /// `issue_chunk * 32 / simt_width` cycles (~23 ns at the defaults).
    pub issue_chunk: u32,
    /// When `true`, context save/restore traffic is charged to the memory
    /// subsystem (the paper's implementation halts the SM instead and admits
    /// the resulting optimism; this flag is the ablation of that choice).
    pub charge_ctx_switch_bandwidth: bool,
}

impl GpuConfig {
    /// The Fermi-class configuration of Table 1.
    pub fn fermi() -> Self {
        GpuConfig {
            num_sms: 30,
            clock_mhz: 1400,
            simt_width: 8,
            registers_per_sm: 32768,
            max_blocks_per_sm: 8,
            max_warps_per_sm: 48,
            max_threads_per_sm: 1536,
            shared_mem_per_sm: 48 * 1024,
            num_mem_partitions: 6,
            mem_bandwidth_gbps: 177.4,
            mem_latency_cycles: 230,
            l1_hit_fraction: 0.3,
            l1_latency_cycles: 28,
            warp_sched: WarpSched::default(),
            issue_chunk: 8,
            charge_ctx_switch_bandwidth: false,
        }
    }

    /// A tiny configuration useful in unit tests (2 SMs, small limits).
    pub fn tiny() -> Self {
        GpuConfig {
            num_sms: 2,
            max_warps_per_sm: 16,
            max_threads_per_sm: 512,
            ..Self::fermi()
        }
    }

    /// Cycles the issue pipeline is occupied by one warp instruction.
    pub fn issue_interval(&self) -> u64 {
        u64::from(32 / self.simt_width.max(1))
    }

    /// Total DRAM bytes transferred per core cycle.
    pub fn bytes_per_cycle_total(&self) -> f64 {
        self.mem_bandwidth_gbps * 1e9 / (f64::from(self.clock_mhz) * 1e6)
    }

    /// Bytes per cycle available to a single partition.
    pub fn bytes_per_cycle_per_partition(&self) -> f64 {
        self.bytes_per_cycle_total() / self.num_mem_partitions as f64
    }

    /// One SM's fair share of DRAM bandwidth, in bytes per cycle.
    ///
    /// The paper estimates context-switch latency by assuming an SM "has only
    /// its share of global memory bandwidth to save its context" (§2.4).
    pub fn bytes_per_cycle_per_sm(&self) -> f64 {
        self.bytes_per_cycle_total() / self.num_sms as f64
    }

    /// Convert microseconds to cycles for this clock.
    pub fn us_to_cycles(&self, us: f64) -> u64 {
        (us * f64::from(self.clock_mhz) / 1000.0 * 1000.0).round() as u64
    }

    /// Convert cycles to microseconds for this clock.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / (f64::from(self.clock_mhz))
    }

    /// Cycles needed to move `bytes` through one SM's bandwidth share.
    pub fn sm_transfer_cycles(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.bytes_per_cycle_per_sm()).ceil() as u64
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::fermi()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fermi_matches_table1() {
        let c = GpuConfig::fermi();
        assert_eq!(c.num_sms, 30);
        assert_eq!(c.clock_mhz, 1400);
        assert_eq!(c.simt_width, 8);
        assert_eq!(c.registers_per_sm, 32768);
        assert_eq!(c.max_blocks_per_sm, 8);
        assert_eq!(c.shared_mem_per_sm, 48 * 1024);
        assert_eq!(c.num_mem_partitions, 6);
        assert!((c.mem_bandwidth_gbps - 177.4).abs() < 1e-9);
    }

    #[test]
    fn issue_interval_is_four_cycles_for_simt8() {
        assert_eq!(GpuConfig::fermi().issue_interval(), 4);
    }

    #[test]
    fn time_conversions_round_trip() {
        let c = GpuConfig::fermi();
        assert_eq!(c.us_to_cycles(1.0), 1400);
        assert!((c.cycles_to_us(1400) - 1.0).abs() < 1e-12);
        assert_eq!(c.us_to_cycles(15.0), 21_000);
    }

    #[test]
    fn per_sm_bandwidth_share_matches_paper_example() {
        // 177.4 GB/s / 1.4 GHz = 126.7 B/cycle total; /30 SMs = 4.22 B/cycle.
        let c = GpuConfig::fermi();
        let per_sm = c.bytes_per_cycle_per_sm();
        assert!((per_sm - 4.224).abs() < 0.01, "got {per_sm}");
        // BlackScholes: 4 blocks x 24 kB context -> ~16.6 us (paper: 17.0 us).
        let cycles = c.sm_transfer_cycles(4 * 24 * 1024);
        let us = c.cycles_to_us(cycles);
        assert!((us - 16.6).abs() < 0.5, "got {us}");
    }

    #[test]
    fn transfer_cycles_monotone_in_bytes() {
        let c = GpuConfig::fermi();
        assert!(c.sm_transfer_cycles(0) == 0);
        assert!(c.sm_transfer_cycles(1000) <= c.sm_transfer_cycles(2000));
    }
}
