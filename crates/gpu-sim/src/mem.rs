//! Partitioned, bandwidth-limited memory subsystem.
//!
//! Each of the `num_mem_partitions` partitions models an L2 bank plus memory
//! controller as a single busy-until server: a request occupies the partition
//! for `bytes / bytes_per_cycle_per_partition` cycles and completes a fixed
//! base latency after service. Contention therefore emerges naturally when
//! many SMs stream through the same partition, which is the only memory
//! behaviour the Chimera evaluation is sensitive to (bandwidth shares set
//! context-switch times; latency sets the CPI of memory-heavy kernels).

use crate::GpuConfig;

/// State of one memory partition.
#[derive(Debug, Clone, Copy, Default)]
struct Partition {
    free_at: u64,
    bytes_served: u64,
}

/// The memory subsystem shared by all SMs.
///
/// ```
/// use gpu_sim::{GpuConfig, MemSubsystem};
///
/// let cfg = GpuConfig::fermi();
/// let mut mem = MemSubsystem::new(&cfg);
/// let first = mem.access(0, 0x0, 128);
/// let second = mem.access(0, 0x0, 128); // same partition: queues behind
/// assert!(second > first);
/// assert_eq!(mem.total_bytes_served(), 256);
/// ```
#[derive(Debug, Clone)]
pub struct MemSubsystem {
    partitions: Vec<Partition>,
    bytes_per_cycle: f64,
    latency: u64,
    rr_next: usize,
}

impl MemSubsystem {
    /// Create the subsystem from a GPU configuration.
    pub fn new(cfg: &GpuConfig) -> Self {
        MemSubsystem {
            partitions: vec![Partition::default(); cfg.num_mem_partitions.max(1)],
            bytes_per_cycle: cfg.bytes_per_cycle_per_partition(),
            latency: cfg.mem_latency_cycles,
            rr_next: 0,
        }
    }

    /// Issue a request for `bytes` at address `addr` at cycle `now`.
    ///
    /// Returns the cycle at which the data is available to the requester.
    pub fn access(&mut self, now: u64, addr: u64, bytes: u32) -> u64 {
        let idx = ((addr >> 7) as usize) % self.partitions.len();
        self.access_partition(now, idx, u64::from(bytes))
    }

    /// Issue a request that is spread round-robin over partitions (used for
    /// bulk context save/restore traffic in the bandwidth-charging ablation).
    ///
    /// Every byte of `bytes` is charged to exactly one partition: the request
    /// splits into `bytes / n` per partition with the `bytes % n` remainder
    /// spread one byte each over the first partitions in round-robin order.
    /// Partitions whose share is zero are not touched.
    pub fn bulk_access(&mut self, now: u64, bytes: u64) -> u64 {
        let n = self.partitions.len() as u64;
        let chunk = bytes / n;
        let rem = bytes % n;
        let served_before = self.total_bytes_served();
        let mut done = now;
        for i in 0..n {
            let idx = self.rr_next;
            self.rr_next = (self.rr_next + 1) % self.partitions.len();
            let share = chunk + u64::from(i < rem);
            if share == 0 {
                continue;
            }
            let t = self.access_partition(now, idx, share);
            done = done.max(t);
        }
        debug_assert_eq!(
            self.total_bytes_served() - served_before,
            bytes,
            "bulk_access must conserve bytes"
        );
        done
    }

    fn access_partition(&mut self, now: u64, idx: usize, bytes: u64) -> u64 {
        let p = &mut self.partitions[idx];
        let start = p.free_at.max(now);
        let service = (bytes as f64 / self.bytes_per_cycle).ceil() as u64;
        p.free_at = start + service.max(1);
        p.bytes_served += bytes;
        p.free_at + self.latency
    }

    /// Total bytes served by all partitions so far.
    pub fn total_bytes_served(&self) -> u64 {
        self.partitions.iter().map(|p| p.bytes_served).sum()
    }

    /// Base (uncontended) latency in cycles.
    pub fn base_latency(&self) -> u64 {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemSubsystem {
        MemSubsystem::new(&GpuConfig::fermi())
    }

    #[test]
    fn uncontended_access_completes_after_base_latency() {
        let mut m = mem();
        let ready = m.access(1000, 0, 128);
        // 128 B / ~21.1 B/cycle = 7 cycles service + 230 latency.
        assert!(ready >= 1000 + 230, "ready={ready}");
        assert!(ready <= 1000 + 230 + 10, "ready={ready}");
    }

    #[test]
    fn same_partition_requests_queue() {
        let mut m = mem();
        let r1 = m.access(0, 0, 128);
        let r2 = m.access(0, 0, 128);
        assert!(r2 > r1, "queueing should delay the second request");
    }

    #[test]
    fn different_partitions_do_not_queue() {
        let mut m = mem();
        let r1 = m.access(0, 0, 128);
        let r2 = m.access(0, 128, 128); // next partition (addr >> 7 differs)
        assert_eq!(r1, r2);
    }

    #[test]
    fn bandwidth_limits_throughput() {
        let mut m = mem();
        // Saturate one partition with 1000 x 128 B requests.
        let mut last = 0;
        for _ in 0..1000 {
            last = m.access(0, 0, 128);
        }
        // Each 128 B request occupies the partition ceil(128/21.1) = 7 cycles.
        let service = last - 230;
        assert_eq!(service, 7 * 1000);
    }

    #[test]
    fn bulk_access_spreads_over_partitions() {
        let mut m = mem();
        let t = m.bulk_access(0, 6 * 128);
        let single = {
            let mut m2 = mem();
            m2.access(0, 0, 6 * 128)
        };
        assert!(
            t <= single,
            "bulk ({t}) should beat single-partition ({single})"
        );
        assert_eq!(m.total_bytes_served(), 6 * 128);
    }

    #[test]
    fn bulk_access_conserves_remainder_bytes() {
        // 1000 % 6 = 4: the old code silently dropped those 4 bytes.
        let mut m = mem();
        m.bulk_access(0, 1000);
        assert_eq!(m.total_bytes_served(), 1000);
    }

    #[test]
    fn bulk_access_smaller_than_partition_count() {
        let mut m = mem();
        m.bulk_access(0, 4);
        assert_eq!(m.total_bytes_served(), 4);
    }

    #[test]
    fn bulk_access_handles_chunks_beyond_u32() {
        // Per-partition shares above u32::MAX used to be silently clamped.
        let mut m = mem();
        let big = 40 * u64::from(u32::MAX);
        let done = m.bulk_access(0, big);
        assert_eq!(m.total_bytes_served(), big);
        assert!(done > 0);
    }

    #[test]
    fn byte_accounting() {
        let mut m = mem();
        m.access(0, 0, 128);
        m.access(0, 4096, 64);
        assert_eq!(m.total_bytes_served(), 192);
    }
}
