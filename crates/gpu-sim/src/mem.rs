//! Partitioned, bandwidth-limited memory subsystem.
//!
//! Each of the `num_mem_partitions` partitions models an L2 bank plus memory
//! controller as a single busy-until server: a request occupies the partition
//! for `bytes / bytes_per_cycle_per_partition` cycles and completes a fixed
//! base latency after service. Contention therefore emerges naturally when
//! many SMs stream through the same partition, which is the only memory
//! behaviour the Chimera evaluation is sensitive to (bandwidth shares set
//! context-switch times; latency sets the CPI of memory-heavy kernels).
//!
//! Since the component-calendar refactor each partition is also an engine
//! [`Component`](crate::component::Component): a request enqueues its
//! completion cycle on the partition, the engine wakes the partition
//! component at its earliest pending completion, and the partition's tick
//! retires everything due into partition-local statistics
//! ([`MemPartitionStats`]). Retirement is pure bookkeeping — request timing
//! is still decided at issue by the busy-until server — so the component
//! scheduling is unobservable in events, kernel statistics and traces, and
//! all execution modes stay byte-identical.

use crate::component::{Component, ComponentId, TickCtx};
use crate::GpuConfig;
use std::collections::VecDeque;

/// State of one memory partition.
#[derive(Debug, Clone, Default)]
struct Partition {
    /// Partition index (the component identity).
    index: usize,
    free_at: u64,
    bytes_served: u64,
    /// Completion cycles of in-flight requests. The server is FIFO
    /// busy-until, so completions are non-decreasing and the front is
    /// always the earliest.
    pending: VecDeque<u64>,
    /// Requests whose completion cycle has been reached and retired by the
    /// partition's component tick.
    retired: u64,
    /// Authoritative component next-tick time mirrored by the engine's
    /// calendar (`u64::MAX` = idle).
    next_tick: u64,
}

impl Partition {
    fn new(index: usize) -> Self {
        Partition {
            index,
            next_tick: u64::MAX,
            ..Partition::default()
        }
    }
}

impl Component for Partition {
    fn component_id(&self) -> ComponentId {
        ComponentId::MemPartition(self.index)
    }

    fn next_tick(&self) -> u64 {
        self.next_tick
    }

    fn set_next_tick(&mut self, t: u64) {
        self.next_tick = t;
    }

    fn tick(&mut self, ctx: TickCtx<'_>) -> u64 {
        while self.pending.front().is_some_and(|&done| done <= ctx.now) {
            self.pending.pop_front();
            self.retired += 1;
        }
        self.pending.front().copied().unwrap_or(u64::MAX)
    }
}

/// Observable per-partition counters (served bytes, retired and in-flight
/// requests) — the imbalance inputs for the multi-device reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemPartitionStats {
    /// Bytes this partition has served (charged at issue).
    pub bytes_served: u64,
    /// Requests whose completion cycle has passed and been retired.
    pub requests_retired: u64,
    /// Requests issued but not yet retired by the component tick.
    pub inflight: usize,
}

/// The memory subsystem shared by all SMs.
///
/// ```
/// use gpu_sim::{GpuConfig, MemSubsystem};
///
/// let cfg = GpuConfig::fermi();
/// let mut mem = MemSubsystem::new(&cfg);
/// let first = mem.access(0, 0x0, 128);
/// let second = mem.access(0, 0x0, 128); // same partition: queues behind
/// assert!(second > first);
/// assert_eq!(mem.total_bytes_served(), 256);
/// ```
#[derive(Debug, Clone)]
pub struct MemSubsystem {
    partitions: Vec<Partition>,
    bytes_per_cycle: f64,
    latency: u64,
    rr_next: usize,
    /// Partitions that went idle→pending since the engine last synced its
    /// calendar (insertion order; accesses are serial, so deterministic).
    newly_pending: Vec<usize>,
    /// Shard-race sanitizer recording state, shared with the engine; `None`
    /// (the default) records nothing (see [`crate::race`]).
    race: Option<std::sync::Arc<crate::race::RaceState>>,
}

impl MemSubsystem {
    /// Create the subsystem from a GPU configuration.
    pub fn new(cfg: &GpuConfig) -> Self {
        MemSubsystem {
            partitions: (0..cfg.num_mem_partitions.max(1))
                .map(Partition::new)
                .collect(),
            bytes_per_cycle: cfg.bytes_per_cycle_per_partition(),
            latency: cfg.mem_latency_cycles,
            rr_next: 0,
            newly_pending: Vec::new(),
            race: None,
        }
    }

    /// Wire (or clear) the shard-race sanitizer's recording state: every
    /// partition access and component tick reports itself while set.
    pub(crate) fn set_race_state(&mut self, race: Option<std::sync::Arc<crate::race::RaceState>>) {
        self.race = race;
    }

    /// Issue a request for `bytes` at address `addr` at cycle `now`.
    ///
    /// Returns the cycle at which the data is available to the requester.
    pub fn access(&mut self, now: u64, addr: u64, bytes: u32) -> u64 {
        let idx = ((addr >> 7) as usize) % self.partitions.len();
        self.access_partition(now, idx, u64::from(bytes))
    }

    /// Issue a request that is spread round-robin over partitions (used for
    /// bulk context save/restore traffic in the bandwidth-charging ablation).
    ///
    /// Every byte of `bytes` is charged to exactly one partition: the request
    /// splits into `bytes / n` per partition with the `bytes % n` remainder
    /// spread one byte each over the first partitions in round-robin order.
    /// Partitions whose share is zero are not touched.
    pub fn bulk_access(&mut self, now: u64, bytes: u64) -> u64 {
        let n = self.partitions.len() as u64;
        let chunk = bytes / n;
        let rem = bytes % n;
        let served_before = self.total_bytes_served();
        let mut done = now;
        for i in 0..n {
            let idx = self.rr_next;
            self.rr_next = (self.rr_next + 1) % self.partitions.len();
            let share = chunk + u64::from(i < rem);
            if share == 0 {
                continue;
            }
            let t = self.access_partition(now, idx, share);
            done = done.max(t);
        }
        debug_assert_eq!(
            self.total_bytes_served() - served_before,
            bytes,
            "bulk_access must conserve bytes"
        );
        done
    }

    fn access_partition(&mut self, now: u64, idx: usize, bytes: u64) -> u64 {
        if let Some(race) = &self.race {
            race.note_shared_access(crate::race::SharedResource::MemPartition(idx), None, now);
        }
        let p = &mut self.partitions[idx];
        let start = p.free_at.max(now);
        let service = (bytes as f64 / self.bytes_per_cycle).ceil() as u64;
        p.free_at = start + service.max(1);
        p.bytes_served += bytes;
        let done = p.free_at + self.latency;
        if p.pending.is_empty() {
            // Idle→pending transition: the engine must (re)wake this
            // partition's component at the new earliest completion.
            self.newly_pending.push(idx);
        }
        debug_assert!(
            p.pending.back().is_none_or(|&b| b <= done),
            "FIFO server completions must be non-decreasing"
        );
        p.pending.push_back(done);
        done
    }

    /// Drain the partitions whose component wake time changed since the
    /// last call, as `(partition, earliest pending completion)` pairs.
    /// Engine calendar-sync path only.
    pub(crate) fn take_newly_pending(&mut self) -> Vec<(usize, u64)> {
        if self.newly_pending.is_empty() {
            return Vec::new();
        }
        self.newly_pending
            .drain(..)
            .map(|idx| {
                let t = self.partitions[idx]
                    .pending
                    .front()
                    .copied()
                    .unwrap_or(u64::MAX);
                (idx, t)
            })
            .collect()
    }

    /// The authoritative component next-tick of partition `idx`
    /// (`u64::MAX` = idle).
    pub(crate) fn partition_next_tick(&self, idx: usize) -> u64 {
        self.partitions[idx].next_tick
    }

    /// Write partition `idx`'s component next-tick (engine wake path only).
    pub(crate) fn set_partition_next_tick(&mut self, idx: usize, t: u64) {
        self.partitions[idx].set_next_tick(t);
    }

    /// Tick partition `idx` at `now`: retire every pending completion due,
    /// returning the new next-tick time. Delegates to the partition's
    /// [`Component`] implementation.
    pub(crate) fn tick_partition(
        &mut self,
        idx: usize,
        now: u64,
        out: &mut crate::sm::SmOutput,
    ) -> u64 {
        if let Some(race) = &self.race {
            race.note_shared_access(crate::race::SharedResource::MemPartition(idx), None, now);
        }
        let ctx = TickCtx {
            now,
            seed: 0,
            desc: None,
            mem: None,
            out,
            limits: crate::sm::TickLimits {
                horizon: now,
                max_insts: 0,
                may_gain_blocks: false,
            },
        };
        self.partitions[idx].tick(ctx)
    }

    /// Number of memory partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Per-partition counters, in partition order.
    pub fn partition_stats(&self) -> Vec<MemPartitionStats> {
        self.partitions
            .iter()
            .map(|p| MemPartitionStats {
                bytes_served: p.bytes_served,
                requests_retired: p.retired,
                inflight: p.pending.len(),
            })
            .collect()
    }

    /// Total bytes served by all partitions so far.
    pub fn total_bytes_served(&self) -> u64 {
        self.partitions.iter().map(|p| p.bytes_served).sum()
    }

    /// Base (uncontended) latency in cycles.
    pub fn base_latency(&self) -> u64 {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemSubsystem {
        MemSubsystem::new(&GpuConfig::fermi())
    }

    #[test]
    fn uncontended_access_completes_after_base_latency() {
        let mut m = mem();
        let ready = m.access(1000, 0, 128);
        // 128 B / ~21.1 B/cycle = 7 cycles service + 230 latency.
        assert!(ready >= 1000 + 230, "ready={ready}");
        assert!(ready <= 1000 + 230 + 10, "ready={ready}");
    }

    #[test]
    fn same_partition_requests_queue() {
        let mut m = mem();
        let r1 = m.access(0, 0, 128);
        let r2 = m.access(0, 0, 128);
        assert!(r2 > r1, "queueing should delay the second request");
    }

    #[test]
    fn different_partitions_do_not_queue() {
        let mut m = mem();
        let r1 = m.access(0, 0, 128);
        let r2 = m.access(0, 128, 128); // next partition (addr >> 7 differs)
        assert_eq!(r1, r2);
    }

    #[test]
    fn bandwidth_limits_throughput() {
        let mut m = mem();
        // Saturate one partition with 1000 x 128 B requests.
        let mut last = 0;
        for _ in 0..1000 {
            last = m.access(0, 0, 128);
        }
        // Each 128 B request occupies the partition ceil(128/21.1) = 7 cycles.
        let service = last - 230;
        assert_eq!(service, 7 * 1000);
    }

    #[test]
    fn bulk_access_spreads_over_partitions() {
        let mut m = mem();
        let t = m.bulk_access(0, 6 * 128);
        let single = {
            let mut m2 = mem();
            m2.access(0, 0, 6 * 128)
        };
        assert!(
            t <= single,
            "bulk ({t}) should beat single-partition ({single})"
        );
        assert_eq!(m.total_bytes_served(), 6 * 128);
    }

    #[test]
    fn bulk_access_conserves_remainder_bytes() {
        // 1000 % 6 = 4: the old code silently dropped those 4 bytes.
        let mut m = mem();
        m.bulk_access(0, 1000);
        assert_eq!(m.total_bytes_served(), 1000);
    }

    #[test]
    fn bulk_access_smaller_than_partition_count() {
        let mut m = mem();
        m.bulk_access(0, 4);
        assert_eq!(m.total_bytes_served(), 4);
    }

    #[test]
    fn bulk_access_handles_chunks_beyond_u32() {
        // Per-partition shares above u32::MAX used to be silently clamped.
        let mut m = mem();
        let big = 40 * u64::from(u32::MAX);
        let done = m.bulk_access(0, big);
        assert_eq!(m.total_bytes_served(), big);
        assert!(done > 0);
    }

    #[test]
    fn byte_accounting() {
        let mut m = mem();
        m.access(0, 0, 128);
        m.access(0, 4096, 64);
        assert_eq!(m.total_bytes_served(), 192);
    }

    #[test]
    fn accesses_mark_partitions_newly_pending_once() {
        let mut m = mem();
        let done1 = m.access(0, 0, 128);
        m.access(0, 0, 128); // same partition, still pending: no new wake
        let wakes = m.take_newly_pending();
        assert_eq!(wakes, vec![(0, done1)], "one wake at earliest completion");
        assert!(m.take_newly_pending().is_empty(), "drained");
    }

    #[test]
    fn partition_tick_retires_due_completions() {
        let mut m = mem();
        let d1 = m.access(0, 0, 128);
        let d2 = m.access(0, 0, 128);
        assert!(d2 > d1);
        let mut out = crate::sm::SmOutput::default();
        // Nothing due before d1.
        let next = m.tick_partition(0, d1 - 1, &mut out);
        assert_eq!(next, d1);
        assert_eq!(m.partition_stats()[0].requests_retired, 0);
        // First completes at d1; second still pending.
        let next = m.tick_partition(0, d1, &mut out);
        assert_eq!(next, d2);
        let st = m.partition_stats();
        assert_eq!(st[0].requests_retired, 1);
        assert_eq!(st[0].inflight, 1);
        // Both retired once d2 passes; partition goes idle.
        let next = m.tick_partition(0, d2 + 5, &mut out);
        assert_eq!(next, u64::MAX);
        assert_eq!(m.partition_stats()[0].requests_retired, 2);
        assert_eq!(m.partition_stats()[0].inflight, 0);
    }

    #[test]
    fn partition_component_identity_and_wake_bookkeeping() {
        use crate::component::Component;
        let mut p = Partition::new(3);
        assert_eq!(p.component_id(), ComponentId::MemPartition(3));
        assert_eq!(p.next_tick(), u64::MAX, "idle partitions need no entry");
        p.set_next_tick(42);
        assert_eq!(p.next_tick(), 42);
    }
}
