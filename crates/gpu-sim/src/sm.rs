//! Streaming multiprocessor model.
//!
//! An SM holds up to `occupancy` resident thread blocks and drives their warps
//! through a single issue pipeline: one warp-instruction chunk occupies the
//! pipeline for `chunk × 32/simt_width` cycles. Warps are selected loose
//! round-robin across all resident blocks. The SM also implements the
//! *mechanics* of the three preemption techniques — halting for a context
//! save, draining, and instant flush — while the decision logic lives in the
//! `chimera` crate.

use crate::block::{BlockRun, TbSnapshot};
use crate::kernel::{KernelDesc, Segment};
use crate::mem::MemSubsystem;
use crate::preempt::{SmPreemptPlan, Technique};
use crate::rng::hash_combine;
use crate::warp::WarpPhase;
use crate::{BlockId, GpuConfig, KernelId};

/// Coarse operating mode of an SM (for reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmMode {
    /// Executing (or idle awaiting dispatch).
    Active,
    /// A preemption is in progress.
    Preempting,
    /// Halted for a context save/restore.
    Halted,
}

/// A functional memory effect produced by a warp completing a store/atomic
/// segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Effect {
    /// Kernel that produced the effect.
    pub kernel: KernelId,
    /// Grid block index.
    pub block: u32,
    /// Warp index within the block.
    pub warp: u32,
    /// Program segment index that completed.
    pub seg_idx: usize,
}

/// Per-tick output of an SM, consumed by the engine.
#[derive(Debug, Default)]
pub struct SmOutput {
    /// Blocks that completed: `(id, issued_insts, elapsed_cycles)`.
    pub completed: Vec<(BlockId, u64, u64)>,
    /// Functional effects to apply to global memory.
    pub effects: Vec<Effect>,
    /// Contexts saved by a finished context-switch save phase.
    pub switched_out: Vec<TbSnapshot>,
    /// Set when the active preemption finished; value is the latency in cycles.
    pub preempt_done: Option<u64>,
    /// Warp instructions issued this tick.
    pub issued_insts: u32,
}

/// Engine-supplied bounds under which [`Sm::tick_bounded`] may take its
/// batched-issue fast path.
///
/// The batch must be *invisible*: every bound here exists to guarantee that
/// a batched tick leaves the SM, the output and all counters in exactly the
/// state that the same number of ordinary single-chunk ticks would have.
#[derive(Debug, Clone, Copy)]
pub struct TickLimits {
    /// Latest cycle at which a batched tick may be scheduled (the engine's
    /// current run horizon). State beyond the horizon must not be committed:
    /// once the run returns, the caller may preempt or reassign the SM, and
    /// pre-executed work would then diverge from the serial schedule.
    pub horizon: u64,
    /// Maximum warp instructions the batch may issue. The engine sets `0`
    /// while an instruction cap is armed on the resident kernel so the
    /// cap-crossing tick (and its `CapReached` event) happens exactly where
    /// the serial schedule puts it.
    pub max_insts: u64,
    /// Whether the engine could still dispatch new blocks to this SM during
    /// the batch window. Batching is disabled then: a mid-window arrival
    /// would change warp selection.
    pub may_gain_blocks: bool,
}

impl TickLimits {
    /// Limits that disable the fast path entirely (plain tick semantics).
    pub fn none(now: u64) -> Self {
        TickLimits {
            horizon: now,
            max_insts: 0,
            may_gain_blocks: true,
        }
    }
}

/// Snapshot of one resident block for cost estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TbSnapshotInfo {
    /// Grid block index.
    pub index: u32,
    /// Warp instructions issued so far.
    pub executed_insts: u64,
    /// Cycles resident so far.
    pub elapsed_cycles: u64,
    /// Whether the block is past its idempotence point (not flushable).
    pub past_idem_point: bool,
}

/// Snapshot of an SM for cost estimation.
#[derive(Debug, Clone)]
pub struct SmSnapshot {
    /// SM index.
    pub sm: usize,
    /// Kernel whose blocks are resident (`None` if empty).
    pub kernel: Option<KernelId>,
    /// Per-block progress.
    pub blocks: Vec<TbSnapshotInfo>,
}

#[derive(Debug)]
struct ActivePreemption {
    started: u64,
    /// Save completes at this cycle (if any block is switched).
    save_ends_at: Option<u64>,
    switch_set: Vec<u32>,
    switch_done: bool,
}

/// A streaming multiprocessor.
#[derive(Debug)]
pub struct Sm {
    /// SM index.
    pub id: usize,
    issue_interval: u64,
    issue_chunk: u32,
    issue_free_at: u64,
    halted_until: u64,
    rr: usize,
    last_slot: Option<usize>,
    sched: crate::config::WarpSched,
    l1_hit_fraction: f64,
    l1_latency: u64,
    l1_hits: u64,
    l1_misses: u64,
    blocks: Vec<BlockRun>,
    assigned: Option<KernelId>,
    preempt: Option<ActivePreemption>,
    insts_issued_total: u64,
    /// Also emit [`Effect`]s for completed load segments (no functional
    /// meaning; the flush sanitizer needs read footprints). Off by default.
    record_loads: bool,
    /// Shard-race sanitizer probe reporting pure-advance windows; `None`
    /// (the default) records nothing (see [`crate::race`]).
    race_probe: Option<crate::race::RaceProbe>,
    /// Deliberately-racy shared cell bumped from committed pure ticks:
    /// test support for validating the race sanitizer (never set outside
    /// tests; see [`crate::race::TestSharedCell`]).
    test_cell: Option<crate::race::TestSharedCell>,
    /// Authoritative component next-tick time mirrored by the engine's
    /// calendar (`u64::MAX` = idle; see [`crate::component::Component`]).
    next_tick: u64,
}

/// Error returned by [`Sm::begin_preempt`] (via the engine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PreemptError {
    /// The SM has no resident blocks to preempt.
    NothingResident,
    /// A preemption is already in progress on this SM.
    AlreadyPreempting,
    /// The plan does not cover exactly the resident blocks.
    PlanMismatch {
        /// Blocks resident but missing from the plan.
        missing: Vec<u32>,
    },
    /// The plan flushes a block past its idempotence point without
    /// `allow_unsafe_flush`.
    UnsafeFlush {
        /// The offending grid block index.
        block: u32,
    },
}

impl std::fmt::Display for PreemptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PreemptError::NothingResident => write!(f, "no resident blocks to preempt"),
            PreemptError::AlreadyPreempting => write!(f, "preemption already in progress"),
            PreemptError::PlanMismatch { missing } => {
                write!(f, "plan does not cover resident blocks {missing:?}")
            }
            PreemptError::UnsafeFlush { block } => {
                write!(
                    f,
                    "block {block} is past its idempotence point and cannot be flushed"
                )
            }
        }
    }
}

impl std::error::Error for PreemptError {}

impl Sm {
    /// Create SM `id` with the issue parameters of `cfg`.
    pub fn new(id: usize, cfg: &GpuConfig) -> Self {
        Sm {
            id,
            issue_interval: cfg.issue_interval(),
            issue_chunk: cfg.issue_chunk.max(1),
            issue_free_at: 0,
            halted_until: 0,
            rr: 0,
            last_slot: None,
            sched: cfg.warp_sched,
            l1_hit_fraction: cfg.l1_hit_fraction,
            l1_latency: cfg.l1_latency_cycles,
            l1_hits: 0,
            l1_misses: 0,
            blocks: Vec::new(),
            assigned: None,
            preempt: None,
            insts_issued_total: 0,
            record_loads: false,
            race_probe: None,
            test_cell: None,
            // A fresh SM must be visited once so the engine discovers its
            // idle state (mirrors the calendar's initial `(0, sm)` entries).
            next_tick: 0,
        }
    }

    /// Emit effects for completed load segments too (sanitizer support).
    pub fn set_record_loads(&mut self, on: bool) {
        self.record_loads = on;
    }

    /// Wire (or clear) the shard-race sanitizer probe: each
    /// [`Sm::advance_pure`] window reports itself while set.
    pub(crate) fn set_race_probe(&mut self, probe: Option<crate::race::RaceProbe>) {
        self.race_probe = probe;
    }

    /// Attach (or detach) the deliberately-racy test cell (see
    /// [`crate::race::TestSharedCell`]): every committed pure tick bumps it.
    pub(crate) fn set_test_shared_cell(&mut self, cell: Option<crate::race::TestSharedCell>) {
        self.test_cell = cell;
    }

    /// L1 data-cache hit/miss counters.
    pub fn l1_counters(&self) -> (u64, u64) {
        (self.l1_hits, self.l1_misses)
    }

    /// The kernel this SM is assigned to receive blocks from.
    pub fn assigned(&self) -> Option<KernelId> {
        self.assigned
    }

    /// Assign (or unassign) the SM to a kernel for future dispatch.
    pub fn set_assigned(&mut self, kernel: Option<KernelId>) {
        self.assigned = kernel;
    }

    /// Kernel owning the currently resident blocks, if any.
    pub fn resident_kernel(&self) -> Option<KernelId> {
        self.blocks.first().map(|b| b.id.kernel)
    }

    /// Number of resident blocks.
    pub fn resident_count(&self) -> usize {
        self.blocks.len()
    }

    /// Grid indices of resident blocks.
    pub fn resident_indices(&self) -> Vec<u32> {
        self.blocks.iter().map(|b| b.id.index).collect()
    }

    /// Whether a preemption is in progress.
    pub fn is_preempting(&self) -> bool {
        self.preempt.is_some()
    }

    /// Whether new blocks may be dispatched here for `kernel`.
    pub fn can_dispatch(&self, kernel: KernelId, occupancy: u32) -> bool {
        self.assigned == Some(kernel)
            && self.preempt.is_none()
            && self.resident_kernel().is_none_or(|k| k == kernel)
            && self.blocks.len() < occupancy as usize
    }

    /// Current mode (for reporting).
    pub fn mode(&self, now: u64) -> SmMode {
        if self.preempt.is_some() {
            SmMode::Preempting
        } else if now < self.halted_until {
            SmMode::Halted
        } else {
            SmMode::Active
        }
    }

    /// Total warp instructions issued by this SM.
    pub fn insts_issued_total(&self) -> u64 {
        self.insts_issued_total
    }

    /// Place a block onto the SM.
    ///
    /// # Panics
    ///
    /// Panics if the block belongs to a different kernel than the resident
    /// ones (current GPUs only co-locate blocks of one kernel per SM).
    pub fn dispatch(&mut self, block: BlockRun) {
        if let Some(k) = self.resident_kernel() {
            assert_eq!(k, block.id.kernel, "mixed kernels on one SM");
        }
        self.blocks.push(block);
    }

    /// Halt the SM (no issue) until `until` — used for context loads.
    pub fn halt_until(&mut self, until: u64) {
        self.halted_until = self.halted_until.max(until);
    }

    /// Cycle until which the SM is halted.
    pub fn halted_until(&self) -> u64 {
        self.halted_until
    }

    /// Snapshot resident-block progress for cost estimation.
    pub fn snapshot(&self, now: u64) -> SmSnapshot {
        SmSnapshot {
            sm: self.id,
            kernel: self.resident_kernel(),
            blocks: self
                .blocks
                .iter()
                .map(|b| TbSnapshotInfo {
                    index: b.id.index,
                    executed_insts: b.issued_insts(),
                    elapsed_cycles: b.elapsed_cycles(now),
                    past_idem_point: b.past_idem_point,
                })
                .collect(),
        }
    }

    /// Begin executing a preemption plan at cycle `now`.
    ///
    /// Flushed blocks are removed immediately and returned for restart;
    /// switched blocks leave after a context-save halt of `save_cycles`
    /// per switched block (the engine derives it from the kernel's block
    /// context size and the SM's bandwidth share — or zero in oracle mode);
    /// drained blocks continue to completion.
    ///
    /// # Errors
    ///
    /// See [`PreemptError`].
    pub fn begin_preempt(
        &mut self,
        now: u64,
        plan: &SmPreemptPlan,
        save_cycles_per_block: u64,
        out: &mut SmOutput,
    ) -> Result<Vec<(BlockId, u64, bool)>, PreemptError> {
        if self.blocks.is_empty() {
            return Err(PreemptError::NothingResident);
        }
        if self.preempt.is_some() {
            return Err(PreemptError::AlreadyPreempting);
        }
        let missing: Vec<u32> = self
            .blocks
            .iter()
            .filter(|b| plan.technique_for(b.id.index).is_none())
            .map(|b| b.id.index)
            .collect();
        if !missing.is_empty() {
            return Err(PreemptError::PlanMismatch { missing });
        }
        if !plan.allow_unsafe_flush {
            for b in &self.blocks {
                if b.past_idem_point && plan.technique_for(b.id.index) == Some(Technique::Flush) {
                    return Err(PreemptError::UnsafeFlush { block: b.id.index });
                }
            }
        }
        // Flush: instant removal. Record discarded work for accounting and
        // the past-idempotence verdict for the sanitizer's differential
        // check (a dirty flush while `false` here is a static-analysis miss).
        let mut flushed = Vec::new();
        self.blocks.retain(|b| {
            if plan.technique_for(b.id.index) == Some(Technique::Flush) {
                flushed.push((b.id, b.issued_insts(), b.past_idem_point));
                false
            } else {
                true
            }
        });
        self.rr = 0;
        self.last_slot = None;
        // Switch: halt for the save, remove afterwards (in tick()).
        let switch_set: Vec<u32> = self
            .blocks
            .iter()
            .filter(|b| plan.technique_for(b.id.index) == Some(Technique::Switch))
            .map(|b| b.id.index)
            .collect();
        let save_ends_at = if switch_set.is_empty() {
            None
        } else {
            let save = save_cycles_per_block * switch_set.len() as u64;
            self.halted_until = self.halted_until.max(now + save);
            Some(now + save)
        };
        self.preempt = Some(ActivePreemption {
            started: now,
            save_ends_at,
            switch_set,
            switch_done: save_ends_at.is_none(),
        });
        self.check_preempt_done(now, out);
        Ok(flushed)
    }

    fn check_preempt_done(&mut self, now: u64, out: &mut SmOutput) {
        let done = match &self.preempt {
            Some(ap) => ap.switch_done && self.blocks.is_empty(),
            None => false,
        };
        if done {
            let ap = self.preempt.take().expect("checked above");
            out.preempt_done = Some(now - ap.started);
        }
    }

    /// Advance the SM at cycle `now`; returns the next cycle at which this SM
    /// can make progress (`u64::MAX` when idle with nothing pending).
    pub fn tick(
        &mut self,
        now: u64,
        desc: Option<&KernelDesc>,
        mem: &mut MemSubsystem,
        seed: u64,
        out: &mut SmOutput,
    ) -> u64 {
        self.tick_bounded(now, desc, mem, seed, out, &TickLimits::none(now))
    }

    /// [`Sm::tick`] with a batched-issue fast path bounded by `limits`.
    ///
    /// When the selected warp (and, for round-robin, every currently runnable
    /// warp) sits mid-way through a side-effect-free compute/shared segment,
    /// the upcoming ticks are a pure rotation of fixed-size chunks: no memory
    /// traffic, no segment completions, no events, no scheduler surprises.
    /// Those ticks are replayed in one step, which is where the event-driven
    /// engine gets its throughput on compute phases. With
    /// [`TickLimits::none`] the fast path never triggers and this is exactly
    /// `tick`.
    pub fn tick_bounded(
        &mut self,
        now: u64,
        desc: Option<&KernelDesc>,
        mem: &mut MemSubsystem,
        seed: u64,
        out: &mut SmOutput,
        limits: &TickLimits,
    ) -> u64 {
        // Finish a pending context save.
        if let Some(ap) = &mut self.preempt {
            if !ap.switch_done {
                let ends = ap.save_ends_at.expect("switch phase requires save_ends_at");
                if now >= ends {
                    let set = std::mem::take(&mut ap.switch_set);
                    self.blocks.retain(|b| {
                        if set.contains(&b.id.index) {
                            out.switched_out.push(b.snapshot(now));
                            false
                        } else {
                            true
                        }
                    });
                    let ap = self.preempt.as_mut().expect("still preempting");
                    ap.switch_done = true;
                    self.rr = 0;
                    self.last_slot = None;
                    self.check_preempt_done(now, out);
                } else {
                    return ends;
                }
            }
        }
        if self.blocks.is_empty() {
            return u64::MAX;
        }
        if now < self.halted_until {
            return self.halted_until;
        }
        // Release barriers.
        for b in &mut self.blocks {
            if b.barrier_ready() {
                b.release_barrier();
            }
        }
        if now < self.issue_free_at {
            return self.issue_free_at;
        }
        let desc = desc.expect("resident blocks require a kernel descriptor");
        // Warp selection across (block, warp) pairs. All resident blocks
        // belong to one kernel, so warps-per-block is uniform and a flat
        // slot index decomposes without allocation.
        let wpb = self.blocks[0].warps().len();
        let n = self.blocks.len() * wpb;
        let slot_ready = |slot: usize, blocks: &[BlockRun]| -> Option<u64> {
            let (bi, wi) = (slot / wpb, slot % wpb);
            blocks[bi].warps()[wi]
                .next_ready_at()
                .map(|t| t.max(blocks[bi].warm_up_until))
        };
        let mut chosen: Option<(usize, usize)> = None;
        let mut earliest: u64 = u64::MAX;
        // Greedy-then-oldest: stick with the last warp while it stays ready.
        if self.sched == crate::config::WarpSched::GreedyThenOldest {
            if let Some(s) = self.last_slot.filter(|&s| s < n) {
                if slot_ready(s, &self.blocks).is_some_and(|t| t <= now) {
                    chosen = Some((s / wpb, s % wpb));
                }
            }
        }
        if chosen.is_none() {
            // Round-robin continues from the cursor; greedy-then-oldest
            // falls back to the oldest (lowest-slot) ready warp. The loop
            // visits slots in `(start + k) % n` order but tracks the
            // (block, warp) decomposition incrementally — this scan runs on
            // every issue event, and per-slot divisions dominate it when
            // most warps are stalled on memory.
            let start = match self.sched {
                crate::config::WarpSched::LooseRoundRobin => self.rr % n,
                crate::config::WarpSched::GreedyThenOldest => 0,
            };
            let nb = self.blocks.len();
            let (mut b, mut w) = (start / wpb, start % wpb);
            for _ in 0..n {
                let blk = &self.blocks[b];
                let t = match blk.warps()[w].phase {
                    WarpPhase::Ready => Some(blk.warm_up_until),
                    WarpPhase::WaitMem(until) => Some(until.max(blk.warm_up_until)),
                    WarpPhase::AtBarrier | WarpPhase::Done => None,
                };
                if let Some(t) = t {
                    if t <= now {
                        let s = b * wpb + w;
                        chosen = Some((b, w));
                        self.rr = (s + 1) % n;
                        self.last_slot = Some(s);
                        break;
                    }
                    earliest = earliest.min(t);
                }
                w += 1;
                if w == wpb {
                    w = 0;
                    b += 1;
                    if b == nb {
                        b = 0;
                    }
                }
            }
        }
        let Some((bi, wi)) = chosen else {
            // Nothing ready: barriers may have become releasable above, in
            // which case warps are Ready and we would have found them.
            return earliest;
        };
        let segments = desc.program().segments();
        if let Some(next) = self.try_issue_batch(now, bi, wi, segments, limits, out) {
            return next;
        }
        let block = &mut self.blocks[bi];
        let outcome = block.issue_warp(wi, segments, self.issue_chunk);
        if outcome.insts > 0 {
            block.add_insts(outcome.insts);
            self.insts_issued_total += u64::from(outcome.insts);
            out.issued_insts += outcome.insts;
            self.issue_free_at = now + self.issue_interval * u64::from(outcome.insts);
        }
        // Non-idempotence flag: protect-store, or directly completing a
        // non-idempotent segment of an uninstrumented program. The verdict
        // comes from the program-level dataflow mask, which also catches
        // plain stores whose region aliases an earlier read.
        if outcome.protect_store {
            block.past_idem_point = true;
        }
        if let Some(ix) = completed_segment_of(&outcome) {
            if desc.program().segment_non_idempotent(ix) {
                block.past_idem_point = true;
            }
        }
        if outcome.mem_bytes > 0 {
            let addr = hash_combine(&[
                seed,
                block.id.kernel.0 as u64,
                u64::from(block.id.index),
                wi as u64,
                now,
            ]);
            // Per-SM L1: a deterministic fraction of accesses hits on chip
            // and never reaches DRAM. Protect stores are non-cacheable by
            // construction (§3.4) and always go to memory.
            let cacheable = !outcome.protect_store;
            let hit = cacheable
                && crate::rng::unit_f64(hash_combine(&[addr, 0x11CA])) < self.l1_hit_fraction;
            let ready = if hit {
                self.l1_hits += 1;
                now + self.l1_latency
            } else {
                self.l1_misses += 1;
                mem.access(now, addr, outcome.mem_bytes)
            };
            // A warp that just finished its program does not wait for final
            // loads; completion is signalled by the trailing stores.
            if outcome.mem_blocking && !outcome.done {
                block.warps_mut()[wi].stall_until(ready);
            }
        }
        if let Some(seg_idx) = outcome.completed_segment {
            if matches!(
                segments[seg_idx],
                Segment::GlobalStore { .. } | Segment::Atomic { .. }
            ) || (self.record_loads && matches!(segments[seg_idx], Segment::GlobalLoad { .. }))
            {
                out.effects.push(Effect {
                    kernel: block.id.kernel,
                    block: block.id.index,
                    // simlint: allow(as-narrowing) -- warp index is bounded by warps-per-block (< 64)
                    warp: wi as u32,
                    seg_idx,
                });
            }
        }
        if outcome.done && block.all_done() {
            let id = block.id;
            let insts = block.issued_insts();
            let cycles = block.elapsed_cycles(now);
            self.blocks.remove(bi);
            self.rr = 0;
            self.last_slot = None;
            out.completed.push((id, insts, cycles));
            self.check_preempt_done(now, out);
        }
        if self.blocks.is_empty() {
            u64::MAX
        } else {
            self.issue_free_at.max(now + 1)
        }
    }

    /// Replay a steady compute window — several future ticks of this SM — in
    /// one step. Called after warp selection chose `(bi, wi)`; returns the
    /// SM's next-action cycle if a batch was committed, or `None` to fall
    /// through to the ordinary single-chunk issue.
    ///
    /// The batch is byte-identical to the serial schedule because:
    /// - batched ticks run at `now + j·issue_interval·chunk`, exactly where
    ///   serial ticks land, and the last one stays within `limits.horizon`;
    /// - no warp ever completes its segment inside the window (at least one
    ///   instruction is left), so no effects, block completions, phase
    ///   changes or idempotence transitions can occur;
    /// - under round-robin the window also ends strictly before the earliest
    ///   future warp wake-up, and covers either whole rotations over the
    ///   runnable slots (when all of them are steady) or a single partial
    ///   rotation over the leading run of steady slots in rotation order
    ///   (each ticking once, stopping before the first non-steady slot gets
    ///   a turn);
    /// - under greedy-then-oldest the chosen warp never stalls mid-window,
    ///   so it stays selected and the scheduler cursor is untouched.
    fn try_issue_batch(
        &mut self,
        now: u64,
        bi: usize,
        wi: usize,
        segments: &[Segment],
        limits: &TickLimits,
        out: &mut SmOutput,
    ) -> Option<u64> {
        if limits.may_gain_blocks || limits.horizon <= now {
            return None;
        }
        let chunk = u64::from(self.issue_chunk);
        let tick_cycles = self.issue_interval * chunk;
        if tick_cycles == 0 {
            return None;
        }
        // Cheap bail for memory phases: the chosen warp must be steady.
        let chosen_rem = u64::from(
            self.blocks[bi].warps()[wi]
                .steady_compute_rem(segments, self.blocks[bi].scaled_segs())?,
        );
        // Ticks allowed by the horizon: batched tick j runs at
        // now + j·tick_cycles, and the last must not pass the horizon.
        let horizon_ticks = (limits.horizon - now) / tick_cycles + 1;
        let wpb = self.blocks[0].warps().len();
        let n = self.blocks.len() * wpb;
        let chosen_slot = bi * wpb + wi;
        // Bound per-slot totals so the u32 counter updates cannot overflow.
        const INSTS_CAP: u64 = 1 << 30;
        if self.sched == crate::config::WarpSched::GreedyThenOldest {
            // Greedy re-picks the chosen warp while it stays ready, which a
            // steady warp does; other warps cannot preempt it mid-window.
            let ticks = ((chosen_rem - 1) / chunk)
                .min(horizon_ticks)
                .min(limits.max_insts / chunk)
                .min(INSTS_CAP / chunk);
            if ticks < 2 {
                return None;
            }
            // simlint: allow(as-narrowing) -- ticks * chunk is capped at INSTS_CAP (2^30) above
            let per_warp = (ticks * chunk) as u32;
            let blk = &mut self.blocks[bi];
            let warp = &mut blk.warps_mut()[wi];
            warp.phase = WarpPhase::Ready;
            warp.done_in_seg += per_warp;
            blk.add_insts(per_warp);
            self.commit_batch(now, ticks * chunk, out)
        } else {
            // Loose round-robin. Classify every slot, walking the rotation
            // order from the chosen slot — the runnable slots in that order
            // are exactly the warps the next serial ticks will pick.
            let nb = self.blocks.len();
            let mut n_ready = 0u64;
            let mut min_rem = chosen_rem;
            let mut wake_min = u64::MAX;
            let mut all_steady = true;
            // Length of the rotation prefix of runnable slots that are
            // steady with more than one chunk left: each of their ticks
            // issues a plain full chunk with no segment completion.
            let mut prefix_open = true;
            let mut prefix_len = 0u64;
            let (mut b, mut w) = (bi, wi);
            for _ in 0..n {
                let blk = &self.blocks[b];
                if let Some(t) = blk.warps()[w].next_ready_at() {
                    let t = t.max(blk.warm_up_until);
                    if t > now {
                        wake_min = wake_min.min(t);
                    } else {
                        n_ready += 1;
                        match blk.warps()[w].steady_compute_rem(segments, blk.scaled_segs()) {
                            Some(rem) => {
                                let rem = u64::from(rem);
                                min_rem = min_rem.min(rem);
                                if rem > chunk && prefix_open {
                                    prefix_len += 1;
                                } else {
                                    prefix_open = false;
                                }
                            }
                            None => {
                                all_steady = false;
                                prefix_open = false;
                            }
                        }
                    }
                }
                // AtBarrier / Done slots are inert for the whole window.
                w += 1;
                if w == wpb {
                    w = 0;
                    b += 1;
                    if b == nb {
                        b = 0;
                    }
                }
            }
            let mut max_ticks = horizon_ticks;
            if wake_min != u64::MAX {
                // The last batched tick must run strictly before the wake-up.
                max_ticks = max_ticks.min((wake_min - 1 - now) / tick_cycles + 1);
            }
            if all_steady {
                // Whole rotations over the runnable slots.
                let rot = ((min_rem - 1) / chunk)
                    .min(max_ticks / n_ready)
                    .min(limits.max_insts / (n_ready * chunk))
                    .min(INSTS_CAP / (n_ready * chunk));
                let ticks = rot * n_ready;
                if ticks >= 2 {
                    // simlint: allow(as-narrowing) -- rot * chunk is capped at INSTS_CAP / n_ready above
                    let per_warp = (rot * chunk) as u32;
                    for s in 0..n {
                        let (b, w) = (s / wpb, s % wpb);
                        let blk = &mut self.blocks[b];
                        let runnable = blk.warps()[w]
                            .next_ready_at()
                            .is_some_and(|t| t.max(blk.warm_up_until) <= now);
                        if !runnable {
                            continue;
                        }
                        let warp = &mut blk.warps_mut()[w];
                        warp.phase = WarpPhase::Ready;
                        warp.done_in_seg += per_warp;
                        blk.add_insts(per_warp);
                    }
                    // The rotation starts at the chosen slot, so its last
                    // tick issues from the runnable slot cyclically preceding
                    // it; the cursor ends up just past that slot, exactly as
                    // after the serial ticks.
                    let mut last = chosen_slot;
                    for k in 1..=n {
                        let s = (chosen_slot + n - k) % n;
                        let (b, w) = (s / wpb, s % wpb);
                        let blk = &self.blocks[b];
                        if blk.warps()[w]
                            .next_ready_at()
                            .is_some_and(|t| t.max(blk.warm_up_until) <= now)
                        {
                            last = s;
                            break;
                        }
                    }
                    self.rr = (last + 1) % n;
                    self.last_slot = Some(last);
                    return self.commit_batch(now, ticks * chunk, out);
                }
            }
            // Partial rotation: batch one tick for each slot in the steady
            // prefix. Serial tick `j` picks the `j`-th runnable slot in
            // rotation order (intermediate non-runnable slots stay asleep —
            // the window ends before `wake_min` — and prefix ticks complete
            // nothing, so no barrier or block state changes either).
            let ticks = prefix_len
                .min(max_ticks)
                .min(limits.max_insts / chunk)
                .min(INSTS_CAP / chunk);
            if ticks < 2 {
                return None;
            }
            let mut remaining = ticks;
            let mut last = chosen_slot;
            let (mut b, mut w) = (bi, wi);
            for k in 0..n {
                if remaining == 0 {
                    break;
                }
                let blk = &mut self.blocks[b];
                let runnable = blk.warps()[w]
                    .next_ready_at()
                    .is_some_and(|t| t.max(blk.warm_up_until) <= now);
                if runnable {
                    let chunk32 = self.issue_chunk;
                    let warp = &mut blk.warps_mut()[w];
                    warp.phase = WarpPhase::Ready;
                    warp.done_in_seg += chunk32;
                    blk.add_insts(chunk32);
                    last = (chosen_slot + k) % n;
                    remaining -= 1;
                }
                w += 1;
                if w == wpb {
                    w = 0;
                    b += 1;
                    if b == nb {
                        b = 0;
                    }
                }
            }
            self.rr = (last + 1) % n;
            self.last_slot = Some(last);
            self.commit_batch(now, ticks * chunk, out)
        }
    }

    /// Book a committed batch of `insts` warp instructions starting at `now`
    /// into the SM-wide counters and return the next-action cycle.
    fn commit_batch(&mut self, now: u64, insts: u64, out: &mut SmOutput) -> Option<u64> {
        self.insts_issued_total += insts;
        // simlint: allow(as-narrowing) -- per-call batches are capped at INSTS_CAP (2^30) by the issue paths
        out.issued_insts += insts as u32;
        self.issue_free_at = now + self.issue_interval * insts;
        Some(self.issue_free_at.max(now + 1))
    }

    /// Resident blocks (engine internals: the parallel engine's
    /// kernel-finish lower-bound scan reads per-block progress).
    pub(crate) fn blocks(&self) -> &[BlockRun] {
        &self.blocks
    }

    /// Advance this SM from `start` through `bound` executing only *pure*
    /// ticks — ticks whose effects stay entirely inside the SM: compute
    /// issue, barrier arrival/release, L1-hit memory accesses, warp
    /// completions that do not finish the block. The parallel engine runs
    /// this concurrently on disjoint SM shards between epoch barriers.
    ///
    /// Each candidate tick is first *probed* on a clone of the selected
    /// warp. If the probe shows an interaction — a completed block (engine
    /// event + dispatch), a memory effect (functional memory + sanitizer),
    /// or an L1 miss (shared DRAM queue) — the SM is left exactly as the
    /// serial engine would find it at that cycle (no state, counter or
    /// scheduler-cursor changes from the probe) and `(now, issued)` is
    /// returned so the serial phase replays that tick with the shared
    /// subsystems in scope. Pure ticks are committed with the same
    /// bookkeeping, in the same order, as [`Sm::tick_bounded`], including
    /// its batched-issue fast path, so the post-epoch state is
    /// byte-identical to a serial replay.
    ///
    /// Returns `(next_action, issued_insts)`: the cycle at which the SM
    /// next needs the serial engine (`u64::MAX` when idle), and the warp
    /// instructions issued during the pure window.
    pub(crate) fn advance_pure(
        &mut self,
        start: u64,
        bound: u64,
        desc: Option<&KernelDesc>,
        seed: u64,
    ) -> (u64, u64) {
        let res = self.advance_pure_inner(start, bound, desc, seed);
        if let Some(probe) = &self.race_probe {
            // Claim this SM's local state in the shadow ownership map and
            // report the committed work, so a clean report proves the
            // oracle actually observed Phase-A traffic.
            probe.on_pure_window(self.id, res.1);
        }
        res
    }

    fn advance_pure_inner(
        &mut self,
        start: u64,
        bound: u64,
        desc: Option<&KernelDesc>,
        seed: u64,
    ) -> (u64, u64) {
        debug_assert!(
            self.preempt.is_none(),
            "parallel phase excludes preempting SMs"
        );
        let mut now = start;
        let mut issued: u64 = 0;
        loop {
            if now > bound {
                return (now, issued);
            }
            if self.blocks.is_empty() {
                return (u64::MAX, issued);
            }
            if now < self.halted_until {
                now = self.halted_until;
                continue;
            }
            // Barrier release is block-local and idempotent: if the tick at
            // `now` turns out to be an interaction, the serial replay finds
            // the barriers already released — exactly the state its own
            // release pass would have produced.
            for b in &mut self.blocks {
                if b.barrier_ready() {
                    b.release_barrier();
                }
            }
            if now < self.issue_free_at {
                now = self.issue_free_at;
                continue;
            }
            let desc = desc.expect("resident blocks require a kernel descriptor");
            let wpb = self.blocks[0].warps().len();
            let n = self.blocks.len() * wpb;
            let slot_ready = |slot: usize, blocks: &[BlockRun]| -> Option<u64> {
                let (bi, wi) = (slot / wpb, slot % wpb);
                blocks[bi].warps()[wi]
                    .next_ready_at()
                    .map(|t| t.max(blocks[bi].warm_up_until))
            };
            // Warp selection mirrors `tick_bounded`, except the cursor
            // update is deferred until the tick is known to be pure.
            let mut chosen: Option<(usize, usize)> = None;
            let mut commit_slot: Option<usize> = None;
            let mut earliest: u64 = u64::MAX;
            if self.sched == crate::config::WarpSched::GreedyThenOldest {
                if let Some(s) = self.last_slot.filter(|&s| s < n) {
                    if slot_ready(s, &self.blocks).is_some_and(|t| t <= now) {
                        chosen = Some((s / wpb, s % wpb));
                    }
                }
            }
            if chosen.is_none() {
                let start_slot = match self.sched {
                    crate::config::WarpSched::LooseRoundRobin => self.rr % n,
                    crate::config::WarpSched::GreedyThenOldest => 0,
                };
                let nb = self.blocks.len();
                let (mut b, mut w) = (start_slot / wpb, start_slot % wpb);
                for _ in 0..n {
                    let blk = &self.blocks[b];
                    let t = match blk.warps()[w].phase {
                        WarpPhase::Ready => Some(blk.warm_up_until),
                        WarpPhase::WaitMem(until) => Some(until.max(blk.warm_up_until)),
                        WarpPhase::AtBarrier | WarpPhase::Done => None,
                    };
                    if let Some(t) = t {
                        if t <= now {
                            chosen = Some((b, w));
                            commit_slot = Some(b * wpb + w);
                            break;
                        }
                        earliest = earliest.min(t);
                    }
                    w += 1;
                    if w == wpb {
                        w = 0;
                        b += 1;
                        if b == nb {
                            b = 0;
                        }
                    }
                }
            }
            let Some((bi, wi)) = chosen else {
                // `earliest == u64::MAX` falls out at the top of the loop as
                // an idle return once it exceeds `bound`.
                now = if earliest == u64::MAX {
                    return (u64::MAX, issued);
                } else {
                    earliest
                };
                continue;
            };
            // Probe the issue on a clone of the warp; nothing is committed
            // until the tick is classified.
            let segments = desc.program().segments();
            let blk = &self.blocks[bi];
            let mut probe = blk.warps()[wi].clone();
            let outcome = probe.issue(segments, blk.scaled_segs(), self.issue_chunk);
            let block_completes = outcome.done
                && blk
                    .warps()
                    .iter()
                    .enumerate()
                    .all(|(j, w)| j == wi || w.phase == WarpPhase::Done);
            let effectful = outcome.completed_segment.is_some_and(|ix| {
                matches!(
                    segments[ix],
                    Segment::GlobalStore { .. } | Segment::Atomic { .. }
                ) || (self.record_loads && matches!(segments[ix], Segment::GlobalLoad { .. }))
            });
            let mut mem_shared = false;
            if outcome.mem_bytes > 0 {
                let addr = hash_combine(&[
                    seed,
                    blk.id.kernel.0 as u64,
                    u64::from(blk.id.index),
                    wi as u64,
                    now,
                ]);
                let cacheable = !outcome.protect_store;
                let hit = cacheable
                    && crate::rng::unit_f64(hash_combine(&[addr, 0x11CA])) < self.l1_hit_fraction;
                mem_shared = !hit;
            }
            if block_completes || effectful || mem_shared {
                return (now, issued);
            }
            // Pure tick: commit the scheduler cursor exactly where the
            // serial selection would, then prefer the batched fast path
            // (identical to the serial engine's) before committing the
            // probed single-chunk issue.
            if let Some(s) = commit_slot {
                self.rr = (s + 1) % n;
                self.last_slot = Some(s);
            }
            let limits = TickLimits {
                horizon: bound,
                max_insts: u64::MAX,
                may_gain_blocks: false,
            };
            let mut out = SmOutput::default();
            if let Some(next) = self.try_issue_batch(now, bi, wi, segments, &limits, &mut out) {
                if let Some(cell) = &self.test_cell {
                    cell.bump(self.id, now);
                }
                issued += u64::from(out.issued_insts);
                now = next;
                continue;
            }
            if let Some(cell) = &self.test_cell {
                cell.bump(self.id, now);
            }
            let block = &mut self.blocks[bi];
            block.warps_mut()[wi] = probe;
            if outcome.insts > 0 {
                block.add_insts(outcome.insts);
                self.insts_issued_total += u64::from(outcome.insts);
                issued += u64::from(outcome.insts);
                self.issue_free_at = now + self.issue_interval * u64::from(outcome.insts);
            }
            debug_assert!(!outcome.protect_store, "protect stores always miss L1");
            if let Some(ix) = completed_segment_of(&outcome) {
                if desc.program().segment_non_idempotent(ix) {
                    block.past_idem_point = true;
                }
            }
            if outcome.mem_bytes > 0 {
                // Classified pure, so this access hit in the L1.
                self.l1_hits += 1;
                if outcome.mem_blocking && !outcome.done {
                    block.warps_mut()[wi].stall_until(now + self.l1_latency);
                }
            }
            now = self.issue_free_at.max(now + 1);
        }
    }
}

impl crate::component::Component for Sm {
    fn component_id(&self) -> crate::component::ComponentId {
        crate::component::ComponentId::Sm(self.id)
    }

    fn next_tick(&self) -> u64 {
        self.next_tick
    }

    fn set_next_tick(&mut self, t: u64) {
        self.next_tick = t;
    }

    fn tick(&mut self, ctx: crate::component::TickCtx<'_>) -> u64 {
        self.tick_bounded(
            ctx.now,
            ctx.desc,
            ctx.mem.expect("SM ticks need the memory subsystem"),
            ctx.seed,
            ctx.out,
            &ctx.limits,
        )
    }
}

/// The segment that `outcome`'s instructions came from, if instructions were
/// issued. `issue` advances past completed segments, so reconstruct from the
/// completed index or return `None` for barrier hits.
fn completed_segment_of(outcome: &crate::warp::IssueOutcome) -> Option<usize> {
    if outcome.insts == 0 {
        return None;
    }
    outcome.completed_segment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KernelDesc, Program, Segment};

    fn cfg() -> GpuConfig {
        GpuConfig {
            issue_chunk: 4,
            ..GpuConfig::tiny()
        }
    }

    fn save_cycles(cfg: &GpuConfig, d: &KernelDesc) -> u64 {
        cfg.sm_transfer_cycles(d.block_context_bytes())
    }

    fn desc(segs: Vec<Segment>) -> KernelDesc {
        KernelDesc::builder("k")
            .grid_blocks(64)
            .threads_per_block(64)
            .regs_per_thread(16)
            .program(Program::new(segs))
            .build()
            .unwrap()
    }

    fn run_to_empty(sm: &mut Sm, desc: &KernelDesc, mem: &mut MemSubsystem) -> (u64, SmOutput) {
        let mut all = SmOutput::default();
        let mut now = 0u64;
        for _ in 0..2_000_000 {
            let mut out = SmOutput::default();
            let next = sm.tick(now, Some(desc), mem, 1, &mut out);
            all.completed.extend(out.completed);
            all.effects.extend(out.effects);
            all.switched_out.extend(out.switched_out);
            all.issued_insts += out.issued_insts;
            if out.preempt_done.is_some() {
                all.preempt_done = out.preempt_done;
            }
            if sm.resident_count() == 0 {
                return (now, all);
            }
            assert_ne!(next, u64::MAX, "stuck with resident blocks");
            now = next.max(now + 1);
        }
        panic!("did not finish");
    }

    #[test]
    fn single_block_completes_with_exact_inst_count() {
        let cfg = cfg();
        let d = desc(vec![Segment::compute(100), Segment::store(10)]);
        let mut sm = Sm::new(0, &cfg);
        let mut mem = MemSubsystem::new(&cfg);
        sm.dispatch(BlockRun::new(
            BlockId {
                kernel: KernelId(0),
                index: 0,
            },
            &d,
            1,
            0,
        ));
        let (_, out) = run_to_empty(&mut sm, &d, &mut mem);
        assert_eq!(out.completed.len(), 1);
        let (_, insts, _) = out.completed[0];
        assert_eq!(insts, 110 * 2); // 2 warps of 64 threads
        assert_eq!(out.effects.len(), 2); // one store effect per warp
    }

    #[test]
    fn compute_bound_timing_matches_issue_model() {
        let cfg = cfg();
        let d = desc(vec![Segment::compute(1000)]);
        let mut sm = Sm::new(0, &cfg);
        let mut mem = MemSubsystem::new(&cfg);
        sm.dispatch(BlockRun::new(
            BlockId {
                kernel: KernelId(0),
                index: 0,
            },
            &d,
            1,
            0,
        ));
        let (end, out) = run_to_empty(&mut sm, &d, &mut mem);
        // 2 warps x 1000 insts x 4 cycles/inst = 8000 cycles of issue.
        let (_, insts, cycles) = out.completed[0];
        assert_eq!(insts, 2000);
        assert!((7_900..=8_200).contains(&cycles), "cycles={cycles}");
        assert!(end >= 7_900);
        assert_eq!(out.issued_insts, 2000);
    }

    #[test]
    fn memory_bound_kernel_is_slower_than_compute_bound() {
        let cfg = cfg();
        let d_c = desc(vec![Segment::compute(200)]);
        let d_m = desc(vec![Segment::load(200)]);
        let mut mem = MemSubsystem::new(&cfg);
        let mut sm = Sm::new(0, &cfg);
        sm.dispatch(BlockRun::new(
            BlockId {
                kernel: KernelId(0),
                index: 0,
            },
            &d_c,
            1,
            0,
        ));
        let (t_c, _) = run_to_empty(&mut sm, &d_c, &mut mem);
        let mut mem2 = MemSubsystem::new(&cfg);
        let mut sm2 = Sm::new(0, &cfg);
        sm2.dispatch(BlockRun::new(
            BlockId {
                kernel: KernelId(0),
                index: 0,
            },
            &d_m,
            1,
            0,
        ));
        let (t_m, _) = run_to_empty(&mut sm2, &d_m, &mut mem2);
        assert!(
            t_m > t_c * 2,
            "loads should stall: compute={t_c}, memory={t_m}"
        );
    }

    #[test]
    fn flush_removes_blocks_instantly() {
        let cfg = cfg();
        let d = desc(vec![Segment::compute(10_000)]);
        let mut sm = Sm::new(0, &cfg);
        let _mem = MemSubsystem::new(&cfg);
        for i in 0..2 {
            sm.dispatch(BlockRun::new(
                BlockId {
                    kernel: KernelId(0),
                    index: i,
                },
                &d,
                1,
                0,
            ));
        }
        let mut out = SmOutput::default();
        let plan = SmPreemptPlan::uniform([0, 1], Technique::Flush);
        let flushed = sm
            .begin_preempt(100, &plan, save_cycles(&cfg, &d), &mut out)
            .unwrap();
        assert_eq!(flushed.len(), 2);
        assert_eq!(sm.resident_count(), 0);
        assert_eq!(out.preempt_done, Some(0), "flush latency is zero");
    }

    #[test]
    fn switch_halts_for_save_then_snapshots() {
        let cfg = cfg();
        let d = desc(vec![Segment::compute(100_000)]);
        let mut sm = Sm::new(0, &cfg);
        let mut mem = MemSubsystem::new(&cfg);
        sm.dispatch(BlockRun::new(
            BlockId {
                kernel: KernelId(0),
                index: 0,
            },
            &d,
            1,
            0,
        ));
        // Make some progress first.
        let mut now = 0;
        for _ in 0..100 {
            let mut out = SmOutput::default();
            now = sm.tick(now, Some(&d), &mut mem, 1, &mut out).max(now + 1);
        }
        let mut out = SmOutput::default();
        let plan = SmPreemptPlan::uniform([0], Technique::Switch);
        sm.begin_preempt(now, &plan, save_cycles(&cfg, &d), &mut out)
            .unwrap();
        let save = cfg.sm_transfer_cycles(d.block_context_bytes());
        assert!(sm.halted_until() >= now + save);
        assert!(out.preempt_done.is_none());
        // Tick through the save.
        let mut done_latency = None;
        let mut switched = Vec::new();
        for _ in 0..10_000 {
            let mut o = SmOutput::default();
            let next = sm.tick(now, Some(&d), &mut mem, 1, &mut o);
            switched.extend(o.switched_out);
            if let Some(l) = o.preempt_done {
                done_latency = Some(l);
                break;
            }
            now = next.max(now + 1);
        }
        let lat = done_latency.expect("switch should complete");
        assert!(lat >= save, "latency {lat} < save {save}");
        assert_eq!(switched.len(), 1);
        assert!(switched[0].insts > 0, "progress preserved in snapshot");
    }

    #[test]
    fn drain_lets_blocks_finish() {
        let cfg = cfg();
        let d = desc(vec![Segment::compute(500)]);
        let mut sm = Sm::new(0, &cfg);
        let mut mem = MemSubsystem::new(&cfg);
        sm.dispatch(BlockRun::new(
            BlockId {
                kernel: KernelId(0),
                index: 0,
            },
            &d,
            1,
            0,
        ));
        let mut out = SmOutput::default();
        let plan = SmPreemptPlan::uniform([0], Technique::Drain);
        sm.begin_preempt(0, &plan, save_cycles(&cfg, &d), &mut out)
            .unwrap();
        assert!(out.preempt_done.is_none());
        let (end, all) = run_to_empty(&mut sm, &d, &mut mem);
        assert_eq!(all.completed.len(), 1, "drained block completes normally");
        assert!(all.preempt_done.is_some());
        assert!(end >= 500 * 2 * 4 - 100);
    }

    #[test]
    fn unsafe_flush_rejected_after_idem_point() {
        let cfg = cfg();
        let d = desc(vec![Segment::atomic(1), Segment::compute(100_000)]);
        let mut sm = Sm::new(0, &cfg);
        let mut mem = MemSubsystem::new(&cfg);
        sm.dispatch(BlockRun::new(
            BlockId {
                kernel: KernelId(0),
                index: 0,
            },
            &d,
            1,
            0,
        ));
        let mut now = 0;
        for _ in 0..50 {
            let mut out = SmOutput::default();
            now = sm.tick(now, Some(&d), &mut mem, 1, &mut out).max(now + 1);
        }
        assert!(sm.snapshot(now).blocks[0].past_idem_point);
        let mut out = SmOutput::default();
        let plan = SmPreemptPlan::uniform([0], Technique::Flush);
        let err = sm
            .begin_preempt(now, &plan, save_cycles(&cfg, &d), &mut out)
            .unwrap_err();
        assert_eq!(err, PreemptError::UnsafeFlush { block: 0 });
        // But an unsafe plan is accepted when explicitly allowed.
        let plan = SmPreemptPlan {
            allow_unsafe_flush: true,
            ..plan
        };
        assert!(sm
            .begin_preempt(now, &plan, save_cycles(&cfg, &d), &mut out)
            .is_ok());
    }

    #[test]
    fn plan_must_cover_all_resident_blocks() {
        let cfg = cfg();
        let d = desc(vec![Segment::compute(100)]);
        let mut sm = Sm::new(0, &cfg);
        for i in 0..3 {
            sm.dispatch(BlockRun::new(
                BlockId {
                    kernel: KernelId(0),
                    index: i,
                },
                &d,
                1,
                0,
            ));
        }
        let mut out = SmOutput::default();
        let plan = SmPreemptPlan::uniform([0, 1], Technique::Drain);
        let err = sm
            .begin_preempt(0, &plan, save_cycles(&cfg, &d), &mut out)
            .unwrap_err();
        assert_eq!(err, PreemptError::PlanMismatch { missing: vec![2] });
    }

    #[test]
    fn mixed_plan_flush_switch_drain() {
        let cfg = cfg();
        let d = desc(vec![Segment::compute(2_000)]);
        let mut sm = Sm::new(0, &cfg);
        let mut mem = MemSubsystem::new(&cfg);
        for i in 0..3 {
            sm.dispatch(BlockRun::new(
                BlockId {
                    kernel: KernelId(0),
                    index: i,
                },
                &d,
                1,
                0,
            ));
        }
        let mut out = SmOutput::default();
        let plan = SmPreemptPlan {
            entries: vec![
                (0, Technique::Flush),
                (1, Technique::Switch),
                (2, Technique::Drain),
            ],
            allow_unsafe_flush: false,
        };
        let flushed = sm
            .begin_preempt(0, &plan, save_cycles(&cfg, &d), &mut out)
            .unwrap();
        assert_eq!(flushed.len(), 1);
        assert_eq!(sm.resident_count(), 2);
        let (_, all) = run_to_empty(&mut sm, &d, &mut mem);
        assert_eq!(all.switched_out.len(), 1);
        assert_eq!(all.completed.len(), 1, "drained block completes");
        assert!(all.preempt_done.is_some());
    }

    #[test]
    fn cannot_dispatch_while_preempting() {
        let cfg = cfg();
        let d = desc(vec![Segment::compute(1_000)]);
        let mut sm = Sm::new(0, &cfg);
        sm.set_assigned(Some(KernelId(0)));
        sm.dispatch(BlockRun::new(
            BlockId {
                kernel: KernelId(0),
                index: 0,
            },
            &d,
            1,
            0,
        ));
        assert!(sm.can_dispatch(KernelId(0), 8));
        let mut out = SmOutput::default();
        sm.begin_preempt(
            0,
            &SmPreemptPlan::uniform([0], Technique::Drain),
            save_cycles(&cfg, &d),
            &mut out,
        )
        .unwrap();
        assert!(!sm.can_dispatch(KernelId(0), 8));
    }
}

#[cfg(test)]
mod sched_tests {
    use super::*;
    use crate::config::WarpSched;
    use crate::kernel::{KernelDesc, Program, Segment};

    fn desc(segs: Vec<Segment>) -> KernelDesc {
        KernelDesc::builder("k")
            .grid_blocks(64)
            .threads_per_block(64)
            .regs_per_thread(16)
            .program(Program::new(segs))
            .build()
            .unwrap()
    }

    fn run_until_done(cfg: &GpuConfig, d: &KernelDesc, blocks: u32) -> (u64, Sm) {
        let mut sm = Sm::new(0, cfg);
        let mut mem = MemSubsystem::new(cfg);
        for i in 0..blocks {
            sm.dispatch(BlockRun::new(
                BlockId {
                    kernel: KernelId(0),
                    index: i,
                },
                d,
                1,
                0,
            ));
        }
        let mut now = 0u64;
        for _ in 0..4_000_000 {
            let mut out = SmOutput::default();
            let next = sm.tick(now, Some(d), &mut mem, 1, &mut out);
            if sm.resident_count() == 0 {
                return (now, sm);
            }
            assert_ne!(next, u64::MAX);
            now = next.max(now + 1);
        }
        panic!("did not finish");
    }

    #[test]
    fn l1_hits_accelerate_loads() {
        let d = desc(vec![Segment::load(400)]);
        let cold = GpuConfig {
            l1_hit_fraction: 0.0,
            ..GpuConfig::tiny()
        };
        let warm = GpuConfig {
            l1_hit_fraction: 0.95,
            ..GpuConfig::tiny()
        };
        let (t_cold, sm_cold) = run_until_done(&cold, &d, 1);
        let (t_warm, sm_warm) = run_until_done(&warm, &d, 1);
        assert!(t_warm < t_cold / 2, "cold={t_cold}, warm={t_warm}");
        assert_eq!(sm_cold.l1_counters().0, 0);
        let (hits, misses) = sm_warm.l1_counters();
        assert!(hits > misses * 5, "hits={hits} misses={misses}");
    }

    #[test]
    fn l1_hit_rate_tracks_configured_fraction() {
        let d = desc(vec![Segment::load(2000)]);
        let cfg = GpuConfig {
            l1_hit_fraction: 0.5,
            ..GpuConfig::tiny()
        };
        let (_, sm) = run_until_done(&cfg, &d, 2);
        let (hits, misses) = sm.l1_counters();
        let rate = hits as f64 / (hits + misses) as f64;
        assert!((rate - 0.5).abs() < 0.1, "rate={rate}");
    }

    #[test]
    fn protect_store_bypasses_l1() {
        // All-hits config; the protect store must still reach memory.
        let d = desc(vec![Segment::ProtectStore, Segment::compute(4)]);
        let cfg = GpuConfig {
            l1_hit_fraction: 1.0,
            ..GpuConfig::tiny()
        };
        let (_, sm) = run_until_done(&cfg, &d, 1);
        let (hits, misses) = sm.l1_counters();
        assert_eq!(hits, 0);
        assert_eq!(misses, 2, "one protect store per warp");
    }

    #[test]
    fn gto_and_rr_complete_the_same_work() {
        let d = desc(vec![
            Segment::load(20),
            Segment::compute(300),
            Segment::store(8),
        ]);
        let rr = GpuConfig {
            warp_sched: WarpSched::LooseRoundRobin,
            ..GpuConfig::tiny()
        };
        let gto = GpuConfig {
            warp_sched: WarpSched::GreedyThenOldest,
            ..GpuConfig::tiny()
        };
        let (_, sm_rr) = run_until_done(&rr, &d, 4);
        let (_, sm_gto) = run_until_done(&gto, &d, 4);
        assert_eq!(sm_rr.insts_issued_total(), sm_gto.insts_issued_total());
    }

    #[test]
    fn gto_skews_block_progress_more_than_rr() {
        // Greedy scheduling races one block ahead; round-robin keeps blocks
        // in sync. Measure the spread of per-block progress mid-run.
        let d = desc(vec![Segment::compute(5_000)]);
        let spread = |sched: WarpSched| {
            let cfg = GpuConfig {
                warp_sched: sched,
                issue_chunk: 8,
                ..GpuConfig::tiny()
            };
            let mut sm = Sm::new(0, &cfg);
            let mut mem = MemSubsystem::new(&cfg);
            for i in 0..4 {
                sm.dispatch(BlockRun::new(
                    BlockId {
                        kernel: KernelId(0),
                        index: i,
                    },
                    &d,
                    1,
                    0,
                ));
            }
            let mut now = 0u64;
            for _ in 0..2_000 {
                let mut out = SmOutput::default();
                now = sm.tick(now, Some(&d), &mut mem, 1, &mut out).max(now + 1);
            }
            let snap = sm.snapshot(now);
            let max = snap.blocks.iter().map(|b| b.executed_insts).max().unwrap();
            let min = snap.blocks.iter().map(|b| b.executed_insts).min().unwrap();
            max - min
        };
        // Compute-only warps never stall, so GTO stays glued to warp 0 while
        // RR spreads issue evenly.
        assert!(spread(WarpSched::GreedyThenOldest) > spread(WarpSched::LooseRoundRobin) * 4);
    }
}
