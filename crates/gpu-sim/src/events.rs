//! Structured observability events and the ring-buffered event log.
//!
//! The engine reports end-of-run aggregates through [`crate::stats`]; this
//! module records the *individual decisions and transitions* behind them:
//! when each thread block became resident and why it left, when preemptions
//! were requested and completed, and — pushed in by the policy layer — the
//! Algorithm 1 inputs behind every per-block preemption decision (the
//! estimated switch/drain/flush costs and the technique that won).
//!
//! The log is **off by default and zero-cost while off**: the engine holds an
//! `Option<EventLog>` and every recording site is a single `is-some` check on
//! paths that already do per-block bookkeeping (dispatch, completion,
//! preemption boundaries) — never on the per-cycle hot path. Call
//! [`crate::Engine::enable_event_log`] to turn it on.
//!
//! Events are consumed in two ways:
//!
//! * [`crate::trace::chrome_trace_json`] renders the log as a Chrome-trace
//!   JSON file (one track per SM) for `chrome://tracing` / Perfetto;
//! * [`ObsEvent::to_json_line`] serialises single events as JSON lines for
//!   machine consumption (the `--events <path>` flag of the figure binaries).
//!
//! The JSON schemas are specified in `OBSERVABILITY.md` at the repository
//! root and covered by a golden-file test (`tests/observability.rs`).
//!
//! ## Ordering across execution modes
//!
//! The log is identical under all three engine execution modes
//! ([`crate::ExecMode`]): every event is recorded by a serial tick at a
//! definite `(cycle, SM index)` point, and the engine replays those ticks
//! in that lexicographic order even when SM shards advance on worker
//! threads between epoch barriers. Consumers may therefore rely on the
//! byte order of the log regardless of `ExecMode` or shard count; the
//! determinism argument lives in `PARALLELISM.md`.
//!
//! ```
//! use gpu_sim::{Engine, GpuConfig, KernelDesc, ObsEvent, Program, Segment};
//!
//! let mut engine = Engine::new(GpuConfig::tiny());
//! engine.enable_event_log(4096);
//! let k = engine.launch_kernel(
//!     KernelDesc::builder("demo")
//!         .grid_blocks(4)
//!         .threads_per_block(64)
//!         .program(Program::new(vec![Segment::compute(100)]))
//!         .build()
//!         .unwrap(),
//! );
//! engine.assign_sm(0, Some(k));
//! engine.run_until(1_000_000);
//! let log = engine.event_log().expect("enabled above");
//! let begins = log
//!     .iter()
//!     .filter(|e| matches!(e, ObsEvent::BlockBegin { .. }))
//!     .count();
//! assert_eq!(begins, 4, "every block's dispatch was recorded");
//! ```

use std::collections::VecDeque;

use crate::preempt::Technique;
use crate::KernelId;

/// The estimated cost of applying one preemption technique to one block, in
/// the engine's common units (cycles for latency, warp instructions for
/// throughput overhead).
///
/// ```
/// use gpu_sim::TechniqueEstimate;
///
/// let est = TechniqueEstimate { latency_cycles: 5_880, overhead_insts: 740 };
/// assert!(est.latency_cycles > est.overhead_insts);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TechniqueEstimate {
    /// Estimated preemption latency contribution, cycles.
    pub latency_cycles: u64,
    /// Estimated throughput overhead, warp instructions.
    pub overhead_insts: u64,
}

/// One per-block preemption decision: the technique Algorithm 1 chose and
/// every per-technique estimate it considered while choosing.
///
/// An estimate is `None` when the technique was not a candidate for the
/// block — flushing a block past its idempotence point, or draining with no
/// per-kernel statistics yet.
///
/// ```
/// use gpu_sim::{BlockDecision, Technique, TechniqueEstimate};
///
/// let d = BlockDecision {
///     block: 3,
///     chosen: Technique::Flush,
///     est_switch: Some(TechniqueEstimate { latency_cycles: 5_880, overhead_insts: 740 }),
///     est_drain: None,
///     est_flush: Some(TechniqueEstimate { latency_cycles: 0, overhead_insts: 120 }),
/// };
/// assert_eq!(d.chosen_estimate().unwrap().overhead_insts, 120);
/// assert_eq!(d.slack_cycles(21_000), 21_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockDecision {
    /// Grid block index the decision applies to.
    pub block: u32,
    /// The technique Algorithm 1 picked for this block.
    pub chosen: Technique,
    /// Estimated cost of context-switching the block (always estimable).
    pub est_switch: Option<TechniqueEstimate>,
    /// Estimated cost of draining the block, when statistics allowed one.
    pub est_drain: Option<TechniqueEstimate>,
    /// Estimated cost of flushing the block, when the block was flushable.
    pub est_flush: Option<TechniqueEstimate>,
}

impl BlockDecision {
    /// The estimate behind the chosen technique, if one was recorded.
    pub fn chosen_estimate(&self) -> Option<TechniqueEstimate> {
        match self.chosen {
            Technique::Switch => self.est_switch,
            Technique::Drain => self.est_drain,
            Technique::Flush => self.est_flush,
        }
    }

    /// Deadline slack of the chosen technique against `limit_cycles`:
    /// `limit - estimated latency` (negative when the estimate already
    /// misses the limit; `limit` itself when no estimate was recorded).
    pub fn slack_cycles(&self, limit_cycles: u64) -> i64 {
        let est = self
            .chosen_estimate()
            .map(|e| e.latency_cycles)
            .unwrap_or(0);
        limit_cycles as i64 - est as i64
    }
}

/// Why a thread block left its SM.
///
/// ```
/// use gpu_sim::BlockExit;
///
/// assert_eq!(BlockExit::Completed.as_str(), "completed");
/// assert_eq!(BlockExit::Switched.as_str(), "switched");
/// assert_eq!(BlockExit::Flushed.as_str(), "flushed");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockExit {
    /// The block ran to completion (naturally or under a drain).
    Completed,
    /// The block's context was saved by a context switch.
    Switched,
    /// The block was dropped by a flush; its work is discarded.
    Flushed,
}

impl BlockExit {
    /// Stable lower-case name used in the JSON schemas.
    pub fn as_str(&self) -> &'static str {
        match self {
            BlockExit::Completed => "completed",
            BlockExit::Switched => "switched",
            BlockExit::Flushed => "flushed",
        }
    }
}

/// Why an admission-control layer shed (rejected) a serving request.
///
/// Recorded by the serving front-end (see
/// [`crate::Engine::record_request_shed`]); the engine itself never sheds.
///
/// ```
/// use gpu_sim::ShedReason;
///
/// assert_eq!(ShedReason::QueueFull.as_str(), "queue_full");
/// assert_eq!(ShedReason::Infeasible.as_str(), "infeasible");
/// assert_eq!(ShedReason::Late.as_str(), "late");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The request's tenant queue was at its admission cap.
    QueueFull,
    /// The backlog already made the request's deadline unreachable at
    /// arrival time.
    Infeasible,
    /// The request waited in an admitted queue until its deadline became
    /// unreachable, and was dropped at dispatch time.
    Late,
}

impl ShedReason {
    /// Stable lower-case name used in the JSON schemas.
    pub fn as_str(&self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue_full",
            ShedReason::Infeasible => "infeasible",
            ShedReason::Late => "late",
        }
    }
}

/// A timestamped observability event.
///
/// Every variant carries the cycle it happened at, the SM it happened on and
/// the kernel involved; see each variant for its payload. The JSON-lines
/// rendering ([`ObsEvent::to_json_line`]) is schema-stable and documented in
/// `OBSERVABILITY.md`.
///
/// ```
/// use gpu_sim::{KernelId, ObsEvent};
///
/// let ev = ObsEvent::PreemptRequested {
///     cycle: 100,
///     sm: 2,
///     kernel: KernelId(0),
///     blocks: 4,
/// };
/// assert_eq!(ev.cycle(), 100);
/// assert_eq!(ev.sm(), 2);
/// assert_eq!(ev.kind(), "preempt_requested");
/// assert!(ev.to_json_line().starts_with("{\"kind\":\"preempt_requested\""));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObsEvent {
    /// A thread block became resident on an SM.
    BlockBegin {
        /// Dispatch cycle.
        cycle: u64,
        /// Receiving SM.
        sm: usize,
        /// Owning kernel.
        kernel: KernelId,
        /// Grid block index.
        block: u32,
        /// Whether the block resumed from a saved context (vs. starting
        /// fresh or restarting after a flush).
        resumed: bool,
    },
    /// A thread block left its SM.
    BlockEnd {
        /// Exit cycle.
        cycle: u64,
        /// SM the block was resident on.
        sm: usize,
        /// Owning kernel.
        kernel: KernelId,
        /// Grid block index.
        block: u32,
        /// Why the block left.
        exit: BlockExit,
        /// Warp instructions attributable to the residency: executed
        /// instructions for `Completed`/`Switched`, *discarded* instructions
        /// for `Flushed`.
        insts: u64,
    },
    /// A preemption plan started executing on an SM.
    PreemptRequested {
        /// Request cycle.
        cycle: u64,
        /// The SM being vacated.
        sm: usize,
        /// The kernel being evicted.
        kernel: KernelId,
        /// Resident blocks covered by the plan.
        blocks: u32,
    },
    /// An SM preemption finished; the SM is empty.
    PreemptCompleted {
        /// Completion cycle.
        cycle: u64,
        /// The vacated SM.
        sm: usize,
        /// The evicted kernel.
        kernel: KernelId,
        /// Request-to-vacated latency, cycles.
        latency_cycles: u64,
    },
    /// One per-block Algorithm 1 decision, recorded by the policy layer
    /// (see [`crate::Engine::record_decision`]) just before the plan runs.
    Decision {
        /// Decision cycle (the preemption request time).
        cycle: u64,
        /// SM the block is resident on.
        sm: usize,
        /// Kernel the block belongs to.
        kernel: KernelId,
        /// The latency constraint the decision was made under, cycles.
        limit_cycles: u64,
        /// Deadline slack of the chosen technique, cycles (may be negative).
        slack_cycles: i64,
        /// The per-block decision record.
        decision: BlockDecision,
    },
    /// A snapshot of the online cost estimator's per-kernel block-length
    /// distribution, recorded by the policy layer (see
    /// [`crate::Engine::record_estimator_update`]) when it consults the
    /// estimator for a selection request. Kernel-wide rather than SM-scoped:
    /// [`ObsEvent::sm`] reports 0 for this variant.
    EstimatorUpdate {
        /// Cycle the estimator was consulted at.
        cycle: u64,
        /// Kernel whose distribution was consulted.
        kernel: KernelId,
        /// Completed blocks observed so far.
        samples: u64,
        /// Mean per-block instructions, rounded to an integer.
        mean_tb_insts: u64,
        /// Tracked risk-quantile of per-block instructions, rounded; 0 while
        /// no quantile estimate exists (thin samples or a static estimator).
        quantile_tb_insts: u64,
        /// Configured risk quantile, percent (e.g. 95 for p95).
        risk_pct: u32,
    },
    /// An open-loop serving request arrived at the front-end, recorded by
    /// the serving layer (see [`crate::Engine::record_request_arrival`]).
    /// Request-stream events are GPU-wide, not SM- or kernel-scoped:
    /// [`ObsEvent::sm`] reports 0 and [`ObsEvent::kernel`] reports
    /// [`KernelId::NONE`] for this variant.
    RequestArrival {
        /// Arrival cycle.
        cycle: u64,
        /// Monotonic request id within the run.
        request: u64,
        /// Owning tenant index.
        tenant: u32,
        /// Deadline-class index within the serving workload.
        class: u32,
        /// Absolute deadline, cycles.
        deadline_cycle: u64,
    },
    /// The admission controller accepted a request into its tenant queue.
    /// GPU-wide like [`ObsEvent::RequestArrival`].
    RequestAdmitted {
        /// Admission cycle (same as the arrival cycle).
        cycle: u64,
        /// The admitted request's id.
        request: u64,
        /// Owning tenant index.
        tenant: u32,
        /// The tenant queue's depth after admission.
        queued: u32,
    },
    /// The admission controller shed (rejected or dropped) a request.
    /// GPU-wide like [`ObsEvent::RequestArrival`].
    RequestShed {
        /// Shed cycle (arrival time for [`ShedReason::QueueFull`] /
        /// [`ShedReason::Infeasible`], dispatch time for
        /// [`ShedReason::Late`]).
        cycle: u64,
        /// The shed request's id.
        request: u64,
        /// Owning tenant index.
        tenant: u32,
        /// Why the request was shed.
        reason: ShedReason,
    },
}

impl ObsEvent {
    /// The cycle the event happened at.
    pub fn cycle(&self) -> u64 {
        match *self {
            ObsEvent::BlockBegin { cycle, .. }
            | ObsEvent::BlockEnd { cycle, .. }
            | ObsEvent::PreemptRequested { cycle, .. }
            | ObsEvent::PreemptCompleted { cycle, .. }
            | ObsEvent::Decision { cycle, .. }
            | ObsEvent::EstimatorUpdate { cycle, .. }
            | ObsEvent::RequestArrival { cycle, .. }
            | ObsEvent::RequestAdmitted { cycle, .. }
            | ObsEvent::RequestShed { cycle, .. } => cycle,
        }
    }

    /// The SM the event happened on. Kernel-wide or GPU-wide events
    /// ([`ObsEvent::EstimatorUpdate`] and the request-stream variants) are
    /// not SM-scoped and report 0.
    pub fn sm(&self) -> usize {
        match *self {
            ObsEvent::BlockBegin { sm, .. }
            | ObsEvent::BlockEnd { sm, .. }
            | ObsEvent::PreemptRequested { sm, .. }
            | ObsEvent::PreemptCompleted { sm, .. }
            | ObsEvent::Decision { sm, .. } => sm,
            ObsEvent::EstimatorUpdate { .. }
            | ObsEvent::RequestArrival { .. }
            | ObsEvent::RequestAdmitted { .. }
            | ObsEvent::RequestShed { .. } => 0,
        }
    }

    /// The kernel the event involves. Request-stream events precede any
    /// kernel launch and report the [`KernelId::NONE`] sentinel.
    pub fn kernel(&self) -> KernelId {
        match *self {
            ObsEvent::BlockBegin { kernel, .. }
            | ObsEvent::BlockEnd { kernel, .. }
            | ObsEvent::PreemptRequested { kernel, .. }
            | ObsEvent::PreemptCompleted { kernel, .. }
            | ObsEvent::Decision { kernel, .. }
            | ObsEvent::EstimatorUpdate { kernel, .. } => kernel,
            ObsEvent::RequestArrival { .. }
            | ObsEvent::RequestAdmitted { .. }
            | ObsEvent::RequestShed { .. } => KernelId::NONE,
        }
    }

    /// Stable snake-case discriminant name (the `kind` field of the JSON
    /// rendering).
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::BlockBegin { .. } => "block_begin",
            ObsEvent::BlockEnd { .. } => "block_end",
            ObsEvent::PreemptRequested { .. } => "preempt_requested",
            ObsEvent::PreemptCompleted { .. } => "preempt_completed",
            ObsEvent::Decision { .. } => "decision",
            ObsEvent::EstimatorUpdate { .. } => "estimator_update",
            ObsEvent::RequestArrival { .. } => "request_arrival",
            ObsEvent::RequestAdmitted { .. } => "request_admitted",
            ObsEvent::RequestShed { .. } => "request_shed",
        }
    }

    /// Serialise the event as one line of JSON (no trailing newline).
    ///
    /// Field order is fixed, all numbers are integers, and the schema is
    /// documented in `OBSERVABILITY.md`; the output is byte-stable for a
    /// given event.
    pub fn to_json_line(&self) -> String {
        fn est(e: &Option<TechniqueEstimate>) -> String {
            match e {
                None => "null".to_string(),
                Some(t) => format!(
                    "{{\"latency_cycles\":{},\"overhead_insts\":{}}}",
                    t.latency_cycles, t.overhead_insts
                ),
            }
        }
        match *self {
            ObsEvent::BlockBegin {
                cycle,
                sm,
                kernel,
                block,
                resumed,
            } => format!(
                "{{\"kind\":\"block_begin\",\"cycle\":{cycle},\"sm\":{sm},\
                 \"kernel\":{},\"block\":{block},\"resumed\":{resumed}}}",
                kernel.0
            ),
            ObsEvent::BlockEnd {
                cycle,
                sm,
                kernel,
                block,
                exit,
                insts,
            } => format!(
                "{{\"kind\":\"block_end\",\"cycle\":{cycle},\"sm\":{sm},\
                 \"kernel\":{},\"block\":{block},\"exit\":\"{}\",\"insts\":{insts}}}",
                kernel.0,
                exit.as_str()
            ),
            ObsEvent::PreemptRequested {
                cycle,
                sm,
                kernel,
                blocks,
            } => format!(
                "{{\"kind\":\"preempt_requested\",\"cycle\":{cycle},\"sm\":{sm},\
                 \"kernel\":{},\"blocks\":{blocks}}}",
                kernel.0
            ),
            ObsEvent::PreemptCompleted {
                cycle,
                sm,
                kernel,
                latency_cycles,
            } => format!(
                "{{\"kind\":\"preempt_completed\",\"cycle\":{cycle},\"sm\":{sm},\
                 \"kernel\":{},\"latency_cycles\":{latency_cycles}}}",
                kernel.0
            ),
            ObsEvent::Decision {
                cycle,
                sm,
                kernel,
                limit_cycles,
                slack_cycles,
                decision,
            } => format!(
                "{{\"kind\":\"decision\",\"cycle\":{cycle},\"sm\":{sm},\
                 \"kernel\":{},\"block\":{},\"chosen\":\"{}\",\
                 \"limit_cycles\":{limit_cycles},\"slack_cycles\":{slack_cycles},\
                 \"est\":{{\"switch\":{},\"drain\":{},\"flush\":{}}}}}",
                kernel.0,
                decision.block,
                decision.chosen,
                est(&decision.est_switch),
                est(&decision.est_drain),
                est(&decision.est_flush),
            ),
            ObsEvent::EstimatorUpdate {
                cycle,
                kernel,
                samples,
                mean_tb_insts,
                quantile_tb_insts,
                risk_pct,
            } => format!(
                "{{\"kind\":\"estimator_update\",\"cycle\":{cycle},\
                 \"kernel\":{},\"samples\":{samples},\
                 \"mean_tb_insts\":{mean_tb_insts},\
                 \"quantile_tb_insts\":{quantile_tb_insts},\
                 \"risk_pct\":{risk_pct}}}",
                kernel.0
            ),
            ObsEvent::RequestArrival {
                cycle,
                request,
                tenant,
                class,
                deadline_cycle,
            } => format!(
                "{{\"kind\":\"request_arrival\",\"cycle\":{cycle},\
                 \"request\":{request},\"tenant\":{tenant},\"class\":{class},\
                 \"deadline_cycle\":{deadline_cycle}}}"
            ),
            ObsEvent::RequestAdmitted {
                cycle,
                request,
                tenant,
                queued,
            } => format!(
                "{{\"kind\":\"request_admitted\",\"cycle\":{cycle},\
                 \"request\":{request},\"tenant\":{tenant},\"queued\":{queued}}}"
            ),
            ObsEvent::RequestShed {
                cycle,
                request,
                tenant,
                reason,
            } => format!(
                "{{\"kind\":\"request_shed\",\"cycle\":{cycle},\
                 \"request\":{request},\"tenant\":{tenant},\"reason\":\"{}\"}}",
                reason.as_str()
            ),
        }
    }
}

/// A bounded, ring-buffered log of [`ObsEvent`]s.
///
/// When the log is full the *oldest* event is dropped to make room and the
/// drop is counted, so a long run with a small capacity keeps the most
/// recent window of activity and reports exactly how much history it shed.
///
/// ```
/// use gpu_sim::{EventLog, KernelId, ObsEvent};
///
/// let mut log = EventLog::new(2);
/// for cycle in 0..5 {
///     log.push(ObsEvent::PreemptRequested { cycle, sm: 0, kernel: KernelId(0), blocks: 1 });
/// }
/// assert_eq!(log.len(), 2);
/// assert_eq!(log.dropped(), 3);
/// // The survivors are the newest events, oldest-first.
/// let cycles: Vec<u64> = log.iter().map(|e| e.cycle()).collect();
/// assert_eq!(cycles, vec![3, 4]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EventLog {
    cap: usize,
    buf: VecDeque<ObsEvent>,
    dropped: u64,
}

impl EventLog {
    /// Create a log holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        EventLog {
            cap,
            buf: VecDeque::with_capacity(cap.min(64 * 1024)),
            dropped: 0,
        }
    }

    /// The maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Append an event, evicting the oldest one if the ring is full.
    pub fn push(&mut self, ev: ObsEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Iterate over the retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &ObsEvent> {
        self.buf.iter()
    }

    /// Serialise every retained event as JSON lines (one event per line,
    /// oldest first, trailing newline). See `OBSERVABILITY.md` for the
    /// per-event schema.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for ev in &self.buf {
            out.push_str(&ev.to_json_line());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64) -> ObsEvent {
        ObsEvent::PreemptCompleted {
            cycle,
            sm: 1,
            kernel: KernelId(2),
            latency_cycles: 7,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut log = EventLog::new(3);
        for c in 0..10 {
            log.push(ev(c));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 7);
        let cycles: Vec<u64> = log.iter().map(|e| e.cycle()).collect();
        assert_eq!(cycles, vec![7, 8, 9]);
        assert_eq!(log.capacity(), 3);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut log = EventLog::new(0);
        assert_eq!(log.capacity(), 1);
        log.push(ev(1));
        log.push(ev(2));
        assert_eq!(log.len(), 1);
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn accessors_cover_every_variant() {
        let d = BlockDecision {
            block: 9,
            chosen: Technique::Drain,
            est_switch: Some(TechniqueEstimate {
                latency_cycles: 100,
                overhead_insts: 50,
            }),
            est_drain: Some(TechniqueEstimate {
                latency_cycles: 30,
                overhead_insts: 0,
            }),
            est_flush: None,
        };
        let events = [
            ObsEvent::BlockBegin {
                cycle: 1,
                sm: 2,
                kernel: KernelId(3),
                block: 4,
                resumed: false,
            },
            ObsEvent::BlockEnd {
                cycle: 1,
                sm: 2,
                kernel: KernelId(3),
                block: 4,
                exit: BlockExit::Flushed,
                insts: 5,
            },
            ObsEvent::PreemptRequested {
                cycle: 1,
                sm: 2,
                kernel: KernelId(3),
                blocks: 6,
            },
            ObsEvent::PreemptCompleted {
                cycle: 1,
                sm: 2,
                kernel: KernelId(3),
                latency_cycles: 7,
            },
            ObsEvent::Decision {
                cycle: 1,
                sm: 2,
                kernel: KernelId(3),
                limit_cycles: 40,
                slack_cycles: 10,
                decision: d,
            },
        ];
        for e in &events {
            assert_eq!(e.cycle(), 1);
            assert_eq!(e.sm(), 2);
            assert_eq!(e.kernel(), KernelId(3));
            assert!(!e.kind().is_empty());
        }
        // EstimatorUpdate is kernel-wide: the SM accessor reports 0.
        let eu = ObsEvent::EstimatorUpdate {
            cycle: 1,
            kernel: KernelId(3),
            samples: 40,
            mean_tb_insts: 1000,
            quantile_tb_insts: 1090,
            risk_pct: 95,
        };
        assert_eq!(eu.cycle(), 1);
        assert_eq!(eu.sm(), 0);
        assert_eq!(eu.kernel(), KernelId(3));
        assert_eq!(eu.kind(), "estimator_update");
        assert_eq!(d.chosen_estimate().unwrap().latency_cycles, 30);
        assert_eq!(d.slack_cycles(40), 10);
        assert_eq!(d.slack_cycles(10), -20);
        // Request-stream events are GPU-wide: sm() is 0 and kernel() is the
        // NONE sentinel.
        let reqs = [
            ObsEvent::RequestArrival {
                cycle: 1,
                request: 5,
                tenant: 2,
                class: 0,
                deadline_cycle: 9000,
            },
            ObsEvent::RequestAdmitted {
                cycle: 1,
                request: 5,
                tenant: 2,
                queued: 3,
            },
            ObsEvent::RequestShed {
                cycle: 1,
                request: 5,
                tenant: 2,
                reason: ShedReason::QueueFull,
            },
        ];
        for e in &reqs {
            assert_eq!(e.cycle(), 1);
            assert_eq!(e.sm(), 0);
            assert_eq!(e.kernel(), KernelId::NONE);
            assert!(e.kind().starts_with("request_"));
        }
    }

    #[test]
    fn request_json_lines_are_schema_stable() {
        let arrival = ObsEvent::RequestArrival {
            cycle: 1400,
            request: 17,
            tenant: 1,
            class: 2,
            deadline_cycle: 281_400,
        };
        assert_eq!(
            arrival.to_json_line(),
            "{\"kind\":\"request_arrival\",\"cycle\":1400,\"request\":17,\
             \"tenant\":1,\"class\":2,\"deadline_cycle\":281400}"
        );
        let admitted = ObsEvent::RequestAdmitted {
            cycle: 1400,
            request: 17,
            tenant: 1,
            queued: 4,
        };
        assert_eq!(
            admitted.to_json_line(),
            "{\"kind\":\"request_admitted\",\"cycle\":1400,\"request\":17,\
             \"tenant\":1,\"queued\":4}"
        );
        let shed = ObsEvent::RequestShed {
            cycle: 1400,
            request: 18,
            tenant: 0,
            reason: ShedReason::Infeasible,
        };
        assert_eq!(
            shed.to_json_line(),
            "{\"kind\":\"request_shed\",\"cycle\":1400,\"request\":18,\
             \"tenant\":0,\"reason\":\"infeasible\"}"
        );
    }

    #[test]
    fn estimator_update_json_is_schema_stable() {
        let ev = ObsEvent::EstimatorUpdate {
            cycle: 2048,
            kernel: KernelId(1),
            samples: 64,
            mean_tb_insts: 975,
            quantile_tb_insts: 1120,
            risk_pct: 95,
        };
        assert_eq!(
            ev.to_json_line(),
            "{\"kind\":\"estimator_update\",\"cycle\":2048,\"kernel\":1,\
             \"samples\":64,\"mean_tb_insts\":975,\"quantile_tb_insts\":1120,\
             \"risk_pct\":95}"
        );
    }

    #[test]
    fn json_lines_are_schema_stable() {
        let d = BlockDecision {
            block: 2,
            chosen: Technique::Flush,
            est_switch: Some(TechniqueEstimate {
                latency_cycles: 5880,
                overhead_insts: 740,
            }),
            est_drain: None,
            est_flush: Some(TechniqueEstimate {
                latency_cycles: 0,
                overhead_insts: 120,
            }),
        };
        let ev = ObsEvent::Decision {
            cycle: 100,
            sm: 1,
            kernel: KernelId(0),
            limit_cycles: 21_000,
            slack_cycles: 21_000,
            decision: d,
        };
        assert_eq!(
            ev.to_json_line(),
            "{\"kind\":\"decision\",\"cycle\":100,\"sm\":1,\"kernel\":0,\
             \"block\":2,\"chosen\":\"flush\",\"limit_cycles\":21000,\
             \"slack_cycles\":21000,\"est\":{\"switch\":{\"latency_cycles\":5880,\
             \"overhead_insts\":740},\"drain\":null,\"flush\":\
             {\"latency_cycles\":0,\"overhead_insts\":120}}}"
        );
        let mut log = EventLog::new(8);
        log.push(ev);
        let lines = log.to_json_lines();
        assert!(lines.ends_with('\n'));
        assert_eq!(lines.lines().count(), 1);
    }
}
