//! Heterogeneous engine participants behind one calendar interface.
//!
//! The engine's event calendar used to schedule *SMs only*: a binary heap of
//! `(cycle, sm_index)` pairs. Multi-GPU scale-out and memory-side modelling
//! both need other kinds of participants on the same calendar, so the
//! calendar is now keyed by `(cycle, `[`ComponentId`]`)` and every
//! participant — the thread-block dispatcher, each SM, each memory
//! partition — implements the [`Component`] trait.
//!
//! # The merge-key argument
//!
//! All three execution modes ([`crate::ExecMode`]) must stay byte-identical,
//! so the component ordering at a tied cycle has to reproduce the order the
//! legacy loop produced implicitly:
//!
//! 1. **Dispatcher first.** The legacy loop ran the all-SM dispatch sweep at
//!    the top of every iteration (whenever the dirty flag was set), i.e.
//!    *before* popping any SM due at the same — or any later — cycle. The
//!    dispatcher is armed at the cycle the dirty transition happens, and
//!    every pending calendar entry is at or after the current cycle, so
//!    sorting [`ComponentId::Dispatcher`] before everything else at a tied
//!    cycle is exactly the legacy "sweep before pop" order.
//! 2. **SMs by index.** Unchanged from the `(cycle, sm)` calendar: within a
//!    cycle the lowest SM index ticks first, matching the legacy linear
//!    min-scan.
//! 3. **Memory partitions last.** Partition ticks only retire completed
//!    requests into partition-local statistics; they touch nothing an SM
//!    tick reads, so their position within a cycle is unobservable — they
//!    sort after the SMs by construction of the enum order.
//!
//! The derived `Ord` on [`ComponentId`] encodes all of this: variants
//! compare by declaration order, then by payload.

use crate::sm::{SmOutput, TickLimits};
use crate::{KernelDesc, MemSubsystem};

/// Stable calendar identity of an engine participant.
///
/// The derived ordering is the tie-break of the calendar's
/// `(cycle, component)` merge key — see the [module docs](self) for why the
/// declaration order is load-bearing.
///
/// ```
/// use gpu_sim::component::ComponentId;
///
/// // Dispatcher < any SM < any memory partition at a tied cycle.
/// assert!(ComponentId::Dispatcher < ComponentId::Sm(0));
/// assert!(ComponentId::Sm(31) < ComponentId::MemPartition(0));
/// assert!(ComponentId::Sm(1) < ComponentId::Sm(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ComponentId {
    /// The thread-block dispatcher: fills free SM slots from the kernels'
    /// block queues. Sorts before every other component at a tied cycle.
    Dispatcher,
    /// A streaming multiprocessor, by index.
    Sm(usize),
    /// A memory partition (L2 bank + controller), by index.
    MemPartition(usize),
}

/// Everything a component may touch while ticking, borrowed from the engine
/// for the duration of one tick.
///
/// Components differ in what they need: an SM consumes all of it, a memory
/// partition only `now`. Fields a component kind never uses are simply left
/// `None`/default by the engine.
#[derive(Debug)]
pub struct TickCtx<'a> {
    /// The cycle the component is being advanced to.
    pub now: u64,
    /// Engine determinism seed.
    pub seed: u64,
    /// Descriptor of the kernel resident on the component (SMs only).
    pub desc: Option<&'a KernelDesc>,
    /// The shared memory subsystem (SMs only; a partition *is* memory-side
    /// state and must not re-borrow the subsystem it lives in).
    pub mem: Option<&'a mut MemSubsystem>,
    /// Sink for everything observable the tick produced.
    pub out: &'a mut SmOutput,
    /// Bounds on how far the tick may batch ahead.
    pub limits: TickLimits,
}

/// A schedulable participant of the engine's event calendar.
///
/// The calendar holds `(cycle, ComponentId)` entries with lazy
/// invalidation: each component's [`next_tick`](Component::next_tick) is
/// authoritative and stale heap entries are discarded on peek. All
/// `next_tick` moves go through [`set_next_tick`](Component::set_next_tick)
/// on the engine's wake path so heap and component never disagree.
///
/// [`tick`](Component::tick) advances the component to `ctx.now` and
/// returns the next cycle it needs the calendar (`u64::MAX` when idle).
/// One component is special-cased by the engine: the dispatcher's tick
/// spans *every* SM and kernel queue, so the engine routes it to its
/// all-SM dispatch sweep rather than through the trait object — the
/// [`TbDispatcher`] component carries only the calendar arming state.
pub trait Component {
    /// This component's calendar identity and merge-key position.
    fn component_id(&self) -> ComponentId;

    /// The next cycle this component has work, `u64::MAX` when idle.
    fn next_tick(&self) -> u64;

    /// Move the authoritative next-tick time (engine wake path only).
    fn set_next_tick(&mut self, t: u64);

    /// Advance to `ctx.now`; returns the new next-tick time.
    fn tick(&mut self, ctx: TickCtx<'_>) -> u64;
}

/// The thread-block dispatcher as a calendar component.
///
/// Replaces the engine's old `dispatch_dirty: bool`: instead of a flag the
/// run loop checks at the top of every iteration, a dispatch-relevant
/// transition *arms* the dispatcher at the cycle it happened, and the
/// calendar pops it — before any SM due at the same or a later cycle, per
/// the merge-key ordering — to run the sweep.
#[derive(Debug, Clone)]
pub struct TbDispatcher {
    next_tick: u64,
}

impl TbDispatcher {
    /// A dispatcher armed for cycle 0 (a fresh engine must sweep once).
    pub fn new() -> Self {
        TbDispatcher { next_tick: 0 }
    }

    /// Whether a sweep is pending.
    pub fn armed(&self) -> bool {
        self.next_tick != u64::MAX
    }

    /// Request a sweep at `cycle` (keeps an earlier pending request).
    pub fn arm(&mut self, cycle: u64) {
        self.next_tick = self.next_tick.min(cycle);
    }

    /// Clear the pending sweep (it is about to run).
    pub fn disarm(&mut self) {
        self.next_tick = u64::MAX;
    }
}

impl Default for TbDispatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl Component for TbDispatcher {
    fn component_id(&self) -> ComponentId {
        ComponentId::Dispatcher
    }

    fn next_tick(&self) -> u64 {
        self.next_tick
    }

    fn set_next_tick(&mut self, t: u64) {
        self.next_tick = t;
    }

    fn tick(&mut self, _ctx: TickCtx<'_>) -> u64 {
        // The sweep itself spans all SMs and kernel queues; the engine runs
        // it (`Engine::dispatch_all`) when this component pops. Ticking the
        // component only consumes the arming.
        self.disarm();
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_key_orders_dispatcher_then_sms_then_partitions() {
        let mut ids = vec![
            ComponentId::MemPartition(1),
            ComponentId::Sm(2),
            ComponentId::Dispatcher,
            ComponentId::MemPartition(0),
            ComponentId::Sm(0),
        ];
        ids.sort();
        assert_eq!(
            ids,
            vec![
                ComponentId::Dispatcher,
                ComponentId::Sm(0),
                ComponentId::Sm(2),
                ComponentId::MemPartition(0),
                ComponentId::MemPartition(1),
            ]
        );
    }

    #[test]
    fn dispatcher_arming_keeps_earliest_request() {
        let mut d = TbDispatcher::new();
        assert!(d.armed(), "fresh engines must sweep once");
        d.disarm();
        assert!(!d.armed());
        d.arm(100);
        d.arm(200);
        assert_eq!(d.next_tick(), 100, "earlier arming wins");
        d.arm(50);
        assert_eq!(d.next_tick(), 50);
    }

    #[test]
    fn tied_cycle_keys_sort_by_component() {
        let a = (10u64, ComponentId::Dispatcher);
        let b = (10u64, ComponentId::Sm(0));
        let c = (10u64, ComponentId::MemPartition(0));
        let d = (9u64, ComponentId::MemPartition(3));
        let mut keys = vec![c, a, b, d];
        keys.sort();
        assert_eq!(keys, vec![d, a, b, c], "cycle first, then component");
    }
}
