//! Statistics counters.

use crate::preempt::Technique;

/// Per-kernel-instance statistics.
#[derive(Debug, Clone, Default)]
pub struct KernelStats {
    /// Kernel name (copied from the descriptor for reporting).
    pub name: String,
    /// Cycle the kernel was launched.
    pub launched_at: u64,
    /// Cycle the last block completed, if finished.
    pub finished_at: Option<u64>,
    /// Warp instructions issued, including work later discarded by flushes.
    pub issued_insts: u64,
    /// Warp instructions of *completed* blocks (useful work).
    pub completed_insts: u64,
    /// Warp instructions discarded by flushes (re-executed from scratch).
    pub wasted_flush_insts: u64,
    /// Blocks completed.
    pub completed_tbs: u32,
    /// Blocks in the grid.
    pub grid_blocks: u32,
    /// Sum of residency cycles over completed blocks (for CPI estimates).
    pub sum_completed_cycles: u64,
    /// Welford running mean of per-block instructions over completed blocks.
    ///
    /// Tracked alongside [`m2_tb_insts`](Self::m2_tb_insts) so the variance
    /// of block lengths — the input to the §4.1 drain-latency headroom —
    /// survives when observations are extracted from engine statistics
    /// rather than an external accumulator.
    pub mean_tb_insts: f64,
    /// Welford running sum of squared deviations of per-block instructions.
    pub m2_tb_insts: f64,
    /// Largest per-block instruction count observed among completed blocks.
    pub max_tb_insts: u64,
    /// Whether the kernel has finished all blocks.
    pub finished: bool,
    /// Number of times any block of this kernel was flushed.
    pub flush_count: u64,
    /// Number of times any block of this kernel was context-switched out.
    pub switch_count: u64,
}

impl KernelStats {
    /// Average instructions per completed block, if any completed.
    pub fn avg_tb_insts(&self) -> Option<f64> {
        (self.completed_tbs > 0)
            .then(|| self.completed_insts as f64 / f64::from(self.completed_tbs))
    }

    /// Average cycles-per-instruction of a completed block, if measurable.
    ///
    /// This is the per-block CPI at observed occupancy — exactly the statistic
    /// Chimera's drain-latency estimator multiplies by remaining instructions.
    pub fn avg_tb_cpi(&self) -> Option<f64> {
        (self.completed_insts > 0)
            .then(|| self.sum_completed_cycles as f64 / self.completed_insts as f64)
    }

    /// Population standard deviation of per-block instructions, 0 when fewer
    /// than one block completed. This is the σ of the paper's §4.1
    /// `avg + 2σ` drain-latency headroom.
    pub fn std_tb_insts(&self) -> f64 {
        if self.completed_tbs == 0 {
            return 0.0;
        }
        (self.m2_tb_insts / f64::from(self.completed_tbs))
            .max(0.0)
            .sqrt()
    }
}

/// A record of one SM preemption (request → completion).
#[derive(Debug, Clone)]
pub struct PreemptRecord {
    /// SM that was preempted.
    pub sm: usize,
    /// Kernel that was evicted.
    pub kernel: crate::KernelId,
    /// Cycle of the request.
    pub requested_at: u64,
    /// Cycle the SM was fully vacated (`None` while in progress).
    pub completed_at: Option<u64>,
    /// Technique applied to each block.
    pub techniques: Vec<Technique>,
}

impl PreemptRecord {
    /// Latency in cycles if completed.
    pub fn latency_cycles(&self) -> Option<u64> {
        self.completed_at.map(|c| c - self.requested_at)
    }
}

/// GPU-wide statistics snapshot.
#[derive(Debug, Clone, Default)]
pub struct GpuStats {
    /// Current cycle.
    pub cycle: u64,
    /// Warp instructions issued across all kernels.
    pub total_issued_insts: u64,
    /// Total DRAM bytes served.
    pub mem_bytes_served: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_need_completions() {
        let s = KernelStats::default();
        assert_eq!(s.avg_tb_insts(), None);
        assert_eq!(s.avg_tb_cpi(), None);
        assert_eq!(s.std_tb_insts(), 0.0);
    }

    #[test]
    fn std_from_welford_state() {
        // Population std of {900, 1000, 1100}: Welford m2 = 20000.
        let s = KernelStats {
            completed_tbs: 3,
            mean_tb_insts: 1000.0,
            m2_tb_insts: 20_000.0,
            max_tb_insts: 1100,
            ..KernelStats::default()
        };
        let expect = (20_000.0f64 / 3.0).sqrt();
        assert!((s.std_tb_insts() - expect).abs() < 1e-9);
    }

    #[test]
    fn averages_computed() {
        let s = KernelStats {
            completed_insts: 1000,
            completed_tbs: 4,
            sum_completed_cycles: 8000,
            ..KernelStats::default()
        };
        assert_eq!(s.avg_tb_insts(), Some(250.0));
        assert_eq!(s.avg_tb_cpi(), Some(8.0));
    }

    #[test]
    fn preempt_record_latency() {
        let mut r = PreemptRecord {
            sm: 0,
            kernel: crate::KernelId(0),
            requested_at: 10,
            completed_at: None,
            techniques: vec![],
        };
        assert_eq!(r.latency_cycles(), None);
        r.completed_at = Some(150);
        assert_eq!(r.latency_cycles(), Some(140));
    }
}
