//! Dynamic flush sanitizer: a differential oracle for the static
//! idempotence analysis.
//!
//! When enabled (per run, like the [`crate::events::EventLog`]), the engine
//! feeds every completed global-memory segment into a [`FlushSanitizer`],
//! which maintains per-block read/write *footprints*: the concrete byte
//! intervals (per [`crate::AccessRegion::interval_for_block`]) each resident
//! block has read and written so far. A block is **dirty** once it writes a
//! location it previously read — the dynamic counterpart of the paper's
//! idempotence-breaking conditions (§2.3).
//!
//! The sanitizer then checks every preemption decision against reality:
//!
//! - **Unsafe flush** (critical): a flushed block was dirty. Restarting it
//!   re-reads clobbered input, corrupting output exactly as on real
//!   hardware. A sound static analysis plus the runtime past-idempotence
//!   marking must make this impossible without `allow_unsafe_flush`.
//! - **False negative** (critical): a dirty block that the static side
//!   still considered flushable (flushed while not marked past its
//!   idempotence point), or a block that completed dirty although the
//!   static dataflow classified its program as strictly idempotent.
//! - **False positive** (benign conservatism): a flush *denied* by the
//!   static safety check while the block's dynamic footprint was still
//!   clean — expected by design, because the protect store announces the
//!   idempotence point *before* the dangerous operation completes — or a
//!   block whose program is statically non-idempotent completing with a
//!   clean footprint (e.g. the conservative may-alias answer for
//!   stride-mismatched regions never materialising).
//!
//! Because every warp of a block executes the same segment sequence, the
//! write-after-read check is performed in *program order* (a write at
//! segment `j` is checked against reads recorded at segments `i <= j`), not
//! in completion order — cross-warp completion interleavings would
//! otherwise fabricate read-before-write hazards that re-execution cannot
//! actually observe at this granularity.

use std::collections::BTreeMap;

use crate::kernel::{AccessRegion, Segment};
use crate::KernelId;

/// Maximum per-category diagnostic details retained (counts keep growing).
const DETAIL_CAP: usize = 32;

/// One read recorded in a block's footprint.
#[derive(Debug, Clone, Copy)]
struct ReadRec {
    seg_idx: usize,
    region: AccessRegion,
}

/// The first write-after-read a block performed (it is dirty from then on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsafeWrite {
    /// Segment index of the offending write.
    pub store_seg: usize,
    /// Segment index of the earliest read it clobbers (equal to
    /// `store_seg` for fused read-modify-writes and atomics).
    pub read_seg: usize,
    /// Buffer on which the collision happened.
    pub buffer: u32,
}

/// Footprint of one in-flight block.
#[derive(Debug, Default)]
struct Footprint {
    reads: Vec<ReadRec>,
    /// Segments already folded in (all warps run the same program, so each
    /// segment contributes its region once).
    seen: Vec<usize>,
    dirty: Option<UnsafeWrite>,
}

impl Footprint {
    fn record(&mut self, seg_idx: usize, seg: &Segment, block: u32) {
        if self.seen.contains(&seg_idx) {
            return;
        }
        self.seen.push(seg_idx);
        match *seg {
            Segment::GlobalLoad { region, .. } => {
                self.reads.push(ReadRec { seg_idx, region });
            }
            Segment::GlobalStore { region, rmw, .. } => {
                if rmw {
                    self.reads.push(ReadRec { seg_idx, region });
                }
                self.check_write(seg_idx, region, block);
            }
            Segment::Atomic { region, .. } => {
                // An atomic is a fused read-modify-write by definition.
                self.reads.push(ReadRec { seg_idx, region });
                self.check_write(seg_idx, region, block);
            }
            _ => {}
        }
    }

    fn check_write(&mut self, seg_idx: usize, region: AccessRegion, block: u32) {
        if self.dirty.is_some() {
            return;
        }
        if let Some(r) = self
            .reads
            .iter()
            .filter(|r| r.seg_idx <= seg_idx)
            .find(|r| r.region.overlaps_for_block(&region, block))
        {
            self.dirty = Some(UnsafeWrite {
                store_seg: seg_idx,
                read_seg: r.seg_idx,
                buffer: region.buffer,
            });
        }
    }
}

/// A diagnostic tied to one block (see [`SanitizerReport`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockDiag {
    /// Kernel the block belongs to.
    pub kernel: KernelId,
    /// Grid block index.
    pub block: u32,
    /// The write that dirtied the block, when there is one.
    pub write: Option<UnsafeWrite>,
}

/// Aggregated sanitizer verdicts for one run.
///
/// [`SanitizerReport::is_clean`] is the acceptance gate: no unsafe flush
/// ever executed and the static classification never *missed* dynamic
/// dirt (false negatives). Benign conservatism counters are informational.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SanitizerReport {
    /// Blocks whose completion was checked against the static verdict.
    pub blocks_completed: u64,
    /// Flushes checked.
    pub flushes_checked: u64,
    /// Flush denials (static safety check) checked.
    pub denials_checked: u64,
    /// Critical: flushed blocks that had written a location they read.
    pub unsafe_flushes: u64,
    /// Critical: dirty blocks the static side still considered flushable
    /// (flushed while not marked past the idempotence point), plus blocks
    /// of statically-idempotent programs that completed dirty.
    pub false_negatives: u64,
    /// Benign: flushes denied although the block's footprint was clean.
    pub denied_but_clean: u64,
    /// Benign: statically non-idempotent programs whose blocks completed
    /// with clean footprints (conservatism that never materialised).
    pub static_dirty_but_clean: u64,
    /// Details for the critical categories, capped at a few entries.
    pub violations: Vec<BlockDiag>,
}

impl SanitizerReport {
    /// No unsafe flushes and no static/dynamic classification disagreement.
    pub fn is_clean(&self) -> bool {
        self.unsafe_flushes == 0 && self.false_negatives == 0
    }

    fn push_violation(&mut self, diag: BlockDiag) {
        if self.violations.len() < DETAIL_CAP {
            self.violations.push(diag);
        }
    }
}

impl std::fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sanitizer: {} blocks, {} flushes, {} denials checked; \
             {} unsafe flushes, {} false negatives; \
             {} denied-but-clean, {} static-dirty-but-clean (benign)",
            self.blocks_completed,
            self.flushes_checked,
            self.denials_checked,
            self.unsafe_flushes,
            self.false_negatives,
            self.denied_but_clean,
            self.static_dirty_but_clean
        )
    }
}

/// Dynamic flush sanitizer (see the [module documentation](self)).
///
/// Enabled per run via [`crate::Engine::enable_sanitizer`]; retrieve the
/// verdicts with [`crate::Engine::sanitizer`] /
/// [`crate::Engine::take_sanitizer`].
#[derive(Debug, Default)]
pub struct FlushSanitizer {
    /// In-flight footprints keyed by `(kernel, block)`. Switched-out blocks
    /// keep theirs (they resume where they left off); flushed blocks start
    /// a fresh one (they restart from scratch).
    footprints: BTreeMap<(KernelId, u32), Footprint>,
    report: SanitizerReport,
}

impl FlushSanitizer {
    /// A sanitizer with empty footprints.
    pub fn new() -> Self {
        Self::default()
    }

    /// Verdicts accumulated so far.
    pub fn report(&self) -> &SanitizerReport {
        &self.report
    }

    /// Fold one completed global-memory segment into the block's footprint.
    pub fn on_effect(&mut self, kernel: KernelId, block: u32, seg_idx: usize, seg: &Segment) {
        self.footprints
            .entry((kernel, block))
            .or_default()
            .record(seg_idx, seg, block);
    }

    /// Check a flush that is about to execute. `past_idem` is the runtime
    /// static verdict (protect store fired / non-idempotent segment ran).
    pub fn on_flush(&mut self, kernel: KernelId, block: u32, past_idem: bool) {
        self.report.flushes_checked += 1;
        let fp = self.footprints.remove(&(kernel, block));
        let write = fp.as_ref().and_then(|f| f.dirty);
        if let Some(write) = write {
            self.report.unsafe_flushes += 1;
            if !past_idem {
                // The static side would have allowed this flush: a miss.
                self.report.false_negatives += 1;
            }
            self.report.push_violation(BlockDiag {
                kernel,
                block,
                write: Some(write),
            });
        }
    }

    /// Record a flush denied by the static safety check; clean footprints
    /// here are the benign false-positive side of the differential oracle.
    pub fn on_flush_denied(&mut self, kernel: KernelId, block: u32) {
        self.report.denials_checked += 1;
        let dirty = self
            .footprints
            .get(&(kernel, block))
            .is_some_and(|f| f.dirty.is_some());
        if !dirty {
            self.report.denied_but_clean += 1;
        }
    }

    /// Diff the dynamic footprint of a completed block against the static
    /// program classification (`static_non_idem`).
    pub fn on_complete(&mut self, kernel: KernelId, block: u32, static_non_idem: bool) {
        self.report.blocks_completed += 1;
        let fp = self.footprints.remove(&(kernel, block));
        let write = fp.as_ref().and_then(|f| f.dirty);
        match (static_non_idem, write) {
            (false, Some(write)) => {
                self.report.false_negatives += 1;
                self.report.push_violation(BlockDiag {
                    kernel,
                    block,
                    write: Some(write),
                });
            }
            (true, None) => self.report.static_dirty_but_clean += 1,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(buffer: u32) -> AccessRegion {
        AccessRegion::per_block_window(buffer, 0, 4)
    }

    #[test]
    fn clean_block_stays_clean() {
        let mut san = FlushSanitizer::new();
        let k = KernelId(0);
        san.on_effect(k, 0, 0, &Segment::load_region(4, window(0)));
        san.on_effect(k, 0, 1, &Segment::store_region(4, window(1)));
        san.on_complete(k, 0, false);
        san.on_flush(k, 1, false); // never-seen block: trivially clean
        assert!(san.report().is_clean());
        assert_eq!(san.report().blocks_completed, 1);
        assert_eq!(san.report().flushes_checked, 1);
    }

    #[test]
    fn write_after_read_dirties_and_unsafe_flush_is_flagged() {
        let mut san = FlushSanitizer::new();
        let k = KernelId(0);
        san.on_effect(k, 3, 0, &Segment::load_region(4, window(0)));
        san.on_effect(k, 3, 2, &Segment::store_region(4, window(0)));
        san.on_flush(k, 3, true);
        assert_eq!(san.report().unsafe_flushes, 1);
        assert_eq!(san.report().false_negatives, 0, "static side knew");
        assert_eq!(
            san.report().violations[0].write,
            Some(UnsafeWrite {
                store_seg: 2,
                read_seg: 0,
                buffer: 0
            })
        );
    }

    #[test]
    fn flush_of_dirty_block_not_past_idem_is_a_false_negative() {
        let mut san = FlushSanitizer::new();
        let k = KernelId(1);
        san.on_effect(k, 0, 0, &Segment::overwrite(2));
        san.on_flush(k, 0, false);
        assert_eq!(san.report().unsafe_flushes, 1);
        assert_eq!(san.report().false_negatives, 1);
        assert!(!san.report().is_clean());
    }

    #[test]
    fn write_before_read_in_program_order_is_not_dirt() {
        // Completion order reverses program order across warps; the check
        // must follow program order.
        let mut san = FlushSanitizer::new();
        let k = KernelId(0);
        // store at seg 2 completes first (warp A), read at seg 0 later
        // (warp B lagging).
        san.on_effect(k, 0, 2, &Segment::store_region(4, window(0)));
        san.on_effect(k, 0, 0, &Segment::load_region(4, window(0)));
        san.on_complete(k, 0, true);
        assert_eq!(san.report().unsafe_flushes, 0);
        assert_eq!(san.report().false_negatives, 0);
        assert_eq!(san.report().static_dirty_but_clean, 1);
    }

    #[test]
    fn duplicate_warp_completions_fold_once() {
        let mut san = FlushSanitizer::new();
        let k = KernelId(0);
        for _ in 0..4 {
            san.on_effect(k, 0, 0, &Segment::atomic(2));
        }
        san.on_flush(k, 0, true);
        assert_eq!(san.report().unsafe_flushes, 1);
    }

    #[test]
    fn denied_flush_of_clean_block_counts_as_benign_false_positive() {
        let mut san = FlushSanitizer::new();
        let k = KernelId(0);
        san.on_effect(k, 0, 0, &Segment::load_region(4, window(0)));
        san.on_flush_denied(k, 0);
        assert_eq!(san.report().denied_but_clean, 1);
        assert!(san.report().is_clean());
    }

    #[test]
    fn flush_resets_footprint_for_the_restart() {
        let mut san = FlushSanitizer::new();
        let k = KernelId(0);
        san.on_effect(k, 0, 0, &Segment::load_region(4, window(0)));
        san.on_flush(k, 0, false); // clean flush; restart from scratch
        san.on_effect(k, 0, 1, &Segment::store_region(4, window(0)));
        san.on_complete(k, 0, false);
        assert!(san.report().is_clean(), "pre-flush read must not linger");
    }

    #[test]
    fn report_display_is_stable() {
        let san = FlushSanitizer::new();
        let s = format!("{}", san.report());
        assert!(s.contains("unsafe flushes"));
    }
}
