//! Shard-race sanitizer: a dynamic oracle for the Phase-A purity contract.
//!
//! The parallel engine's correctness argument (`PARALLELISM.md`) rests on
//! one invariant: during Phase A of an epoch, the sharded workers advance
//! SMs through *pure* ticks only — ticks whose effects stay entirely inside
//! the SM — and everything that touches shared engine state (the memory
//! subsystem, functional memory, the dispatcher, component wakes) replays
//! serially in Phase B calendar order. The invariant used to be enforced by
//! a prose checklist and code review; this module machine-checks it at run
//! time, the same way [`FlushSanitizer`](crate::sanitizer::FlushSanitizer)
//! machine-checks the static idempotence classification.
//!
//! ## How it works
//!
//! When enabled ([`Engine::enable_race_sanitizer`](crate::Engine::enable_race_sanitizer)),
//! every instrumented shared resource — each memory partition, each
//! kernel's functional memory, the TB dispatcher, the component-wake path —
//! reports its accesses to a shared [`RaceState`]. The engine raises a
//! phase flag for exactly the window in which Phase-A shard workers run,
//! and each worker claims its SM in a shadow ownership map as it advances.
//! Any instrumented shared-resource access observed while the flag is up is
//! by construction an effect that bypassed the Interaction replay, and is
//! recorded as a [`RaceViolation`] with its cycle and resource. Accesses
//! outside the window are counted (so a clean report proves the oracle
//! watched real traffic) but are sanctioned: they *are* the serial replay.
//!
//! The sanitizer is zero-cost when off — every hook is an `Option` check —
//! and timing-invisible when on: it only observes, so sanitized runs stay
//! byte-identical to unsanitized ones.
//!
//! ```
//! use gpu_sim::{Engine, ExecMode, GpuConfig, KernelDesc, Program, Segment};
//!
//! let mut engine = Engine::new(GpuConfig::tiny());
//! engine.set_exec_mode(ExecMode::Parallel { shards: 2 });
//! engine.enable_race_sanitizer();
//! let k = engine
//!     .launch_kernel(
//!         KernelDesc::builder("probe")
//!             .grid_blocks(8)
//!             .threads_per_block(64)
//!             .regs_per_thread(16)
//!             .program(Program::new(vec![Segment::compute(500)]))
//!             .build()
//!             .unwrap(),
//!     );
//! for sm in 0..engine.config().num_sms {
//!     engine.assign_sm(sm, Some(k));
//! }
//! engine.run_until(1_000_000);
//! let report = engine.race_sanitizer().unwrap().report();
//! assert!(report.is_clean(), "{report:?}");
//! assert!(report.shared_accesses_checked > 0, "oracle must see traffic");
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

/// Cap on retained per-violation detail, mirroring the flush sanitizer's
/// cap: counters stay exact, the detail list stops growing.
const DETAIL_CAP: usize = 32;

const PHASE_SERIAL: u8 = 0;
const PHASE_PURE_A: u8 = 1;

/// An instrumented piece of shared engine state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SharedResource {
    /// A memory-subsystem partition (the shared DRAM/L2 queue).
    MemPartition(usize),
    /// A kernel's functional memory (effect application).
    FuncMem(usize),
    /// The thread-block dispatcher sweep.
    Dispatcher,
    /// The component-wake path (calendar mutation).
    ComponentWake,
    /// The deliberately-racy test cell used to validate the oracle itself
    /// (see [`Engine::attach_racy_test_cell`](crate::Engine::attach_racy_test_cell)).
    TestCell,
}

impl std::fmt::Display for SharedResource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SharedResource::MemPartition(p) => write!(f, "mem-partition {p}"),
            SharedResource::FuncMem(k) => write!(f, "functional memory of kernel {k}"),
            SharedResource::Dispatcher => write!(f, "tb dispatcher"),
            SharedResource::ComponentWake => write!(f, "component wake"),
            SharedResource::TestCell => write!(f, "test shared cell"),
        }
    }
}

/// One shared-state access that bypassed the Interaction replay: it was
/// observed while Phase-A shard workers were running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceViolation {
    /// Cycle at which the access happened.
    pub cycle: u64,
    /// The shared resource that was touched.
    pub resource: SharedResource,
    /// The SM (shard ownership) the access came from, when the access site
    /// knows it (`None` for engine-side hooks that cannot attribute).
    pub owner: Option<usize>,
}

impl std::fmt::Display for RaceViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cycle {}: {} accessed during Phase A",
            self.cycle, self.resource
        )?;
        if let Some(sm) = self.owner {
            write!(f, " from SM {sm}")?;
        }
        Ok(())
    }
}

/// Who owned a resource the last time it was touched (shadow ownership map
/// entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Owner {
    /// A Phase-A shard worker, advancing this SM's pure ticks.
    Shard(usize),
    /// The serial engine (Phase B replay / serial modes).
    Serial,
}

/// Map key: SM-local state is per-SM; everything else is a shared resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Resource {
    SmLocal(usize),
    Shared(SharedResource),
}

/// Shared, thread-safe recording state behind every hook. One per engine;
/// shard workers, the serial loop and test cells all hold `Arc`s to it.
#[derive(Debug, Default)]
pub(crate) struct RaceState {
    /// Current execution phase (`PHASE_PURE_A` only while shard workers
    /// may be running).
    phase: AtomicU8,
    /// Phase-A windows ([`crate::sm::Sm`] `advance_pure` calls) observed.
    pure_windows: AtomicU64,
    /// Warp instructions committed by pure ticks inside those windows.
    pure_insts: AtomicU64,
    /// Shared-resource accesses observed (any phase).
    checked: AtomicU64,
    /// Total violations (exact even past the detail cap).
    violation_count: AtomicU64,
    /// Shadow ownership map: who touched which resource last. Phase-A
    /// workers claim their SM-local state; shared resources are recorded
    /// as serially owned when first touched outside the window.
    owners: Mutex<BTreeMap<Resource, Owner>>,
    /// Capped violation detail.
    violations: Mutex<Vec<RaceViolation>>,
}

impl RaceState {
    /// Raise the Phase-A flag. Engine-side, immediately before shard
    /// workers start.
    pub(crate) fn enter_pure_phase(&self) {
        self.phase.store(PHASE_PURE_A, Ordering::Release);
    }

    /// Lower the Phase-A flag. Engine-side, after every worker has joined
    /// and before any serial commit work.
    pub(crate) fn exit_pure_phase(&self) {
        self.phase.store(PHASE_SERIAL, Ordering::Release);
    }

    /// A shard worker finished a pure-advance window over SM `sm`,
    /// committing `insts` warp instructions: claim the SM's local state in
    /// the ownership map.
    pub(crate) fn claim_pure_window(&self, sm: usize, insts: u64) {
        self.pure_windows.fetch_add(1, Ordering::Relaxed);
        self.pure_insts.fetch_add(insts, Ordering::Relaxed);
        let mut owners = self.owners.lock().expect("race-state lock");
        owners.insert(Resource::SmLocal(sm), Owner::Shard(sm));
    }

    /// An instrumented shared resource was accessed at `cycle`. Outside the
    /// Phase-A window this is the sanctioned serial replay and is only
    /// counted; inside the window it is, by construction, an effect that
    /// bypassed the Interaction replay — a violation.
    pub(crate) fn note_shared_access(
        &self,
        resource: SharedResource,
        owner: Option<usize>,
        cycle: u64,
    ) {
        self.checked.fetch_add(1, Ordering::Relaxed);
        if self.phase.load(Ordering::Acquire) != PHASE_PURE_A {
            return;
        }
        self.violation_count.fetch_add(1, Ordering::Relaxed);
        let mut owners = self.owners.lock().expect("race-state lock");
        owners.insert(
            Resource::Shared(resource),
            owner.map_or(Owner::Serial, Owner::Shard),
        );
        drop(owners);
        let mut detail = self.violations.lock().expect("race-state lock");
        if detail.len() < DETAIL_CAP {
            detail.push(RaceViolation {
                cycle,
                resource,
                owner,
            });
        }
    }
}

/// Lightweight per-SM handle a shard worker uses to report its pure-advance
/// windows (an `Arc` clone of the engine's [`RaceState`]).
#[derive(Debug, Clone)]
pub(crate) struct RaceProbe {
    state: Arc<RaceState>,
}

impl RaceProbe {
    pub(crate) fn new(state: Arc<RaceState>) -> Self {
        RaceProbe { state }
    }

    /// Report one completed `advance_pure` window.
    pub(crate) fn on_pure_window(&self, sm: usize, insts: u64) {
        self.state.claim_pure_window(sm, insts);
    }
}

/// A deliberately *unsanctioned* shared counter for validating the oracle:
/// cloned handles share one cell, and every bump reports itself as a
/// shared-resource access. Attached to SMs via
/// [`Engine::attach_racy_test_cell`](crate::Engine::attach_racy_test_cell),
/// committed pure ticks bump it — exactly the "new shared resource touched
/// from a pure tick" bug class the sanitizer exists to catch, so a parallel
/// run with a cell attached must report violations.
#[derive(Debug, Clone)]
pub struct TestSharedCell {
    value: Arc<AtomicU64>,
    state: Arc<RaceState>,
}

impl TestSharedCell {
    pub(crate) fn new(state: Arc<RaceState>) -> Self {
        TestSharedCell {
            value: Arc::new(AtomicU64::new(0)),
            state,
        }
    }

    /// Increment the shared cell from SM `owner` at `cycle`, reporting the
    /// access to the sanitizer.
    pub(crate) fn bump(&self, owner: usize, cycle: u64) {
        self.value.fetch_add(1, Ordering::Relaxed);
        self.state
            .note_shared_access(SharedResource::TestCell, Some(owner), cycle);
    }

    /// Total bumps across all handles of this cell.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Point-in-time summary of what the sanitizer observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// Phase-A pure-advance windows observed (0 in serial modes).
    pub pure_windows: u64,
    /// Warp instructions committed by pure ticks inside those windows.
    pub pure_insts: u64,
    /// Shared-resource accesses checked, in any phase. A clean report with
    /// this at 0 proves nothing — the oracle never saw traffic.
    pub shared_accesses_checked: u64,
    /// Shared-resource accesses observed during a Phase-A window (exact,
    /// even past the detail cap).
    pub violation_count: u64,
    /// First [`DETAIL_CAP`] violations, in observation order.
    pub violations: Vec<RaceViolation>,
    /// Distinct resources in the shadow ownership map.
    pub resources_tracked: usize,
}

impl RaceReport {
    /// No shared-state access bypassed the Interaction replay.
    pub fn is_clean(&self) -> bool {
        self.violation_count == 0
    }
}

impl std::fmt::Display for RaceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "race sanitizer: {} violation(s), {} shared access(es) checked, \
             {} pure window(s) ({} insts), {} resource(s) tracked",
            self.violation_count,
            self.shared_accesses_checked,
            self.pure_windows,
            self.pure_insts,
            self.resources_tracked
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// The shard-race sanitizer attached to an engine (see the [module
/// docs](self)). Obtain via
/// [`Engine::race_sanitizer`](crate::Engine::race_sanitizer) /
/// [`Engine::take_race_sanitizer`](crate::Engine::take_race_sanitizer).
#[derive(Debug)]
pub struct RaceSanitizer {
    state: Arc<RaceState>,
}

impl RaceSanitizer {
    pub(crate) fn new() -> Self {
        RaceSanitizer {
            state: Arc::new(RaceState::default()),
        }
    }

    /// The shared recording state (for wiring hooks).
    pub(crate) fn state(&self) -> &Arc<RaceState> {
        &self.state
    }

    /// Create a test cell wired to this sanitizer (see [`TestSharedCell`]).
    pub(crate) fn test_cell(&self) -> TestSharedCell {
        TestSharedCell::new(Arc::clone(&self.state))
    }

    /// Summarize everything observed so far.
    pub fn report(&self) -> RaceReport {
        let owners = self.state.owners.lock().expect("race-state lock");
        let violations = self.state.violations.lock().expect("race-state lock");
        RaceReport {
            pure_windows: self.state.pure_windows.load(Ordering::Relaxed),
            pure_insts: self.state.pure_insts.load(Ordering::Relaxed),
            shared_accesses_checked: self.state.checked.load(Ordering::Relaxed),
            violation_count: self.state.violation_count.load(Ordering::Relaxed),
            violations: violations.clone(),
            resources_tracked: owners.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_accesses_are_sanctioned() {
        let san = RaceSanitizer::new();
        san.state()
            .note_shared_access(SharedResource::MemPartition(0), None, 100);
        san.state()
            .note_shared_access(SharedResource::Dispatcher, None, 101);
        let r = san.report();
        assert!(r.is_clean());
        assert_eq!(r.shared_accesses_checked, 2);
        assert_eq!(r.pure_windows, 0);
    }

    #[test]
    fn phase_a_access_is_a_violation() {
        let san = RaceSanitizer::new();
        san.state().enter_pure_phase();
        san.state().claim_pure_window(3, 17);
        san.state()
            .note_shared_access(SharedResource::TestCell, Some(3), 42);
        san.state().exit_pure_phase();
        san.state()
            .note_shared_access(SharedResource::TestCell, Some(3), 50);
        let r = san.report();
        assert!(!r.is_clean());
        assert_eq!(r.violation_count, 1);
        assert_eq!(r.shared_accesses_checked, 2);
        assert_eq!(r.pure_windows, 1);
        assert_eq!(r.pure_insts, 17);
        assert_eq!(
            r.violations,
            vec![RaceViolation {
                cycle: 42,
                resource: SharedResource::TestCell,
                owner: Some(3),
            }]
        );
        // SM 3's local claim plus the shared test cell.
        assert_eq!(r.resources_tracked, 2);
    }

    #[test]
    fn violation_detail_is_capped_but_counts_stay_exact() {
        let san = RaceSanitizer::new();
        san.state().enter_pure_phase();
        for i in 0..(DETAIL_CAP as u64 + 10) {
            san.state()
                .note_shared_access(SharedResource::ComponentWake, None, i);
        }
        let r = san.report();
        assert_eq!(r.violation_count, DETAIL_CAP as u64 + 10);
        assert_eq!(r.violations.len(), DETAIL_CAP);
    }

    #[test]
    fn test_cell_counts_and_reports() {
        let san = RaceSanitizer::new();
        let cell = san.test_cell();
        let clone = cell.clone();
        cell.bump(0, 10);
        clone.bump(1, 11);
        assert_eq!(cell.value(), 2);
        assert!(san.report().is_clean(), "serial bumps are sanctioned");
        san.state().enter_pure_phase();
        clone.bump(1, 12);
        assert_eq!(san.report().violation_count, 1);
    }

    #[test]
    fn report_renders_with_provenance() {
        let san = RaceSanitizer::new();
        san.state().enter_pure_phase();
        san.state()
            .note_shared_access(SharedResource::MemPartition(2), Some(5), 77);
        let text = san.report().to_string();
        assert!(text.contains("1 violation"), "{text}");
        assert!(text.contains("cycle 77"), "{text}");
        assert!(text.contains("mem-partition 2"), "{text}");
        assert!(text.contains("SM 5"), "{text}");
    }
}
