//! Preemption techniques and per-SM preemption plans.

use std::fmt;

/// The three preemption techniques in Chimera's toolbox (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Technique {
    /// Save the block's context and resume it later (possibly elsewhere).
    /// Mid-range, roughly constant latency; throughput lost both saving and
    /// restoring.
    Switch,
    /// Stop dispatching and let the block run to completion. No wasted work,
    /// but the latency is the block's remaining execution time.
    Drain,
    /// Drop the block instantly and restart it from scratch later. Near-zero
    /// latency; all executed work is thrown away. Only safe while the block
    /// is idempotent.
    Flush,
}

impl Technique {
    /// All techniques, in the paper's presentation order.
    pub const ALL: [Technique; 3] = [Technique::Switch, Technique::Drain, Technique::Flush];
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Technique::Switch => "switch",
            Technique::Drain => "drain",
            Technique::Flush => "flush",
        };
        f.write_str(s)
    }
}

/// A preemption plan for one SM: a technique for every resident block.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SmPreemptPlan {
    /// `(grid block index, technique)` for every block resident on the SM.
    pub entries: Vec<(u32, Technique)>,
    /// Allow flushing blocks that are past their idempotence point.
    ///
    /// The engine normally rejects such plans because re-running the block
    /// would corrupt memory; tests enable this to demonstrate the corruption.
    pub allow_unsafe_flush: bool,
}

impl SmPreemptPlan {
    /// A plan applying one technique to every entry in `blocks`.
    pub fn uniform(blocks: impl IntoIterator<Item = u32>, technique: Technique) -> Self {
        SmPreemptPlan {
            entries: blocks.into_iter().map(|b| (b, technique)).collect(),
            allow_unsafe_flush: false,
        }
    }

    /// The technique assigned to grid block `index`, if present.
    pub fn technique_for(&self, index: u32) -> Option<Technique> {
        self.entries
            .iter()
            .find(|(b, _)| *b == index)
            .map(|&(_, t)| t)
    }

    /// Count of entries using `technique`.
    pub fn count(&self, technique: Technique) -> usize {
        self.entries
            .iter()
            .filter(|&&(_, t)| t == technique)
            .count()
    }
}

/// The result of a completed SM preemption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreemptOutcome {
    /// Cycle the preemption was requested.
    pub requested_at: u64,
    /// Cycle the SM was fully vacated.
    pub completed_at: u64,
}

impl PreemptOutcome {
    /// Preemption latency in cycles.
    pub fn latency_cycles(&self) -> u64 {
        self.completed_at - self.requested_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_plan() {
        let p = SmPreemptPlan::uniform([3, 5, 9], Technique::Drain);
        assert_eq!(p.entries.len(), 3);
        assert_eq!(p.technique_for(5), Some(Technique::Drain));
        assert_eq!(p.technique_for(4), None);
        assert_eq!(p.count(Technique::Drain), 3);
        assert_eq!(p.count(Technique::Flush), 0);
    }

    #[test]
    fn technique_display() {
        assert_eq!(Technique::Switch.to_string(), "switch");
        assert_eq!(Technique::Drain.to_string(), "drain");
        assert_eq!(Technique::Flush.to_string(), "flush");
    }

    #[test]
    fn outcome_latency() {
        let o = PreemptOutcome {
            requested_at: 100,
            completed_at: 450,
        };
        assert_eq!(o.latency_cycles(), 350);
    }
}
