//! Kernel intermediate representation.
//!
//! Kernels are described as *segmented warp programs*: every warp of a thread
//! block executes the same sequence of [`Segment`]s. Segments are coarse
//! (hundreds of instructions each) which is all the fidelity the Chimera cost
//! model needs — it reasons about per-block instruction counts and cycles, not
//! about individual operations.
//!
//! Global-memory segments are *addressed*: every load, store and atomic
//! carries an [`AccessRegion`] naming the buffer it touches, the byte range
//! within a block's window, and the per-block stride of that window. Whether
//! a store breaks idempotence is **derived** from those regions, not
//! declared: [`Program::new`] runs a forward pass over the segment stream and
//! flags a store as an overwrite exactly when it is a fused read-modify-write
//! ([`Segment::GlobalStore::rmw`]) or its region may intersect a region some
//! earlier segment read — the paper's two idempotence-breaking conditions
//! (§2.3), with [`Segment::Atomic`] always breaking. The `idem` crate runs
//! the same dataflow with per-site provenance and inserts
//! [`Segment::ProtectStore`] markers implementing the paper's software
//! detection of the *relaxed* idempotence condition (§3.4). The dynamic
//! counterpart — checking the derived classification against observed
//! per-block footprints — lives in [`crate::sanitizer`].

use std::fmt;

/// An addressed global-memory access pattern: which bytes of which buffer a
/// segment touches, parameterised by the executing block's grid index.
///
/// Block `b` touches the half-open byte interval
/// `[offset + b·block_stride, offset + b·block_stride + len)` of `buffer`.
/// `block_stride == 0` means every block touches the *same* interval (shared
/// data such as global counters); `block_stride >= len` gives each block a
/// disjoint private window (the common tiled pattern).
///
/// All fields are plain integers so `Segment` stays `Copy + Eq + Hash`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessRegion {
    /// Logical buffer (kernel argument) identifier. Regions on different
    /// buffers never alias.
    pub buffer: u32,
    /// Byte offset of block 0's interval within the buffer.
    pub offset: u64,
    /// Length of the accessed interval in bytes.
    pub len: u64,
    /// Per-block stride in bytes (`0` = all blocks share one interval).
    pub block_stride: u64,
}

impl AccessRegion {
    /// Bytes one coalesced warp instruction moves (128 B: 32 lanes × 4 B).
    pub const BYTES_PER_INST: u64 = 128;
    /// Per-block window stride used by the compatibility constructors —
    /// large enough that windows of realistic segment sizes never collide
    /// across blocks.
    pub const COMPAT_BLOCK_STRIDE: u64 = 1 << 24;
    /// Buffer id the deprecated [`Segment::load`]/[`Segment::overwrite`]
    /// shims lower to (the kernel's input array).
    pub const COMPAT_INPUT_BUFFER: u32 = 0;
    /// Buffer id the deprecated [`Segment::store`] shim lowers to (a distinct
    /// output array, so plain stores never alias the input reads).
    pub const COMPAT_OUTPUT_BUFFER: u32 = 1;
    /// Buffer id the deprecated [`Segment::atomic`] shim lowers to (a small
    /// set of counters shared by every block).
    pub const COMPAT_COUNTER_BUFFER: u32 = 2;

    /// A region with explicit geometry.
    pub fn new(buffer: u32, offset: u64, len: u64, block_stride: u64) -> Self {
        AccessRegion {
            buffer,
            offset,
            len,
            block_stride,
        }
    }

    /// A per-block private window sized for `insts` coalesced warp
    /// instructions, starting at `offset` within `buffer`.
    pub fn per_block_window(buffer: u32, offset: u64, insts: u32) -> Self {
        AccessRegion {
            buffer,
            offset,
            len: (u64::from(insts) * Self::BYTES_PER_INST).max(1),
            block_stride: Self::COMPAT_BLOCK_STRIDE,
        }
    }

    /// A block-shared region (stride 0) sized for `insts` warp instructions.
    pub fn shared_by_blocks(buffer: u32, offset: u64, insts: u32) -> Self {
        AccessRegion {
            buffer,
            offset,
            len: (u64::from(insts) * Self::BYTES_PER_INST).max(1),
            block_stride: 0,
        }
    }

    /// The concrete byte interval `[start, end)` block `block` touches.
    pub fn interval_for_block(&self, block: u32) -> (u64, u64) {
        let start = self.offset + u64::from(block) * self.block_stride;
        (start, start + self.len)
    }

    /// Whether the two regions may overlap for *some* block executing both
    /// (static may-alias, used by the idempotence dataflow).
    ///
    /// Different buffers never alias. Equal strides reduce to interval
    /// overlap of the block-0 windows (both windows shift together). When
    /// the strides differ the relative placement depends on the block index,
    /// so the answer is a conservative `true` — the dynamic sanitizer
    /// reports such sites as benign conservatism when no concrete interval
    /// ever collides.
    pub fn may_overlap(&self, other: &AccessRegion) -> bool {
        if self.buffer != other.buffer || self.len == 0 || other.len == 0 {
            return false;
        }
        if self.block_stride == other.block_stride {
            self.offset < other.offset + other.len && other.offset < self.offset + self.len
        } else {
            true
        }
    }

    /// Whether the two regions' concrete intervals overlap for `block`
    /// (exact, used by the dynamic sanitizer).
    pub fn overlaps_for_block(&self, other: &AccessRegion, block: u32) -> bool {
        if self.buffer != other.buffer || self.len == 0 || other.len == 0 {
            return false;
        }
        let (a0, a1) = self.interval_for_block(block);
        let (b0, b1) = other.interval_for_block(block);
        a0 < b1 && b0 < a1
    }
}

impl fmt::Display for AccessRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "b{}+{}..{}{}",
            self.buffer,
            self.offset,
            self.offset + self.len,
            if self.block_stride == 0 {
                " (shared)".to_string()
            } else {
                format!(" /{}", self.block_stride)
            }
        )
    }
}

/// One coarse step of a warp's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Segment {
    /// `insts` arithmetic warp-instructions; fully pipelined.
    Compute {
        /// Number of warp instructions in the segment.
        insts: u32,
    },
    /// `insts` coalesced global loads (128 B per warp instruction).
    GlobalLoad {
        /// Number of warp instructions in the segment.
        insts: u32,
        /// Bytes of which buffer the block reads.
        region: AccessRegion,
    },
    /// `insts` coalesced global stores.
    GlobalStore {
        /// Number of warp instructions in the segment.
        insts: u32,
        /// Bytes of which buffer the block writes.
        region: AccessRegion,
        /// Fused read-modify-write: the store reads its target region before
        /// writing it (e.g. `a[i] += x` compiled as load+store). Such a
        /// store clobbers its own input and is non-idempotent regardless of
        /// what earlier segments read. This is an access-structure fact, not
        /// a classification — plain (`rmw: false`) stores are still flagged
        /// as overwrites by the dataflow when their region intersects an
        /// earlier read.
        rmw: bool,
    },
    /// `insts` atomic read-modify-write operations (always non-idempotent).
    Atomic {
        /// Number of warp instructions in the segment.
        insts: u32,
        /// Bytes of which buffer the atomics update.
        region: AccessRegion,
    },
    /// `insts` shared-memory accesses (on-chip, no DRAM traffic).
    Shared {
        /// Number of warp instructions in the segment.
        insts: u32,
    },
    /// Block-wide barrier (`__syncthreads()`).
    Barrier,
    /// A single store to a predefined non-cacheable address announcing that
    /// the block is about to leave its idempotent region. Inserted by the
    /// `idem` crate; never written by hand in workload definitions.
    ProtectStore,
}

impl Segment {
    /// Convenience constructor for a compute segment.
    pub fn compute(insts: u32) -> Self {
        Segment::Compute { insts }
    }

    /// A global-load segment with an explicit access region.
    pub fn load_region(insts: u32, region: AccessRegion) -> Self {
        Segment::GlobalLoad { insts, region }
    }

    /// A global-store segment with an explicit access region. Whether it is
    /// an overwrite is decided by the program-level dataflow, not here.
    pub fn store_region(insts: u32, region: AccessRegion) -> Self {
        Segment::GlobalStore {
            insts,
            region,
            rmw: false,
        }
    }

    /// A fused read-modify-write store with an explicit access region.
    pub fn rmw_region(insts: u32, region: AccessRegion) -> Self {
        Segment::GlobalStore {
            insts,
            region,
            rmw: true,
        }
    }

    /// An atomic segment with an explicit access region.
    pub fn atomic_region(insts: u32, region: AccessRegion) -> Self {
        Segment::Atomic { insts, region }
    }

    /// Convenience constructor for a global-load segment.
    ///
    /// Compatibility shim (deprecated in favour of [`Segment::load_region`]):
    /// lowers to a per-block window of the input buffer
    /// ([`AccessRegion::COMPAT_INPUT_BUFFER`]).
    pub fn load(insts: u32) -> Self {
        Segment::GlobalLoad {
            insts,
            region: AccessRegion::per_block_window(AccessRegion::COMPAT_INPUT_BUFFER, 0, insts),
        }
    }

    /// Convenience constructor for an idempotent global-store segment.
    ///
    /// Compatibility shim (deprecated in favour of
    /// [`Segment::store_region`]): lowers to a per-block window of a
    /// distinct output buffer ([`AccessRegion::COMPAT_OUTPUT_BUFFER`]), so
    /// the dataflow never sees it alias the input reads.
    pub fn store(insts: u32) -> Self {
        Segment::store_region(
            insts,
            AccessRegion::per_block_window(AccessRegion::COMPAT_OUTPUT_BUFFER, 0, insts),
        )
    }

    /// Convenience constructor for a non-idempotent overwrite segment.
    ///
    /// Compatibility shim (deprecated in favour of [`Segment::rmw_region`]
    /// or a [`Segment::store_region`] that aliases an earlier read): lowers
    /// to a fused read-modify-write on the block's input window, which the
    /// dataflow flags as an overwrite even with no preceding load segment.
    pub fn overwrite(insts: u32) -> Self {
        Segment::rmw_region(
            insts,
            AccessRegion::per_block_window(AccessRegion::COMPAT_INPUT_BUFFER, 0, insts),
        )
    }

    /// Convenience constructor for an atomic segment.
    ///
    /// Compatibility shim (deprecated in favour of
    /// [`Segment::atomic_region`]): lowers to block-shared counters
    /// ([`AccessRegion::COMPAT_COUNTER_BUFFER`]).
    pub fn atomic(insts: u32) -> Self {
        Segment::Atomic {
            insts,
            region: AccessRegion::shared_by_blocks(AccessRegion::COMPAT_COUNTER_BUFFER, 0, insts),
        }
    }

    /// Number of warp instructions this segment contributes.
    pub fn insts(&self) -> u32 {
        match *self {
            Segment::Compute { insts }
            | Segment::GlobalLoad { insts, .. }
            | Segment::GlobalStore { insts, .. }
            | Segment::Atomic { insts, .. }
            | Segment::Shared { insts } => insts,
            Segment::Barrier => 0,
            Segment::ProtectStore => 1,
        }
    }

    /// The global-memory region this segment touches, if any.
    pub fn region(&self) -> Option<AccessRegion> {
        match *self {
            Segment::GlobalLoad { region, .. }
            | Segment::GlobalStore { region, .. }
            | Segment::Atomic { region, .. } => Some(region),
            _ => None,
        }
    }

    /// Whether this segment breaks block idempotence *regardless of
    /// context*: atomics and fused read-modify-write stores.
    ///
    /// This is a segment-local approximation. A plain store can still be an
    /// overwrite when its region intersects something an earlier segment
    /// read — that classification needs the whole program and lives in
    /// [`Program::segment_non_idempotent`] (and, with provenance, in the
    /// `idem` crate's dataflow).
    pub fn is_non_idempotent(&self) -> bool {
        matches!(
            *self,
            Segment::Atomic { .. } | Segment::GlobalStore { rmw: true, .. }
        )
    }

    /// Whether this segment generates DRAM traffic.
    pub fn is_global_memory(&self) -> bool {
        matches!(
            *self,
            Segment::GlobalLoad { .. }
                | Segment::GlobalStore { .. }
                | Segment::Atomic { .. }
                | Segment::ProtectStore
        )
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Segment::Compute { insts } => write!(f, "compute[{insts}]"),
            Segment::GlobalLoad { insts, .. } => write!(f, "load[{insts}]"),
            Segment::GlobalStore {
                insts, rmw: false, ..
            } => write!(f, "store[{insts}]"),
            Segment::GlobalStore {
                insts, rmw: true, ..
            } => write!(f, "overwrite[{insts}]"),
            Segment::Atomic { insts, .. } => write!(f, "atomic[{insts}]"),
            Segment::Shared { insts } => write!(f, "shared[{insts}]"),
            Segment::Barrier => write!(f, "barrier"),
            Segment::ProtectStore => write!(f, "protect-store"),
        }
    }
}

/// A complete warp program: the segment sequence every warp executes.
///
/// Construction runs the idempotence dataflow over the segments' access
/// regions (see [`Program::segment_non_idempotent`]); the per-segment result
/// is cached so the simulator's hot paths read a precomputed mask.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    segments: Vec<Segment>,
    /// `non_idem[i]` ⇔ executing segment `i` breaks block idempotence.
    non_idem: Vec<bool>,
}

/// Forward dataflow over the segment stream: accumulate the regions read so
/// far; an atomic always breaks idempotence, a store breaks it when it is a
/// fused read-modify-write or its region may alias an accumulated read. The
/// `idem` crate runs the same pass with per-site provenance — the two must
/// agree (property-tested there).
fn non_idem_mask(segments: &[Segment]) -> Vec<bool> {
    let mut reads: Vec<AccessRegion> = Vec::new();
    segments
        .iter()
        .map(|seg| match *seg {
            Segment::Atomic { .. } => true,
            Segment::GlobalLoad { region, .. } => {
                reads.push(region);
                false
            }
            Segment::GlobalStore { region, rmw, .. } => {
                let clobbers = rmw || reads.iter().any(|r| r.may_overlap(&region));
                if rmw {
                    // The fused read becomes visible to later stores.
                    reads.push(region);
                }
                clobbers
            }
            _ => false,
        })
        .collect()
}

impl Program {
    /// Create a program from segments.
    pub fn new(segments: Vec<Segment>) -> Self {
        let non_idem = non_idem_mask(&segments);
        Program { segments, non_idem }
    }

    /// The segments of the program.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total warp instructions one warp executes.
    pub fn insts_per_warp(&self) -> u64 {
        self.segments.iter().map(|s| u64::from(s.insts())).sum()
    }

    /// Whether executing segment `ix` breaks block idempotence, as derived
    /// by the access-region dataflow (atomic, fused read-modify-write, or a
    /// store whose region may alias an earlier read).
    pub fn segment_non_idempotent(&self, ix: usize) -> bool {
        self.non_idem.get(ix).copied().unwrap_or(false)
    }

    /// Index of the first non-idempotent segment, if any.
    pub fn first_non_idempotent(&self) -> Option<usize> {
        self.non_idem.iter().position(|&b| b)
    }

    /// Whether the whole program is idempotent (strict condition, §2.3).
    pub fn is_idempotent(&self) -> bool {
        self.first_non_idempotent().is_none()
    }

    /// Fraction of per-warp instructions executed before the first
    /// non-idempotent segment; `1.0` for idempotent programs.
    pub fn idempotent_fraction(&self) -> f64 {
        let total = self.insts_per_warp();
        if total == 0 {
            return 1.0;
        }
        match self.first_non_idempotent() {
            None => 1.0,
            Some(ix) => {
                let before: u64 = self.segments[..ix]
                    .iter()
                    .map(|s| u64::from(s.insts()))
                    .sum();
                before as f64 / total as f64
            }
        }
    }

    /// Count of global store/atomic segments (used to size functional memory).
    pub fn effect_segments(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s, Segment::GlobalStore { .. } | Segment::Atomic { .. }))
            .count()
    }
}

impl FromIterator<Segment> for Program {
    fn from_iter<I: IntoIterator<Item = Segment>>(iter: I) -> Self {
        Program::new(iter.into_iter().collect())
    }
}

/// Error constructing a [`KernelDesc`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// Threads per block must be a positive multiple of the 32-thread warp.
    BadThreadCount(u32),
    /// Grid must contain at least one block.
    EmptyGrid,
    /// The program contains no instructions.
    EmptyProgram,
    /// Per-block resources exceed a single SM's capacity.
    ExceedsSmResources(String),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::BadThreadCount(t) => {
                write!(
                    f,
                    "threads per block must be a positive multiple of 32, got {t}"
                )
            }
            KernelError::EmptyGrid => write!(f, "grid must contain at least one block"),
            KernelError::EmptyProgram => write!(f, "program must contain at least one instruction"),
            KernelError::ExceedsSmResources(what) => {
                write!(f, "per-block resources exceed SM capacity: {what}")
            }
        }
    }
}

impl std::error::Error for KernelError {}

/// A kernel: grid geometry, per-block resources, and the warp program.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDesc {
    name: String,
    grid_blocks: u32,
    threads_per_block: u32,
    regs_per_thread: u32,
    shared_mem_per_block: u32,
    program: Program,
    jitter_pct: f64,
}

impl KernelDesc {
    /// Start building a kernel description.
    pub fn builder(name: impl Into<String>) -> KernelDescBuilder {
        KernelDescBuilder::new(name)
    }

    /// Kernel name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of thread blocks in the grid.
    pub fn grid_blocks(&self) -> u32 {
        self.grid_blocks
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.threads_per_block
    }

    /// Warps per block.
    pub fn warps_per_block(&self) -> u32 {
        self.threads_per_block / 32
    }

    /// Registers per thread.
    pub fn regs_per_thread(&self) -> u32 {
        self.regs_per_thread
    }

    /// Shared memory per block, bytes.
    pub fn shared_mem_per_block(&self) -> u32 {
        self.shared_mem_per_block
    }

    /// The warp program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Per-block execution length jitter (fraction; blocks vary by ±this).
    pub fn jitter_pct(&self) -> f64 {
        self.jitter_pct
    }

    /// Context bytes of one resident block: register state plus shared memory.
    pub fn block_context_bytes(&self) -> u64 {
        u64::from(self.threads_per_block) * u64::from(self.regs_per_thread) * 4
            + u64::from(self.shared_mem_per_block)
    }

    /// Total warp instructions executed by one (unjittered) block.
    pub fn insts_per_block(&self) -> u64 {
        self.program.insts_per_warp() * u64::from(self.warps_per_block())
    }

    /// Replace the program (used by idempotence instrumentation).
    pub fn with_program(&self, program: Program) -> KernelDesc {
        KernelDesc {
            program,
            ..self.clone()
        }
    }

    /// Replace the grid size (used by multi-launch jobs such as LUD).
    pub fn with_grid_blocks(&self, grid_blocks: u32) -> KernelDesc {
        assert!(grid_blocks > 0, "grid must contain at least one block");
        KernelDesc {
            grid_blocks,
            ..self.clone()
        }
    }

    /// Replace the name.
    pub fn with_name(&self, name: impl Into<String>) -> KernelDesc {
        KernelDesc {
            name: name.into(),
            ..self.clone()
        }
    }
}

impl fmt::Display for KernelDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} <<<{}, {}>>> ({} regs/thread, {} B smem)",
            self.name,
            self.grid_blocks,
            self.threads_per_block,
            self.regs_per_thread,
            self.shared_mem_per_block
        )
    }
}

/// Builder for [`KernelDesc`] (see C-BUILDER).
#[derive(Debug, Clone)]
pub struct KernelDescBuilder {
    name: String,
    grid_blocks: u32,
    threads_per_block: u32,
    regs_per_thread: u32,
    shared_mem_per_block: u32,
    program: Program,
    jitter_pct: f64,
}

impl KernelDescBuilder {
    fn new(name: impl Into<String>) -> Self {
        KernelDescBuilder {
            name: name.into(),
            grid_blocks: 1,
            threads_per_block: 128,
            regs_per_thread: 16,
            shared_mem_per_block: 0,
            program: Program::default(),
            jitter_pct: 0.0,
        }
    }

    /// Set the grid size in blocks.
    pub fn grid_blocks(mut self, blocks: u32) -> Self {
        self.grid_blocks = blocks;
        self
    }

    /// Set threads per block (must be a positive multiple of 32).
    pub fn threads_per_block(mut self, threads: u32) -> Self {
        self.threads_per_block = threads;
        self
    }

    /// Set registers per thread.
    pub fn regs_per_thread(mut self, regs: u32) -> Self {
        self.regs_per_thread = regs;
        self
    }

    /// Set shared memory per block in bytes.
    pub fn shared_mem_per_block(mut self, bytes: u32) -> Self {
        self.shared_mem_per_block = bytes;
        self
    }

    /// Set the warp program.
    pub fn program(mut self, program: Program) -> Self {
        self.program = program;
        self
    }

    /// Set per-block execution-length jitter (e.g. `0.1` for ±10 %).
    pub fn jitter_pct(mut self, pct: f64) -> Self {
        self.jitter_pct = pct;
        self
    }

    /// Validate and build the kernel description.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] if the geometry is invalid or the per-block
    /// resources cannot fit on any SM of the Fermi configuration.
    pub fn build(self) -> Result<KernelDesc, KernelError> {
        if self.threads_per_block == 0 || !self.threads_per_block.is_multiple_of(32) {
            return Err(KernelError::BadThreadCount(self.threads_per_block));
        }
        if self.grid_blocks == 0 {
            return Err(KernelError::EmptyGrid);
        }
        if self.program.insts_per_warp() == 0 {
            return Err(KernelError::EmptyProgram);
        }
        let cfg = crate::GpuConfig::fermi();
        let regs = self.threads_per_block * self.regs_per_thread;
        if regs > cfg.registers_per_sm {
            return Err(KernelError::ExceedsSmResources(format!(
                "{regs} registers > {} per SM",
                cfg.registers_per_sm
            )));
        }
        if self.shared_mem_per_block > cfg.shared_mem_per_sm {
            return Err(KernelError::ExceedsSmResources(format!(
                "{} B shared memory > {} per SM",
                self.shared_mem_per_block, cfg.shared_mem_per_sm
            )));
        }
        if self.threads_per_block > cfg.max_threads_per_sm {
            return Err(KernelError::ExceedsSmResources(format!(
                "{} threads > {} per SM",
                self.threads_per_block, cfg.max_threads_per_sm
            )));
        }
        Ok(KernelDesc {
            name: self.name,
            grid_blocks: self.grid_blocks,
            threads_per_block: self.threads_per_block,
            regs_per_thread: self.regs_per_thread,
            shared_mem_per_block: self.shared_mem_per_block,
            program: self.program,
            jitter_pct: self.jitter_pct,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_program() -> Program {
        Program::new(vec![
            Segment::load(20),
            Segment::compute(100),
            Segment::Barrier,
            Segment::compute(60),
            Segment::store(20),
        ])
    }

    #[test]
    fn program_instruction_count() {
        assert_eq!(demo_program().insts_per_warp(), 200);
    }

    #[test]
    fn idempotent_program_has_no_breaking_segment() {
        let p = demo_program();
        assert!(p.is_idempotent());
        assert_eq!(p.first_non_idempotent(), None);
        assert!((p.idempotent_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn atomic_breaks_idempotence() {
        let p = Program::new(vec![Segment::compute(90), Segment::atomic(10)]);
        assert!(!p.is_idempotent());
        assert_eq!(p.first_non_idempotent(), Some(1));
        assert!((p.idempotent_fraction() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn overwrite_breaks_idempotence_but_plain_store_does_not() {
        let plain = Program::new(vec![Segment::store(10)]);
        assert!(plain.is_idempotent());
        // The deprecated shim lowers to a fused read-modify-write, which is
        // non-idempotent even with no preceding load segment.
        let over = Program::new(vec![Segment::overwrite(10)]);
        assert!(!over.is_idempotent());
    }

    #[test]
    fn aliasing_store_is_derived_as_overwrite() {
        let window = AccessRegion::per_block_window(0, 0, 8);
        // Plain store to the window the block previously read: overwrite.
        let p = Program::new(vec![
            Segment::load_region(8, window),
            Segment::compute(50),
            Segment::store_region(4, window),
        ]);
        assert!(!p.is_idempotent());
        assert_eq!(p.first_non_idempotent(), Some(2));
        assert!(p.segment_non_idempotent(2));
        assert!(
            !p.segments()[2].is_non_idempotent(),
            "not rmw, derived only"
        );
        // Same store to a disjoint output buffer: idempotent.
        let q = Program::new(vec![
            Segment::load_region(8, window),
            Segment::compute(50),
            Segment::store_region(4, AccessRegion::per_block_window(1, 0, 4)),
        ]);
        assert!(q.is_idempotent());
    }

    #[test]
    fn store_before_read_does_not_clobber() {
        // Writing a location and reading it *afterwards* is idempotent:
        // re-execution rewrites the same value before the read.
        let window = AccessRegion::per_block_window(0, 0, 4);
        let p = Program::new(vec![
            Segment::store_region(4, window),
            Segment::load_region(4, window),
        ]);
        assert!(p.is_idempotent());
        // ...but a second store after the read does clobber it.
        let q = Program::new(vec![
            Segment::store_region(4, window),
            Segment::load_region(4, window),
            Segment::store_region(4, window),
        ]);
        assert_eq!(q.first_non_idempotent(), Some(2));
    }

    #[test]
    fn region_overlap_rules() {
        let a = AccessRegion::new(0, 0, 256, 1 << 20);
        let b = AccessRegion::new(0, 128, 256, 1 << 20);
        let c = AccessRegion::new(0, 256, 256, 1 << 20);
        let other_buf = AccessRegion::new(1, 0, 256, 1 << 20);
        assert!(a.may_overlap(&b));
        assert!(!a.may_overlap(&c), "half-open intervals");
        assert!(!a.may_overlap(&other_buf));
        // Differing strides are conservatively may-alias...
        let strided = AccessRegion::new(0, 4096, 64, 0);
        assert!(a.may_overlap(&strided));
        // ...but the concrete check is exact per block.
        assert!(!a.overlaps_for_block(&strided, 0));
        assert!(a.overlaps_for_block(&AccessRegion::new(0, 0, 64, 0), 0));
        let (s, e) = b.interval_for_block(2);
        assert_eq!((s, e), (128 + 2 * (1 << 20), 128 + 2 * (1 << 20) + 256));
    }

    #[test]
    fn builder_validates_threads() {
        let e = KernelDesc::builder("x")
            .threads_per_block(100)
            .program(demo_program())
            .build()
            .unwrap_err();
        assert_eq!(e, KernelError::BadThreadCount(100));
    }

    #[test]
    fn builder_validates_grid_and_program() {
        assert_eq!(
            KernelDesc::builder("x")
                .grid_blocks(0)
                .program(demo_program())
                .build()
                .unwrap_err(),
            KernelError::EmptyGrid
        );
        assert_eq!(
            KernelDesc::builder("x").grid_blocks(1).build().unwrap_err(),
            KernelError::EmptyProgram
        );
    }

    #[test]
    fn builder_validates_sm_resources() {
        let e = KernelDesc::builder("x")
            .threads_per_block(1024)
            .regs_per_thread(64)
            .program(demo_program())
            .build()
            .unwrap_err();
        assert!(matches!(e, KernelError::ExceedsSmResources(_)));
    }

    #[test]
    fn context_bytes_counts_registers_and_shared_memory() {
        let k = KernelDesc::builder("x")
            .grid_blocks(4)
            .threads_per_block(128)
            .regs_per_thread(32)
            .shared_mem_per_block(8192)
            .program(demo_program())
            .build()
            .unwrap();
        assert_eq!(k.block_context_bytes(), 128 * 32 * 4 + 8192);
        assert_eq!(k.warps_per_block(), 4);
        assert_eq!(k.insts_per_block(), 200 * 4);
    }

    #[test]
    fn display_formats() {
        let k = KernelDesc::builder("demo")
            .grid_blocks(2)
            .program(demo_program())
            .build()
            .unwrap();
        let s = format!("{k}");
        assert!(s.contains("demo"));
        assert!(format!("{}", Segment::compute(5)).contains("compute"));
        assert!(format!("{}", Segment::ProtectStore).contains("protect"));
    }

    #[test]
    fn with_program_and_grid_preserve_other_fields() {
        let k = KernelDesc::builder("demo")
            .grid_blocks(7)
            .program(demo_program())
            .build()
            .unwrap();
        let k2 = k.with_grid_blocks(3).with_name("demo2");
        assert_eq!(k2.grid_blocks(), 3);
        assert_eq!(k2.name(), "demo2");
        assert_eq!(k2.threads_per_block(), k.threads_per_block());
    }
}
