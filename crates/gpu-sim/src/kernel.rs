//! Kernel intermediate representation.
//!
//! Kernels are described as *segmented warp programs*: every warp of a thread
//! block executes the same sequence of [`Segment`]s. Segments are coarse
//! (hundreds of instructions each) which is all the fidelity the Chimera cost
//! model needs — it reasons about per-block instruction counts and cycles, not
//! about individual operations.
//!
//! Two segment kinds make a program *non-idempotent*: [`Segment::Atomic`] and
//! [`Segment::GlobalStore`] with `overwrite: true` (a store to a location that
//! the block previously read — the paper's two idempotence-breaking
//! conditions, §2.3). The `idem` crate analyses programs for these and inserts
//! [`Segment::ProtectStore`] markers implementing the paper's software
//! detection of the *relaxed* idempotence condition (§3.4).

use std::fmt;

/// One coarse step of a warp's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Segment {
    /// `insts` arithmetic warp-instructions; fully pipelined.
    Compute {
        /// Number of warp instructions in the segment.
        insts: u32,
    },
    /// `insts` coalesced global loads (128 B per warp instruction).
    GlobalLoad {
        /// Number of warp instructions in the segment.
        insts: u32,
    },
    /// `insts` coalesced global stores.
    GlobalStore {
        /// Number of warp instructions in the segment.
        insts: u32,
        /// When `true`, the stores overwrite locations previously read by this
        /// block, making the block non-idempotent from this point on.
        overwrite: bool,
    },
    /// `insts` atomic read-modify-write operations (always non-idempotent).
    Atomic {
        /// Number of warp instructions in the segment.
        insts: u32,
    },
    /// `insts` shared-memory accesses (on-chip, no DRAM traffic).
    Shared {
        /// Number of warp instructions in the segment.
        insts: u32,
    },
    /// Block-wide barrier (`__syncthreads()`).
    Barrier,
    /// A single store to a predefined non-cacheable address announcing that
    /// the block is about to leave its idempotent region. Inserted by the
    /// `idem` crate; never written by hand in workload definitions.
    ProtectStore,
}

impl Segment {
    /// Convenience constructor for a compute segment.
    pub fn compute(insts: u32) -> Self {
        Segment::Compute { insts }
    }

    /// Convenience constructor for a global-load segment.
    pub fn load(insts: u32) -> Self {
        Segment::GlobalLoad { insts }
    }

    /// Convenience constructor for an idempotent global-store segment.
    pub fn store(insts: u32) -> Self {
        Segment::GlobalStore {
            insts,
            overwrite: false,
        }
    }

    /// Convenience constructor for a non-idempotent overwrite segment.
    pub fn overwrite(insts: u32) -> Self {
        Segment::GlobalStore {
            insts,
            overwrite: true,
        }
    }

    /// Convenience constructor for an atomic segment.
    pub fn atomic(insts: u32) -> Self {
        Segment::Atomic { insts }
    }

    /// Number of warp instructions this segment contributes.
    pub fn insts(&self) -> u32 {
        match *self {
            Segment::Compute { insts }
            | Segment::GlobalLoad { insts }
            | Segment::GlobalStore { insts, .. }
            | Segment::Atomic { insts }
            | Segment::Shared { insts } => insts,
            Segment::Barrier => 0,
            Segment::ProtectStore => 1,
        }
    }

    /// Whether executing this segment breaks block idempotence.
    pub fn is_non_idempotent(&self) -> bool {
        matches!(
            *self,
            Segment::Atomic { .. }
                | Segment::GlobalStore {
                    overwrite: true,
                    ..
                }
        )
    }

    /// Whether this segment generates DRAM traffic.
    pub fn is_global_memory(&self) -> bool {
        matches!(
            *self,
            Segment::GlobalLoad { .. }
                | Segment::GlobalStore { .. }
                | Segment::Atomic { .. }
                | Segment::ProtectStore
        )
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Segment::Compute { insts } => write!(f, "compute[{insts}]"),
            Segment::GlobalLoad { insts } => write!(f, "load[{insts}]"),
            Segment::GlobalStore {
                insts,
                overwrite: false,
            } => write!(f, "store[{insts}]"),
            Segment::GlobalStore {
                insts,
                overwrite: true,
            } => write!(f, "overwrite[{insts}]"),
            Segment::Atomic { insts } => write!(f, "atomic[{insts}]"),
            Segment::Shared { insts } => write!(f, "shared[{insts}]"),
            Segment::Barrier => write!(f, "barrier"),
            Segment::ProtectStore => write!(f, "protect-store"),
        }
    }
}

/// A complete warp program: the segment sequence every warp executes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    segments: Vec<Segment>,
}

impl Program {
    /// Create a program from segments.
    pub fn new(segments: Vec<Segment>) -> Self {
        Program { segments }
    }

    /// The segments of the program.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total warp instructions one warp executes.
    pub fn insts_per_warp(&self) -> u64 {
        self.segments.iter().map(|s| u64::from(s.insts())).sum()
    }

    /// Index of the first non-idempotent segment, if any.
    pub fn first_non_idempotent(&self) -> Option<usize> {
        self.segments.iter().position(Segment::is_non_idempotent)
    }

    /// Whether the whole program is idempotent (strict condition, §2.3).
    pub fn is_idempotent(&self) -> bool {
        self.first_non_idempotent().is_none()
    }

    /// Fraction of per-warp instructions executed before the first
    /// non-idempotent segment; `1.0` for idempotent programs.
    pub fn idempotent_fraction(&self) -> f64 {
        let total = self.insts_per_warp();
        if total == 0 {
            return 1.0;
        }
        match self.first_non_idempotent() {
            None => 1.0,
            Some(ix) => {
                let before: u64 = self.segments[..ix]
                    .iter()
                    .map(|s| u64::from(s.insts()))
                    .sum();
                before as f64 / total as f64
            }
        }
    }

    /// Count of global store/atomic segments (used to size functional memory).
    pub fn effect_segments(&self) -> usize {
        self.segments
            .iter()
            .filter(|s| matches!(s, Segment::GlobalStore { .. } | Segment::Atomic { .. }))
            .count()
    }
}

impl FromIterator<Segment> for Program {
    fn from_iter<I: IntoIterator<Item = Segment>>(iter: I) -> Self {
        Program::new(iter.into_iter().collect())
    }
}

/// Error constructing a [`KernelDesc`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// Threads per block must be a positive multiple of the 32-thread warp.
    BadThreadCount(u32),
    /// Grid must contain at least one block.
    EmptyGrid,
    /// The program contains no instructions.
    EmptyProgram,
    /// Per-block resources exceed a single SM's capacity.
    ExceedsSmResources(String),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::BadThreadCount(t) => {
                write!(
                    f,
                    "threads per block must be a positive multiple of 32, got {t}"
                )
            }
            KernelError::EmptyGrid => write!(f, "grid must contain at least one block"),
            KernelError::EmptyProgram => write!(f, "program must contain at least one instruction"),
            KernelError::ExceedsSmResources(what) => {
                write!(f, "per-block resources exceed SM capacity: {what}")
            }
        }
    }
}

impl std::error::Error for KernelError {}

/// A kernel: grid geometry, per-block resources, and the warp program.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDesc {
    name: String,
    grid_blocks: u32,
    threads_per_block: u32,
    regs_per_thread: u32,
    shared_mem_per_block: u32,
    program: Program,
    jitter_pct: f64,
}

impl KernelDesc {
    /// Start building a kernel description.
    pub fn builder(name: impl Into<String>) -> KernelDescBuilder {
        KernelDescBuilder::new(name)
    }

    /// Kernel name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of thread blocks in the grid.
    pub fn grid_blocks(&self) -> u32 {
        self.grid_blocks
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.threads_per_block
    }

    /// Warps per block.
    pub fn warps_per_block(&self) -> u32 {
        self.threads_per_block / 32
    }

    /// Registers per thread.
    pub fn regs_per_thread(&self) -> u32 {
        self.regs_per_thread
    }

    /// Shared memory per block, bytes.
    pub fn shared_mem_per_block(&self) -> u32 {
        self.shared_mem_per_block
    }

    /// The warp program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Per-block execution length jitter (fraction; blocks vary by ±this).
    pub fn jitter_pct(&self) -> f64 {
        self.jitter_pct
    }

    /// Context bytes of one resident block: register state plus shared memory.
    pub fn block_context_bytes(&self) -> u64 {
        u64::from(self.threads_per_block) * u64::from(self.regs_per_thread) * 4
            + u64::from(self.shared_mem_per_block)
    }

    /// Total warp instructions executed by one (unjittered) block.
    pub fn insts_per_block(&self) -> u64 {
        self.program.insts_per_warp() * u64::from(self.warps_per_block())
    }

    /// Replace the program (used by idempotence instrumentation).
    pub fn with_program(&self, program: Program) -> KernelDesc {
        KernelDesc {
            program,
            ..self.clone()
        }
    }

    /// Replace the grid size (used by multi-launch jobs such as LUD).
    pub fn with_grid_blocks(&self, grid_blocks: u32) -> KernelDesc {
        assert!(grid_blocks > 0, "grid must contain at least one block");
        KernelDesc {
            grid_blocks,
            ..self.clone()
        }
    }

    /// Replace the name.
    pub fn with_name(&self, name: impl Into<String>) -> KernelDesc {
        KernelDesc {
            name: name.into(),
            ..self.clone()
        }
    }
}

impl fmt::Display for KernelDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} <<<{}, {}>>> ({} regs/thread, {} B smem)",
            self.name,
            self.grid_blocks,
            self.threads_per_block,
            self.regs_per_thread,
            self.shared_mem_per_block
        )
    }
}

/// Builder for [`KernelDesc`] (see C-BUILDER).
#[derive(Debug, Clone)]
pub struct KernelDescBuilder {
    name: String,
    grid_blocks: u32,
    threads_per_block: u32,
    regs_per_thread: u32,
    shared_mem_per_block: u32,
    program: Program,
    jitter_pct: f64,
}

impl KernelDescBuilder {
    fn new(name: impl Into<String>) -> Self {
        KernelDescBuilder {
            name: name.into(),
            grid_blocks: 1,
            threads_per_block: 128,
            regs_per_thread: 16,
            shared_mem_per_block: 0,
            program: Program::default(),
            jitter_pct: 0.0,
        }
    }

    /// Set the grid size in blocks.
    pub fn grid_blocks(mut self, blocks: u32) -> Self {
        self.grid_blocks = blocks;
        self
    }

    /// Set threads per block (must be a positive multiple of 32).
    pub fn threads_per_block(mut self, threads: u32) -> Self {
        self.threads_per_block = threads;
        self
    }

    /// Set registers per thread.
    pub fn regs_per_thread(mut self, regs: u32) -> Self {
        self.regs_per_thread = regs;
        self
    }

    /// Set shared memory per block in bytes.
    pub fn shared_mem_per_block(mut self, bytes: u32) -> Self {
        self.shared_mem_per_block = bytes;
        self
    }

    /// Set the warp program.
    pub fn program(mut self, program: Program) -> Self {
        self.program = program;
        self
    }

    /// Set per-block execution-length jitter (e.g. `0.1` for ±10 %).
    pub fn jitter_pct(mut self, pct: f64) -> Self {
        self.jitter_pct = pct;
        self
    }

    /// Validate and build the kernel description.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] if the geometry is invalid or the per-block
    /// resources cannot fit on any SM of the Fermi configuration.
    pub fn build(self) -> Result<KernelDesc, KernelError> {
        if self.threads_per_block == 0 || !self.threads_per_block.is_multiple_of(32) {
            return Err(KernelError::BadThreadCount(self.threads_per_block));
        }
        if self.grid_blocks == 0 {
            return Err(KernelError::EmptyGrid);
        }
        if self.program.insts_per_warp() == 0 {
            return Err(KernelError::EmptyProgram);
        }
        let cfg = crate::GpuConfig::fermi();
        let regs = self.threads_per_block * self.regs_per_thread;
        if regs > cfg.registers_per_sm {
            return Err(KernelError::ExceedsSmResources(format!(
                "{regs} registers > {} per SM",
                cfg.registers_per_sm
            )));
        }
        if self.shared_mem_per_block > cfg.shared_mem_per_sm {
            return Err(KernelError::ExceedsSmResources(format!(
                "{} B shared memory > {} per SM",
                self.shared_mem_per_block, cfg.shared_mem_per_sm
            )));
        }
        if self.threads_per_block > cfg.max_threads_per_sm {
            return Err(KernelError::ExceedsSmResources(format!(
                "{} threads > {} per SM",
                self.threads_per_block, cfg.max_threads_per_sm
            )));
        }
        Ok(KernelDesc {
            name: self.name,
            grid_blocks: self.grid_blocks,
            threads_per_block: self.threads_per_block,
            regs_per_thread: self.regs_per_thread,
            shared_mem_per_block: self.shared_mem_per_block,
            program: self.program,
            jitter_pct: self.jitter_pct,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_program() -> Program {
        Program::new(vec![
            Segment::load(20),
            Segment::compute(100),
            Segment::Barrier,
            Segment::compute(60),
            Segment::store(20),
        ])
    }

    #[test]
    fn program_instruction_count() {
        assert_eq!(demo_program().insts_per_warp(), 200);
    }

    #[test]
    fn idempotent_program_has_no_breaking_segment() {
        let p = demo_program();
        assert!(p.is_idempotent());
        assert_eq!(p.first_non_idempotent(), None);
        assert!((p.idempotent_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn atomic_breaks_idempotence() {
        let p = Program::new(vec![Segment::compute(90), Segment::atomic(10)]);
        assert!(!p.is_idempotent());
        assert_eq!(p.first_non_idempotent(), Some(1));
        assert!((p.idempotent_fraction() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn overwrite_breaks_idempotence_but_plain_store_does_not() {
        let plain = Program::new(vec![Segment::store(10)]);
        assert!(plain.is_idempotent());
        let over = Program::new(vec![Segment::overwrite(10)]);
        assert!(!over.is_idempotent());
    }

    #[test]
    fn builder_validates_threads() {
        let e = KernelDesc::builder("x")
            .threads_per_block(100)
            .program(demo_program())
            .build()
            .unwrap_err();
        assert_eq!(e, KernelError::BadThreadCount(100));
    }

    #[test]
    fn builder_validates_grid_and_program() {
        assert_eq!(
            KernelDesc::builder("x")
                .grid_blocks(0)
                .program(demo_program())
                .build()
                .unwrap_err(),
            KernelError::EmptyGrid
        );
        assert_eq!(
            KernelDesc::builder("x").grid_blocks(1).build().unwrap_err(),
            KernelError::EmptyProgram
        );
    }

    #[test]
    fn builder_validates_sm_resources() {
        let e = KernelDesc::builder("x")
            .threads_per_block(1024)
            .regs_per_thread(64)
            .program(demo_program())
            .build()
            .unwrap_err();
        assert!(matches!(e, KernelError::ExceedsSmResources(_)));
    }

    #[test]
    fn context_bytes_counts_registers_and_shared_memory() {
        let k = KernelDesc::builder("x")
            .grid_blocks(4)
            .threads_per_block(128)
            .regs_per_thread(32)
            .shared_mem_per_block(8192)
            .program(demo_program())
            .build()
            .unwrap();
        assert_eq!(k.block_context_bytes(), 128 * 32 * 4 + 8192);
        assert_eq!(k.warps_per_block(), 4);
        assert_eq!(k.insts_per_block(), 200 * 4);
    }

    #[test]
    fn display_formats() {
        let k = KernelDesc::builder("demo")
            .grid_blocks(2)
            .program(demo_program())
            .build()
            .unwrap();
        let s = format!("{k}");
        assert!(s.contains("demo"));
        assert!(format!("{}", Segment::compute(5)).contains("compute"));
        assert!(format!("{}", Segment::ProtectStore).contains("protect"));
    }

    #[test]
    fn with_program_and_grid_preserve_other_fields() {
        let k = KernelDesc::builder("demo")
            .grid_blocks(7)
            .program(demo_program())
            .build()
            .unwrap();
        let k2 = k.with_grid_blocks(3).with_name("demo2");
        assert_eq!(k2.grid_blocks(), 3);
        assert_eq!(k2.name(), "demo2");
        assert_eq!(k2.threads_per_block(), k.threads_per_block());
    }
}
