//! Occupancy calculation: how many blocks of a kernel fit on one SM.

use crate::{GpuConfig, KernelDesc};
use std::fmt;

/// Which resource bounds the number of resident blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LimitReason {
    /// The per-SM register file.
    Registers,
    /// The per-SM shared memory.
    SharedMemory,
    /// The per-SM resident-thread limit.
    Threads,
    /// The per-SM resident-warp limit.
    Warps,
    /// The architectural cap on resident blocks.
    MaxBlocks,
}

impl fmt::Display for LimitReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LimitReason::Registers => "registers",
            LimitReason::SharedMemory => "shared memory",
            LimitReason::Threads => "threads",
            LimitReason::Warps => "warps",
            LimitReason::MaxBlocks => "max blocks",
        };
        f.write_str(s)
    }
}

/// Result of the occupancy calculation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Occupancy {
    /// Blocks of this kernel that fit on one SM (≥ 1 for valid kernels).
    pub blocks_per_sm: u32,
    /// The binding resource.
    pub limiting: LimitReason,
}

/// Compute how many blocks of `kernel` can be resident on one SM of `cfg`.
///
/// Mirrors the CUDA occupancy rules for the resources the simulator models:
/// registers, shared memory, resident threads/warps and the architectural
/// block cap.
///
/// ```
/// use gpu_sim::{occupancy, GpuConfig, KernelDesc, LimitReason, Program, Segment};
///
/// let k = KernelDesc::builder("stencil")
///     .grid_blocks(100)
///     .threads_per_block(128)
///     .regs_per_thread(8)
///     .shared_mem_per_block(12 * 1024) // 12 kB -> 4 blocks of 48 kB
///     .program(Program::new(vec![Segment::compute(100)]))
///     .build()?;
/// let occ = occupancy(&GpuConfig::fermi(), &k);
/// assert_eq!(occ.blocks_per_sm, 4);
/// assert_eq!(occ.limiting, LimitReason::SharedMemory);
/// # Ok::<(), gpu_sim::KernelError>(())
/// ```
pub fn occupancy(cfg: &GpuConfig, kernel: &KernelDesc) -> Occupancy {
    let regs_per_block = kernel.threads_per_block() * kernel.regs_per_thread();
    let by_regs = cfg
        .registers_per_sm
        .checked_div(regs_per_block)
        .unwrap_or(u32::MAX);
    let by_smem = if kernel.shared_mem_per_block() == 0 {
        u32::MAX
    } else {
        cfg.shared_mem_per_sm / kernel.shared_mem_per_block()
    };
    let by_threads = cfg.max_threads_per_sm / kernel.threads_per_block();
    let by_warps = cfg.max_warps_per_sm / kernel.warps_per_block();
    let candidates = [
        (by_regs, LimitReason::Registers),
        (by_smem, LimitReason::SharedMemory),
        (by_threads, LimitReason::Threads),
        (by_warps, LimitReason::Warps),
        (cfg.max_blocks_per_sm, LimitReason::MaxBlocks),
    ];
    // min() returns the first minimum; order the array so that architectural
    // caps lose ties to resource limits for more informative reporting.
    let (blocks, limiting) = candidates
        .iter()
        .copied()
        .min_by_key(|&(b, _)| b)
        .expect("non-empty candidate list");
    Occupancy {
        blocks_per_sm: blocks,
        limiting,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Program, Segment};

    fn kernel(threads: u32, regs: u32, smem: u32) -> KernelDesc {
        KernelDesc::builder("k")
            .grid_blocks(100)
            .threads_per_block(threads)
            .regs_per_thread(regs)
            .shared_mem_per_block(smem)
            .program(Program::new(vec![Segment::compute(100)]))
            .build()
            .unwrap()
    }

    #[test]
    fn small_kernel_hits_block_cap() {
        let cfg = GpuConfig::fermi();
        let occ = occupancy(&cfg, &kernel(128, 8, 0));
        assert_eq!(occ.blocks_per_sm, 8);
        assert_eq!(occ.limiting, LimitReason::MaxBlocks);
    }

    #[test]
    fn register_bound_kernel() {
        let cfg = GpuConfig::fermi();
        // 256 threads x 60 regs = 15360 regs/block -> 2 blocks.
        let occ = occupancy(&cfg, &kernel(256, 60, 0));
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limiting, LimitReason::Registers);
    }

    #[test]
    fn shared_memory_bound_kernel() {
        let cfg = GpuConfig::fermi();
        // 12 kB smem -> 4 blocks of 48 kB.
        let occ = occupancy(&cfg, &kernel(128, 8, 12 * 1024));
        assert_eq!(occ.blocks_per_sm, 4);
        assert_eq!(occ.limiting, LimitReason::SharedMemory);
    }

    #[test]
    fn thread_bound_kernel() {
        let cfg = GpuConfig::fermi();
        // 1024 threads/block -> 1536/1024 = 1 block.
        let occ = occupancy(&cfg, &kernel(1024, 8, 0));
        assert_eq!(occ.blocks_per_sm, 1);
        assert_eq!(occ.limiting, LimitReason::Threads);
    }

    #[test]
    fn occupancy_never_zero_for_buildable_kernels() {
        let cfg = GpuConfig::fermi();
        // The KernelDesc builder rejects anything that cannot fit once.
        for &(t, r, s) in &[(1024u32, 32u32, 48 * 1024u32), (128, 64, 0), (32, 8, 65)] {
            let occ = occupancy(&cfg, &kernel(t, r, s));
            assert!(occ.blocks_per_sm >= 1, "{t}/{r}/{s} -> {occ:?}");
        }
    }
}
