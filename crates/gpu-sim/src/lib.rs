//! # gpu-sim — a discrete-time GPU simulator substrate
//!
//! This crate models enough of a Fermi-class GPU to reproduce the evaluation of
//! *Chimera: Collaborative Preemption for Multitasking on a Shared GPU*
//! (ASPLOS 2015): streaming multiprocessors (SMs) with an issue-pipeline model,
//! warps executing segmented kernel programs, thread-block dispatch with an
//! occupancy calculator, a bandwidth-queued partitioned memory subsystem, and —
//! crucially — the three preemption mechanisms the paper builds on:
//! **context switching** (halt + save/restore), **draining** (stop dispatching,
//! let resident blocks finish) and **flushing** (drop blocks instantly and
//! restart them from scratch elsewhere).
//!
//! The simulator executes *synthetic* kernel programs (see the `workloads`
//! crate) whose timing characteristics are calibrated against the paper's
//! Table 2. Kernels also carry a small functional semantics (writes to a
//! modelled global memory) so that idempotence violations are *observable*:
//! flushing a thread block after it performed an atomic or a global overwrite
//! corrupts the final memory image, exactly as it would on real hardware.
//!
//! ## Quick example
//!
//! ```
//! use gpu_sim::{Engine, GpuConfig, KernelDesc, Program, Segment};
//!
//! let cfg = GpuConfig::fermi();
//! let mut engine = Engine::new(cfg);
//! let kernel = KernelDesc::builder("demo")
//!     .grid_blocks(64)
//!     .threads_per_block(128)
//!     .regs_per_thread(16)
//!     .program(Program::new(vec![Segment::compute(200)]))
//!     .build()
//!     .expect("valid kernel");
//! let kid = engine.launch_kernel(kernel);
//! for sm in 0..engine.config().num_sms {
//!     engine.assign_sm(sm, Some(kid));
//! }
//! engine.run_until(2_000_000);
//! assert!(engine.kernel_stats(kid).finished);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod block;
pub mod component;
pub mod config;
pub mod engine;
pub mod events;
pub mod kernel;
pub mod mem;
pub mod occupancy;
pub mod preempt;
pub mod race;
pub mod rng;
pub mod sanitizer;
pub mod sm;
pub mod stats;
pub mod trace;
pub mod warp;

pub use block::{BlockId, BlockRun, BlockStats, TbSnapshot};
pub use component::{Component, ComponentId, TbDispatcher, TickCtx};
pub use config::{GpuConfig, WarpSched, CYCLES_PER_US};
pub use engine::{Engine, Event, ExecMode, KernelId};
pub use events::{BlockDecision, BlockExit, EventLog, ObsEvent, ShedReason, TechniqueEstimate};
pub use kernel::{AccessRegion, KernelDesc, KernelDescBuilder, KernelError, Program, Segment};
pub use mem::{MemPartitionStats, MemSubsystem};
pub use occupancy::{occupancy, LimitReason, Occupancy};
pub use preempt::{PreemptOutcome, SmPreemptPlan, Technique};
pub use race::{RaceReport, RaceSanitizer, RaceViolation, SharedResource, TestSharedCell};
pub use sanitizer::{FlushSanitizer, SanitizerReport, UnsafeWrite};
pub use sm::{PreemptError, Sm, SmMode, SmSnapshot, TbSnapshotInfo, TickLimits};
pub use stats::{GpuStats, KernelStats};
