//! Thread-block execution state.

use crate::kernel::{KernelDesc, Segment};
use crate::rng::{hash_combine, unit_f64};
use crate::warp::{Warp, WarpPhase};
use crate::KernelId;

/// Identifies a thread block within a launched kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId {
    /// The kernel instance this block belongs to.
    pub kernel: KernelId,
    /// The block's index within the grid.
    pub index: u32,
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.kernel.0, self.index)
    }
}

/// Progress statistics of one resident block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockStats {
    /// Warp instructions issued by this block in total (across context
    /// switches, but reset by a flush since flushed work is discarded).
    pub issued_insts: u64,
    /// Cycles the block has been resident (across context switches).
    pub elapsed_cycles: u64,
}

/// A thread block resident on an SM.
#[derive(Debug, Clone)]
pub struct BlockRun {
    /// The block's identity.
    pub id: BlockId,
    /// Jitter-scaled instruction count for every program segment.
    scaled_segs: Vec<u32>,
    warps: Vec<Warp>,
    /// Cycle at which the block was (re-)dispatched onto its current SM.
    pub dispatched_at: u64,
    /// Instructions issued before the current residency (restored context).
    prior_insts: u64,
    /// Cycles elapsed before the current residency (restored context).
    prior_cycles: u64,
    /// Instructions issued during the current residency.
    insts_this_residency: u64,
    /// Whether the block has executed a protect-store (or, for
    /// non-instrumented programs, any non-idempotent segment): once set the
    /// block must not be flushed.
    pub past_idem_point: bool,
    /// Cycle before which the block's warps may not issue (context-load stall).
    pub warm_up_until: u64,
}

/// A saved block context produced by a context switch.
#[derive(Debug, Clone)]
pub struct TbSnapshot {
    /// The block's identity.
    pub id: BlockId,
    pub(crate) scaled_segs: Vec<u32>,
    pub(crate) warps: Vec<Warp>,
    pub(crate) insts: u64,
    pub(crate) cycles: u64,
    pub(crate) past_idem_point: bool,
}

/// Compute the jitter-scaled segment lengths for block `index` of `desc`.
///
/// Deterministic in `(seed, index)` so results do not depend on scheduling
/// order. Every block of a kernel uses one scale factor for all segments.
pub fn scaled_segments(desc: &KernelDesc, seed: u64, index: u32) -> Vec<u32> {
    let segs = desc.program().segments();
    let jitter = desc.jitter_pct();
    let factor = if jitter == 0.0 {
        1.0
    } else {
        let u = unit_f64(hash_combine(&[seed, u64::from(index), 0xB10C]));
        1.0 + jitter * (2.0 * u - 1.0)
    };
    segs.iter()
        .map(|s| match s {
            Segment::Barrier => 0,
            Segment::ProtectStore => 1,
            // simlint: allow(as-narrowing) -- saturating float cast of a u32 count scaled by at most 2x jitter
            _ => ((f64::from(s.insts()) * factor).round() as u32).max(1),
        })
        .collect()
}

impl BlockRun {
    /// Create a fresh block run starting from the beginning of the program.
    pub fn new(id: BlockId, desc: &KernelDesc, seed: u64, now: u64) -> Self {
        let scaled = scaled_segments(desc, seed, id.index);
        let warps = (0..desc.warps_per_block()).map(Warp::new).collect();
        BlockRun {
            id,
            scaled_segs: scaled,
            warps,
            dispatched_at: now,
            prior_insts: 0,
            prior_cycles: 0,
            insts_this_residency: 0,
            past_idem_point: false,
            warm_up_until: now,
        }
    }

    /// Restore a block from a context-switch snapshot.
    ///
    /// `ready_at` is the cycle at which the context load completes; warps may
    /// not issue before it.
    pub fn from_snapshot(snap: TbSnapshot, now: u64, ready_at: u64) -> Self {
        let warps = snap
            .warps
            .into_iter()
            .map(|mut w| {
                // In-flight memory operations were drained before the save.
                if matches!(w.phase, WarpPhase::WaitMem(_)) {
                    w.phase = WarpPhase::Ready;
                }
                w
            })
            .collect();
        BlockRun {
            id: snap.id,
            scaled_segs: snap.scaled_segs,
            warps,
            dispatched_at: now,
            prior_insts: snap.insts,
            prior_cycles: snap.cycles,
            insts_this_residency: 0,
            past_idem_point: snap.past_idem_point,
            warm_up_until: ready_at,
        }
    }

    /// Snapshot the block for a context switch at cycle `now`.
    pub fn snapshot(&self, now: u64) -> TbSnapshot {
        TbSnapshot {
            id: self.id,
            scaled_segs: self.scaled_segs.clone(),
            warps: self.warps.clone(),
            insts: self.issued_insts(),
            cycles: self.elapsed_cycles(now),
            past_idem_point: self.past_idem_point,
        }
    }

    /// The jitter-scaled segment lengths.
    pub fn scaled_segs(&self) -> &[u32] {
        &self.scaled_segs
    }

    /// Mutable access to the block's warps (SM internals).
    pub(crate) fn warps_mut(&mut self) -> &mut [Warp] {
        &mut self.warps
    }

    /// Issue up to `chunk` instructions from warp `wi` (allocation-free
    /// split-borrow of the scaled segment lengths and the warp state).
    pub(crate) fn issue_warp(
        &mut self,
        wi: usize,
        segments: &[crate::kernel::Segment],
        chunk: u32,
    ) -> crate::warp::IssueOutcome {
        self.warps[wi].issue(segments, &self.scaled_segs, chunk)
    }

    /// The block's warps.
    pub fn warps(&self) -> &[Warp] {
        &self.warps
    }

    /// Total warp instructions issued so far (including prior residencies).
    pub fn issued_insts(&self) -> u64 {
        self.prior_insts + self.insts_this_residency
    }

    /// Total cycles the block has been resident as of `now`.
    pub fn elapsed_cycles(&self, now: u64) -> u64 {
        self.prior_cycles + now.saturating_sub(self.dispatched_at)
    }

    /// Record `n` issued instructions.
    pub(crate) fn add_insts(&mut self, n: u32) {
        self.insts_this_residency += u64::from(n);
    }

    /// Total instructions this block will execute (jitter-scaled).
    pub fn total_insts(&self) -> u64 {
        let per_warp: u64 = self.scaled_segs.iter().map(|&n| u64::from(n)).sum();
        per_warp * self.warps.len() as u64
    }

    /// Whether every warp finished the program.
    pub fn all_done(&self) -> bool {
        self.warps.iter().all(|w| w.phase == WarpPhase::Done)
    }

    /// Whether every unfinished warp is parked at the barrier (release time).
    pub fn barrier_ready(&self) -> bool {
        let mut any = false;
        for w in &self.warps {
            match w.phase {
                WarpPhase::AtBarrier => any = true,
                WarpPhase::Done => {}
                _ => return false,
            }
        }
        any
    }

    /// Release all warps parked at the barrier.
    pub fn release_barrier(&mut self) {
        for w in &mut self.warps {
            if w.phase == WarpPhase::AtBarrier {
                w.release_barrier();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KernelDesc, Program, Segment};
    use crate::KernelId;

    fn desc(jitter: f64) -> KernelDesc {
        KernelDesc::builder("b")
            .grid_blocks(16)
            .threads_per_block(64)
            .program(Program::new(vec![
                Segment::compute(100),
                Segment::Barrier,
                Segment::store(10),
            ]))
            .jitter_pct(jitter)
            .build()
            .unwrap()
    }

    fn bid(i: u32) -> BlockId {
        BlockId {
            kernel: KernelId(0),
            index: i,
        }
    }

    #[test]
    fn scaled_segments_deterministic() {
        let d = desc(0.3);
        assert_eq!(scaled_segments(&d, 7, 3), scaled_segments(&d, 7, 3));
        assert_ne!(scaled_segments(&d, 7, 3), scaled_segments(&d, 7, 4));
    }

    #[test]
    fn zero_jitter_matches_program() {
        let d = desc(0.0);
        assert_eq!(scaled_segments(&d, 7, 0), vec![100, 0, 10]);
    }

    #[test]
    fn jitter_bounded() {
        let d = desc(0.25);
        for i in 0..100 {
            let s = scaled_segments(&d, 42, i);
            assert!(
                (75..=125).contains(&s[0]),
                "segment 0 jitter out of range: {}",
                s[0]
            );
        }
    }

    #[test]
    fn block_progress_accounting() {
        let d = desc(0.0);
        let mut b = BlockRun::new(bid(0), &d, 1, 100);
        b.add_insts(50);
        assert_eq!(b.issued_insts(), 50);
        assert_eq!(b.elapsed_cycles(300), 200);
        assert_eq!(b.total_insts(), 110 * 2);
    }

    #[test]
    fn snapshot_round_trip_preserves_progress() {
        let d = desc(0.0);
        let mut b = BlockRun::new(bid(5), &d, 1, 0);
        b.add_insts(77);
        b.past_idem_point = true;
        let snap = b.snapshot(500);
        let restored = BlockRun::from_snapshot(snap, 1000, 1200);
        assert_eq!(restored.issued_insts(), 77);
        assert_eq!(restored.elapsed_cycles(1000), 500);
        assert!(restored.past_idem_point);
        assert_eq!(restored.warm_up_until, 1200);
        assert_eq!(restored.id, bid(5));
    }

    #[test]
    fn snapshot_clears_memory_waits() {
        let d = desc(0.0);
        let mut b = BlockRun::new(bid(0), &d, 1, 0);
        b.warps_mut()[0].stall_until(10_000);
        let restored = BlockRun::from_snapshot(b.snapshot(100), 200, 200);
        assert!(restored.warps()[0].is_ready(200));
    }

    #[test]
    fn barrier_release_requires_all_warps() {
        let d = desc(0.0);
        let mut b = BlockRun::new(bid(0), &d, 1, 0);
        let segs = d.program().segments().to_vec();
        let scaled = b.scaled_segs().to_vec();
        // Drive warp 0 to the barrier.
        loop {
            let o = b.warps_mut()[0].issue(&segs, &scaled, 32);
            if o.hit_barrier {
                break;
            }
        }
        assert!(!b.barrier_ready(), "warp 1 still running");
        loop {
            let o = b.warps_mut()[1].issue(&segs, &scaled, 32);
            if o.hit_barrier {
                break;
            }
        }
        assert!(b.barrier_ready());
        b.release_barrier();
        assert!(b.warps().iter().all(|w| w.is_ready(0)));
    }
}
