//! The cycle engine: SMs + memory + kernel instances + dispatch.
//!
//! The engine is deliberately *mechanism, not policy*: it executes preemption
//! plans, tracks per-block progress and maintains the preempted-block queues,
//! while all decisions (which SM, which technique, when) are made by the
//! caller — the `chimera` crate's schedulers.
//!
//! # Execution modes
//!
//! The engine runs in one of three modes (selected with
//! [`Engine::set_exec_mode`]); all three produce **byte-identical** event
//! streams, statistics, observability logs and Chrome traces — see
//! `PARALLELISM.md` at the repository root for the full equivalence
//! argument:
//!
//! - [`ExecMode::Scan`] — the legacy linear min-scan reference scheduler:
//!   every step scans all components for the minimum next-tick time and no
//!   batched issue runs. Slow and obviously correct; kept as the
//!   differential baseline.
//! - [`ExecMode::Event`] (the default) — per-component next-tick times
//!   live both in the authoritative components themselves and in a
//!   binary-heap *event calendar* of `(cycle, `[`ComponentId`]`)` entries
//!   with lazy invalidation, so each step pops the earliest pending
//!   component directly instead of scanning all of them, and globally idle
//!   windows are skipped in one jump. Entries order by cycle then
//!   component id — the dispatcher first, then SMs by index, then memory
//!   partitions; see [`crate::component`] for why that merge key exactly
//!   reproduces the order the legacy loop produced — so the rewrite is
//!   observably identical.
//! - [`ExecMode::Parallel`] — the calendar engine plus an intra-run
//!   parallel phase: between *epoch barriers* the SMs are partitioned into
//!   contiguous shards, each advanced on its own worker thread through
//!   *pure* ticks only (state confined to the SM: compute issue, barriers,
//!   L1 hits). Any tick that would touch shared state — the memory
//!   subsystem's DRAM queues, functional memory effects, block completion
//!   and dispatch, preemption — stops the shard, and those *interaction*
//!   ticks are replayed serially in `(cycle, component)` calendar order,
//!   which is precisely the deterministic merge of the per-shard streams.
//!
//! The engine schedules heterogeneous participants — the thread-block
//! dispatcher, every SM, every memory partition — through one
//! [`Component`] interface. The event-ordering contract all of this rests
//! on: every observable the engine emits is produced by a serial tick at a
//! definite `(cycle, component)` point, and consumers receive them in that
//! lexicographic order.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use crate::block::{BlockId, BlockRun, TbSnapshot};
use crate::component::{Component, ComponentId, TbDispatcher, TickCtx};
use crate::events::{BlockDecision, BlockExit, EventLog, ObsEvent, ShedReason};
use crate::kernel::{KernelDesc, Segment};
use crate::mem::MemSubsystem;
use crate::preempt::SmPreemptPlan;
use crate::rng::{hash_combine, splitmix64};
use crate::sm::{Effect, PreemptError, Sm, SmMode, SmOutput, SmSnapshot, TickLimits};
use crate::stats::{GpuStats, KernelStats, PreemptRecord};
use crate::GpuConfig;

/// Identifies a launched kernel instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KernelId(pub usize);

impl KernelId {
    /// Sentinel for events that involve no kernel, such as the GPU-wide
    /// request-stream observability events ([`ObsEvent::RequestArrival`]
    /// and friends) that precede any kernel launch. Never a valid launched
    /// kernel: launch ids are dense from 0.
    pub const NONE: KernelId = KernelId(usize::MAX);
}

impl std::fmt::Display for KernelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "K{}", self.0)
    }
}

/// Simulation events reported by [`Engine::run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A thread block completed.
    TbCompleted {
        /// Kernel the block belongs to.
        kernel: KernelId,
        /// SM it ran on.
        sm: usize,
        /// Grid block index.
        block: u32,
        /// Warp instructions the block executed.
        insts: u64,
        /// Cycles the block was resident.
        cycles: u64,
        /// Exact engine cycle of the completion. `run_until` returns events
        /// in batches, so the engine's cycle at delivery is the batch end —
        /// consumers measuring latencies (e.g. live drain-estimator
        /// accuracy) need the true completion time.
        cycle: u64,
    },
    /// All blocks of a kernel completed.
    KernelFinished {
        /// The finished kernel.
        kernel: KernelId,
    },
    /// An SM preemption finished; the SM is now empty and unassigned.
    PreemptionCompleted {
        /// The vacated SM.
        sm: usize,
        /// The kernel that was evicted.
        kernel: KernelId,
        /// Request-to-vacated latency in cycles.
        latency_cycles: u64,
    },
    /// A kernel crossed its configured issued-instruction cap.
    CapReached {
        /// The capped kernel.
        kernel: KernelId,
    },
}

/// How [`Engine::run_until`] advances the machine. All modes produce
/// byte-identical events, statistics, logs and traces; see the
/// [module docs](self) and `PARALLELISM.md` for the equivalence argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Legacy linear min-scan reference scheduler: O(num SMs) per step, no
    /// batched issue, dispatch swept every iteration. The slow,
    /// obviously-correct differential baseline.
    Scan,
    /// Event-calendar scheduler with the batched-issue fast path (the
    /// default).
    Event,
    /// Event-calendar scheduler with SM shards advanced concurrently on
    /// worker threads between epoch barriers; interactions with shared
    /// state replay serially in calendar order.
    Parallel {
        /// Worker shards the SMs are partitioned into.
        /// [`Engine::set_exec_mode`] clamps this to `1..=num_sms`: `1`
        /// exercises the epoch machinery without threads, and more shards
        /// than SMs would only produce empty shards.
        shards: usize,
    },
}

/// Functional-memory effect slot for a segment.
#[derive(Debug, Clone, Copy)]
enum EffectSlot {
    /// Per-(block, warp) output cell, with `overwrite` semantics flag.
    Cell { ordinal: usize, overwrite: bool },
    /// Shared atomic counter.
    Counter { ordinal: usize },
}

/// The modelled global memory a kernel writes to.
#[derive(Debug, Clone, Default)]
struct FuncMem {
    cells: Vec<u64>,
    counters: Vec<u64>,
}

const CELL_INIT_TAG: u64 = 0xCE11;
const PURE_TAG: u64 = 0x5707;
const OVERWRITE_TAG: u64 = 0x0E77;

fn cell_init(seed: u64, idx: usize) -> u64 {
    hash_combine(&[seed, CELL_INIT_TAG, idx as u64])
}

fn pure_store_value(seed: u64, block: u32, warp: u32, ordinal: usize) -> u64 {
    hash_combine(&[
        seed,
        PURE_TAG,
        u64::from(block),
        u64::from(warp),
        ordinal as u64,
    ])
}

fn overwrite_mix(x: u64) -> u64 {
    splitmix64(x ^ OVERWRITE_TAG)
}

#[derive(Debug)]
struct KernelInstance {
    desc: KernelDesc,
    seed: u64,
    occupancy: u32,
    next_fresh: u32,
    restart_queue: VecDeque<u32>,
    resume_queue: VecDeque<TbSnapshot>,
    outstanding: u32,
    stats: KernelStats,
    func: FuncMem,
    inst_cap: Option<u64>,
    cap_emitted: bool,
    effect_slots: Vec<Option<EffectSlot>>,
    n_cell_segs: usize,
    /// Minimum over the grid of a block's total warp instructions (jitter
    /// scaling makes blocks unequal). A sound per-block lower bound for the
    /// parallel engine's kernel-finish bound.
    min_block_total: u64,
}

impl KernelInstance {
    fn new(id: KernelId, desc: KernelDesc, cfg: &GpuConfig, engine_seed: u64, now: u64) -> Self {
        let occupancy = crate::occupancy(cfg, &desc).blocks_per_sm;
        let seed = hash_combine(&[engine_seed, id.0 as u64]);
        let mut effect_slots = Vec::with_capacity(desc.program().segments().len());
        let mut n_cells = 0usize;
        let mut n_counters = 0usize;
        for (ix, seg) in desc.program().segments().iter().enumerate() {
            effect_slots.push(match *seg {
                Segment::GlobalStore { .. } => {
                    // The functional semantics of a store follow the derived
                    // classification: overwrites mix the current cell value
                    // (so replaying them is observable), pure stores are
                    // value-deterministic.
                    let s = EffectSlot::Cell {
                        ordinal: n_cells,
                        overwrite: desc.program().segment_non_idempotent(ix),
                    };
                    n_cells += 1;
                    Some(s)
                }
                Segment::Atomic { .. } => {
                    let s = EffectSlot::Counter {
                        ordinal: n_counters,
                    };
                    n_counters += 1;
                    Some(s)
                }
                _ => None,
            });
        }
        let n_slots =
            desc.grid_blocks() as usize * desc.warps_per_block() as usize * n_cells.max(1);
        let func = FuncMem {
            cells: (0..n_slots).map(|i| cell_init(seed, i)).collect(),
            counters: vec![0; n_counters],
        };
        let stats = KernelStats {
            name: desc.name().to_string(),
            launched_at: now,
            grid_blocks: desc.grid_blocks(),
            ..KernelStats::default()
        };
        let min_block_total = (0..desc.grid_blocks())
            .map(|i| {
                crate::block::scaled_segments(&desc, seed, i)
                    .iter()
                    .map(|&n| u64::from(n))
                    .sum::<u64>()
                    .saturating_mul(u64::from(desc.warps_per_block()))
            })
            .min()
            .unwrap_or(0);
        KernelInstance {
            desc,
            seed,
            occupancy,
            next_fresh: 0,
            restart_queue: VecDeque::new(),
            resume_queue: VecDeque::new(),
            outstanding: 0,
            stats,
            func,
            inst_cap: None,
            cap_emitted: false,
            effect_slots,
            n_cell_segs: n_cells,
            min_block_total,
        }
    }

    /// Account one block leaving an SM (flushed, switched out or completed).
    ///
    /// Each dispatch increments `outstanding` exactly once, so each exit must
    /// decrement it exactly once: a double-account would wrap to `u32::MAX`
    /// in release builds and corrupt `is_finished`/dispatch accounting from
    /// then on. Panic in debug builds; saturate instead of wrapping in
    /// release so a latent bug degrades stats rather than the simulation.
    fn release_block(&mut self) {
        debug_assert!(
            self.outstanding > 0,
            "block of kernel {:?} released twice (outstanding underflow)",
            self.stats.name
        );
        self.outstanding = self.outstanding.saturating_sub(1);
    }

    fn has_dispatchable(&self) -> bool {
        !self.resume_queue.is_empty()
            || !self.restart_queue.is_empty()
            || self.next_fresh < self.desc.grid_blocks()
    }

    fn is_finished(&self) -> bool {
        self.stats.completed_tbs == self.desc.grid_blocks()
            && self.outstanding == 0
            && !self.has_dispatchable()
    }

    fn cell_index(&self, block: u32, warp: u32, ordinal: usize) -> usize {
        (block as usize * self.desc.warps_per_block() as usize + warp as usize) * self.n_cell_segs
            + ordinal
    }

    fn apply_effect(&mut self, e: &Effect) {
        let Some(slot) = self.effect_slots.get(e.seg_idx).copied().flatten() else {
            return;
        };
        match slot {
            EffectSlot::Cell { ordinal, overwrite } => {
                let idx = self.cell_index(e.block, e.warp, ordinal);
                let cur = self.func.cells[idx];
                self.func.cells[idx] = if overwrite {
                    overwrite_mix(cur)
                } else {
                    pure_store_value(self.seed, e.block, e.warp, ordinal)
                };
            }
            EffectSlot::Counter { ordinal } => {
                self.func.counters[ordinal] += 1;
            }
        }
    }

    /// The memory image a single, preemption-free execution would produce.
    fn reference_output(&self) -> (Vec<u64>, Vec<u64>) {
        let mut cells: Vec<u64> = (0..self.func.cells.len())
            .map(|i| cell_init(self.seed, i))
            .collect();
        let mut counters = vec![0u64; self.func.counters.len()];
        let warps = self.desc.warps_per_block();
        for slot in self.effect_slots.iter() {
            let Some(slot) = slot else { continue };
            for block in 0..self.desc.grid_blocks() {
                for warp in 0..warps {
                    match *slot {
                        EffectSlot::Cell { ordinal, overwrite } => {
                            let idx = self.cell_index(block, warp, ordinal);
                            cells[idx] = if overwrite {
                                overwrite_mix(cells[idx])
                            } else {
                                pure_store_value(self.seed, block, warp, ordinal)
                            };
                        }
                        EffectSlot::Counter { ordinal } => counters[ordinal] += 1,
                    }
                }
            }
        }
        (cells, counters)
    }
}

/// The GPU simulator.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Engine {
    cfg: GpuConfig,
    mem: MemSubsystem,
    sms: Vec<Sm>,
    /// Event calendar over `(next-tick cycle, component)` with lazy
    /// invalidation: each component's own `next_tick` stays authoritative,
    /// and stale heap entries (whose time no longer matches) are discarded
    /// on peek. `Reverse` lexicographic order pops the earliest cycle and,
    /// within a cycle, the smallest [`ComponentId`] — dispatcher, then SMs
    /// by index, then partitions — the same order the old linear min-scan
    /// loop produced, so event streams are byte-identical (see
    /// [`crate::component`] for the merge-key argument).
    calendar: BinaryHeap<Reverse<(u64, ComponentId)>>,
    /// Execution mode (see [`ExecMode`]). [`ExecMode::Scan`] bypasses the
    /// calendar entirely; [`ExecMode::Parallel`] adds the sharded pure
    /// phase in front of the serial calendar loop.
    mode: ExecMode,
    /// The thread-block dispatcher component: armed whenever dispatch
    /// opportunities may have changed (launch, assign, preempt, block
    /// completion/switch-out), which schedules the all-SM dispatch sweep
    /// on the calendar before anything else at that cycle.
    dispatcher: TbDispatcher,
    kernels: Vec<KernelInstance>,
    cycle: u64,
    seed: u64,
    prefer_preempted: bool,
    free_context_moves: bool,
    break_on_kernel_finish: bool,
    kernel_finish_pending: bool,
    preempt_records: Vec<PreemptRecord>,
    open_preempts: Vec<Option<usize>>, // per SM: index into preempt_records
    events: Vec<Event>,
    /// Observability event log; `None` (the default) records nothing and
    /// costs one `is-some` check on the per-block bookkeeping paths.
    obs: Option<EventLog>,
    /// Dynamic flush sanitizer; `None` (the default) records nothing. When
    /// enabled, SMs additionally emit effects for completed load segments
    /// so read footprints are observable.
    san: Option<crate::sanitizer::FlushSanitizer>,
    /// Shard-race sanitizer (see [`crate::race`]); `None` (the default)
    /// records nothing and costs one `is-some` check on shared-state paths.
    race: Option<crate::race::RaceSanitizer>,
}

// The experiment harness runs one Engine per worker thread; moving an Engine
// to a thread must stay possible, so fail the build if anyone adds a
// non-Send field (Rc, raw pointer, ...) to the simulator state.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Engine>();
};

impl Engine {
    /// Create an engine with the given configuration and the default seed.
    pub fn new(cfg: GpuConfig) -> Self {
        Self::with_seed(cfg, 42)
    }

    /// Create an engine with an explicit determinism seed.
    pub fn with_seed(cfg: GpuConfig, seed: u64) -> Self {
        let sms = (0..cfg.num_sms)
            .map(|i| Sm::new(i, &cfg))
            .collect::<Vec<_>>();
        let n = sms.len();
        Engine {
            mem: MemSubsystem::new(&cfg),
            sms,
            // Fresh SMs are armed for cycle 0 (so the engine discovers their
            // idle state), as is the dispatcher; partitions start idle.
            calendar: std::iter::once(Reverse((0, ComponentId::Dispatcher)))
                .chain((0..n).map(|i| Reverse((0, ComponentId::Sm(i)))))
                .collect(),
            mode: ExecMode::Event,
            dispatcher: TbDispatcher::new(),
            kernels: Vec::new(),
            cycle: 0,
            seed,
            prefer_preempted: true,
            free_context_moves: false,
            break_on_kernel_finish: false,
            kernel_finish_pending: false,
            preempt_records: Vec::new(),
            open_preempts: vec![None; n],
            events: Vec::new(),
            obs: None,
            san: None,
            race: None,
            cfg,
        }
    }

    /// Turn on the observability event log, retaining at most `capacity`
    /// events (oldest dropped first; see [`EventLog`]). Replaces any
    /// previously collected log.
    ///
    /// ```
    /// use gpu_sim::{Engine, GpuConfig};
    ///
    /// let mut engine = Engine::new(GpuConfig::tiny());
    /// assert!(engine.event_log().is_none(), "off by default");
    /// engine.enable_event_log(1 << 20);
    /// assert_eq!(engine.event_log().unwrap().capacity(), 1 << 20);
    /// ```
    pub fn enable_event_log(&mut self, capacity: usize) {
        self.obs = Some(EventLog::new(capacity));
    }

    /// The observability event log, if enabled.
    pub fn event_log(&self) -> Option<&EventLog> {
        self.obs.as_ref()
    }

    /// Detach and return the event log, disabling further recording.
    pub fn take_event_log(&mut self) -> Option<EventLog> {
        self.obs.take()
    }

    /// Turn on the dynamic flush sanitizer (see [`crate::sanitizer`]): from
    /// now on per-block read/write footprints are recorded and every flush,
    /// flush denial and block completion is checked against the static
    /// idempotence classification. Replaces any previous sanitizer state.
    ///
    /// The footprints come from segment completions, so enabling the
    /// sanitizer mid-run misattributes already-running blocks; enable it
    /// before launching kernels. Timing is unaffected either way.
    ///
    /// ```
    /// use gpu_sim::{Engine, GpuConfig};
    ///
    /// let mut engine = Engine::new(GpuConfig::tiny());
    /// assert!(engine.sanitizer().is_none(), "off by default");
    /// engine.enable_sanitizer();
    /// assert!(engine.sanitizer().unwrap().report().is_clean());
    /// ```
    pub fn enable_sanitizer(&mut self) {
        self.san = Some(crate::sanitizer::FlushSanitizer::new());
        for sm in &mut self.sms {
            sm.set_record_loads(true);
        }
    }

    /// The flush sanitizer, if enabled.
    pub fn sanitizer(&self) -> Option<&crate::sanitizer::FlushSanitizer> {
        self.san.as_ref()
    }

    /// Detach and return the sanitizer, disabling further checking.
    pub fn take_sanitizer(&mut self) -> Option<crate::sanitizer::FlushSanitizer> {
        for sm in &mut self.sms {
            sm.set_record_loads(false);
        }
        self.san.take()
    }

    /// Turn on the shard-race sanitizer (see [`crate::race`]): from now on
    /// every instrumented shared resource — memory partitions, functional
    /// memory, the dispatcher, the component-wake path — reports its
    /// accesses, and any access observed while Phase-A shard workers are
    /// running is recorded as a violation. Timing is unaffected; the
    /// sanitizer only observes, so sanitized runs stay byte-identical.
    /// Replaces any previous race-sanitizer state.
    ///
    /// ```
    /// use gpu_sim::{Engine, GpuConfig};
    ///
    /// let mut engine = Engine::new(GpuConfig::tiny());
    /// assert!(engine.race_sanitizer().is_none(), "off by default");
    /// engine.enable_race_sanitizer();
    /// assert!(engine.race_sanitizer().unwrap().report().is_clean());
    /// ```
    pub fn enable_race_sanitizer(&mut self) {
        let san = crate::race::RaceSanitizer::new();
        self.mem
            .set_race_state(Some(std::sync::Arc::clone(san.state())));
        for sm in &mut self.sms {
            sm.set_race_probe(Some(crate::race::RaceProbe::new(std::sync::Arc::clone(
                san.state(),
            ))));
        }
        self.race = Some(san);
    }

    /// The shard-race sanitizer, if enabled.
    pub fn race_sanitizer(&self) -> Option<&crate::race::RaceSanitizer> {
        self.race.as_ref()
    }

    /// Detach and return the race sanitizer, disabling further checking.
    pub fn take_race_sanitizer(&mut self) -> Option<crate::race::RaceSanitizer> {
        self.mem.set_race_state(None);
        for sm in &mut self.sms {
            sm.set_race_probe(None);
        }
        self.race.take()
    }

    /// Attach a deliberately-racy shared cell to the given SMs and return a
    /// handle to it (test support; see [`crate::race::TestSharedCell`]).
    /// Every committed pure tick on those SMs bumps the shared cell, which
    /// the race sanitizer must flag during Phase A — this validates the
    /// oracle catches exactly the "new shared resource touched from a pure
    /// tick" bug class.
    ///
    /// # Panics
    ///
    /// If the race sanitizer is not enabled.
    #[doc(hidden)]
    pub fn attach_racy_test_cell(&mut self, sms: &[usize]) -> crate::race::TestSharedCell {
        let cell = self
            .race
            .as_ref()
            .expect("enable_race_sanitizer first")
            .test_cell();
        for &i in sms {
            self.sms[i].set_test_shared_cell(Some(cell.clone()));
        }
        cell
    }

    /// Record one per-block Algorithm 1 decision (an
    /// [`ObsEvent::Decision`]) at the current cycle.
    ///
    /// The engine is mechanism, not policy: it cannot see the cost model, so
    /// the policy layer (`chimera::select`) pushes its decision records here
    /// right before executing the plan with [`Engine::preempt_sm`]. No-op
    /// while the log is disabled.
    ///
    /// ```
    /// use gpu_sim::{BlockDecision, Engine, GpuConfig, KernelId, Technique};
    ///
    /// let mut engine = Engine::new(GpuConfig::tiny());
    /// engine.enable_event_log(64);
    /// let d = BlockDecision {
    ///     block: 0,
    ///     chosen: Technique::Drain,
    ///     est_switch: None,
    ///     est_drain: None,
    ///     est_flush: None,
    /// };
    /// engine.record_decision(1, KernelId(0), 21_000, d);
    /// assert_eq!(engine.event_log().unwrap().len(), 1);
    /// ```
    pub fn record_decision(
        &mut self,
        sm: usize,
        kernel: KernelId,
        limit_cycles: u64,
        decision: BlockDecision,
    ) {
        if let Some(log) = self.obs.as_mut() {
            log.push(ObsEvent::Decision {
                cycle: self.cycle,
                sm,
                kernel,
                limit_cycles,
                slack_cycles: decision.slack_cycles(limit_cycles),
                decision,
            });
        }
    }

    /// Record a snapshot of the online cost estimator's per-kernel state (an
    /// [`ObsEvent::EstimatorUpdate`]) at the current cycle.
    ///
    /// Like [`Engine::record_decision`], this is pushed in by the policy
    /// layer — the engine cannot see the estimator — typically once per
    /// selection request, so the log shows which distribution snapshot each
    /// Algorithm 1 decision was made from. No-op while the log is disabled.
    ///
    /// `quantile_tb_insts` is the tracked risk-quantile of per-block
    /// instructions rounded to an integer, or 0 while no quantile estimate
    /// exists yet (thin samples or a static estimator); `risk_pct` is the
    /// configured risk quantile in percent (e.g. 95).
    ///
    /// ```
    /// use gpu_sim::{Engine, GpuConfig, KernelId};
    ///
    /// let mut engine = Engine::new(GpuConfig::tiny());
    /// engine.enable_event_log(64);
    /// engine.record_estimator_update(KernelId(0), 40, 1000, 1090, 95);
    /// assert_eq!(engine.event_log().unwrap().len(), 1);
    /// ```
    pub fn record_estimator_update(
        &mut self,
        kernel: KernelId,
        samples: u64,
        mean_tb_insts: u64,
        quantile_tb_insts: u64,
        risk_pct: u32,
    ) {
        if let Some(log) = self.obs.as_mut() {
            log.push(ObsEvent::EstimatorUpdate {
                cycle: self.cycle,
                kernel,
                samples,
                mean_tb_insts,
                quantile_tb_insts,
                risk_pct,
            });
        }
    }

    /// Record an open-loop serving request's arrival (an
    /// [`ObsEvent::RequestArrival`]) at the current cycle.
    ///
    /// Pushed in by the serving front-end (`chimera::runner::serve`) — the
    /// engine has no request concept of its own. No-op while the log is
    /// disabled.
    ///
    /// ```
    /// use gpu_sim::{Engine, GpuConfig};
    ///
    /// let mut engine = Engine::new(GpuConfig::tiny());
    /// engine.enable_event_log(64);
    /// engine.record_request_arrival(0, 1, 2, 9_000);
    /// assert_eq!(engine.event_log().unwrap().len(), 1);
    /// ```
    pub fn record_request_arrival(
        &mut self,
        request: u64,
        tenant: u32,
        class: u32,
        deadline_cycle: u64,
    ) {
        if let Some(log) = self.obs.as_mut() {
            log.push(ObsEvent::RequestArrival {
                cycle: self.cycle,
                request,
                tenant,
                class,
                deadline_cycle,
            });
        }
    }

    /// Record a request's admission into its tenant queue (an
    /// [`ObsEvent::RequestAdmitted`]) at the current cycle; `queued` is the
    /// queue depth after admission. Pushed in by the serving front-end like
    /// [`Engine::record_request_arrival`]. No-op while the log is disabled.
    pub fn record_request_admitted(&mut self, request: u64, tenant: u32, queued: u32) {
        if let Some(log) = self.obs.as_mut() {
            log.push(ObsEvent::RequestAdmitted {
                cycle: self.cycle,
                request,
                tenant,
                queued,
            });
        }
    }

    /// Record a shed (rejected or dropped) request (an
    /// [`ObsEvent::RequestShed`]) at the current cycle. Pushed in by the
    /// serving front-end like [`Engine::record_request_arrival`]. No-op
    /// while the log is disabled.
    pub fn record_request_shed(&mut self, request: u64, tenant: u32, reason: ShedReason) {
        if let Some(log) = self.obs.as_mut() {
            log.push(ObsEvent::RequestShed {
                cycle: self.cycle,
                request,
                tenant,
                reason,
            });
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether preempted blocks are re-dispatched before fresh ones
    /// (the paper's policy; `true` by default).
    pub fn set_prefer_preempted(&mut self, prefer: bool) {
        self.prefer_preempted = prefer;
    }

    /// Make context saves and restores free (zero latency, zero halt).
    ///
    /// This is **not** a preemption technique — it is the measurement-only
    /// *oracle* used as the fair baseline for throughput-overhead numbers
    /// (§4.1): the workload still loses the preempted SMs for the duration of
    /// the preempting task, but pays nothing for the hand-over itself.
    pub fn set_free_context_moves(&mut self, free: bool) {
        self.free_context_moves = free;
    }

    /// Make [`Engine::run_until`] return as soon as a kernel finishes, so a
    /// scheduler can react (relaunch, repartition) without the GPU idling
    /// until the requested target cycle.
    pub fn set_break_on_kernel_finish(&mut self, brk: bool) {
        self.break_on_kernel_finish = brk;
    }

    /// Switch between the event-calendar scheduler (the default) and the
    /// legacy linear min-scan reference scheduler.
    ///
    /// Scan mode also disables the batched-issue fast path and runs the
    /// all-SM dispatch sweep on every loop iteration, reproducing the
    /// pre-event-driven hot loop tick for tick. Both schedulers produce
    /// byte-identical event streams and statistics — scan mode exists as the
    /// slow, obviously-correct baseline for differential determinism tests
    /// and benchmark comparisons. Can be toggled at any point between runs.
    ///
    /// Kept as a convenience alias for [`Engine::set_exec_mode`] with
    /// [`ExecMode::Scan`] / [`ExecMode::Event`].
    pub fn set_scan_scheduler(&mut self, scan: bool) {
        self.set_exec_mode(if scan {
            ExecMode::Scan
        } else {
            ExecMode::Event
        });
    }

    /// Select the execution mode (see [`ExecMode`]). Can be switched at any
    /// point between runs; all modes produce byte-identical output.
    ///
    /// [`ExecMode::Parallel`] shard counts are clamped to `1..=num_sms`:
    /// `0` becomes `1` (the epoch machinery without extra threads), and
    /// counts above the SM count become `num_sms` (one SM per shard is
    /// already the finest partition; extra shards would only be empty).
    /// [`Engine::exec_mode`] reports the clamped value.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.mode = match mode {
            ExecMode::Parallel { shards } => ExecMode::Parallel {
                shards: shards.clamp(1, self.sms.len().max(1)),
            },
            m => m,
        };
        if self.mode != ExecMode::Scan {
            // Scan mode does not maintain the calendar; rebuild it from the
            // authoritative per-component next-tick times.
            self.calendar.clear();
            if self.dispatcher.armed() {
                self.calendar.push(Reverse((
                    self.dispatcher.next_tick(),
                    ComponentId::Dispatcher,
                )));
            }
            for (i, sm) in self.sms.iter().enumerate() {
                if sm.next_tick() != u64::MAX {
                    self.calendar
                        .push(Reverse((sm.next_tick(), ComponentId::Sm(i))));
                }
            }
            for p in 0..self.mem.num_partitions() {
                let t = self.mem.partition_next_tick(p);
                if t != u64::MAX {
                    self.calendar
                        .push(Reverse((t, ComponentId::MemPartition(p))));
                }
            }
        }
    }

    /// The current execution mode.
    pub fn exec_mode(&self) -> ExecMode {
        self.mode
    }

    /// The authoritative next-tick time of a component (`u64::MAX` = idle).
    fn component_next(&self, cid: ComponentId) -> u64 {
        match cid {
            ComponentId::Dispatcher => self.dispatcher.next_tick(),
            ComponentId::Sm(i) => self.sms[i].next_tick(),
            ComponentId::MemPartition(p) => self.mem.partition_next_tick(p),
        }
    }

    /// Set a component's next-tick time and keep the event calendar in sync.
    ///
    /// All next-tick writes must go through here so the calendar always
    /// holds an entry matching the current value (`u64::MAX` — idle with
    /// nothing pending — needs no entry; stale entries are lazily discarded).
    fn wake_component(&mut self, cid: ComponentId, t: u64) {
        if let Some(r) = &self.race {
            r.state().note_shared_access(
                crate::race::SharedResource::ComponentWake,
                None,
                self.cycle,
            );
        }
        if self.component_next(cid) == t {
            // An entry for this exact time is already in the calendar.
            return;
        }
        match cid {
            ComponentId::Dispatcher => self.dispatcher.set_next_tick(t),
            ComponentId::Sm(i) => self.sms[i].set_next_tick(t),
            ComponentId::MemPartition(p) => self.mem.set_partition_next_tick(p, t),
        }
        if t != u64::MAX && self.mode != ExecMode::Scan {
            self.calendar.push(Reverse((t, cid)));
        }
    }

    /// Set `sm`'s next-tick time and keep the event calendar in sync.
    fn wake(&mut self, sm: usize, t: u64) {
        self.wake_component(ComponentId::Sm(sm), t);
    }

    /// Arm the dispatcher component at the current cycle: the calendar pops
    /// it before any other component due at the same or a later cycle (see
    /// the [`crate::component`] merge key), so the all-SM dispatch sweep
    /// runs exactly where the legacy dirty-flag loop ran it — before the
    /// next event.
    fn mark_dispatch_dirty(&mut self) {
        let t = self.dispatcher.next_tick().min(self.cycle);
        self.wake_component(ComponentId::Dispatcher, t);
    }

    /// Move the memory partitions that gained their first pending request
    /// since the last sync onto the calendar. Must run after anything that
    /// issues memory traffic (SM interaction ticks, context-switch bulk
    /// transfers) so partition components wake at their earliest completion.
    fn sync_mem_wakes(&mut self) {
        for (p, t) in self.mem.take_newly_pending() {
            self.wake_component(ComponentId::MemPartition(p), t);
        }
    }

    /// The next `(cycle, component)` to process, without consuming it.
    /// Calendar mode discards stale entries; scan mode reproduces the legacy
    /// linear min-scan (which reports idle SMs as `u64::MAX` entries, and
    /// visits SMs before partitions so ties keep the merge-key order — the
    /// dispatcher never appears because scan sweeps dispatch every step).
    fn next_event(&mut self) -> Option<(u64, ComponentId)> {
        if self.mode == ExecMode::Scan {
            let sm_min = self
                .sms
                .iter()
                .enumerate()
                .min_by_key(|&(_, sm)| sm.next_tick())
                .map(|(i, sm)| (sm.next_tick(), ComponentId::Sm(i)));
            let part_min = (0..self.mem.num_partitions())
                .map(|p| {
                    (
                        self.mem.partition_next_tick(p),
                        ComponentId::MemPartition(p),
                    )
                })
                .min_by_key(|&(t, _)| t);
            return match (sm_min, part_min) {
                // Strict `<`: at a tied cycle the SM ticks first.
                (Some(s), Some(p)) if p.0 < s.0 => Some(p),
                (Some(s), _) => Some(s),
                (None, p) => p,
            };
        }
        while let Some(&Reverse((t, cid))) = self.calendar.peek() {
            if self.component_next(cid) == t {
                return Some((t, cid));
            }
            self.calendar.pop();
        }
        None
    }

    /// Launch a kernel; blocks start flowing to SMs assigned to it.
    pub fn launch_kernel(&mut self, desc: KernelDesc) -> KernelId {
        let id = KernelId(self.kernels.len());
        self.kernels.push(KernelInstance::new(
            id, desc, &self.cfg, self.seed, self.cycle,
        ));
        self.mark_dispatch_dirty();
        id
    }

    /// Kernel descriptor of a launched kernel.
    pub fn kernel_desc(&self, id: KernelId) -> &KernelDesc {
        &self.kernels[id.0].desc
    }

    /// Per-SM resident-block occupancy limit for a kernel.
    pub fn kernel_occupancy(&self, id: KernelId) -> u32 {
        self.kernels[id.0].occupancy
    }

    /// Statistics of a launched kernel.
    pub fn kernel_stats(&self, id: KernelId) -> &KernelStats {
        &self.kernels[id.0].stats
    }

    /// Number of blocks of `id` not yet dispatched (queued or fresh).
    pub fn pending_blocks(&self, id: KernelId) -> u64 {
        let k = &self.kernels[id.0];
        k.resume_queue.len() as u64
            + k.restart_queue.len() as u64
            + u64::from(k.desc.grid_blocks() - k.next_fresh)
    }

    /// Stop counting a kernel as making useful progress after `cap` issued
    /// warp instructions; a [`Event::CapReached`] fires once when crossed.
    pub fn set_inst_cap(&mut self, id: KernelId, cap: u64) {
        self.kernels[id.0].inst_cap = Some(cap);
    }

    /// Assign an SM to a kernel (or to none). New blocks of that kernel are
    /// dispatched to the SM as slots free up.
    pub fn assign_sm(&mut self, sm: usize, kernel: Option<KernelId>) {
        self.sms[sm].set_assigned(kernel);
        self.wake(sm, self.sms[sm].next_tick().min(self.cycle));
        self.mark_dispatch_dirty();
    }

    /// The kernel an SM is assigned to.
    pub fn sm_assigned(&self, sm: usize) -> Option<KernelId> {
        self.sms[sm].assigned()
    }

    /// The kernel whose blocks are resident on an SM.
    pub fn sm_resident_kernel(&self, sm: usize) -> Option<KernelId> {
        self.sms[sm].resident_kernel()
    }

    /// Number of blocks resident on an SM.
    pub fn sm_resident_count(&self, sm: usize) -> usize {
        self.sms[sm].resident_count()
    }

    /// Grid indices of the blocks resident on an SM.
    pub fn sm_resident_indices(&self, sm: usize) -> Vec<u32> {
        self.sms[sm].resident_indices()
    }

    /// Whether a preemption is in progress on an SM.
    pub fn sm_is_preempting(&self, sm: usize) -> bool {
        self.sms[sm].is_preempting()
    }

    /// Coarse mode of an SM.
    pub fn sm_mode(&self, sm: usize) -> SmMode {
        self.sms[sm].mode(self.cycle)
    }

    /// Progress snapshot of an SM's resident blocks (cost-estimation input).
    pub fn sm_snapshot(&self, sm: usize) -> SmSnapshot {
        self.sms[sm].snapshot(self.cycle)
    }

    /// All preemption records so far.
    pub fn preempt_records(&self) -> &[PreemptRecord] {
        &self.preempt_records
    }

    /// GPU-wide statistics.
    pub fn gpu_stats(&self) -> GpuStats {
        GpuStats {
            cycle: self.cycle,
            total_issued_insts: self.sms.iter().map(Sm::insts_issued_total).sum(),
            mem_bytes_served: self.mem.total_bytes_served(),
        }
    }

    /// Per-memory-partition counters (bytes served, requests retired by the
    /// partition components, requests in flight), in partition order.
    ///
    /// Byte-identical across execution modes like every other observable:
    /// partition components retire requests at their exact completion
    /// cycles in all three modes.
    pub fn mem_partition_stats(&self) -> Vec<crate::mem::MemPartitionStats> {
        self.mem.partition_stats()
    }

    /// The kernel's functional memory image: `(cells, atomic counters)`.
    pub fn func_mem(&self, id: KernelId) -> (&[u64], &[u64]) {
        let k = &self.kernels[id.0];
        (&k.func.cells, &k.func.counters)
    }

    /// Verify the kernel's functional memory against a preemption-free
    /// reference execution. Returns the number of mismatching locations
    /// (0 means the execution was semantically correct).
    pub fn output_mismatches(&self, id: KernelId) -> usize {
        let k = &self.kernels[id.0];
        let (cells, counters) = k.reference_output();
        let mut bad = 0;
        bad += k
            .func
            .cells
            .iter()
            .zip(&cells)
            .filter(|(a, b)| a != b)
            .count();
        bad += k
            .func
            .counters
            .iter()
            .zip(&counters)
            .filter(|(a, b)| a != b)
            .count();
        bad
    }

    /// Begin a preemption on `sm` according to `plan`.
    ///
    /// Returns `Ok(true)` if the preemption completed immediately (pure
    /// flush), `Ok(false)` if it is in progress.
    ///
    /// # Errors
    ///
    /// Returns [`PreemptError`] if the plan is invalid for the SM's resident
    /// blocks (see [`SmPreemptPlan`]). The engine refuses to flush blocks
    /// past their idempotence point unless the plan opts into unsafety.
    pub fn preempt_sm(&mut self, sm: usize, plan: &SmPreemptPlan) -> Result<bool, PreemptError> {
        let kernel = self.sms[sm]
            .resident_kernel()
            .ok_or(PreemptError::NothingResident)?;
        let mut out = SmOutput::default();
        let save_cycles = if self.free_context_moves {
            0
        } else {
            self.cfg
                .sm_transfer_cycles(self.kernels[kernel.0].desc.block_context_bytes())
        };
        let flushed = match self.sms[sm].begin_preempt(self.cycle, plan, save_cycles, &mut out) {
            Ok(flushed) => flushed,
            Err(e) => {
                // A denied flush is one side of the sanitizer's differential
                // oracle: if the block's dynamic footprint is still clean,
                // the static safety check was (benignly) conservative.
                if let (PreemptError::UnsafeFlush { block }, Some(san)) = (&e, self.san.as_mut()) {
                    san.on_flush_denied(kernel, *block);
                }
                return Err(e);
            }
        };
        // The SM must not receive more blocks of the evicted kernel.
        self.sms[sm].set_assigned(None);
        if let Some(log) = self.obs.as_mut() {
            log.push(ObsEvent::PreemptRequested {
                cycle: self.cycle,
                sm,
                kernel,
                blocks: u32::try_from(plan.entries.len()).expect("resident block count fits u32"),
            });
            for &(id, wasted, _) in &flushed {
                log.push(ObsEvent::BlockEnd {
                    cycle: self.cycle,
                    sm,
                    kernel,
                    block: id.index,
                    exit: BlockExit::Flushed,
                    insts: wasted,
                });
            }
        }
        let techniques = plan.entries.iter().map(|&(_, t)| t).collect();
        let record = PreemptRecord {
            sm,
            kernel,
            requested_at: self.cycle,
            completed_at: None,
            techniques,
        };
        self.preempt_records.push(record);
        self.open_preempts[sm] = Some(self.preempt_records.len() - 1);
        // Account flushed blocks: work discarded, block restarts from scratch.
        for (id, wasted, past_idem) in flushed {
            if let Some(san) = self.san.as_mut() {
                san.on_flush(kernel, id.index, past_idem);
            }
            let ki = &mut self.kernels[kernel.0];
            ki.stats.wasted_flush_insts += wasted;
            ki.stats.flush_count += 1;
            ki.restart_queue.push_back(id.index);
            ki.release_block();
        }
        if self.cfg.charge_ctx_switch_bandwidth && plan.count(crate::Technique::Switch) > 0 {
            let desc_bytes = self.kernels[kernel.0].desc.block_context_bytes();
            let n = plan.count(crate::Technique::Switch) as u64;
            self.mem.bulk_access(self.cycle, desc_bytes * n);
        }
        let done = out.preempt_done.is_some();
        self.process_output(sm, out);
        self.sync_mem_wakes();
        self.wake(sm, self.cycle.max(1));
        self.mark_dispatch_dirty();
        Ok(done)
    }

    /// Run the simulation until `target` cycles, returning events in order.
    ///
    /// The loop is event-driven: the calendar pops the earliest pending
    /// `(cycle, component)` pair directly, jumping over idle windows rather
    /// than scanning every component per step, and the all-SM dispatch sweep
    /// only runs when the dispatcher component is armed by something that
    /// could change dispatchability (launch, assign, preemption, a block
    /// completing or switching out).
    pub fn run_until(&mut self, target: u64) -> Vec<Event> {
        // The caller may have mutated assignments or queues between runs.
        self.mark_dispatch_dirty();
        let broke = match self.mode {
            ExecMode::Parallel { shards } => self.run_epochs(target, shards),
            _ => self.step_events_until(target),
        };
        if !broke {
            self.kernel_finish_pending = false;
            self.cycle = self.cycle.max(target);
        }
        std::mem::take(&mut self.events)
    }

    /// The serial event loop: pop and tick pending components in
    /// `(cycle, component)` order through `target`. Returns `true` when the
    /// run broke early on a kernel finish (see
    /// [`Engine::set_break_on_kernel_finish`]), `false` when every event
    /// through `target` was processed.
    fn step_events_until(&mut self, target: u64) -> bool {
        loop {
            // Scan mode reproduces the legacy hot loop, which swept dispatch
            // on every iteration; the event-driven loop schedules the sweep
            // through the dispatcher component on the calendar instead.
            if self.mode == ExecMode::Scan {
                self.dispatcher.disarm();
                self.dispatch_all();
            }
            let Some((t, cid)) = self.next_event() else {
                return false;
            };
            if t > target {
                // The legacy loop swept a pending dirty flag even when no
                // event fit the window (possible when the caller's target is
                // behind the current cycle); a dispatcher armed past the
                // target must still sweep once before returning.
                if self.dispatcher.armed() {
                    self.dispatcher.disarm();
                    self.dispatch_all();
                }
                return false;
            }
            if self.mode != ExecMode::Scan {
                self.calendar.pop();
            }
            self.cycle = self.cycle.max(t);
            let idx = match cid {
                ComponentId::Dispatcher => {
                    // The sweep spans every SM and kernel queue, so the
                    // engine runs it directly; ticking the component only
                    // consumes the arming. It never advances the clock: the
                    // dispatcher is armed at (or before) the current cycle.
                    self.dispatcher.disarm();
                    self.dispatch_all();
                    continue;
                }
                ComponentId::MemPartition(p) => {
                    // Retire completed requests into partition statistics;
                    // request timing was decided at issue, so nothing an SM
                    // observes changes here.
                    let mut out = SmOutput::default();
                    let next = self.mem.tick_partition(p, self.cycle, &mut out);
                    self.wake_component(ComponentId::MemPartition(p), next);
                    continue;
                }
                ComponentId::Sm(idx) => idx,
            };
            let resident = self.sms[idx].resident_kernel();
            // Batched issue must stop where the serial schedule could be
            // observed or perturbed: at the run horizon (the caller may
            // preempt/reassign afterwards), immediately when a kernel finish
            // can end the run early or an armed instruction cap makes other
            // SMs' cap checks read this SM's issue counter mid-run, and
            // whenever this SM could still receive blocks mid-window.
            let limits = TickLimits {
                horizon: if self.break_on_kernel_finish || self.mode == ExecMode::Scan {
                    self.cycle
                } else {
                    target
                },
                max_insts: match resident {
                    Some(k)
                        if self.kernels[k.0].inst_cap.is_some()
                            && !self.kernels[k.0].cap_emitted =>
                    {
                        0
                    }
                    _ => u64::MAX,
                },
                // The SM can gain blocks mid-window only if it has a free
                // slot AND the kernel has blocks to hand out — now, or
                // potentially later in the window via a switch-out landing in
                // the resume queue, which requires some SM to be mid-
                // preemption. A full SM is always safe: batched windows never
                // complete a block, so no slot frees before the window ends.
                may_gain_blocks: self.sms[idx].assigned().is_some_and(|k| {
                    self.sms[idx].can_dispatch(k, self.kernels[k.0].occupancy)
                        && (self.kernels[k.0].has_dispatchable()
                            || self.sms.iter().any(Sm::is_preempting))
                }),
            };
            let mut out = SmOutput::default();
            let next = {
                let ctx = TickCtx {
                    now: self.cycle,
                    seed: self.seed,
                    desc: resident.map(|k| &self.kernels[k.0].desc),
                    mem: Some(&mut self.mem),
                    out: &mut out,
                    limits,
                };
                // Qualified: `Sm` also has an inherent single-step `tick`.
                Component::tick(&mut self.sms[idx], ctx)
            };
            let wake_at = if next == u64::MAX {
                u64::MAX
            } else {
                next.max(self.cycle + 1)
            };
            self.wake(idx, wake_at);
            if out.issued_insts > 0 {
                if let Some(k) = resident {
                    let ki = &mut self.kernels[k.0];
                    ki.stats.issued_insts += u64::from(out.issued_insts);
                    if let Some(cap) = ki.inst_cap {
                        if !ki.cap_emitted && ki.stats.issued_insts >= cap {
                            ki.cap_emitted = true;
                            self.events.push(Event::CapReached { kernel: k });
                        }
                    }
                }
            }
            self.process_output(idx, out);
            self.sync_mem_wakes();
            if self.break_on_kernel_finish && self.kernel_finish_pending {
                self.kernel_finish_pending = false;
                return true;
            }
        }
    }

    /// Advance by `cycles` from the current cycle.
    pub fn run_for(&mut self, cycles: u64) -> Vec<Event> {
        self.run_until(self.cycle + cycles)
    }

    /// The parallel run loop: alternate a sharded *pure* phase (Phase A)
    /// with the serial event loop (Phase B) between epoch barriers.
    ///
    /// Each epoch picks a bound `min(target, t0 + EPOCH_QUANTUM)` from the
    /// earliest pending event `t0`, advances every eligible SM concurrently
    /// through its pure ticks up to the bound, then replays the remaining
    /// *interaction* ticks serially in `(cycle, component)` calendar order —
    /// the deterministic merge point for everything observable. Output is
    /// independent of both the shard count and the quantum because pure
    /// ticks touch no shared state and every interaction still executes at
    /// its exact serial position. Returns `true` on an early
    /// break-on-kernel-finish, like [`Engine::step_events_until`].
    fn run_epochs(&mut self, target: u64, shards: usize) -> bool {
        /// Epoch length in cycles. Purely a throughput knob: long enough to
        /// amortize the per-epoch barrier, short enough that Phase A rarely
        /// overshoots far past the next interaction.
        const EPOCH_QUANTUM: u64 = 8192;
        loop {
            // Run a pending sweep before sizing the epoch: shard eligibility
            // (`advance_shards`' job list) must see post-dispatch state, so
            // the sweep cannot wait for its calendar pop in Phase B.
            if self.dispatcher.armed() {
                self.dispatcher.disarm();
                self.dispatch_all();
            }
            let Some((t0, _)) = self.next_event() else {
                return false;
            };
            if t0 > target {
                return false;
            }
            let bound = target.min(t0.saturating_add(EPOCH_QUANTUM));
            // While an instruction cap is armed, other SMs' cap checks read
            // the capped kernel's issue counter tick by tick; only the
            // fully-serial loop preserves that ordering.
            let cap_armed = self
                .kernels
                .iter()
                .any(|k| k.inst_cap.is_some() && !k.cap_emitted);
            if !cap_armed {
                let mut bound_a = bound;
                if self.break_on_kernel_finish {
                    // An early return must leave the machine exactly as the
                    // serial engine's: cap the pure phase strictly below the
                    // earliest cycle at which any kernel could finish, so no
                    // pure tick commits past the potential break point.
                    bound_a = bound_a.min(self.kernel_finish_lower_bound(t0).saturating_sub(1));
                }
                if bound_a >= t0 {
                    self.advance_shards(bound_a, shards);
                }
            }
            if self.step_events_until(bound) {
                return true;
            }
        }
    }

    /// Phase A of an epoch: partition the SMs into `shards` contiguous
    /// chunks and advance each chunk on its own thread through pure ticks
    /// up to `bound` (see [`Sm::advance_pure`]). Results are committed in
    /// SM order on the caller's thread, so calendar contents and kernel
    /// statistics never depend on thread scheduling.
    fn advance_shards(&mut self, bound: u64, shards: usize) {
        let any_preempting = self.sms.iter().any(Sm::is_preempting);
        // An SM is eligible unless the serial phase owns a transition of
        // its state this epoch: an in-progress preemption, or a possible
        // mid-epoch block arrival (the serial `may_gain_blocks` condition,
        // which pure ticks cannot change: they never complete blocks, and
        // preemptions only start between runs or at serial break points).
        let jobs: Vec<Option<u64>> = self
            .sms
            .iter()
            .map(|sm| {
                let start = sm.next_tick().max(self.cycle);
                let gainable = sm.assigned().is_some_and(|k| {
                    sm.can_dispatch(k, self.kernels[k.0].occupancy)
                        && (self.kernels[k.0].has_dispatchable() || any_preempting)
                });
                (!sm.is_preempting()
                    && sm.resident_count() > 0
                    && sm.next_tick() != u64::MAX
                    && start <= bound
                    && !gainable)
                    .then_some(start)
            })
            .collect();
        if !jobs.iter().any(Option::is_some) {
            return;
        }
        // Per-SM kernel descriptors, borrowed from `self.kernels` — disjoint
        // from the `self.sms` chunks the workers mutate.
        let descs: Vec<Option<&KernelDesc>> = self
            .sms
            .iter()
            .map(|s| s.resident_kernel().map(|k| &self.kernels[k.0].desc))
            .collect();
        let seed = self.seed;
        let worker =
            |sms: &mut [Sm], jobs: &[Option<u64>], descs: &[Option<&KernelDesc>], base: usize| {
                let mut out = Vec::new();
                for (off, sm) in sms.iter_mut().enumerate() {
                    if let Some(start) = jobs[off] {
                        let (next, issued) = sm.advance_pure(start, bound, descs[off], seed);
                        out.push((base + off, next, issued));
                    }
                }
                out
            };
        let chunk = self.sms.len().div_ceil(shards.max(1)).max(1);
        let mut results: Vec<(usize, u64, u64)> = Vec::new();
        // Phase-A window for the race sanitizer: every instrumented
        // shared-state access between here and the matching exit is, by the
        // purity contract, a violation. Raised before any worker (including
        // the inline `shards <= 1` path) runs a pure tick, lowered before
        // the serial commit loop below issues its sanctioned wakes.
        if let Some(r) = &self.race {
            r.state().enter_pure_phase();
        }
        if shards <= 1 {
            results = worker(&mut self.sms, &jobs, &descs, 0);
        } else {
            let mut tasks = Vec::new();
            for (ci, ((sms, js), ds)) in self
                .sms
                .chunks_mut(chunk)
                .zip(jobs.chunks(chunk))
                .zip(descs.chunks(chunk))
                .enumerate()
            {
                if js.iter().any(Option::is_some) {
                    tasks.push((ci * chunk, sms, js, ds));
                }
            }
            std::thread::scope(|scope| {
                let mut tasks = tasks.into_iter();
                let first = tasks.next();
                let handles: Vec<_> = tasks
                    .map(|(base, sms, js, ds)| scope.spawn(move || worker(sms, js, ds, base)))
                    .collect();
                // Run the first shard on this thread while the others work.
                if let Some((base, sms, js, ds)) = first {
                    results.extend(worker(sms, js, ds, base));
                }
                for h in handles {
                    results.extend(h.join().expect("shard worker panicked"));
                }
            });
            results.sort_unstable_by_key(|&(i, _, _)| i);
        }
        if let Some(r) = &self.race {
            r.state().exit_pure_phase();
        }
        for (i, next, issued) in results {
            // `next` is the cycle of the SM's first unexecuted tick (its
            // first interaction, or its wake time past the bound), exactly
            // what the calendar must pop for the serial phase.
            self.wake(i, next);
            if issued > 0 {
                if let Some(k) = self.sms[i].resident_kernel() {
                    // Commutative sum: per-tick serial additions and one
                    // barrier-time addition reach the same totals, and no
                    // consumer reads them mid-epoch (cap-armed epochs skip
                    // Phase A entirely).
                    self.kernels[k.0].stats.issued_insts += issued;
                }
            }
        }
    }

    /// A sound lower bound on the earliest cycle at which *any* unfinished
    /// kernel can finish, given the machine state at epoch start `t0`.
    ///
    /// A kernel finishes when its last block completes, and every remaining
    /// block still has to push its remaining warp instructions through one
    /// SM's issue pipeline, each occupying it for `issue_interval` cycles
    /// (memory stalls, halts and queueing only add). So per kernel:
    /// `base + issue_interval × max(remaining insts over remaining blocks)`,
    /// with the per-block remainder itself lower-bounded: exact for
    /// resident blocks and switch snapshots, and the grid-wide minimum
    /// block length for fresh/restarted blocks (jitter scaling makes block
    /// lengths unequal; an overestimate here would be unsound).
    fn kernel_finish_lower_bound(&self, t0: u64) -> u64 {
        let base = self.cycle.max(t0);
        let interval = self.cfg.issue_interval();
        // Exact per-kernel remainder of the block (across all kernels)
        // furthest from completion on each SM.
        let mut resident_max = vec![0u64; self.kernels.len()];
        for sm in &self.sms {
            for b in sm.blocks() {
                let rem = b.total_insts().saturating_sub(b.issued_insts());
                let slot = &mut resident_max[b.id.kernel.0];
                *slot = (*slot).max(rem);
            }
        }
        let mut lb = u64::MAX;
        for (ki, k) in self.kernels.iter().enumerate() {
            if k.stats.finished {
                continue;
            }
            let mut rem_max = resident_max[ki];
            if k.next_fresh < k.desc.grid_blocks() || !k.restart_queue.is_empty() {
                rem_max = rem_max.max(k.min_block_total);
            }
            for snap in &k.resume_queue {
                let total = snap
                    .scaled_segs
                    .iter()
                    .map(|&n| u64::from(n))
                    .sum::<u64>()
                    .saturating_mul(snap.warps.len() as u64);
                rem_max = rem_max.max(total.saturating_sub(snap.insts));
            }
            lb = lb.min(base.saturating_add(interval.saturating_mul(rem_max)));
        }
        lb
    }

    fn process_output(&mut self, sm: usize, out: SmOutput) {
        // A freed slot, a newly queued context or a finished preemption can
        // make dispatch possible again; nothing else an SM tick produces
        // changes dispatchability.
        if !out.completed.is_empty() || !out.switched_out.is_empty() || out.preempt_done.is_some() {
            self.mark_dispatch_dirty();
        }
        for e in &out.effects {
            if let Some(r) = &self.race {
                r.state().note_shared_access(
                    crate::race::SharedResource::FuncMem(e.kernel.0),
                    Some(sm),
                    self.cycle,
                );
            }
            self.kernels[e.kernel.0].apply_effect(e);
            if let Some(san) = self.san.as_mut() {
                let seg = self.kernels[e.kernel.0].desc.program().segments()[e.seg_idx];
                san.on_effect(e.kernel, e.block, e.seg_idx, &seg);
            }
        }
        for snap in out.switched_out {
            let k = snap.id.kernel;
            if let Some(log) = self.obs.as_mut() {
                log.push(ObsEvent::BlockEnd {
                    cycle: self.cycle,
                    sm,
                    kernel: k,
                    block: snap.id.index,
                    exit: BlockExit::Switched,
                    insts: snap.insts,
                });
            }
            let ki = &mut self.kernels[k.0];
            ki.stats.switch_count += 1;
            ki.release_block();
            ki.resume_queue.push_back(snap);
        }
        for (id, insts, cycles) in out.completed {
            if let Some(log) = self.obs.as_mut() {
                log.push(ObsEvent::BlockEnd {
                    cycle: self.cycle,
                    sm,
                    kernel: id.kernel,
                    block: id.index,
                    exit: BlockExit::Completed,
                    insts,
                });
            }
            if let Some(san) = self.san.as_mut() {
                let static_non_idem = !self.kernels[id.kernel.0].desc.program().is_idempotent();
                san.on_complete(id.kernel, id.index, static_non_idem);
            }
            let ki = &mut self.kernels[id.kernel.0];
            ki.release_block();
            ki.stats.completed_tbs += 1;
            ki.stats.completed_insts += insts;
            ki.stats.sum_completed_cycles += cycles;
            // Welford update of the block-length distribution (mean/m2/max):
            // the variance feeds the §4.1 drain-latency headroom when
            // observations are read back from these statistics.
            let x = insts as f64;
            let delta = x - ki.stats.mean_tb_insts;
            ki.stats.mean_tb_insts += delta / f64::from(ki.stats.completed_tbs);
            ki.stats.m2_tb_insts += delta * (x - ki.stats.mean_tb_insts);
            ki.stats.max_tb_insts = ki.stats.max_tb_insts.max(insts);
            self.events.push(Event::TbCompleted {
                kernel: id.kernel,
                sm,
                block: id.index,
                insts,
                cycles,
                cycle: self.cycle,
            });
            if ki.is_finished() && !ki.stats.finished {
                ki.stats.finished = true;
                ki.stats.finished_at = Some(self.cycle);
                self.events
                    .push(Event::KernelFinished { kernel: id.kernel });
                self.kernel_finish_pending = true;
            }
        }
        if let Some(latency) = out.preempt_done {
            if let Some(rec_idx) = self.open_preempts[sm].take() {
                let rec = &mut self.preempt_records[rec_idx];
                rec.completed_at = Some(rec.requested_at + latency);
                let kernel = rec.kernel;
                self.events.push(Event::PreemptionCompleted {
                    sm,
                    kernel,
                    latency_cycles: latency,
                });
                if let Some(log) = self.obs.as_mut() {
                    log.push(ObsEvent::PreemptCompleted {
                        cycle: self.cycle,
                        sm,
                        kernel,
                        latency_cycles: latency,
                    });
                }
            }
        }
    }

    fn dispatch_all(&mut self) {
        if let Some(r) = &self.race {
            r.state()
                .note_shared_access(crate::race::SharedResource::Dispatcher, None, self.cycle);
        }
        for i in 0..self.sms.len() {
            let Some(kid) = self.sms[i].assigned() else {
                continue;
            };
            let occ = self.kernels[kid.0].occupancy;
            let mut dispatched = false;
            while self.sms[i].can_dispatch(kid, occ) && self.kernels[kid.0].has_dispatchable() {
                let Some(block) = self.pop_next_block(kid, i) else {
                    break;
                };
                self.kernels[kid.0].outstanding += 1;
                self.sms[i].dispatch(block);
                dispatched = true;
            }
            if dispatched {
                // Wake the SM: its cached next-tick may be stale.
                self.wake(i, self.sms[i].next_tick().min(self.cycle));
            }
        }
        // Resumed-context loads may have issued bulk memory traffic.
        self.sync_mem_wakes();
    }

    fn pop_next_block(&mut self, kid: KernelId, sm: usize) -> Option<BlockRun> {
        let now = self.cycle;
        let load_cycles = if self.free_context_moves {
            0
        } else {
            self.cfg
                .sm_transfer_cycles(self.kernels[kid.0].desc.block_context_bytes())
        };
        // Decide which block to hand out first (queue pops and the fresh
        // counter need `&mut`), then build it — constructing fresh/restarted
        // blocks borrows the descriptor in place instead of cloning it on
        // every dispatch.
        enum Choice {
            Resume(TbSnapshot),
            Restart(u32),
            Fresh(u32),
        }
        let choice = {
            let ki = &mut self.kernels[kid.0];
            let fresh = |ki: &mut KernelInstance| {
                (ki.next_fresh < ki.desc.grid_blocks()).then(|| {
                    let idx = ki.next_fresh;
                    ki.next_fresh += 1;
                    Choice::Fresh(idx)
                })
            };
            if self.prefer_preempted {
                if let Some(snap) = ki.resume_queue.pop_front() {
                    Choice::Resume(snap)
                } else if let Some(idx) = ki.restart_queue.pop_front() {
                    Choice::Restart(idx)
                } else {
                    fresh(ki)?
                }
            } else if let Some(c) = fresh(ki) {
                c
            } else if let Some(snap) = ki.resume_queue.pop_front() {
                Choice::Resume(snap)
            } else if let Some(idx) = ki.restart_queue.pop_front() {
                Choice::Restart(idx)
            } else {
                return None;
            }
        };
        match choice {
            Choice::Resume(snap) => {
                self.record_block_begin(sm, kid, snap.id.index, true, now);
                Some(self.make_resumed(kid, sm, snap, now, load_cycles))
            }
            Choice::Restart(idx) | Choice::Fresh(idx) => {
                self.record_block_begin(sm, kid, idx, false, now);
                let ki = &self.kernels[kid.0];
                Some(BlockRun::new(
                    BlockId {
                        kernel: kid,
                        index: idx,
                    },
                    &ki.desc,
                    ki.seed,
                    now,
                ))
            }
        }
    }

    /// Push a [`ObsEvent::BlockBegin`] when the log is enabled.
    #[inline]
    fn record_block_begin(
        &mut self,
        sm: usize,
        kernel: KernelId,
        block: u32,
        resumed: bool,
        now: u64,
    ) {
        if let Some(log) = self.obs.as_mut() {
            log.push(ObsEvent::BlockBegin {
                cycle: now,
                sm,
                kernel,
                block,
                resumed,
            });
        }
    }

    fn make_resumed(
        &mut self,
        kid: KernelId,
        sm: usize,
        snap: TbSnapshot,
        now: u64,
        load_cycles: u64,
    ) -> BlockRun {
        if self.cfg.charge_ctx_switch_bandwidth {
            let bytes = self.kernels[kid.0].desc.block_context_bytes();
            self.mem.bulk_access(now, bytes);
        }
        // The context load stalls the whole receiving SM, mirroring the
        // paper's 2x (save + restore) throughput-overhead model for switching.
        self.sms[sm].halt_until(now + load_cycles);
        BlockRun::from_snapshot(snap, now, now + load_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KernelDesc, Program, Segment};
    use crate::preempt::Technique;

    fn cfg() -> GpuConfig {
        GpuConfig::tiny()
    }

    fn simple_kernel(grid: u32, insts: u32) -> KernelDesc {
        KernelDesc::builder("t")
            .grid_blocks(grid)
            .threads_per_block(64)
            .regs_per_thread(16)
            .program(Program::new(vec![
                Segment::compute(insts),
                Segment::store(4),
            ]))
            .build()
            .unwrap()
    }

    fn assign_all(e: &mut Engine, k: KernelId) {
        for i in 0..e.config().num_sms {
            e.assign_sm(i, Some(k));
        }
    }

    #[test]
    fn kernel_runs_to_completion() {
        let mut e = Engine::new(cfg());
        let k = e.launch_kernel(simple_kernel(32, 100));
        assign_all(&mut e, k);
        let events = e.run_until(10_000_000);
        assert!(e.kernel_stats(k).finished, "kernel should finish");
        assert_eq!(e.kernel_stats(k).completed_tbs, 32);
        assert!(events
            .iter()
            .any(|ev| matches!(ev, Event::KernelFinished { .. })));
        // 32 blocks x 2 warps x 104 insts.
        assert_eq!(e.kernel_stats(k).completed_insts, 32 * 2 * 104);
        assert_eq!(e.output_mismatches(k), 0);
    }

    #[test]
    fn unassigned_engine_makes_no_progress() {
        let mut e = Engine::new(cfg());
        let k = e.launch_kernel(simple_kernel(4, 100));
        e.run_until(100_000);
        assert_eq!(e.kernel_stats(k).issued_insts, 0);
        assert!(!e.kernel_stats(k).finished);
    }

    #[test]
    fn drain_preemption_finishes_resident_blocks_only() {
        let mut e = Engine::new(cfg());
        let k = e.launch_kernel(simple_kernel(64, 2_000));
        e.assign_sm(0, Some(k));
        e.run_until(100); // dispatch + some progress
        let resident = e.sm_resident_count(0);
        assert!(resident > 0);
        let plan = SmPreemptPlan::uniform(e.sms[0].resident_indices(), Technique::Drain);
        assert!(!e.preempt_sm(0, &plan).unwrap());
        let mut done = false;
        let mut completed_after = 0;
        for ev in e.run_until(100_000_000) {
            match ev {
                Event::PreemptionCompleted {
                    sm: 0,
                    latency_cycles,
                    ..
                } => {
                    done = true;
                    assert!(latency_cycles > 0);
                }
                Event::TbCompleted { .. } if done => completed_after += 1,
                _ => {}
            }
        }
        assert!(done, "drain must complete");
        assert_eq!(
            completed_after, 0,
            "no new blocks after drain (SM unassigned)"
        );
        assert_eq!(e.sm_resident_count(0), 0);
        assert_eq!(e.sm_assigned(0), None);
    }

    #[test]
    fn flush_preemption_is_instant_and_blocks_restart() {
        let mut e = Engine::new(cfg());
        let k = e.launch_kernel(simple_kernel(8, 5_000));
        e.assign_sm(0, Some(k));
        e.run_until(5_000);
        let before = e.kernel_stats(k).issued_insts;
        assert!(before > 0);
        let plan = SmPreemptPlan::uniform(e.sms[0].resident_indices(), Technique::Flush);
        assert!(
            e.preempt_sm(0, &plan).unwrap(),
            "flush completes immediately"
        );
        assert!(e.kernel_stats(k).wasted_flush_insts > 0);
        assert!(e.kernel_stats(k).flush_count > 0);
        // Reassign and finish: flushed blocks restart and the output is intact.
        e.assign_sm(0, Some(k));
        e.run_until(80_000_000);
        assert!(e.kernel_stats(k).finished);
        assert_eq!(
            e.output_mismatches(k),
            0,
            "idempotent kernel unharmed by flush"
        );
    }

    #[test]
    fn switch_preemption_preserves_progress() {
        let mut e = Engine::new(cfg());
        let k = e.launch_kernel(simple_kernel(4, 50_000));
        e.assign_sm(0, Some(k));
        e.run_until(20_000);
        let issued_before = e.kernel_stats(k).issued_insts;
        let plan = SmPreemptPlan::uniform(e.sms[0].resident_indices(), Technique::Switch);
        assert!(!e.preempt_sm(0, &plan).unwrap());
        let evs = e.run_until(e.cycle() + 1_000_000);
        assert!(evs
            .iter()
            .any(|ev| matches!(ev, Event::PreemptionCompleted { sm: 0, .. })));
        assert!(e.kernel_stats(k).switch_count > 0);
        // Resume on SM 1 and complete.
        e.assign_sm(1, Some(k));
        e.run_until(e.cycle() + 400_000_000);
        assert!(
            e.kernel_stats(k).finished,
            "switched blocks must resume and finish"
        );
        assert_eq!(e.output_mismatches(k), 0);
        // No instructions were wasted by the switch.
        assert_eq!(e.kernel_stats(k).wasted_flush_insts, 0);
        assert!(e.kernel_stats(k).issued_insts >= issued_before);
    }

    #[test]
    fn unsafe_flush_corrupts_non_idempotent_output() {
        // A kernel whose block does an early atomic, then computes.
        let desc = KernelDesc::builder("naughty")
            .grid_blocks(2)
            .threads_per_block(32)
            .regs_per_thread(16)
            .program(Program::new(vec![
                Segment::atomic(1),
                Segment::compute(40_000),
            ]))
            .build()
            .unwrap();
        let mut e = Engine::new(cfg());
        let k = e.launch_kernel(desc);
        e.assign_sm(0, Some(k));
        // Run until the atomic has definitely executed.
        e.run_until(200_000);
        let snap = e.sm_snapshot(0);
        assert!(snap.blocks.iter().any(|b| b.past_idem_point));
        let safe = SmPreemptPlan::uniform(e.sms[0].resident_indices(), Technique::Flush);
        assert!(
            e.preempt_sm(0, &safe).is_err(),
            "engine refuses unsafe flush"
        );
        let unsafe_plan = SmPreemptPlan {
            allow_unsafe_flush: true,
            ..safe
        };
        e.preempt_sm(0, &unsafe_plan).unwrap();
        e.assign_sm(0, Some(k));
        e.run_until(e.cycle() + 500_000_000);
        assert!(e.kernel_stats(k).finished);
        assert!(
            e.output_mismatches(k) > 0,
            "atomic counter must show duplicated execution"
        );
    }

    #[test]
    fn inst_cap_event_fires_once() {
        let mut e = Engine::new(cfg());
        let k = e.launch_kernel(simple_kernel(64, 1_000));
        e.set_inst_cap(k, 1_000);
        assign_all(&mut e, k);
        let evs = e.run_until(50_000_000);
        let caps = evs
            .iter()
            .filter(|ev| matches!(ev, Event::CapReached { .. }))
            .count();
        assert_eq!(caps, 1);
    }

    #[test]
    fn preempted_blocks_are_redispatched_first() {
        let mut e = Engine::new(cfg());
        let k = e.launch_kernel(simple_kernel(64, 3_000));
        e.assign_sm(0, Some(k));
        e.run_until(2_000);
        let resident = e.sms[0].resident_indices();
        let plan = SmPreemptPlan::uniform(resident.clone(), Technique::Flush);
        e.preempt_sm(0, &plan).unwrap();
        // Reassign: the flushed blocks should come back before fresh ones.
        e.assign_sm(0, Some(k));
        e.run_until(e.cycle() + 10);
        let now_resident = e.sms[0].resident_indices();
        for r in &resident {
            assert!(
                now_resident.contains(r),
                "flushed block {r} should restart first"
            );
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut e = Engine::with_seed(cfg(), 7);
            let k = e.launch_kernel(simple_kernel(48, 500));
            assign_all(&mut e, k);
            e.run_until(50_000_000);
            let s = e.kernel_stats(k);
            (
                s.finished_at,
                s.completed_insts,
                e.gpu_stats().total_issued_insts,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn pending_blocks_accounting() {
        let mut e = Engine::new(cfg());
        let k = e.launch_kernel(simple_kernel(10, 100));
        assert_eq!(e.pending_blocks(k), 10);
        e.assign_sm(0, Some(k));
        e.run_until(10);
        let resident = e.sm_resident_count(0) as u64;
        assert_eq!(e.pending_blocks(k), 10 - resident);
        e.run_until(50_000_000);
        assert_eq!(e.pending_blocks(k), 0);
    }

    #[test]
    fn preempting_empty_sm_is_an_error() {
        let mut e = Engine::new(cfg());
        let _k = e.launch_kernel(simple_kernel(4, 100));
        let plan = SmPreemptPlan::uniform([0u32], Technique::Drain);
        assert!(e.preempt_sm(0, &plan).is_err());
    }

    #[test]
    fn kernel_occupancy_matches_calculator() {
        let mut e = Engine::new(cfg());
        let desc = simple_kernel(4, 100);
        let occ = crate::occupancy(e.config(), &desc).blocks_per_sm;
        let k = e.launch_kernel(desc);
        assert_eq!(e.kernel_occupancy(k), occ);
    }

    #[test]
    fn gpu_stats_aggregate_issue_counts() {
        let mut e = Engine::new(cfg());
        let k = e.launch_kernel(simple_kernel(8, 200));
        assign_all(&mut e, k);
        e.run_until(50_000_000);
        let g = e.gpu_stats();
        assert_eq!(g.total_issued_insts, e.kernel_stats(k).issued_insts);
        assert!(g.mem_bytes_served > 0, "stores must hit DRAM");
        assert!(g.cycle >= 50_000_000);
    }

    #[test]
    fn fresh_first_dispatch_when_preference_disabled() {
        let mut e = Engine::new(cfg());
        e.set_prefer_preempted(false);
        let k = e.launch_kernel(simple_kernel(64, 3_000));
        e.assign_sm(0, Some(k));
        e.run_until(2_000);
        let flushed = e.sm_resident_indices(0);
        e.preempt_sm(
            0,
            &SmPreemptPlan::uniform(flushed.clone(), Technique::Flush),
        )
        .unwrap();
        e.assign_sm(0, Some(k));
        e.run_until(e.cycle() + 10);
        // Fresh blocks (higher indices) come first; the flushed ones wait.
        let now_resident = e.sm_resident_indices(0);
        for f in &flushed {
            assert!(
                !now_resident.contains(f),
                "flushed block {f} restarted too early"
            );
        }
    }

    #[test]
    fn bandwidth_charged_switches_slow_other_sms() {
        // With charging on, a context switch on SM0 consumes shared DRAM
        // bandwidth, delaying a memory-bound kernel on SM1.
        let mem_kernel = KernelDesc::builder("m")
            .grid_blocks(8)
            .threads_per_block(64)
            .regs_per_thread(60)
            .shared_mem_per_block(16_384)
            .program(Program::new(vec![Segment::load(3_000)]))
            .build()
            .unwrap();
        let run = |charge: bool| {
            let mut e = Engine::with_seed(
                GpuConfig {
                    charge_ctx_switch_bandwidth: charge,
                    ..cfg()
                },
                5,
            );
            let a = e.launch_kernel(mem_kernel.clone().with_name("a"));
            let b = e.launch_kernel(mem_kernel.clone().with_name("b"));
            e.assign_sm(0, Some(a));
            e.assign_sm(1, Some(b));
            e.run_until(20_000);
            // Switch SM0 repeatedly.
            for _ in 0..30 {
                if e.sm_resident_count(0) > 0 && !e.sm_is_preempting(0) {
                    let plan = SmPreemptPlan::uniform(e.sm_resident_indices(0), Technique::Switch);
                    let _ = e.preempt_sm(0, &plan);
                }
                e.assign_sm(0, Some(a));
                e.run_for(20_000);
                if e.kernel_stats(b).finished {
                    break;
                }
            }
            e.run_until(5_000_000);
            e.kernel_stats(b).finished_at.expect("bystander finishes")
        };
        let uncharged = run(false);
        let charged = run(true);
        assert!(
            charged > uncharged,
            "charging bandwidth should slow the bystander: {charged} vs {uncharged}"
        );
    }

    #[test]
    fn two_kernels_partitioned_across_sms() {
        let mut e = Engine::new(cfg());
        let a = e.launch_kernel(simple_kernel(16, 400).with_name("a"));
        let b = e.launch_kernel(simple_kernel(16, 400).with_name("b"));
        e.assign_sm(0, Some(a));
        e.assign_sm(1, Some(b));
        e.run_until(50_000_000);
        assert!(e.kernel_stats(a).finished);
        assert!(e.kernel_stats(b).finished);
        assert_eq!(e.output_mismatches(a), 0);
        assert_eq!(e.output_mismatches(b), 0);
    }

    #[test]
    fn parallel_shard_counts_clamp_to_sm_count() {
        let mut e = Engine::new(cfg());
        let n = e.config().num_sms;
        // 0 shards → 1 (epoch machinery, no extra threads).
        e.set_exec_mode(ExecMode::Parallel { shards: 0 });
        assert_eq!(e.exec_mode(), ExecMode::Parallel { shards: 1 });
        // More shards than SMs → one shard per SM.
        e.set_exec_mode(ExecMode::Parallel { shards: n + 100 });
        assert_eq!(e.exec_mode(), ExecMode::Parallel { shards: n });
        // In-range values are kept, serial modes untouched.
        e.set_exec_mode(ExecMode::Parallel { shards: n });
        assert_eq!(e.exec_mode(), ExecMode::Parallel { shards: n });
        e.set_exec_mode(ExecMode::Scan);
        assert_eq!(e.exec_mode(), ExecMode::Scan);
    }

    #[test]
    fn race_sanitizer_is_clean_on_a_parallel_run() {
        let mut e = Engine::new(cfg());
        e.set_exec_mode(ExecMode::Parallel { shards: 2 });
        e.enable_race_sanitizer();
        let k = e.launch_kernel(simple_kernel(32, 400));
        assign_all(&mut e, k);
        e.run_until(50_000_000);
        assert!(e.kernel_stats(k).finished);
        let report = e.take_race_sanitizer().expect("enabled").report();
        assert!(report.is_clean(), "{report}");
        assert!(report.pure_windows > 0, "Phase A must have run: {report}");
        assert!(
            report.shared_accesses_checked > 0,
            "oracle must observe serial replay traffic: {report}"
        );
        assert!(report.resources_tracked > 0, "{report}");
    }

    #[test]
    fn race_sanitizer_does_not_perturb_output() {
        let run = |sanitize: bool| {
            let mut e = Engine::with_seed(cfg(), 7);
            e.set_exec_mode(ExecMode::Parallel { shards: 2 });
            if sanitize {
                e.enable_race_sanitizer();
            }
            let k = e.launch_kernel(simple_kernel(24, 300));
            assign_all(&mut e, k);
            let events = e.run_until(50_000_000);
            (events, format!("{:?}", e.kernel_stats(k)))
        };
        assert_eq!(run(false), run(true), "sanitizer must only observe");
    }

    #[test]
    fn racy_test_cell_trips_the_sanitizer_in_parallel_mode() {
        let mut e = Engine::new(cfg());
        e.set_exec_mode(ExecMode::Parallel { shards: 2 });
        e.enable_race_sanitizer();
        let cell = e.attach_racy_test_cell(&[0, 1]);
        let k = e.launch_kernel(simple_kernel(32, 400));
        assign_all(&mut e, k);
        e.run_until(50_000_000);
        assert!(e.kernel_stats(k).finished);
        assert!(cell.value() > 0, "pure ticks must have bumped the cell");
        let report = e.race_sanitizer().expect("enabled").report();
        assert!(
            report.violation_count >= 1,
            "unrouted Phase-A effect must be flagged: {report}"
        );
        assert!(report
            .violations
            .iter()
            .all(|v| v.resource == crate::race::SharedResource::TestCell));
    }

    #[test]
    fn racy_test_cell_is_silent_in_serial_modes() {
        // In serial modes no pure tick ever runs, so the cell never bumps
        // and the sanitizer (correctly) sees nothing: the violation above
        // is specific to Phase A.
        let mut e = Engine::new(cfg());
        e.enable_race_sanitizer();
        let cell = e.attach_racy_test_cell(&[0, 1]);
        let k = e.launch_kernel(simple_kernel(16, 200));
        assign_all(&mut e, k);
        e.run_until(50_000_000);
        assert!(e.kernel_stats(k).finished);
        assert_eq!(cell.value(), 0, "serial modes never commit pure ticks");
        assert!(e.race_sanitizer().expect("enabled").report().is_clean());
    }
}
