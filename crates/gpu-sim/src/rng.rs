//! Deterministic hashing / pseudo-random helpers.
//!
//! The simulator derives all per-thread-block variation (execution-length
//! jitter, memory addresses) from pure hash functions of stable identifiers so
//! that results are reproducible regardless of event ordering.

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combine several identifiers into one hash.
pub fn hash_combine(parts: &[u64]) -> u64 {
    let mut h = 0x51_7C_C1_B7_27_22_0A_95u64;
    for &p in parts {
        h = splitmix64(h ^ p);
    }
    h
}

/// A uniform value in `[0, 1)` derived from a hash.
pub fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        assert_eq!(splitmix64(42), splitmix64(42));
        assert_ne!(splitmix64(42), splitmix64(43));
    }

    #[test]
    fn unit_f64_in_range() {
        for i in 0..1000u64 {
            let u = unit_f64(splitmix64(i));
            assert!((0.0..1.0).contains(&u), "u={u}");
        }
    }

    #[test]
    fn unit_f64_roughly_uniform() {
        let n = 10_000u64;
        let mean: f64 = (0..n).map(|i| unit_f64(splitmix64(i))).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn hash_combine_order_sensitive() {
        assert_ne!(hash_combine(&[1, 2]), hash_combine(&[2, 1]));
    }
}
