//! Warp execution state machine.
//!
//! A warp walks the segment list of its kernel's [`Program`](crate::Program),
//! issuing instructions in chunks. Memory segments stall the warp until the
//! modelled memory subsystem returns data; barriers park the warp until every
//! warp of the block arrives.

use crate::kernel::Segment;

/// What a warp is currently doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpPhase {
    /// Can issue instructions.
    Ready,
    /// Stalled on a memory access until the given cycle.
    WaitMem(u64),
    /// Parked at a block-wide barrier.
    AtBarrier,
    /// Finished the program.
    Done,
}

/// The outcome of issuing one chunk from a warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueOutcome {
    /// Warp instructions issued (0 if the warp hit a barrier).
    pub insts: u32,
    /// Bytes of DRAM traffic generated (0 for compute/shared segments).
    pub mem_bytes: u32,
    /// `true` if the issued instructions must stall the warp until the memory
    /// system responds (loads and atomics; stores are fire-and-forget).
    pub mem_blocking: bool,
    /// Segment index completed by this chunk, if any.
    pub completed_segment: Option<usize>,
    /// `true` if this chunk executed a protect-store (the block is about to
    /// leave its idempotent region).
    pub protect_store: bool,
    /// `true` if the warp arrived at a barrier (no instructions issued).
    pub hit_barrier: bool,
    /// `true` if the warp finished its program with this chunk.
    pub done: bool,
}

/// Per-warp execution state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Warp {
    /// Warp index within its block.
    pub index: u32,
    /// Current segment index into the program.
    pub seg_idx: usize,
    /// Instructions already executed within the current segment (against the
    /// block's jitter-scaled segment lengths).
    pub done_in_seg: u32,
    /// Current phase.
    pub phase: WarpPhase,
}

/// Bytes of DRAM traffic per coalesced warp memory instruction
/// (32 threads × 4 bytes).
pub const BYTES_PER_MEM_INST: u32 = 128;

impl Warp {
    /// A fresh warp at the start of the program.
    pub fn new(index: u32) -> Self {
        Warp {
            index,
            seg_idx: 0,
            done_in_seg: 0,
            phase: WarpPhase::Ready,
        }
    }

    /// Whether the warp can issue at `now`.
    pub fn is_ready(&self, now: u64) -> bool {
        match self.phase {
            WarpPhase::Ready => true,
            WarpPhase::WaitMem(until) => now >= until,
            WarpPhase::AtBarrier | WarpPhase::Done => false,
        }
    }

    /// The earliest cycle at which this warp could issue again, if any.
    pub fn next_ready_at(&self) -> Option<u64> {
        match self.phase {
            WarpPhase::Ready => Some(0),
            WarpPhase::WaitMem(until) => Some(until),
            WarpPhase::AtBarrier | WarpPhase::Done => None,
        }
    }

    /// Issue up to `max_insts` instructions from the current segment.
    ///
    /// `segments` is the program; `scaled` holds the jitter-scaled per-segment
    /// instruction counts for this warp's block. Chunks never cross segment
    /// boundaries so functional effects apply exactly at segment completion.
    ///
    /// # Panics
    ///
    /// Panics if called while the warp is not ready (guard with
    /// [`Warp::is_ready`]).
    pub fn issue(&mut self, segments: &[Segment], scaled: &[u32], max_insts: u32) -> IssueOutcome {
        assert!(
            matches!(self.phase, WarpPhase::Ready | WarpPhase::WaitMem(_)),
            "issue() on non-runnable warp"
        );
        self.phase = WarpPhase::Ready;
        // Skip zero-length segments (possible after jitter scaling).
        while self.seg_idx < segments.len()
            && !matches!(segments[self.seg_idx], Segment::Barrier)
            && self.done_in_seg >= scaled[self.seg_idx]
        {
            self.seg_idx += 1;
            self.done_in_seg = 0;
        }
        if self.seg_idx >= segments.len() {
            self.phase = WarpPhase::Done;
            return IssueOutcome {
                insts: 0,
                mem_bytes: 0,
                mem_blocking: false,
                completed_segment: None,
                protect_store: false,
                hit_barrier: false,
                done: true,
            };
        }
        let seg = segments[self.seg_idx];
        if matches!(seg, Segment::Barrier) {
            self.phase = WarpPhase::AtBarrier;
            return IssueOutcome {
                insts: 0,
                mem_bytes: 0,
                mem_blocking: false,
                completed_segment: None,
                protect_store: false,
                hit_barrier: true,
                done: false,
            };
        }
        let remaining = scaled[self.seg_idx] - self.done_in_seg;
        let n = remaining.min(max_insts).max(1);
        self.done_in_seg += n;
        let seg_completed = self.done_in_seg >= scaled[self.seg_idx];
        let completed_segment = seg_completed.then_some(self.seg_idx);
        if seg_completed {
            self.seg_idx += 1;
            self.done_in_seg = 0;
        }
        let (mem_bytes, mem_blocking) = match seg {
            Segment::GlobalLoad { .. } => (n * BYTES_PER_MEM_INST, true),
            Segment::GlobalStore { .. } => (n * BYTES_PER_MEM_INST, false),
            Segment::Atomic { .. } => (n * BYTES_PER_MEM_INST, true),
            Segment::ProtectStore => (BYTES_PER_MEM_INST, false),
            _ => (0, false),
        };
        let done = self.seg_idx >= segments.len();
        if done {
            self.phase = WarpPhase::Done;
        }
        IssueOutcome {
            insts: n,
            mem_bytes,
            mem_blocking,
            completed_segment,
            protect_store: matches!(seg, Segment::ProtectStore),
            hit_barrier: false,
            done,
        }
    }

    /// Instructions left in the warp's current segment when — and only when —
    /// the next issues from it are *steady*: the segment is side-effect free
    /// (compute or shared, so no DRAM traffic, no functional effects, no
    /// idempotence change) and needs no zero-length-segment skip. While at
    /// least one instruction remains afterwards, such a warp issues plain
    /// fixed-size chunks with no phase change and no segment completion,
    /// which is what lets [`Sm`](crate::Sm) replay many of its ticks in one
    /// batched step. Returns `None` whenever the next `issue` could do
    /// anything more interesting.
    pub(crate) fn steady_compute_rem(&self, segments: &[Segment], scaled: &[u32]) -> Option<u32> {
        if !matches!(self.phase, WarpPhase::Ready | WarpPhase::WaitMem(_)) {
            return None;
        }
        let seg = *segments.get(self.seg_idx)?;
        if !matches!(seg, Segment::Compute { .. } | Segment::Shared { .. }) {
            return None;
        }
        let len = scaled[self.seg_idx];
        // `done_in_seg >= len` means issue() would first run its skip loop.
        (self.done_in_seg < len).then(|| len - self.done_in_seg)
    }

    /// Stall the warp until `until` (memory response time).
    pub fn stall_until(&mut self, until: u64) {
        debug_assert!(matches!(self.phase, WarpPhase::Ready));
        self.phase = WarpPhase::WaitMem(until);
    }

    /// Release the warp from a barrier, moving it past the barrier segment.
    pub fn release_barrier(&mut self) {
        assert_eq!(
            self.phase,
            WarpPhase::AtBarrier,
            "release_barrier on non-parked warp"
        );
        self.seg_idx += 1;
        self.done_in_seg = 0;
        self.phase = WarpPhase::Ready;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Segment;

    fn segs() -> Vec<Segment> {
        vec![
            Segment::compute(10),
            Segment::load(4),
            Segment::Barrier,
            Segment::store(2),
        ]
    }

    fn scaled(segs: &[Segment]) -> Vec<u32> {
        segs.iter().map(Segment::insts).collect()
    }

    #[test]
    fn issues_in_chunks_until_segment_end() {
        let s = segs();
        let sc = scaled(&s);
        let mut w = Warp::new(0);
        let o = w.issue(&s, &sc, 8);
        assert_eq!(o.insts, 8);
        assert_eq!(o.completed_segment, None);
        let o = w.issue(&s, &sc, 8);
        assert_eq!(o.insts, 2, "chunk must not cross segment boundary");
        assert_eq!(o.completed_segment, Some(0));
    }

    #[test]
    fn loads_generate_blocking_traffic() {
        let s = segs();
        let sc = scaled(&s);
        let mut w = Warp::new(0);
        w.issue(&s, &sc, 10); // finish compute
        let o = w.issue(&s, &sc, 8);
        assert_eq!(o.insts, 4);
        assert_eq!(o.mem_bytes, 4 * BYTES_PER_MEM_INST);
        assert!(o.mem_blocking);
    }

    #[test]
    fn stores_do_not_block() {
        let s = vec![Segment::store(2)];
        let sc = scaled(&s);
        let mut w = Warp::new(0);
        let o = w.issue(&s, &sc, 8);
        assert!(!o.mem_blocking);
        assert_eq!(o.mem_bytes, 2 * BYTES_PER_MEM_INST);
        assert!(o.done);
    }

    #[test]
    fn barrier_parks_warp() {
        let s = segs();
        let sc = scaled(&s);
        let mut w = Warp::new(0);
        w.issue(&s, &sc, 10);
        w.issue(&s, &sc, 4);
        let o = w.issue(&s, &sc, 8);
        assert!(o.hit_barrier);
        assert_eq!(o.insts, 0);
        assert_eq!(w.phase, WarpPhase::AtBarrier);
        assert!(!w.is_ready(12345));
        w.release_barrier();
        assert!(w.is_ready(0));
        let o = w.issue(&s, &sc, 8);
        assert_eq!(o.insts, 2);
        assert!(o.done);
        assert_eq!(w.phase, WarpPhase::Done);
    }

    #[test]
    fn protect_store_flagged() {
        let s = vec![
            Segment::compute(1),
            Segment::ProtectStore,
            Segment::atomic(1),
        ];
        let sc = scaled(&s);
        let mut w = Warp::new(0);
        w.issue(&s, &sc, 1);
        let o = w.issue(&s, &sc, 8);
        assert!(o.protect_store);
        assert_eq!(o.insts, 1);
    }

    #[test]
    fn memory_wait_respects_time() {
        let mut w = Warp::new(0);
        w.stall_until(100);
        assert!(!w.is_ready(99));
        assert!(w.is_ready(100));
        assert_eq!(w.next_ready_at(), Some(100));
    }

    #[test]
    fn zero_length_scaled_segments_are_skipped() {
        let s = vec![Segment::compute(5), Segment::load(3), Segment::store(1)];
        let sc = vec![5, 0, 1]; // jitter collapsed the load segment
        let mut w = Warp::new(0);
        w.issue(&s, &sc, 5);
        let o = w.issue(&s, &sc, 8);
        assert_eq!(o.completed_segment, Some(2), "load segment skipped");
        assert!(o.done);
    }
}
