//! Dependency-free stand-in for the [`proptest`](https://docs.rs/proptest)
//! crate.
//!
//! This workspace must build in offline environments where crates.io is
//! unreachable, so the property tests run against this shim instead of the
//! real crate. It implements exactly the API subset the workspace uses:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   attribute and `name in strategy` bindings;
//! * [`Strategy`] with `prop_map`, `prop_flat_map` and `prop_filter`;
//! * strategies for ranges, tuples, `Vec<S>`, [`Just`], [`any::<bool>()`](any)
//!   and [`prop_oneof!`];
//! * [`collection::vec`];
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`;
//! * replay of `cc` seeds recorded in checked-in `*.proptest-regressions`
//!   files (each seed reruns with the same derived RNG stream every time).
//!
//! Differences from the real crate: failing cases are reported with their
//! generated inputs but are **not shrunk**, and the `cc` seed hash feeds the
//! shim's own RNG, so a seed recorded by upstream proptest replays a
//! deterministic case here but not bit-for-bit the historical one. Failures
//! that matter are therefore also frozen as plain `#[test]` unit tests next
//! to the code they pin (see `chimera::select::tests`).

use std::fmt::Write as _;
use std::ops::Range;

/// Deterministic splitmix64 RNG used for all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator. Every case gets its own seed, so cases are
    /// independent and replayable.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`; `hi` must exceed `lo`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// A generator of test values. Unlike the real crate there is no value tree:
/// `pick` produces the final value directly and nothing shrinks.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn pick(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate an intermediate value, then generate from the strategy it
    /// maps to.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Reject values failing `pred`, regenerating until one passes.
    fn prop_filter<R, F>(self, reason: R, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn pick(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.pick(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn pick(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.pick(rng)).pick(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn pick(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..1_000 {
            let v = self.inner.pick(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 values in a row: {}", self.reason);
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn pick(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Generate an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_uint!(u8, u16, u32, u64, usize);

/// Strategy over a type's whole domain; see [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T` (`any::<bool>()` et al.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn pick(&self, rng: &mut TestRng) -> $t {
                rng.range_u64(self.start as u64, self.end as u64) as $t
            }
        }
    )*};
}
range_strategy_int!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn pick(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn pick(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.pick(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn pick(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.pick(rng)).collect()
    }
}

/// Uniform choice between boxed alternatives; built by [`prop_oneof!`].
pub struct Union<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T> Union<T> {
    /// A union over the given alternatives (must be non-empty).
    pub fn new(alternatives: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
        Union(alternatives)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn pick(&self, rng: &mut TestRng) -> T {
        let ix = rng.range_u64(0, self.0.len() as u64) as usize;
        self.0[ix].pick(rng)
    }
}

/// Collection strategies ([`collection::vec`]).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Vectors of `element` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A strategy for vectors of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.range_u64(self.len.start as u64, self.len.end as u64) as usize;
            (0..n).map(|_| self.element.pick(rng)).collect()
        }
    }
}

/// Runner configuration (`ProptestConfig`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test (regression seeds run in addition).
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// Test-runner plumbing used by the [`proptest!`] expansion.
pub mod test_runner {
    pub use super::{Config, TestRng};

    /// FNV-1a over a string, for deterministic per-test seed derivation.
    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in s.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01B3);
        }
        h
    }

    /// Seeds recorded in the sibling `*.proptest-regressions` file, if any.
    ///
    /// Lines have the upstream format `cc <64 hex digits> # shrinks to ...`;
    /// the hash is folded into a 64-bit seed. Unreadable files or lines are
    /// ignored (commented lines, blank lines).
    pub fn regression_seeds(source_file: &str) -> Vec<u64> {
        let path = match source_file.strip_suffix(".rs") {
            Some(stem) => format!("{stem}.proptest-regressions"),
            None => return Vec::new(),
        };
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            let Some(rest) = line.strip_prefix("cc ") else {
                continue;
            };
            let hex: String = rest.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
            if hex.is_empty() {
                continue;
            }
            let mut seed = 0u64;
            for chunk in hex.as_bytes().chunks(16) {
                let part = std::str::from_utf8(chunk)
                    .ok()
                    .and_then(|s| u64::from_str_radix(s, 16).ok())
                    .unwrap_or(0);
                seed ^= part;
            }
            out.push(seed);
        }
        out
    }

    /// The full, ordered seed schedule for one test: regression seeds first
    /// (marked `true`), then `config.cases` freshly derived seeds. The
    /// `PROPTEST_CASES` environment variable overrides the configured count,
    /// like the real crate's.
    pub fn case_seeds(config: &Config, source_file: &str, test_name: &str) -> Vec<(u64, bool)> {
        let mut seeds: Vec<(u64, bool)> = regression_seeds(source_file)
            .into_iter()
            .map(|s| (s, true))
            .collect();
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(config.cases);
        let base = fnv1a(source_file) ^ fnv1a(test_name).rotate_left(17);
        for i in 0..cases {
            let mut rng = TestRng::new(base ^ u64::from(i).wrapping_mul(0x2545_F491_4F6C_DD1D));
            seeds.push((rng.next_u64(), false));
        }
        seeds
    }

    /// Panic with a replayable failure report.
    pub fn fail(
        test_name: &str,
        case_ix: usize,
        seed: u64,
        from_regression: bool,
        inputs: &str,
        error: &str,
    ) -> ! {
        let origin = if from_regression {
            "regression seed"
        } else {
            "generated case"
        };
        panic!(
            "proptest shim: {test_name} failed on {origin} #{case_ix} (seed {seed:#018x})\n\
             error: {error}\n\
             inputs: {inputs}"
        );
    }
}

/// Render a panic payload for the failure report.
#[doc(hidden)]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[doc(hidden)]
pub fn describe_input(desc: &mut String, name: &str, value: &dyn std::fmt::Debug) {
    let _ = write!(desc, "{name} = {value:?}; ");
}

/// The property-test macro. Supports the subset
/// `proptest! { #![proptest_config(expr)] #[test] fn name(x in strat, ..) { .. } .. }`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::Config = $cfg;
                let seeds =
                    $crate::test_runner::case_seeds(&config, ::std::file!(), stringify!($name));
                for (case_ix, (seed, from_regression)) in seeds.iter().enumerate() {
                    let mut rng = $crate::test_runner::TestRng::new(*seed);
                    $(let $arg = $crate::Strategy::pick(&($strat), &mut rng);)+
                    let mut inputs = ::std::string::String::new();
                    $($crate::describe_input(&mut inputs, stringify!($arg), &$arg);)+
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            move || -> ::std::result::Result<(), ::std::string::String> {
                                $body
                                ::std::result::Result::Ok(())
                            },
                        ),
                    );
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(msg)) => $crate::test_runner::fail(
                            stringify!($name), case_ix, *seed, *from_regression, &inputs, &msg,
                        ),
                        Err(payload) => $crate::test_runner::fail(
                            stringify!($name), case_ix, *seed, *from_regression, &inputs,
                            &$crate::panic_message(payload.as_ref()),
                        ),
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::Config::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(::std::boxed::Box::new($strat) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>,)+
        ])
    };
}

/// Soft assertion: fails the current case with a message instead of
/// panicking, so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Soft equality assertion; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: {:?}\n right: {:?}\n  {}",
            left,
            right,
            ::std::format!($($fmt)*)
        );
    }};
}

/// Soft inequality assertion; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  left: {:?}\n right: {:?}\n  {}",
            left,
            right,
            ::std::format!($($fmt)*)
        );
    }};
}

/// `use proptest::prelude::*;` — everything the tests name directly.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        Config as ProptestConfig, Just, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{collection, test_runner};

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(7);
        let mut b = TestRng::new(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(99);
        for _ in 0..1_000 {
            let v = (10u64..20).pick(&mut rng);
            assert!((10..20).contains(&v));
            let f = (1.0f64..2.0).pick(&mut rng);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::new(3);
        let s = (1u32..5)
            .prop_map(|x| x * 2)
            .prop_filter("even", |x| x % 2 == 0)
            .prop_flat_map(|x| collection::vec(0u32..x, 1..4));
        for _ in 0..100 {
            let v = s.pick(&mut rng);
            assert!(!v.is_empty() && v.len() < 4);
        }
    }

    #[test]
    fn oneof_covers_all_alternatives() {
        let mut rng = TestRng::new(11);
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.pick(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn case_seeds_are_stable_and_prepend_regressions() {
        let cfg = ProptestConfig::with_cases(5);
        let a = test_runner::case_seeds(&cfg, "tests/nonexistent.rs", "t");
        let b = test_runner::case_seeds(&cfg, "tests/nonexistent.rs", "t");
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|(_, reg)| !reg));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn shim_macro_roundtrip(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            if flag {
                prop_assert_ne!(x, 100);
            }
            prop_assert_eq!(x + 1, x + 1);
        }
    }
}
