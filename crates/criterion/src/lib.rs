//! Dependency-free stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! crates.io is unreachable in the build environment, so the workspace's
//! micro-benchmarks (`crates/bench/benches/*.rs`) compile and run against
//! this shim. It implements the API subset those benches use — groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `sample_size` and `Bencher::iter` — with a simple mean-of-samples timing
//! loop and plain-text output instead of criterion's statistics, HTML
//! reports and CLI.

use std::fmt::Display;
use std::time::Instant;

/// Number of timed samples per benchmark unless overridden.
const DEFAULT_SAMPLES: usize = 10;

/// Measures one benchmark body: each [`iter`](Bencher::iter) call runs the
/// closure once per sample and records the elapsed time.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: usize,
    elapsed_ns: Vec<u128>,
}

impl Bencher {
    fn with_samples(samples: usize) -> Self {
        Bencher {
            samples,
            elapsed_ns: Vec::with_capacity(samples),
        }
    }

    /// Time `f`, running it once for warm-up plus one timed run per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            self.elapsed_ns.push(start.elapsed().as_nanos());
        }
    }

    fn mean_ns(&self) -> u128 {
        if self.elapsed_ns.is_empty() {
            0
        } else {
            self.elapsed_ns.iter().sum::<u128>() / self.elapsed_ns.len() as u128
        }
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Throughput annotation; recorded and echoed, not analysed.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::with_samples(DEFAULT_SAMPLES);
        f(&mut b);
        report(id, &b, None);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Record the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark over `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::with_samples(self.samples);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b, self.throughput);
        self
    }

    /// Finish the group (drops it; output already printed per benchmark).
    pub fn finish(self) {}
}

fn report(id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let mean = b.mean_ns();
    let per_elem = match throughput {
        Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if n > 0 && mean > 0 => {
            format!(" ({:.2} ns/elem)", mean as f64 / n as f64)
        }
        _ => String::new(),
    };
    println!(
        "{id:<40} {mean:>12} ns/iter ({} samples){per_elem}",
        b.elapsed_ns.len()
    );
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher::with_samples(4);
        b.iter(|| std::hint::black_box(2 + 2));
        assert_eq!(b.elapsed_ns.len(), 4);
        let _ = b.mean_ns();
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| ()));
        let mut g = c.benchmark_group("g");
        g.sample_size(2).throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }
}
