//! Dependency-free stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! crates.io is unreachable in the build environment, so the workspace's
//! micro-benchmarks (`crates/bench/benches/*.rs`) compile and run against
//! this shim. It implements the API subset those benches use — groups,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `sample_size` and `Bencher::iter` — with a simple mean-of-samples timing
//! loop and plain-text output instead of criterion's statistics, HTML
//! reports and CLI.

use std::fmt::Display;
use std::time::Instant;

/// Number of timed samples per benchmark unless overridden.
const DEFAULT_SAMPLES: usize = 10;

/// Measures one benchmark body: each [`iter`](Bencher::iter) call runs the
/// closure once per sample and records the elapsed time.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: usize,
    elapsed_ns: Vec<u128>,
}

impl Bencher {
    fn with_samples(samples: usize) -> Self {
        Bencher {
            samples,
            elapsed_ns: Vec::with_capacity(samples),
        }
    }

    /// Time `f`, running it once for warm-up plus one timed run per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            self.elapsed_ns.push(start.elapsed().as_nanos());
        }
    }

    fn mean_ns(&self) -> u128 {
        if self.elapsed_ns.is_empty() {
            0
        } else {
            self.elapsed_ns.iter().sum::<u128>() / self.elapsed_ns.len() as u128
        }
    }

    fn min_ns(&self) -> u128 {
        self.elapsed_ns.iter().copied().min().unwrap_or(0)
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Throughput annotation; recorded and echoed, not analysed.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// One finished benchmark measurement, retrievable via
/// [`Criterion::take_results`] for custom reporting (e.g. the tracked
/// `BENCH_*.json` files).
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/function/parameter`).
    pub id: String,
    /// Mean wall time per iteration in nanoseconds.
    pub mean_ns: u128,
    /// Fastest sample in nanoseconds — the noise-robust statistic for
    /// tracked perf numbers (background load only ever slows a sample).
    pub min_ns: u128,
    /// Number of timed samples behind the mean.
    pub samples: usize,
    /// Per-iteration throughput annotation, if any.
    pub throughput: Option<Throughput>,
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::with_samples(DEFAULT_SAMPLES);
        f(&mut b);
        self.record(id.to_string(), &b, None);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
            throughput: None,
        }
    }

    /// Measurements collected so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Detach all collected measurements (real criterion has no equivalent;
    /// custom `harness = false` mains use this to emit machine-readable
    /// results next to the printed report).
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }

    fn record(&mut self, id: String, b: &Bencher, throughput: Option<Throughput>) {
        report(&id, b, throughput);
        self.results.push(BenchResult {
            id,
            mean_ns: b.mean_ns(),
            min_ns: b.min_ns(),
            samples: b.elapsed_ns.len(),
            throughput,
        });
    }
}

/// A group of related benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Record the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark over `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::with_samples(self.samples);
        f(&mut b, input);
        let throughput = self.throughput;
        self.parent
            .record(format!("{}/{}", self.name, id.id), &b, throughput);
        self
    }

    /// Finish the group (drops it; output already printed per benchmark).
    pub fn finish(self) {}
}

fn report(id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let mean = b.mean_ns();
    let per_elem = match throughput {
        Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) if n > 0 && mean > 0 => {
            format!(" ({:.2} ns/elem)", mean as f64 / n as f64)
        }
        _ => String::new(),
    };
    println!(
        "{id:<40} {mean:>12} ns/iter ({} samples){per_elem}",
        b.elapsed_ns.len()
    );
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher::with_samples(4);
        b.iter(|| std::hint::black_box(2 + 2));
        assert_eq!(b.elapsed_ns.len(), 4);
        let _ = b.mean_ns();
    }

    #[test]
    fn results_registry_collects_measurements() {
        let mut c = Criterion::default();
        c.bench_function("first", |b| b.iter(|| ()));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2).throughput(Throughput::Bytes(8));
        g.bench_with_input(BenchmarkId::from_parameter("p"), &1u32, |b, &x| {
            b.iter(|| x + 1)
        });
        g.finish();
        let res = c.take_results();
        assert_eq!(res.len(), 2);
        assert_eq!(res[0].id, "first");
        assert_eq!(res[1].id, "grp/p");
        assert_eq!(res[1].samples, 2);
        assert!(matches!(res[1].throughput, Some(Throughput::Bytes(8))));
        assert!(c.results().is_empty(), "take_results drains the registry");
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| ()));
        let mut g = c.benchmark_group("g");
        g.sample_size(2).throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }
}
