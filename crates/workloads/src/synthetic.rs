//! Parameterised synthetic kernels, beyond the Table 2 suite.
//!
//! The Table 2 kernels pin down the paper's exact evaluation points; this
//! builder spans the *space* around them — block duration, memory intensity,
//! occupancy, idempotence-point position — for sensitivity studies, fuzzing
//! and micro-benchmarks.

use crate::solve::{INPUT_BUFFER, OUTPUT_BUFFER, THREADS_PER_BLOCK};
use gpu_sim::{AccessRegion, GpuConfig, KernelDesc, Program, Segment};

/// Builder for a synthetic kernel with architecture-level parameters.
///
/// ```
/// use workloads::SyntheticKernel;
/// use gpu_sim::GpuConfig;
///
/// let k = SyntheticKernel::new("sweep")
///     .block_time_us(40.0)
///     .blocks_per_sm(4)
///     .memory_fraction(0.1)
///     .non_idem_at(0.85)
///     .grid_blocks(600)
///     .build(&GpuConfig::fermi());
/// assert_eq!(gpu_sim::occupancy(&GpuConfig::fermi(), &k).blocks_per_sm, 4);
/// assert!(!k.program().is_idempotent());
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticKernel {
    name: String,
    block_time_us: f64,
    blocks_per_sm: u32,
    memory_fraction: f64,
    /// `None` = idempotent; `Some(f)` places an in-place store back into the
    /// input window at fraction `f` (the analysis derives the overwrite).
    non_idem_at: Option<f64>,
    grid_blocks: u32,
    jitter: f64,
    instrumented: bool,
}

impl SyntheticKernel {
    /// Start a builder with sane defaults (20 µs blocks, 8/SM, idempotent).
    pub fn new(name: impl Into<String>) -> Self {
        SyntheticKernel {
            name: name.into(),
            block_time_us: 20.0,
            blocks_per_sm: 8,
            memory_fraction: 0.06,
            non_idem_at: None,
            grid_blocks: 1024,
            jitter: 0.1,
            instrumented: true,
        }
    }

    /// Target block execution time at full occupancy, µs.
    pub fn block_time_us(mut self, us: f64) -> Self {
        assert!(us > 0.0, "block time must be positive");
        self.block_time_us = us;
        self
    }

    /// Target resident blocks per SM (1..=8).
    pub fn blocks_per_sm(mut self, b: u32) -> Self {
        assert!((1..=8).contains(&b), "blocks per SM out of range");
        self.blocks_per_sm = b;
        self
    }

    /// Fraction of instructions that access global memory (0..0.5).
    pub fn memory_fraction(mut self, f: f64) -> Self {
        assert!((0.0..0.5).contains(&f), "memory fraction out of range");
        self.memory_fraction = f;
        self
    }

    /// Make the kernel non-idempotent: at progress `f` (0 exclusive ..
    /// 1 exclusive) the program stores back into the input window it read
    /// at the top of the block, which the dataflow classifies as an
    /// overwrite.
    pub fn non_idem_at(mut self, f: f64) -> Self {
        assert!(
            f > 0.0 && f < 1.0,
            "idempotence point must be inside the block"
        );
        self.non_idem_at = Some(f);
        self
    }

    /// Grid size in blocks.
    pub fn grid_blocks(mut self, g: u32) -> Self {
        assert!(g > 0, "grid must be non-empty");
        self.grid_blocks = g;
        self
    }

    /// Per-block execution-time jitter (±fraction).
    pub fn jitter(mut self, j: f64) -> Self {
        self.jitter = j;
        self
    }

    /// Whether to insert the relaxed-idempotence protect store.
    pub fn instrumented(mut self, on: bool) -> Self {
        self.instrumented = on;
        self
    }

    /// Build the kernel for `cfg`.
    pub fn build(&self, cfg: &GpuConfig) -> KernelDesc {
        let eff = self.blocks_per_sm.min(self.grid_blocks);
        let total = crate::solve::solve_insts_per_warp(cfg, self.block_time_us, eff);
        let mem = ((f64::from(total) * self.memory_fraction) as u32).max(2);
        let loads = mem / 2;
        let stores = (mem - loads).max(1);
        let mut segs = Vec::new();
        let input = AccessRegion::per_block_window(INPUT_BUFFER, 0, loads);
        let output = AccessRegion::per_block_window(OUTPUT_BUFFER, 0, stores);
        match self.non_idem_at {
            None => {
                let c = total.saturating_sub(loads + stores).max(2);
                segs.push(Segment::load_region(loads, input));
                segs.push(Segment::compute((c / 2).max(1)));
                segs.push(Segment::Barrier);
                segs.push(Segment::compute((c - c / 2).max(1)));
                segs.push(Segment::store_region(stores, output));
            }
            Some(frac) => {
                let point = ((f64::from(total) * frac) as u32).clamp(1, total - 2);
                let before_c = point.saturating_sub(loads).max(1);
                let after = total - point;
                let ow = after.clamp(1, 4);
                let after_c = after.saturating_sub(ow + stores);
                segs.push(Segment::load_region(loads, input));
                segs.push(Segment::compute(before_c));
                // In-place store over the window the load just read; the
                // idem dataflow derives the overwrite classification.
                segs.push(Segment::store_region(
                    ow,
                    AccessRegion::per_block_window(INPUT_BUFFER, 0, ow),
                ));
                if after_c > 0 {
                    segs.push(Segment::compute(after_c));
                }
                segs.push(Segment::store_region(stores, output));
            }
        }
        let program = Program::new(segs);
        let program = if self.instrumented {
            idem::instrument(&program)
        } else {
            program
        };
        // Make shared memory the occupancy-binding resource below the cap.
        let shared = if self.blocks_per_sm >= cfg.max_blocks_per_sm {
            1024
        } else {
            cfg.shared_mem_per_sm / self.blocks_per_sm
        };
        KernelDesc::builder(self.name.clone())
            .grid_blocks(self.grid_blocks)
            .threads_per_block(THREADS_PER_BLOCK)
            .regs_per_thread(16)
            .shared_mem_per_block(shared)
            .program(program)
            .jitter_pct(self.jitter)
            .build()
            .expect("synthetic parameters are validated by the setters")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure_drain_time_us;

    fn cfg() -> GpuConfig {
        GpuConfig::fermi()
    }

    #[test]
    fn occupancy_matches_requested() {
        for b in 1..=8 {
            let k = SyntheticKernel::new("o").blocks_per_sm(b).build(&cfg());
            assert_eq!(gpu_sim::occupancy(&cfg(), &k).blocks_per_sm, b, "b={b}");
        }
    }

    #[test]
    fn block_time_calibrates() {
        for us in [5.0, 50.0, 400.0] {
            let k = SyntheticKernel::new("t")
                .block_time_us(us)
                .blocks_per_sm(4)
                .jitter(0.0)
                .build(&cfg());
            let measured = measure_drain_time_us(&cfg(), &k, 8);
            assert!(
                (measured - us).abs() / us < 0.35,
                "target {us} us, measured {measured} us"
            );
        }
    }

    #[test]
    fn idempotence_point_lands_where_requested() {
        for frac in [0.2, 0.5, 0.9] {
            let k = SyntheticKernel::new("p")
                .non_idem_at(frac)
                .instrumented(false)
                .build(&cfg());
            let got = k.program().idempotent_fraction();
            assert!((got - frac).abs() < 0.08, "requested {frac}, got {got}");
        }
    }

    #[test]
    fn instrumented_kernels_carry_protect_store() {
        let k = SyntheticKernel::new("i").non_idem_at(0.8).build(&cfg());
        assert!(k
            .program()
            .segments()
            .iter()
            .any(|s| matches!(s, Segment::ProtectStore)));
        let k = SyntheticKernel::new("i").build(&cfg());
        assert!(k.program().is_idempotent());
    }

    #[test]
    fn memory_fraction_is_respected() {
        let k = SyntheticKernel::new("m")
            .memory_fraction(0.2)
            .jitter(0.0)
            .build(&cfg());
        let mem: u64 = k
            .program()
            .segments()
            .iter()
            .filter(|s| s.is_global_memory())
            .map(|s| u64::from(s.insts()))
            .sum();
        let frac = mem as f64 / k.program().insts_per_warp() as f64;
        assert!((frac - 0.2).abs() < 0.05, "{frac}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_occupancy() {
        let _ = SyntheticKernel::new("x").blocks_per_sm(9);
    }
}
