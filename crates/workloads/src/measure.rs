//! Measurement helpers: run a kernel solo on the simulator and extract the
//! statistics Table 2 reports.

use gpu_sim::{Engine, Event, GpuConfig, KernelDesc};

/// Measure the average thread-block execution time (µs) of `kernel` at full
/// occupancy on a single SM — the paper's "average drain time" methodology
/// ("the average time to execute a thread block is first measured through
/// simulation", §2.4).
///
/// Runs until `samples` blocks complete and averages their residency cycles.
pub fn measure_drain_time_us(cfg: &GpuConfig, kernel: &KernelDesc, samples: u32) -> f64 {
    let mut engine = Engine::new(cfg.clone());
    let k = engine.launch_kernel(kernel.clone());
    engine.assign_sm(0, Some(k));
    let samples = samples.min(kernel.grid_blocks());
    let mut done = 0u32;
    // Generous horizon: blocks at occupancy T overlap, so `samples` blocks
    // take roughly `samples / T + 1` block-times.
    let horizon = (kernel.insts_per_block() * 8 * u64::from(samples) + 4_000_000) * 4;
    while done < samples && engine.cycle() < horizon {
        for ev in engine.run_for(1_000_000) {
            if matches!(ev, Event::TbCompleted { .. }) {
                done += 1;
            }
        }
    }
    let stats = engine.kernel_stats(k);
    match stats.avg_tb_cpi() {
        Some(_) => {
            let avg_cycles =
                stats.sum_completed_cycles as f64 / f64::from(stats.completed_tbs.max(1));
            cfg.cycles_to_us(avg_cycles.round() as u64)
        }
        None => f64::NAN,
    }
}

/// Measure a kernel's solo full-GPU execution rate: `(warp-insts, cycles)`
/// until the kernel finishes or issues `inst_cap` instructions.
///
/// This is the `CPI_single` input to the ANTT/STP metrics (§4.4).
pub fn measure_solo_rate(cfg: &GpuConfig, kernel: &KernelDesc, inst_cap: u64) -> (u64, u64) {
    let mut engine = Engine::new(cfg.clone());
    let k = engine.launch_kernel(kernel.clone());
    engine.set_inst_cap(k, inst_cap);
    for sm in 0..cfg.num_sms {
        engine.assign_sm(sm, Some(k));
    }
    loop {
        let events = engine.run_for(2_000_000);
        let s = engine.kernel_stats(k);
        if s.finished || s.issued_insts >= inst_cap {
            break;
        }
        if events.is_empty() && engine.pending_blocks(k) == 0 && s.issued_insts == 0 {
            break;
        }
    }
    let s = engine.kernel_stats(k);
    (s.issued_insts, engine.cycle())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::build_kernel;
    use crate::spec::table2;

    #[test]
    fn drain_time_measurement_close_to_target_for_short_kernel() {
        let cfg = GpuConfig::fermi();
        let spec = table2().into_iter().find(|s| s.label() == "BT.1").unwrap();
        let k = build_kernel(&cfg, &spec, true);
        let us = measure_drain_time_us(&cfg, &k, 12);
        assert!(
            (us - spec.drain_us).abs() / spec.drain_us < 0.45,
            "BT.1 drain {us} vs target {}",
            spec.drain_us
        );
    }

    #[test]
    fn solo_rate_is_positive_and_capped() {
        let cfg = GpuConfig::fermi();
        let spec = table2().into_iter().find(|s| s.label() == "SAD.2").unwrap();
        let k = build_kernel(&cfg, &spec, true);
        let (insts, cycles) = measure_solo_rate(&cfg, &k, 200_000);
        assert!(insts >= 200_000 || insts == k.insts_per_block() * u64::from(k.grid_blocks()));
        assert!(cycles > 0);
    }
}
