//! Deadline-class specifications for the open-loop serving front-end.
//!
//! `chimera::runner::serve` replays a request stream against the GPU; each
//! request instantiates one of the [`RequestClass`]es defined here (a kernel
//! shape plus an SLO) on behalf of a [`TenantSpec`]. The classes are
//! synthetic but calibrated like the §4.1 task kernel: 128-thread blocks,
//! a load segment at ~2% of the instruction budget, and grid sizes chosen so
//! the class mix spans interactive (~tens of µs) through batch (~ms) service
//! times on the paper's 30-SM GPU.

use gpu_sim::{GpuConfig, KernelDesc, Program, Segment};

/// Warps per 128-thread block (32 threads per warp).
const WARPS_PER_BLOCK: u64 = 4;

/// One deadline class: the kernel shape a request of this class launches,
/// its relative deadline, and its share of the request mix.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestClass {
    /// Class name; request kernels are named `"{name}#{request}"` so
    /// per-class statistics pool across requests.
    pub name: String,
    /// Grid size of the class kernel, blocks.
    pub grid_blocks: u32,
    /// Straight-line instructions per warp in the class kernel.
    pub insts_per_warp: u32,
    /// Relative deadline, µs after arrival.
    pub deadline_us: f64,
    /// Analytic full-GPU service-time estimate, µs (issue-bound: total warp
    /// instructions × issue interval spread across every SM). Used by the
    /// admission controller's feasibility test.
    pub service_us: f64,
    /// Relative share of the request mix (larger = more frequent).
    pub weight: u32,
}

impl RequestClass {
    /// Build a class from its kernel shape, deriving [`service_us`] from
    /// `cfg` analytically.
    ///
    /// [`service_us`]: RequestClass::service_us
    pub fn new(
        cfg: &GpuConfig,
        name: &str,
        grid_blocks: u32,
        insts_per_warp: u32,
        deadline_us: f64,
        weight: u32,
    ) -> Self {
        let total_warp_insts = u64::from(grid_blocks) * WARPS_PER_BLOCK * u64::from(insts_per_warp);
        let cycles = total_warp_insts * cfg.issue_interval() / cfg.num_sms as u64;
        RequestClass {
            name: name.to_string(),
            grid_blocks,
            insts_per_warp,
            deadline_us,
            service_us: cfg.cycles_to_us(cycles),
            weight,
        }
    }

    /// The kernel a request of this class launches, named
    /// `"{name}#{request}"` (the `#` suffix is stripped when pooling
    /// per-class statistics, mirroring the periodic runner's convention).
    pub fn kernel(&self, request: u64) -> KernelDesc {
        let load = (self.insts_per_warp / 50).max(1);
        KernelDesc::builder(format!("{}#{}", self.name, request))
            .grid_blocks(self.grid_blocks)
            .threads_per_block(128)
            .regs_per_thread(16)
            .program(Program::new(vec![
                Segment::load(load),
                Segment::compute(self.insts_per_warp - load),
            ]))
            .build()
            .expect("serve class kernel is valid")
    }
}

/// One tenant sharing the serving front-end.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name, for reporting.
    pub name: String,
    /// Fair-share weight: the dispatcher keeps each tenant's served
    /// service-time proportional to its weight under contention.
    pub weight: u32,
}

impl TenantSpec {
    /// Build a tenant spec.
    pub fn new(name: &str, weight: u32) -> Self {
        TenantSpec {
            name: name.to_string(),
            weight,
        }
    }
}

/// A serving workload: the deadline-class mix and the tenant population.
///
/// ```
/// use gpu_sim::GpuConfig;
/// use workloads::ServeWorkload;
///
/// let wl = ServeWorkload::standard(&GpuConfig::fermi());
/// assert_eq!(wl.classes.len(), 3);
/// assert!(wl.mean_service_us() > 0.0);
/// assert!(wl.saturation_per_ms() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServeWorkload {
    /// Deadline classes, drawn per-request by weight.
    pub classes: Vec<RequestClass>,
    /// Tenants, drawn per-request by weight.
    pub tenants: Vec<TenantSpec>,
}

impl ServeWorkload {
    /// The standard three-class, three-tenant mix: interactive requests
    /// (~40 µs service, 200 µs deadline) dominate the stream, analytic
    /// requests (~160 µs, 1 ms) ride along, and batch requests (~640 µs,
    /// 5 ms) trail. Tenants alpha/beta/gamma share 3:2:1.
    pub fn standard(cfg: &GpuConfig) -> Self {
        ServeWorkload {
            classes: vec![
                RequestClass::new(cfg, "interactive", 60, 1750, 200.0, 6),
                RequestClass::new(cfg, "analytic", 120, 3500, 1000.0, 3),
                RequestClass::new(cfg, "batch", 240, 7000, 5000.0, 1),
            ],
            tenants: vec![
                TenantSpec::new("alpha", 3),
                TenantSpec::new("beta", 2),
                TenantSpec::new("gamma", 1),
            ],
        }
    }

    /// A skewed variant: batch-heavy mix and one dominant tenant, for
    /// stressing the fair-share dispatcher and the starvation regression
    /// test.
    pub fn skewed(cfg: &GpuConfig) -> Self {
        ServeWorkload {
            classes: vec![
                RequestClass::new(cfg, "interactive", 60, 1750, 200.0, 2),
                RequestClass::new(cfg, "batch", 240, 7000, 5000.0, 4),
            ],
            tenants: vec![TenantSpec::new("whale", 8), TenantSpec::new("minnow", 1)],
        }
    }

    /// Weight-averaged analytic service time of the request mix, µs.
    pub fn mean_service_us(&self) -> f64 {
        let wsum: u64 = self.classes.iter().map(|c| u64::from(c.weight)).sum();
        if wsum == 0 {
            return 0.0;
        }
        self.classes
            .iter()
            .map(|c| c.service_us * c.weight as f64)
            .sum::<f64>()
            / wsum as f64
    }

    /// Analytic saturation throughput, requests/ms: the offered load at
    /// which the mix's mean service demand fills the whole GPU
    /// (work-conserving, ignoring preemption/dispatch overheads). The
    /// `serve` bench sweeps offered load in multiples of this.
    pub fn saturation_per_ms(&self) -> f64 {
        let mean = self.mean_service_us();
        if mean <= 0.0 {
            return 0.0;
        }
        1000.0 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_mix_is_calibrated_on_fermi() {
        let cfg = GpuConfig::fermi();
        let wl = ServeWorkload::standard(&cfg);
        // Interactive: 60 blocks × 4 warps × 1750 insts × 4 cycles / 30 SMs
        // = 56_000 cycles = 40 µs at 1.4 GHz.
        let inter = &wl.classes[0];
        assert_eq!(inter.name, "interactive");
        assert!(
            (inter.service_us - 40.0).abs() < 1e-9,
            "{}",
            inter.service_us
        );
        assert!(inter.service_us < inter.deadline_us);
        // Every class leaves deadline headroom over its own service time.
        for c in &wl.classes {
            assert!(c.deadline_us > 2.0 * c.service_us, "{}", c.name);
        }
        // Mean service ≈ 136 µs → saturation ≈ 7.35 req/ms.
        assert!((wl.mean_service_us() - 136.0).abs() < 1.0);
        assert!((wl.saturation_per_ms() - 7.35).abs() < 0.1);
    }

    #[test]
    fn class_kernels_pool_by_name() {
        let cfg = GpuConfig::fermi();
        let wl = ServeWorkload::standard(&cfg);
        let k = wl.classes[0].kernel(17);
        assert_eq!(k.name(), "interactive#17");
        assert_eq!(k.grid_blocks(), 60);
    }

    #[test]
    fn skewed_mix_has_a_dominant_tenant() {
        let cfg = GpuConfig::fermi();
        let wl = ServeWorkload::skewed(&cfg);
        assert!(wl.tenants[0].weight > 4 * wl.tenants[1].weight / 2);
        assert!(wl.mean_service_us() > ServeWorkload::standard(&cfg).mean_service_us());
    }
}
