//! Table 2 targets: one [`KernelSpec`] per kernel of the paper's suite.

use std::fmt;

/// The global-memory access structure of a kernel's program.
///
/// This is what a spec *declares*; whether the resulting program is
/// idempotent is **derived** by the `idem` dataflow from the access regions
/// the builder emits (see `build_program`), never asserted. The solver
/// tests check that the derived classification reproduces the paper's
/// Table 2 idempotence column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPattern {
    /// Streaming: reads the input buffer, writes a distinct output buffer.
    /// Re-execution is always safe (Table 2 "Idempotent: Yes").
    Streaming,
    /// The tail store updates the block's *input* window in place — a plain
    /// store whose region aliases the earlier read, which the analysis
    /// flags as an overwrite.
    InPlaceTail,
    /// The tail performs atomic updates on block-shared counters.
    AtomicTail,
}

impl AccessPattern {
    /// Whether a program with this access structure is expected to satisfy
    /// the strict idempotence condition.
    pub fn is_idempotent(&self) -> bool {
        matches!(self, AccessPattern::Streaming)
    }
}

impl fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessPattern::Streaming => f.write_str("streaming"),
            AccessPattern::InPlaceTail => f.write_str("in-place tail"),
            AccessPattern::AtomicTail => f.write_str("atomic tail"),
        }
    }
}

/// Calibration targets for one kernel (a row of the paper's Table 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelSpec {
    /// Benchmark label (e.g. `"BS"`).
    pub bench: &'static str,
    /// Kernel index within the benchmark (the `.0`/`.1` suffix in figures).
    pub idx: u32,
    /// The CUDA kernel's name in the original benchmark.
    pub kernel_name: &'static str,
    /// Target average thread-block execution time at full occupancy, µs
    /// (Table 2 "Average Drain Time").
    pub drain_us: f64,
    /// Target per-block context size, bytes (Table 2 "Context /TB").
    pub ctx_bytes: u32,
    /// Target resident blocks per SM (Table 2 "TBs /SM").
    pub tbs_per_sm: u32,
    /// Global-memory access structure of the kernel's program. The Table 2
    /// "Idempotent" column is *derived* from this by the `idem` analysis
    /// over the regions the builder emits, not asserted.
    pub access: AccessPattern,
    /// For non-idempotent kernels, the absolute duration of the
    /// non-idempotent tail at the end of a block, µs. Blocks are flushable
    /// until `drain_us - tail_us` into their execution.
    pub tail_us: f64,
    /// Grid size used in the multitasking experiments (sized so one launch
    /// lasts on the order of a millisecond at our simulation scale).
    pub grid: u32,
    /// Per-block execution-time jitter (±fraction). The paper notes LUD and
    /// SAD have high block-time variance, which degrades Chimera's cost
    /// estimates (§4.4); their specs carry larger jitter.
    pub jitter: f64,
    /// Provenance and reconstruction rationale for this kernel.
    pub description: &'static str,
}

impl KernelSpec {
    /// `"BS.0"`-style label used across the paper's figures.
    pub fn label(&self) -> String {
        format!("{}.{}", self.bench, self.idx)
    }

    /// Expected strict idempotence (Table 2 "Idempotent"), implied by the
    /// declared access pattern. The authoritative classification is the
    /// `idem::analyze` result over the built program; solver tests assert
    /// the two agree.
    pub fn is_idempotent(&self) -> bool {
        self.access.is_idempotent()
    }
}

/// The 27 kernels of Table 2.
///
/// `drain_us`, `ctx_bytes`, `tbs_per_sm` and the idempotence column are the
/// paper's values; `tail_us`, `grid` and `jitter` are reconstruction
/// parameters chosen as described in the crate docs and DESIGN.md.
pub fn table2() -> Vec<KernelSpec> {
    use AccessPattern::*;
    let k = |bench,
             idx,
             kernel_name,
             drain_us,
             ctx_kb: f64,
             tbs_per_sm,
             access,
             tail_us,
             grid,
             jitter,
             description| KernelSpec {
        bench,
        idx,
        kernel_name,
        drain_us,
        ctx_bytes: (ctx_kb * 1024.0) as u32,
        tbs_per_sm,
        access,
        tail_us,
        grid,
        jitter,
        description,
    };
    vec![
        // bench idx  name                      drain     ctx  tbs access       tail   grid  jitter
        k(
            "BS",
            0,
            "BlackScholesGPU",
            60.9,
            24.0,
            4,
            Streaming,
            0.0,
            3_000,
            0.10,
            "Nvidia SDK BlackScholes: embarrassingly parallel option pricing; reads inputs, writes fresh call/put arrays — strictly idempotent.",
        ),
        k(
            "BT",
            0,
            "findRangeK",
            3.5,
            46.0,
            2,
            AtomicTail,
            2.1,
            12_000,
            0.15,
            "Rodinia B+Tree range lookup: short blocks ending in result-buffer updates; large per-thread register state. The flush-killer of Figure 6.",
        ),
        k(
            "BT", 1, "findK", 2.8, 36.0, 3, AtomicTail, 1.8, 18_000, 0.15,
            "Rodinia B+Tree point lookup: like findRangeK with slightly shorter blocks.",
        ),
        k(
            "BP",
            0,
            "bpnn_layerforward",
            3.1,
            12.0,
            6,
            InPlaceTail,
            0.12,
            24_000,
            0.10,
            "Rodinia back-propagation forward pass: updates layer activations in place near the very end of each block.",
        ),
        k(
            "BP",
            1,
            "bpnn_adjust_weights",
            1.8,
            22.0,
            5,
            InPlaceTail,
            0.10,
            24_000,
            0.10,
            "Rodinia back-propagation weight adjustment: in-place weight update, tiny non-idempotent tail.",
        ),
        k(
            "CP", 0, "cenergy", 746.9, 7.0, 8, InPlaceTail, 2.0, 720, 0.08,
            "Parboil coulombic potential: very long compute-dense blocks accumulating into the potential grid at block end.",
        ),
        k(
            "FWT",
            0,
            "fwtBatch2Kernel",
            2.3,
            21.0,
            5,
            InPlaceTail,
            1.5,
            16_000,
            0.15,
            "Nvidia SDK fast Walsh transform, batch-2 stage: in-place butterflies make much of the short block non-idempotent — the other Figure 6 flush-killer.",
        ),
        k(
            "FWT",
            1,
            "fwtBatch1Kernel",
            7.2,
            28.0,
            3,
            InPlaceTail,
            4.3,
            8_000,
            0.15,
            "Nvidia SDK fast Walsh transform, batch-1 stage: in-place butterflies, mid-length blocks.",
        ),
        k(
            "FWT",
            2,
            "modulateKernel",
            321.8,
            18.0,
            6,
            InPlaceTail,
            2.0,
            1_200,
            0.08,
            "Nvidia SDK Walsh modulate: long streaming multiply, in-place at the tail.",
        ),
        k(
            "HW", 0, "kernel", 5.2, 67.0, 2, InPlaceTail, 0.30, 18_000, 0.12,
            "Rodinia heart-wall tracking: the largest context of the suite (67 kB/block); overwrites tracked positions at block end.",
        ),
        k(
            "HS",
            0,
            "calculate_temp",
            4.5,
            38.0,
            3,
            Streaming,
            0.0,
            30_000,
            0.10,
            "Rodinia HotSpot stencil: ping-pong buffers, so writes never overwrite reads — idempotent.",
        ),
        k(
            "KM",
            0,
            "invert_mapping",
            424.3,
            10.0,
            6,
            Streaming,
            0.0,
            900,
            0.08,
            "Rodinia k-means invert_mapping: long transpose-like copy into a fresh layout — idempotent.",
        ),
        k(
            "KM",
            1,
            "kmeansPoint",
            118.8,
            12.0,
            6,
            Streaming,
            0.0,
            1_800,
            0.08,
            "Rodinia k-means point assignment: writes fresh membership array — idempotent.",
        ),
        k(
            "LC",
            0,
            "GICOV_kernel",
            1162.0,
            17.0,
            7,
            Streaming,
            0.0,
            420,
            0.08,
            "Rodinia leukocyte GICOV: very long gradient-inverse blocks writing a fresh score matrix — idempotent.",
        ),
        k(
            "LC",
            1,
            "dilate_kernel",
            391.7,
            9.0,
            8,
            Streaming,
            0.0,
            720,
            0.08,
            "Rodinia leukocyte dilation: long morphological filter into a fresh buffer — idempotent.",
        ),
        k(
            "LC",
            2,
            "IMGVF_kernel",
            10_173.2,
            87.0,
            1,
            InPlaceTail,
            5.0,
            30,
            0.05,
            "Rodinia leukocyte IMGVF solver: the 10 ms monster block; iterative in-place vector-flow update.",
        ),
        k(
            "LUD",
            0,
            "lud_diagonal",
            17.4,
            4.0,
            8,
            InPlaceTail,
            0.5,
            1,
            0.35,
            "Rodinia LU decomposition, diagonal tile: a single block (size-bound!) factorising in place; high block-time variance.",
        ),
        k(
            "LUD",
            1,
            "lud_perimeter",
            26.2,
            5.0,
            8,
            InPlaceTail,
            0.5,
            46,
            0.35,
            "Rodinia LU decomposition, perimeter tiles: small shrinking grids, in-place updates; high variance.",
        ),
        k(
            "LUD",
            2,
            "lud_internal",
            3.5,
            16.0,
            6,
            InPlaceTail,
            0.3,
            529,
            0.35,
            "Rodinia LU decomposition, internal tiles: quadratic shrinking grids, in-place trailing update; high variance. The launch-churn engine of the 4.4 case study.",
        ),
        k(
            "MUM",
            0,
            "mummergpuKernel",
            10_212.8,
            18.0,
            6,
            Streaming,
            0.0,
            180,
            0.10,
            "Rodinia MUMmer suffix-tree matching: the longest blocks of the suite writing fresh match records — idempotent.",
        ),
        k(
            "MUM",
            1,
            "printKernel",
            76.4,
            24.0,
            5,
            Streaming,
            0.0,
            1_500,
            0.10,
            "Rodinia MUMmer print kernel: formats results into a fresh buffer — idempotent.",
        ),
        k(
            "NW",
            0,
            "needle_cuda_shared_1",
            18.2,
            8.0,
            8,
            InPlaceTail,
            0.5,
            8_000,
            0.12,
            "Rodinia Needleman-Wunsch, first diagonal sweep: in-place dynamic-programming matrix.",
        ),
        k(
            "NW",
            1,
            "needle_cuda_shared_2",
            18.7,
            8.0,
            8,
            InPlaceTail,
            0.5,
            8_000,
            0.12,
            "Rodinia Needleman-Wunsch, second diagonal sweep: in-place dynamic-programming matrix.",
        ),
        k(
            "SAD",
            0,
            "mb_sad_calc",
            42.3,
            7.0,
            8,
            Streaming,
            0.0,
            6_000,
            0.35,
            "Parboil sum-of-absolute-differences, macroblocks: fresh output writes, high variance (motion-dependent work) — idempotent.",
        ),
        k(
            "SAD",
            1,
            "larger_sad_calc_8",
            82.9,
            8.0,
            8,
            Streaming,
            0.0,
            4_000,
            0.35,
            "Parboil SAD 8x8 aggregation: fresh output writes, high variance — idempotent.",
        ),
        k(
            "SAD",
            2,
            "larger_sad_calc_16",
            19.7,
            2.0,
            8,
            Streaming,
            0.0,
            8_000,
            0.35,
            "Parboil SAD 16x16 aggregation: tiny context (2 kB), fresh writes — idempotent.",
        ),
        k(
            "ST",
            0,
            "block2D_hybrid_coarsen_x",
            122.3,
            11.0,
            8,
            Streaming,
            0.0,
            3_000,
            0.08,
            "Parboil 3D stencil, coarsened x: ping-pong buffered 7-point stencil — idempotent.",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_27_kernels_and_14_benchmarks() {
        let t = table2();
        assert_eq!(t.len(), 27);
        let mut benches: Vec<&str> = t.iter().map(|k| k.bench).collect();
        benches.dedup();
        assert_eq!(benches.len(), 14);
    }

    #[test]
    fn idempotence_split_matches_paper() {
        // "12 out of 27 kernels were found to be idempotent" (§2.3).
        let idem = table2().iter().filter(|k| k.is_idempotent()).count();
        assert_eq!(idem, 12);
    }

    #[test]
    fn access_pattern_mix_matches_paper_narrative() {
        // §2.3 attributes most non-idempotence to in-place updates, with the
        // B+Tree kernels ending in atomic result-buffer updates.
        let t = table2();
        let atomics = t
            .iter()
            .filter(|k| k.access == AccessPattern::AtomicTail)
            .count();
        let in_place = t
            .iter()
            .filter(|k| k.access == AccessPattern::InPlaceTail)
            .count();
        assert_eq!(atomics, 2);
        assert_eq!(in_place, 13);
    }

    #[test]
    fn non_idempotent_kernels_have_tails() {
        for k in table2() {
            if k.is_idempotent() {
                assert_eq!(k.tail_us, 0.0, "{}", k.label());
            } else {
                assert!(k.tail_us > 0.0, "{}", k.label());
                assert!(k.tail_us < k.drain_us, "{}", k.label());
            }
        }
    }

    #[test]
    fn labels_are_unique() {
        let t = table2();
        let mut labels: Vec<String> = t.iter().map(KernelSpec::label).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 27);
    }

    #[test]
    fn average_drain_time_tracks_paper_average() {
        // Figure 2: draining averages 830.4 us across kernels.
        let t = table2();
        let avg: f64 = t.iter().map(|k| k.drain_us).sum::<f64>() / t.len() as f64;
        assert!((avg - 830.4).abs() < 80.0, "avg drain {avg}");
    }

    #[test]
    fn descriptions_carry_provenance() {
        for k in table2() {
            assert!(!k.description.is_empty(), "{}", k.label());
            assert!(
                ["Nvidia SDK", "Rodinia", "Parboil"]
                    .iter()
                    .any(|src| k.description.starts_with(src)),
                "{}: description must name the source suite",
                k.label()
            );
        }
    }

    #[test]
    fn tbs_per_sm_within_architecture_limits() {
        for k in table2() {
            assert!((1..=8).contains(&k.tbs_per_sm), "{}", k.label());
        }
    }
}
