//! The assembled benchmark suite.

use crate::benchmark::Benchmark;
use crate::solve::build_kernel;
use crate::spec::{table2, KernelSpec};
use gpu_sim::GpuConfig;

/// The full benchmark suite, built for a GPU configuration.
///
/// `Suite::standard()` builds the paper's 14 benchmarks with relaxed-idem
/// instrumentation on the Fermi configuration; `Suite::strict()` builds the
/// uninstrumented variant used in §4.3's strict/relaxed comparison.
#[derive(Debug, Clone)]
pub struct Suite {
    cfg: GpuConfig,
    specs: Vec<KernelSpec>,
    benchmarks: Vec<Benchmark>,
    instrumented: bool,
}

/// Number of LU-decomposition outer iterations modelled for the LUD job.
///
/// The real benchmark factorises a 512×512 matrix in 32 tile iterations,
/// launching diagonal / perimeter / internal kernels with shrinking grids —
/// that launch churn is what generates the paper's "numerous preemption
/// requests" (§4.4). We model 24 iterations to keep one pass near 2.5 ms.
pub const LUD_ITERATIONS: u32 = 24;

/// Knobs for building a suite variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuiteOptions {
    /// Carry relaxed-idempotence instrumentation (protect stores).
    pub instrumented: bool,
    /// Scale factor on grid sizes (shrinks experiments; block *timing* is
    /// untouched so Table 2 characteristics still hold).
    pub grid_scale: f64,
    /// LUD outer iterations (launch-churn knob for §4.4).
    pub lud_iterations: u32,
}

impl Default for SuiteOptions {
    fn default() -> Self {
        SuiteOptions {
            instrumented: true,
            grid_scale: 1.0,
            lud_iterations: LUD_ITERATIONS,
        }
    }
}

impl Suite {
    /// Build the standard (instrumented, relaxed-idempotence) suite.
    pub fn standard() -> Self {
        Self::with_config(GpuConfig::fermi(), true)
    }

    /// Build the suite without protect-store instrumentation (strict
    /// idempotence condition, §4.3).
    pub fn strict() -> Self {
        Self::with_config(GpuConfig::fermi(), false)
    }

    /// Build for an arbitrary configuration.
    pub fn with_config(cfg: GpuConfig, instrumented: bool) -> Self {
        Self::with_options(
            cfg,
            SuiteOptions {
                instrumented,
                ..SuiteOptions::default()
            },
        )
    }

    /// Build with full control over the suite knobs.
    pub fn with_options(cfg: GpuConfig, opts: SuiteOptions) -> Self {
        let mut specs = table2();
        if opts.grid_scale != 1.0 {
            for s in &mut specs {
                if s.bench != "LUD" {
                    s.grid = ((f64::from(s.grid) * opts.grid_scale).round() as u32)
                        .max(s.tbs_per_sm * cfg.num_sms as u32 / 2)
                        .max(1);
                }
            }
        }
        let mut benchmarks = Vec::new();
        let mut order: Vec<&'static str> = Vec::new();
        for s in &specs {
            if !order.contains(&s.bench) {
                order.push(s.bench);
            }
        }
        for bench in order {
            if bench == "LUD" {
                benchmarks.push(build_lud(
                    &cfg,
                    &specs,
                    opts.instrumented,
                    opts.lud_iterations,
                ));
            } else {
                let launches = specs
                    .iter()
                    .filter(|s| s.bench == bench)
                    .map(|s| build_kernel(&cfg, s, opts.instrumented))
                    .collect();
                benchmarks.push(Benchmark::new(bench, launches));
            }
        }
        Suite {
            cfg,
            specs,
            benchmarks,
            instrumented: opts.instrumented,
        }
    }

    /// The GPU configuration the suite was built for.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Whether kernels carry relaxed-idempotence instrumentation.
    pub fn is_instrumented(&self) -> bool {
        self.instrumented
    }

    /// The Table 2 specs.
    pub fn specs(&self) -> &[KernelSpec] {
        &self.specs
    }

    /// All 14 benchmarks, in Table 2 order.
    pub fn benchmarks(&self) -> &[Benchmark] {
        &self.benchmarks
    }

    /// Look up a benchmark by label.
    pub fn benchmark(&self, name: &str) -> Option<&Benchmark> {
        self.benchmarks.iter().find(|b| b.name() == name)
    }

    /// Look up a benchmark by label, panicking with the list of valid
    /// labels when it is missing — for runners and tests where the name is
    /// a hard-coded expectation, not user input.
    ///
    /// # Panics
    /// If `name` is not in the suite.
    pub fn require(&self, name: &str) -> &Benchmark {
        self.benchmark(name).unwrap_or_else(|| {
            panic!(
                "benchmark {name:?} is not in the suite; available: {:?}",
                self.names()
            )
        })
    }

    /// Benchmark labels in suite order.
    pub fn names(&self) -> Vec<&str> {
        self.benchmarks.iter().map(Benchmark::name).collect()
    }
}

/// LUD launches kernels with iteration-dependent grids (see
/// [`LUD_ITERATIONS`]).
fn build_lud(cfg: &GpuConfig, specs: &[KernelSpec], instrumented: bool, n: u32) -> Benchmark {
    let diag = specs
        .iter()
        .find(|s| s.label() == "LUD.0")
        .expect("LUD.0 in table2");
    let perim = specs
        .iter()
        .find(|s| s.label() == "LUD.1")
        .expect("LUD.1 in table2");
    let internal = specs
        .iter()
        .find(|s| s.label() == "LUD.2")
        .expect("LUD.2 in table2");
    let diag_k = build_kernel(cfg, diag, instrumented);
    let perim_k = build_kernel(cfg, perim, instrumented);
    let internal_k = build_kernel(cfg, internal, instrumented);
    let mut launches = Vec::new();
    for it in 0..n {
        let rem = n - it; // remaining tile rows
        launches.push(diag_k.with_grid_blocks(1).with_name(format!("LUD.0#{it}")));
        if rem > 1 {
            launches.push(
                perim_k
                    .with_grid_blocks(2 * (rem - 1))
                    .with_name(format!("LUD.1#{it}")),
            );
            launches.push(
                internal_k
                    .with_grid_blocks((rem - 1) * (rem - 1))
                    .with_name(format!("LUD.2#{it}")),
            );
        }
    }
    Benchmark::new("LUD", launches)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_suite_builds_14_benchmarks() {
        let s = Suite::standard();
        assert_eq!(s.benchmarks().len(), 14);
        assert_eq!(
            s.names(),
            vec![
                "BS", "BT", "BP", "CP", "FWT", "HW", "HS", "KM", "LC", "LUD", "MUM", "NW", "SAD",
                "ST"
            ]
        );
        assert!(s.is_instrumented());
    }

    #[test]
    fn lud_has_many_launches_with_shrinking_grids() {
        let s = Suite::standard();
        let lud = s.require("LUD");
        assert!(
            lud.launches().len() > 60,
            "{} launches",
            lud.launches().len()
        );
        // Grids shrink across iterations.
        let internals: Vec<u32> = lud
            .launches()
            .iter()
            .filter(|k| k.name().starts_with("LUD.2"))
            .map(|k| k.grid_blocks())
            .collect();
        assert!(internals.windows(2).all(|w| w[0] > w[1]));
        assert_eq!(internals[0], (LUD_ITERATIONS - 1) * (LUD_ITERATIONS - 1));
    }

    #[test]
    fn strict_suite_lacks_protect_stores() {
        let strict = Suite::strict();
        let std = Suite::standard();
        let count_protects = |s: &Suite| {
            s.benchmarks()
                .iter()
                .flat_map(|b| b.launches())
                .flat_map(|k| k.program().segments())
                .filter(|seg| matches!(seg, gpu_sim::Segment::ProtectStore))
                .count()
        };
        assert_eq!(count_protects(&strict), 0);
        assert!(count_protects(&std) > 0);
    }

    #[test]
    fn benchmark_lookup() {
        let s = Suite::standard();
        assert!(s.benchmark("MUM").is_some());
        assert!(s.benchmark("NOPE").is_none());
    }

    #[test]
    fn multi_kernel_benchmarks_have_multiple_launches() {
        let s = Suite::standard();
        assert_eq!(s.require("BS").launches().len(), 1);
        assert_eq!(s.require("BT").launches().len(), 2);
        assert_eq!(s.require("FWT").launches().len(), 3);
        assert_eq!(s.require("SAD").launches().len(), 3);
    }
}
