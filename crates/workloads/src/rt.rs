//! The synthetic periodic real-time task of §4.1.

use gpu_sim::GpuConfig;

/// A periodic, hard-deadline GPU task.
///
/// The paper's synthetic benchmark launches every 1 ms, requests half of the
/// SMs, executes for 200 µs, and is killed if its deadline (execution time
/// plus the required preemption latency) is missed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtTask {
    /// Launch period, µs.
    pub period_us: f64,
    /// Execution time once running, µs.
    pub exec_us: f64,
    /// Number of SMs the task needs.
    pub sms_needed: usize,
}

impl RtTask {
    /// The paper's configuration: 1 ms period, 200 µs execution, half the SMs.
    pub fn paper_default(cfg: &GpuConfig) -> Self {
        RtTask {
            period_us: 1000.0,
            exec_us: 200.0,
            sms_needed: cfg.num_sms / 2,
        }
    }

    /// Launch period in cycles.
    pub fn period_cycles(&self, cfg: &GpuConfig) -> u64 {
        cfg.us_to_cycles(self.period_us)
    }

    /// Execution time in cycles.
    pub fn exec_cycles(&self, cfg: &GpuConfig) -> u64 {
        cfg.us_to_cycles(self.exec_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_4_1() {
        let cfg = GpuConfig::fermi();
        let t = RtTask::paper_default(&cfg);
        assert_eq!(t.period_us, 1000.0);
        assert_eq!(t.exec_us, 200.0);
        assert_eq!(t.sms_needed, 15);
        assert_eq!(t.period_cycles(&cfg), 1_400_000);
        assert_eq!(t.exec_cycles(&cfg), 280_000);
    }
}
