//! Benchmarks: ordered sequences of kernel launches.

use gpu_sim::KernelDesc;

/// A benchmark program: kernels launched back-to-back (each launch waits for
/// the previous one), restarted from the beginning when it finishes — the
/// paper's multiprogrammed-workload methodology (§4.4).
#[derive(Debug, Clone)]
pub struct Benchmark {
    name: String,
    launches: Vec<KernelDesc>,
}

impl Benchmark {
    /// Create a benchmark from its launch sequence.
    ///
    /// # Panics
    ///
    /// Panics if `launches` is empty.
    pub fn new(name: impl Into<String>, launches: Vec<KernelDesc>) -> Self {
        assert!(
            !launches.is_empty(),
            "benchmark must launch at least one kernel"
        );
        Benchmark {
            name: name.into(),
            launches,
        }
    }

    /// Benchmark label (e.g. `"BS"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The launch sequence.
    pub fn launches(&self) -> &[KernelDesc] {
        &self.launches
    }

    /// Total warp instructions in one pass over the launch sequence.
    pub fn insts_per_pass(&self) -> u64 {
        self.launches
            .iter()
            .map(|k| k.insts_per_block() * u64::from(k.grid_blocks()))
            .sum()
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({} launches)", self.name, self.launches.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{KernelDesc, Program, Segment};

    fn k(name: &str, grid: u32) -> KernelDesc {
        KernelDesc::builder(name)
            .grid_blocks(grid)
            .program(Program::new(vec![Segment::compute(10)]))
            .build()
            .unwrap()
    }

    #[test]
    fn pass_instruction_count() {
        let b = Benchmark::new("X", vec![k("a", 2), k("b", 3)]);
        // 128 threads = 4 warps; 10 insts/warp.
        assert_eq!(b.insts_per_pass(), (2 + 3) * 4 * 10);
        assert_eq!(b.name(), "X");
        assert_eq!(b.launches().len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one kernel")]
    fn empty_benchmark_rejected() {
        let _ = Benchmark::new("X", vec![]);
    }
}
