//! # workloads — the benchmark suite of the Chimera paper, in synthetic form
//!
//! The paper evaluates 14 GPGPU benchmarks (27 kernels) from the Nvidia SDK,
//! Rodinia and Parboil (Table 2). Real CUDA binaries cannot run on the
//! `gpu-sim` substrate, so this crate reconstructs each kernel as a synthetic
//! segmented program whose **measured characteristics are calibrated to the
//! paper's Table 2**:
//!
//! * per-block drain time (average thread-block execution time),
//! * per-block context size (registers + shared memory), split such that the
//!   occupancy calculator yields exactly the paper's blocks/SM,
//! * context-switch time (emerges from context size × bandwidth share),
//! * idempotence class, **derived** rather than asserted: each spec declares
//!   an access pattern ([`spec::AccessPattern`]), the builder emits explicit
//!   addressed regions, and the `idem` dataflow classifies the result. The
//!   non-streaming kernels carry their atomic / in-place-store operations in
//!   an *absolute-sized tail* at the end of the block (the paper's
//!   observation that idempotence-breaking operations cluster at the end of
//!   GPU kernels).
//!
//! Because every figure in the paper's evaluation is a function of those
//! characteristics, matching them reproduces the figures' shapes.
//!
//! ```
//! use workloads::{table2, Suite};
//!
//! let suite = Suite::standard();
//! assert_eq!(table2().len(), 27);
//! assert_eq!(suite.benchmarks().len(), 14);
//! let bs = suite.benchmark("BS").expect("BlackScholes exists");
//! assert_eq!(bs.launches().len(), 1);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod benchmark;
mod measure;
mod rt;
mod serve;
/// Parameter solver turning Table 2 targets into concrete kernels.
pub mod solve;
/// Table 2 kernel specifications.
pub mod spec;
mod suite;
mod synthetic;

pub use benchmark::Benchmark;
pub use measure::{measure_drain_time_us, measure_solo_rate};
pub use rt::RtTask;
pub use serve::{RequestClass, ServeWorkload, TenantSpec};
pub use solve::{build_kernel, build_program, solve_insts_per_warp, solve_resources, Resources};
pub use spec::{table2, AccessPattern, KernelSpec};
pub use suite::{Suite, SuiteOptions, LUD_ITERATIONS};
pub use synthetic::SyntheticKernel;
