//! Parameter solver: turn Table 2 targets into concrete kernel descriptors.
//!
//! Three sub-problems:
//!
//! 1. **Resources** — split the target context size between registers and
//!    shared memory such that the occupancy calculator yields exactly the
//!    target blocks/SM (shared memory is made the binding resource when the
//!    target is below the architectural block cap).
//! 2. **Instructions** — choose the per-warp instruction count so a block at
//!    full occupancy runs for the target drain time under the SM issue model
//!    (`drain_cycles ≈ insts × warps × blocks/SM × issue_interval`).
//! 3. **Program shape** — lay the instructions out as load / compute /
//!    barrier / store segments over explicit access regions, with
//!    non-streaming kernels ending in an absolute-duration tail that begins
//!    with their idempotence breaker (an atomic, or an in-place store into
//!    the input window the block already read).

use crate::spec::{AccessPattern, KernelSpec};
use gpu_sim::{AccessRegion, GpuConfig, KernelDesc, Program, Segment};

/// Threads per block used by all synthetic kernels (4 warps).
pub const THREADS_PER_BLOCK: u32 = 128;

/// Buffer id of the per-block input window every kernel reads.
pub const INPUT_BUFFER: u32 = 0;
/// Buffer id of the per-block output window every kernel writes.
pub const OUTPUT_BUFFER: u32 = 1;
/// Buffer id of the block-shared counters atomic tails update.
pub const COUNTER_BUFFER: u32 = 2;

/// Solved per-block resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resources {
    /// Threads per block.
    pub threads: u32,
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Shared memory per block, bytes.
    pub shared_mem: u32,
}

impl Resources {
    /// The context size these resources produce, bytes.
    pub fn context_bytes(&self) -> u32 {
        self.threads * self.regs_per_thread * 4 + self.shared_mem
    }
}

/// Split `ctx_bytes` between registers and shared memory so that exactly
/// `tbs_per_sm` blocks fit on one Fermi SM.
///
/// # Panics
///
/// Panics if `tbs_per_sm` is outside `1..=8`.
pub fn solve_resources(ctx_bytes: u32, tbs_per_sm: u32) -> Resources {
    assert!((1..=8).contains(&tbs_per_sm), "tbs_per_sm out of range");
    let cfg = GpuConfig::fermi();
    let threads = THREADS_PER_BLOCK;
    if tbs_per_sm >= cfg.max_blocks_per_sm {
        // The architectural cap binds; keep every resource below 1/8 of SM.
        let max_regs = cfg.registers_per_sm / (threads * cfg.max_blocks_per_sm); // 32
        let max_smem = cfg.shared_mem_per_sm / cfg.max_blocks_per_sm; // 6144
        let regs =
            ((ctx_bytes as f64 * 0.6 / (threads as f64 * 4.0)).round() as u32).clamp(4, max_regs);
        let shared_mem = ctx_bytes.saturating_sub(regs * threads * 4).min(max_smem);
        Resources {
            threads,
            regs_per_thread: regs,
            shared_mem,
        }
    } else {
        // Make shared memory the binding limit.
        let shared_mem = cfg.shared_mem_per_sm / tbs_per_sm;
        let rest = ctx_bytes.saturating_sub(shared_mem);
        let regs = ((rest as f64 / (threads as f64 * 4.0)).round() as u32).max(4);
        Resources {
            threads,
            regs_per_thread: regs,
            shared_mem,
        }
    }
}

/// Per-warp instruction count so a block at occupancy `tbs_per_sm` executes
/// for `drain_us` microseconds under the issue model.
pub fn solve_insts_per_warp(cfg: &GpuConfig, drain_us: f64, tbs_per_sm: u32) -> u32 {
    let warps = THREADS_PER_BLOCK / 32;
    let cycles = drain_us * f64::from(cfg.clock_mhz) / 1000.0 * 1000.0;
    let denom = (cfg.issue_interval() * u64::from(warps) * u64::from(tbs_per_sm)) as f64;
    (cycles / denom).round().max(8.0) as u32
}

/// Convert an absolute tail duration to per-warp instructions (no floor).
fn tail_insts(cfg: &GpuConfig, tail_us: f64, tbs_per_sm: u32) -> u32 {
    let warps = THREADS_PER_BLOCK / 32;
    let cycles = tail_us * f64::from(cfg.clock_mhz) / 1000.0 * 1000.0;
    let denom = (cfg.issue_interval() * u64::from(warps) * u64::from(tbs_per_sm)) as f64;
    (cycles / denom).round() as u32
}

/// Build the segmented warp program for a spec.
///
/// Layout: a small load of the block's input window, compute split by a
/// barrier, a store to a distinct output window — and for non-streaming
/// kernels a tail whose first memory operation is the idempotence breaker:
/// an in-place store back into the *input* window ([`AccessPattern::InPlaceTail`])
/// or an atomic on block-shared counters ([`AccessPattern::AtomicTail`]).
///
/// The builder only states *where* each segment reads and writes; whether a
/// store clobbers earlier reads — and therefore whether the kernel lands in
/// Table 2's idempotent or non-idempotent column — is derived downstream by
/// `idem::analyze` over these regions.
pub fn build_program(cfg: &GpuConfig, spec: &KernelSpec) -> Program {
    // A kernel whose grid is smaller than its occupancy limit runs below
    // full residency (LUD's 1-block diagonal kernel); block time scales with
    // the *effective* number of co-resident blocks.
    let eff_tbs = spec.tbs_per_sm.min(spec.grid.max(1));
    let total = solve_insts_per_warp(cfg, spec.drain_us, eff_tbs);
    let tail = if spec.is_idempotent() {
        0
    } else {
        tail_insts(cfg, spec.tail_us, eff_tbs).clamp(3, total * 3 / 4)
    };
    let body = total - tail;
    let l = (body * 3 / 100).max(1);
    let s = (body * 3 / 100).max(1);
    let c = body.saturating_sub(l + s).max(2);
    let c1 = (c * 55 / 100).max(1);
    let c2 = (c - c1).max(1);
    let input = AccessRegion::per_block_window(INPUT_BUFFER, 0, l);
    let mut segs = vec![
        Segment::load_region(l, input),
        Segment::compute(c1),
        Segment::Barrier,
        Segment::compute(c2),
        Segment::store_region(s, AccessRegion::per_block_window(OUTPUT_BUFFER, 0, s)),
    ];
    if tail > 0 {
        let op = 2u32.min(tail);
        let trailer = 2u32.min(tail.saturating_sub(op));
        let tc = tail.saturating_sub(op + trailer);
        match spec.access {
            AccessPattern::AtomicTail => segs.push(Segment::atomic_region(
                op,
                AccessRegion::shared_by_blocks(COUNTER_BUFFER, 0, op),
            )),
            // A plain store whose region aliases the input window read at
            // the top of the block; the dataflow derives the overwrite.
            AccessPattern::InPlaceTail => segs.push(Segment::store_region(
                op,
                AccessRegion::per_block_window(INPUT_BUFFER, 0, op),
            )),
            AccessPattern::Streaming => unreachable!("streaming kernels have no tail"),
        }
        if tc > 0 {
            segs.push(Segment::compute(tc));
        }
        if trailer > 0 {
            // Trailing store lands past the main output window: no aliasing.
            segs.push(Segment::store_region(
                trailer,
                AccessRegion::per_block_window(
                    OUTPUT_BUFFER,
                    u64::from(s) * AccessRegion::BYTES_PER_INST,
                    trailer,
                ),
            ));
        }
    }
    Program::new(segs)
}

/// Build the kernel descriptor for a spec.
///
/// When `instrumented` is `true` the program carries the protect store that
/// announces the relaxed idempotence point (the normal configuration; pass
/// `false` to model the *strict* condition of §4.3, under which flushing must
/// treat every block of a non-idempotent kernel as unflushable from cycle 0).
pub fn build_kernel(cfg: &GpuConfig, spec: &KernelSpec, instrumented: bool) -> KernelDesc {
    let res = solve_resources(spec.ctx_bytes, spec.tbs_per_sm);
    let program = build_program(cfg, spec);
    let program = if instrumented {
        idem::instrument(&program)
    } else {
        program
    };
    KernelDesc::builder(spec.label())
        .grid_blocks(spec.grid)
        .threads_per_block(res.threads)
        .regs_per_thread(res.regs_per_thread)
        .shared_mem_per_block(res.shared_mem)
        .program(program)
        .jitter_pct(spec.jitter)
        .build()
        .expect("table2 specs are valid kernels")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::table2;
    use gpu_sim::{occupancy, GpuConfig};

    #[test]
    fn resources_hit_target_occupancy_for_all_specs() {
        let cfg = GpuConfig::fermi();
        for spec in table2() {
            let k = build_kernel(&cfg, &spec, true);
            let occ = occupancy(&cfg, &k);
            assert_eq!(
                occ.blocks_per_sm,
                spec.tbs_per_sm,
                "{}: limited by {}",
                spec.label(),
                occ.limiting
            );
        }
    }

    #[test]
    fn context_size_within_tolerance_of_table2() {
        for spec in table2() {
            let res = solve_resources(spec.ctx_bytes, spec.tbs_per_sm);
            let got = res.context_bytes() as f64;
            let want = spec.ctx_bytes as f64;
            assert!(
                (got - want).abs() / want < 0.15,
                "{}: context {got} vs target {want}",
                spec.label()
            );
        }
    }

    #[test]
    fn switch_time_tracks_paper_column() {
        // Table 2's "Switching Time" column is ctx/TB x TBs/SM / per-SM
        // bandwidth; spot-check the BlackScholes row (paper: 17.0 us).
        let cfg = GpuConfig::fermi();
        let spec = table2().into_iter().find(|s| s.label() == "BS.0").unwrap();
        let k = build_kernel(&cfg, &spec, true);
        let bytes = k.block_context_bytes() * u64::from(spec.tbs_per_sm);
        let us = cfg.cycles_to_us(cfg.sm_transfer_cycles(bytes));
        assert!((us - 17.0).abs() < 2.0, "switch time {us}");
    }

    #[test]
    fn instruction_solve_round_trips_drain_time() {
        let cfg = GpuConfig::fermi();
        for spec in table2() {
            let i = solve_insts_per_warp(&cfg, spec.drain_us, spec.tbs_per_sm);
            let warps = u64::from(THREADS_PER_BLOCK / 32);
            let cycles = u64::from(i) * warps * u64::from(spec.tbs_per_sm) * cfg.issue_interval();
            let us = cfg.cycles_to_us(cycles);
            assert!(
                (us - spec.drain_us).abs() / spec.drain_us < 0.05,
                "{}: {us} vs {}",
                spec.label(),
                spec.drain_us
            );
        }
    }

    #[test]
    fn program_instruction_budget_matches_solve() {
        let cfg = GpuConfig::fermi();
        for spec in table2() {
            let eff = spec.tbs_per_sm.min(spec.grid.max(1));
            let target = solve_insts_per_warp(&cfg, spec.drain_us, eff) as f64;
            let p = build_program(&cfg, &spec);
            let got = p.insts_per_warp() as f64;
            assert!(
                (got - target).abs() / target < 0.02,
                "{}: {got} insts vs {target}",
                spec.label()
            );
        }
    }

    #[test]
    fn idempotence_class_matches_spec() {
        let cfg = GpuConfig::fermi();
        for spec in table2() {
            let p = build_program(&cfg, &spec);
            assert_eq!(p.is_idempotent(), spec.is_idempotent(), "{}", spec.label());
        }
    }

    #[test]
    fn derived_idempotence_reproduces_table2_column() {
        // The spec never asserts idempotence; the dataflow derives it from
        // the regions the builder emits. 12 of 27 kernels must come out
        // strictly idempotent (§2.3).
        let cfg = GpuConfig::fermi();
        let mut idem_count = 0;
        for spec in table2() {
            let report = idem::analyze(&build_program(&cfg, &spec));
            assert_eq!(
                report.strict_idempotent,
                spec.is_idempotent(),
                "{}",
                spec.label()
            );
            if report.strict_idempotent {
                idem_count += 1;
            }
        }
        assert_eq!(idem_count, 12);
    }

    #[test]
    fn in_place_tails_clobber_the_input_load() {
        use crate::spec::AccessPattern;
        let cfg = GpuConfig::fermi();
        for spec in table2()
            .iter()
            .filter(|s| s.access == AccessPattern::InPlaceTail)
        {
            let report = idem::analyze(&build_program(&cfg, spec));
            let site = report.sites.first().expect("tail must break idempotence");
            match site.reason {
                idem::NonIdemReason::GlobalOverwrite {
                    clobbered_read,
                    buffer,
                } => {
                    assert_eq!(
                        clobbered_read,
                        0,
                        "{}: clobbers the input load",
                        spec.label()
                    );
                    assert_eq!(buffer, INPUT_BUFFER, "{}", spec.label());
                }
                ref other => panic!("{}: expected overwrite site, got {other:?}", spec.label()),
            }
        }
    }

    #[test]
    fn instrumented_kernels_carry_protect_store() {
        let cfg = GpuConfig::fermi();
        for spec in table2().iter().filter(|s| !s.is_idempotent()) {
            let k = build_kernel(&cfg, spec, true);
            let protects = k
                .program()
                .segments()
                .iter()
                .filter(|s| matches!(s, Segment::ProtectStore))
                .count();
            assert_eq!(protects, 1, "{}", spec.label());
        }
    }

    #[test]
    fn non_idem_tail_fraction_matches_spec() {
        let cfg = GpuConfig::fermi();
        for spec in table2().iter().filter(|s| !s.is_idempotent()) {
            let p = build_program(&cfg, spec);
            let frac = p.idempotent_fraction();
            let want = 1.0 - spec.tail_us / spec.drain_us;
            assert!(
                (frac - want).abs() < 0.08,
                "{}: idem fraction {frac} vs {want}",
                spec.label()
            );
        }
    }

    #[test]
    #[should_panic(expected = "tbs_per_sm out of range")]
    fn solve_resources_rejects_zero_blocks() {
        solve_resources(1024, 0);
    }
}
