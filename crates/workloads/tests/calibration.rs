//! Full-suite calibration: every Table 2 kernel's *measured* drain time and
//! switch time must sit near the paper's values. This is the contract the
//! figure reproductions rest on.

use gpu_sim::GpuConfig;
use workloads::{build_kernel, measure_drain_time_us, table2};

#[test]
fn all_27_kernels_calibrate_against_table2() {
    let cfg = GpuConfig::fermi();
    let mut worst: (String, f64) = (String::new(), 0.0);
    for spec in table2() {
        let k = build_kernel(&cfg, &spec, true);
        let samples = if spec.drain_us > 1000.0 { 6 } else { 16 };
        let measured = measure_drain_time_us(&cfg, &k, samples);
        let rel = (measured - spec.drain_us).abs() / spec.drain_us;
        if rel > worst.1 {
            worst = (spec.label(), rel);
        }
        assert!(
            rel < 0.30,
            "{}: drain {measured:.1} us vs Table 2 {:.1} us ({:.0}% off)",
            spec.label(),
            spec.drain_us,
            rel * 100.0
        );
    }
    // The suite as a whole should be much tighter than the per-kernel bound.
    eprintln!(
        "worst calibration error: {} at {:.1}%",
        worst.0,
        worst.1 * 100.0
    );
}

#[test]
fn switch_times_span_the_papers_range() {
    // Table 2's switching times run from 2.8 us (SAD.2) to 23.4 us (HW.0).
    let cfg = GpuConfig::fermi();
    let mut times: Vec<(String, f64)> = table2()
        .iter()
        .map(|spec| {
            let k = build_kernel(&cfg, spec, true);
            let bytes = k.block_context_bytes() * u64::from(spec.tbs_per_sm);
            (
                spec.label(),
                cfg.cycles_to_us(cfg.sm_transfer_cycles(bytes)),
            )
        })
        .collect();
    times.sort_by(|a, b| a.1.total_cmp(&b.1));
    let (min_l, min_t) = &times[0];
    let (max_l, max_t) = times.last().unwrap();
    assert_eq!(
        min_l, "SAD.2",
        "cheapest switch is SAD.2, got {min_l} at {min_t:.1}"
    );
    assert!((min_t - 2.8).abs() < 0.5, "{min_t}");
    assert_eq!(
        max_l, "HW.0",
        "dearest switch is HW.0, got {max_l} at {max_t:.1}"
    );
    assert!((max_t - 23.4).abs() < 1.0, "{max_t}");
    // The average drives Figure 2's 14.5 us bar.
    let avg: f64 = times.iter().map(|(_, t)| t).sum::<f64>() / times.len() as f64;
    assert!((avg - 14.5).abs() < 1.0, "average switch time {avg:.1}");
}

#[test]
fn benchmark_pass_lengths_are_simulation_friendly() {
    // One pass of every benchmark must stay within a few ms of work so the
    // periodic experiments see several passes per horizon.
    let suite = workloads::Suite::standard();
    for b in suite.benchmarks() {
        let insts = b.insts_per_pass();
        // 30 SMs x 0.25 inst/cycle = 7.5 inst/cycle peak.
        let ms = insts as f64 / 7.5 / 1.4e6;
        assert!(
            (0.05..20.0).contains(&ms),
            "{}: one pass is {ms:.2} ms of work",
            b.name()
        );
    }
}
