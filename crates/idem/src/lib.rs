//! # idem — idempotence dataflow analysis and protect-store instrumentation
//!
//! The software side of Chimera's SM flushing (§3.4 of the paper). A GPU
//! kernel is *idempotent* (strict condition, §2.3) if it contains no atomic
//! operations and never overwrites a global location it has read; such a
//! kernel can be re-executed from scratch at any point without changing the
//! result.
//!
//! Chimera *relaxes* the condition per thread block and per point in time: a
//! block is idempotent **at a given time** if it has not yet executed an
//! atomic or a global overwrite. Because those operations cluster at the end
//! of GPU kernels, a block of a non-idempotent kernel is still flushable for
//! most of its execution.
//!
//! The relaxed condition is detected in software: the compiler inserts a
//! *protect store* — a store to a predefined non-cacheable address — in front
//! of every atomic / overwrite operation. The (in-order) SM executes the store
//! before the dangerous operation, so the scheduler always learns that the
//! block left its idempotent region *before* it actually does.
//!
//! ## The analysis
//!
//! [`analyze`] is a forward dataflow pass over the segment stream of a
//! [`Program`]. The abstract state is the set of [`AccessRegion`]s the block
//! has read so far (per-buffer interval sets). Atomics always break
//! idempotence; a store breaks it exactly when it is a fused
//! read-modify-write or its region may alias the accumulated read set
//! ([`AccessRegion::may_overlap`]). Each breaking site carries *provenance* —
//! which read it clobbers — and the report locates the precise
//! non-idempotence point in instruction counts. Nothing is declared by the
//! workload author: the classification driving Table 2 and the flush
//! eligibility in the runners is derived from access structure. The dynamic
//! counterpart — per-block footprints checked at every flush — is
//! `gpu_sim::sanitizer`; `ANALYSIS.md` in the repository root describes the
//! lattice and the oracle semantics.
//!
//! Historical note: the IR used to carry a hand-annotated `overwrite: bool`
//! on store segments that this crate merely echoed. That flag is gone; the
//! deprecated constructors `Segment::overwrite`/`store`/`load`/`atomic` now
//! lower to fixed single-buffer regions that the dataflow classifies
//! identically.
//!
//! ```
//! use gpu_sim::{AccessRegion, KernelDesc, Program, Segment};
//! use idem::{analyze, instrument_kernel, NonIdemReason};
//!
//! // In-place update: the tail store writes the window the block read.
//! let window = AccessRegion::per_block_window(0, 0, 32);
//! let k = KernelDesc::builder("scatter")
//!     .grid_blocks(4)
//!     .program(Program::new(vec![
//!         Segment::load_region(32, window),
//!         Segment::compute(400),
//!         Segment::store_region(32, window), // derived: overwrite
//!     ]))
//!     .build()?;
//! let report = analyze(k.program());
//! assert!(!report.strict_idempotent);
//! let site = report.first_site().unwrap();
//! assert_eq!(site.seg_idx, 2);
//! assert_eq!(
//!     site.reason,
//!     NonIdemReason::GlobalOverwrite { clobbered_read: 0, buffer: 0 }
//! );
//! let instrumented = instrument_kernel(&k);
//! assert!(matches!(
//!     instrumented.program().segments()[2],
//!     Segment::ProtectStore
//! ));
//! # Ok::<(), gpu_sim::KernelError>(())
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

use gpu_sim::{AccessRegion, KernelDesc, Program, Segment};
use std::fmt;

/// Why a segment breaks idempotence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NonIdemReason {
    /// An atomic read-modify-write.
    Atomic,
    /// A store that overwrites a global location read by the block.
    GlobalOverwrite {
        /// Segment index of the earliest read this store clobbers. Equal to
        /// the site's own index for fused read-modify-write stores (the
        /// store clobbers its own input).
        clobbered_read: usize,
        /// Buffer on which the clobber occurs.
        buffer: u32,
    },
}

impl fmt::Display for NonIdemReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NonIdemReason::Atomic => f.write_str("atomic operation"),
            NonIdemReason::GlobalOverwrite { .. } => f.write_str("global overwrite"),
        }
    }
}

/// One idempotence-breaking site in a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonIdemSite {
    /// Segment index in the program.
    pub seg_idx: usize,
    /// Why it breaks idempotence, with provenance for overwrites.
    pub reason: NonIdemReason,
}

impl fmt::Display for NonIdemSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.reason {
            NonIdemReason::Atomic => write!(f, "seg {}: atomic", self.seg_idx),
            NonIdemReason::GlobalOverwrite {
                clobbered_read,
                buffer,
            } if clobbered_read == self.seg_idx => {
                write!(
                    f,
                    "seg {}: in-place read-modify-write on buffer {}",
                    self.seg_idx, buffer
                )
            }
            NonIdemReason::GlobalOverwrite {
                clobbered_read,
                buffer,
            } => write!(
                f,
                "seg {}: overwrites read of seg {} on buffer {}",
                self.seg_idx, clobbered_read, buffer
            ),
        }
    }
}

/// The result of analysing a program (see [`analyze`]).
#[derive(Debug, Clone, PartialEq)]
pub struct IdemReport {
    /// Whether the whole kernel satisfies the strict condition.
    pub strict_idempotent: bool,
    /// Every idempotence-breaking segment, in program order, with
    /// provenance.
    pub sites: Vec<NonIdemSite>,
    /// Fraction of per-warp instructions executed before the first breaking
    /// segment (1.0 for strictly idempotent programs). This is how long the
    /// *relaxed* condition keeps a block flushable.
    pub idempotent_fraction: f64,
    /// Per-warp instructions before the first breaking segment (the precise
    /// non-idempotence point; equals `total_insts` when strict).
    pub insts_before_first_site: u64,
    /// Total per-warp instructions in the program.
    pub total_insts: u64,
}

/// Deprecated name of [`IdemReport`], kept for source compatibility.
pub type IdemAnalysis = IdemReport;

impl IdemReport {
    /// The first idempotence-breaking segment, if any.
    pub fn first_site(&self) -> Option<NonIdemSite> {
        self.sites.first().copied()
    }
}

/// A read accumulated by the dataflow, with its origin for provenance.
#[derive(Debug, Clone, Copy)]
struct ReadRec {
    seg_idx: usize,
    region: AccessRegion,
}

/// Analyse a program for the strict and relaxed idempotence conditions.
///
/// A forward dataflow pass: walk the segment stream accumulating the regions
/// read so far (loads, plus the implicit reads of fused read-modify-write
/// stores and atomics). An atomic is always a breaking site; a store is one
/// exactly when it is a read-modify-write or its region may alias an
/// accumulated read — the earliest such read is reported as the site's
/// provenance. The paper notes the front end's pointer analysis is precise
/// for the restricted pointer use in GPU kernels, which is what the
/// region-level [`AccessRegion::may_overlap`] models (conservative only
/// across differing block strides).
///
/// The per-segment verdict always agrees with the mask `gpu_sim` precomputes
/// in [`Program::new`] (property-tested); this pass additionally carries
/// provenance and the instruction-count location of the idempotence point.
pub fn analyze(program: &Program) -> IdemReport {
    let mut sites = Vec::new();
    let mut reads: Vec<ReadRec> = Vec::new();
    let mut insts: u64 = 0;
    let mut insts_before_first_site: Option<u64> = None;
    for (i, seg) in program.segments().iter().enumerate() {
        let mut breaking = false;
        match *seg {
            Segment::Atomic { .. } => {
                sites.push(NonIdemSite {
                    seg_idx: i,
                    reason: NonIdemReason::Atomic,
                });
                breaking = true;
            }
            Segment::GlobalLoad { region, .. } => {
                reads.push(ReadRec { seg_idx: i, region });
            }
            Segment::GlobalStore { region, rmw, .. } => {
                let hit = reads.iter().find(|r| r.region.may_overlap(&region));
                if rmw || hit.is_some() {
                    sites.push(NonIdemSite {
                        seg_idx: i,
                        reason: NonIdemReason::GlobalOverwrite {
                            clobbered_read: hit.map_or(i, |r| r.seg_idx),
                            buffer: region.buffer,
                        },
                    });
                    breaking = true;
                }
                if rmw {
                    // The fused read is visible to later stores.
                    reads.push(ReadRec { seg_idx: i, region });
                }
            }
            _ => {}
        }
        if breaking && insts_before_first_site.is_none() {
            insts_before_first_site = Some(insts);
        }
        insts += u64::from(seg.insts());
    }
    let total = insts;
    let before = insts_before_first_site.unwrap_or(total);
    IdemReport {
        strict_idempotent: sites.is_empty(),
        idempotent_fraction: if total == 0 {
            1.0
        } else {
            before as f64 / total as f64
        },
        insts_before_first_site: before,
        total_insts: total,
        sites,
    }
}

/// Insert a protect store immediately before the first idempotence-breaking
/// segment.
///
/// One store suffices: the scheduler's "past the idempotence point" flag is
/// sticky, so protecting later sites would be redundant. The pass first
/// strips any existing [`Segment::ProtectStore`]s and re-places the marker
/// from the analysis result, so re-instrumenting a program whose protect
/// store is stale (missing, duplicated, or *after* the first breaking site)
/// repairs it; `instrument` is a fixpoint, and strictly idempotent programs
/// come out with no protect store at all.
pub fn instrument(program: &Program) -> Program {
    let mut out: Vec<Segment> = program
        .segments()
        .iter()
        .copied()
        .filter(|s| !matches!(s, Segment::ProtectStore))
        .collect();
    let stripped = Program::new(out.clone());
    match analyze(&stripped).first_site() {
        None => stripped,
        Some(site) => {
            out.insert(site.seg_idx, Segment::ProtectStore);
            Program::new(out)
        }
    }
}

/// Instrument a kernel's program (see [`instrument`]).
pub fn instrument_kernel(kernel: &KernelDesc) -> KernelDesc {
    kernel.with_program(instrument(kernel.program()))
}

/// Kernel-level idempotence classification for reports (Table 2's
/// "Idempotent" column).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelIdempotence {
    /// The kernel satisfies the strict condition ("Yes" in Table 2).
    Strict,
    /// Only the relaxed per-block condition applies; blocks stay flushable
    /// for the given fraction of their execution.
    Relaxed {
        /// Flushable fraction of a block's instruction stream.
        idempotent_fraction: f64,
    },
}

impl KernelIdempotence {
    /// Classify a kernel.
    pub fn of(kernel: &KernelDesc) -> Self {
        let a = analyze(kernel.program());
        if a.strict_idempotent {
            KernelIdempotence::Strict
        } else {
            KernelIdempotence::Relaxed {
                idempotent_fraction: a.idempotent_fraction,
            }
        }
    }

    /// `true` for strictly idempotent kernels.
    pub fn is_strict(&self) -> bool {
        matches!(self, KernelIdempotence::Strict)
    }
}

impl fmt::Display for KernelIdempotence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelIdempotence::Strict => f.write_str("Yes"),
            KernelIdempotence::Relaxed { .. } => f.write_str("No"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog(segs: Vec<Segment>) -> Program {
        Program::new(segs)
    }

    #[test]
    fn idempotent_program_passes_strict() {
        let p = prog(vec![
            Segment::load(10),
            Segment::compute(100),
            Segment::store(10),
        ]);
        let a = analyze(&p);
        assert!(a.strict_idempotent);
        assert!(a.sites.is_empty());
        assert_eq!(a.idempotent_fraction, 1.0);
        assert_eq!(a.first_site(), None);
        assert_eq!(a.insts_before_first_site, a.total_insts);
        assert_eq!(a.total_insts, 120);
    }

    #[test]
    fn atomic_and_overwrite_both_detected() {
        let p = prog(vec![
            Segment::compute(50),
            Segment::atomic(1),
            Segment::compute(10),
            Segment::overwrite(5),
        ]);
        let a = analyze(&p);
        assert!(!a.strict_idempotent);
        assert_eq!(a.sites.len(), 2);
        assert_eq!(a.sites[0].reason, NonIdemReason::Atomic);
        // The deprecated shim lowers to a read-modify-write, whose
        // provenance is its own fused read.
        assert_eq!(
            a.sites[1].reason,
            NonIdemReason::GlobalOverwrite {
                clobbered_read: 3,
                buffer: gpu_sim::AccessRegion::COMPAT_INPUT_BUFFER,
            }
        );
        assert_eq!(a.first_site().unwrap().seg_idx, 1);
        assert_eq!(a.insts_before_first_site, 50);
    }

    #[test]
    fn aliasing_store_site_carries_provenance() {
        let window = AccessRegion::per_block_window(0, 0, 16);
        let p = prog(vec![
            Segment::load_region(16, window),
            Segment::compute(80),
            Segment::store_region(8, window),
        ]);
        let a = analyze(&p);
        assert_eq!(a.sites.len(), 1);
        assert_eq!(a.sites[0].seg_idx, 2);
        assert_eq!(
            a.sites[0].reason,
            NonIdemReason::GlobalOverwrite {
                clobbered_read: 0,
                buffer: 0
            }
        );
        assert_eq!(a.insts_before_first_site, 96);
        let shown = a.sites[0].to_string();
        assert!(shown.contains("overwrites read of seg 0"), "{shown}");
    }

    #[test]
    fn disjoint_store_is_not_a_site() {
        let p = prog(vec![
            Segment::load_region(16, AccessRegion::per_block_window(0, 0, 16)),
            Segment::store_region(16, AccessRegion::per_block_window(1, 0, 16)),
        ]);
        assert!(analyze(&p).strict_idempotent);
    }

    #[test]
    fn analysis_agrees_with_program_mask() {
        let window = AccessRegion::per_block_window(0, 0, 8);
        for p in [
            prog(vec![Segment::load(10), Segment::store(10)]),
            prog(vec![Segment::compute(5), Segment::atomic(2)]),
            prog(vec![
                Segment::load_region(8, window),
                Segment::store_region(4, window),
                Segment::overwrite(2),
            ]),
        ] {
            let a = analyze(&p);
            let mask_sites: Vec<usize> = (0..p.segments().len())
                .filter(|&i| p.segment_non_idempotent(i))
                .collect();
            let report_sites: Vec<usize> = a.sites.iter().map(|s| s.seg_idx).collect();
            assert_eq!(mask_sites, report_sites);
            assert_eq!(a.strict_idempotent, p.is_idempotent());
            assert!((a.idempotent_fraction - p.idempotent_fraction()).abs() < 1e-12);
        }
    }

    #[test]
    fn idempotent_fraction_reflects_position() {
        let p = prog(vec![Segment::compute(90), Segment::atomic(10)]);
        assert!((analyze(&p).idempotent_fraction - 0.9).abs() < 1e-12);
        let p = prog(vec![Segment::atomic(10), Segment::compute(90)]);
        assert!(analyze(&p).idempotent_fraction < 1e-12);
    }

    #[test]
    fn instrument_inserts_before_first_breaking_segment() {
        let p = prog(vec![Segment::compute(50), Segment::atomic(1)]);
        let out = instrument(&p);
        assert_eq!(
            out.segments(),
            &[
                Segment::compute(50),
                Segment::ProtectStore,
                Segment::atomic(1)
            ]
        );
    }

    #[test]
    fn instrument_protects_once_for_clustered_sites() {
        let p = prog(vec![
            Segment::compute(10),
            Segment::atomic(1),
            Segment::overwrite(4),
        ]);
        let out = instrument(&p);
        let protects = out
            .segments()
            .iter()
            .filter(|s| matches!(s, Segment::ProtectStore))
            .count();
        assert_eq!(protects, 1);
        assert!(matches!(out.segments()[1], Segment::ProtectStore));
    }

    #[test]
    fn instrument_is_idempotent_pass() {
        let p = prog(vec![Segment::compute(10), Segment::overwrite(4)]);
        let once = instrument(&p);
        let twice = instrument(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn instrument_leaves_idempotent_programs_alone() {
        let p = prog(vec![
            Segment::load(5),
            Segment::compute(10),
            Segment::store(2),
        ]);
        assert_eq!(instrument(&p), p);
    }

    #[test]
    fn stale_protect_store_after_breaking_site_is_moved() {
        // Regression: a ProtectStore *behind* the first breaking segment
        // used to satisfy the old pass ("already protected"), leaving the
        // dangerous segment unannounced. Re-instrumentation must move it in
        // front.
        let p = prog(vec![
            Segment::compute(10),
            Segment::overwrite(4),
            Segment::ProtectStore,
            Segment::compute(5),
        ]);
        let out = instrument(&p);
        assert_eq!(
            out.segments(),
            &[
                Segment::compute(10),
                Segment::ProtectStore,
                Segment::overwrite(4),
                Segment::compute(5),
            ]
        );
        // And the repair is stable.
        assert_eq!(instrument(&out), out);
    }

    #[test]
    fn duplicate_protect_stores_collapse_to_one() {
        let p = prog(vec![
            Segment::ProtectStore,
            Segment::compute(10),
            Segment::ProtectStore,
            Segment::overwrite(4),
        ]);
        let out = instrument(&p);
        let protects = out
            .segments()
            .iter()
            .filter(|s| matches!(s, Segment::ProtectStore))
            .count();
        assert_eq!(protects, 1);
        assert!(matches!(out.segments()[1], Segment::ProtectStore));
    }

    #[test]
    fn spurious_protect_store_in_idempotent_program_is_removed() {
        let p = prog(vec![
            Segment::load(5),
            Segment::ProtectStore,
            Segment::store(2),
        ]);
        let out = instrument(&p);
        assert!(out
            .segments()
            .iter()
            .all(|s| !matches!(s, Segment::ProtectStore)));
    }

    #[test]
    fn classification_matches_analysis() {
        let k = KernelDesc::builder("a")
            .grid_blocks(1)
            .program(prog(vec![Segment::compute(10)]))
            .build()
            .unwrap();
        assert!(KernelIdempotence::of(&k).is_strict());
        assert_eq!(KernelIdempotence::of(&k).to_string(), "Yes");
        let k = k.with_program(prog(vec![Segment::compute(10), Segment::atomic(1)]));
        assert!(!KernelIdempotence::of(&k).is_strict());
        assert_eq!(KernelIdempotence::of(&k).to_string(), "No");
    }

    #[test]
    fn instrumented_kernel_keeps_geometry() {
        let k = KernelDesc::builder("a")
            .grid_blocks(7)
            .threads_per_block(256)
            .regs_per_thread(20)
            .program(prog(vec![Segment::compute(10), Segment::atomic(1)]))
            .build()
            .unwrap();
        let ik = instrument_kernel(&k);
        assert_eq!(ik.grid_blocks(), 7);
        assert_eq!(ik.threads_per_block(), 256);
        assert_eq!(ik.program().segments().len(), 3);
    }

    #[test]
    fn relaxed_fraction_reported_in_classification() {
        let k = KernelDesc::builder("a")
            .grid_blocks(1)
            .program(prog(vec![Segment::compute(80), Segment::overwrite(20)]))
            .build()
            .unwrap();
        match KernelIdempotence::of(&k) {
            KernelIdempotence::Relaxed {
                idempotent_fraction,
            } => {
                assert!((idempotent_fraction - 0.8).abs() < 1e-12);
            }
            other => panic!("expected relaxed, got {other:?}"),
        }
    }
}
