//! # idem — idempotence analysis and protect-store instrumentation
//!
//! The software side of Chimera's SM flushing (§3.4 of the paper). A GPU
//! kernel is *idempotent* (strict condition, §2.3) if it contains no atomic
//! operations and never overwrites a global location it has read; such a
//! kernel can be re-executed from scratch at any point without changing the
//! result.
//!
//! Chimera *relaxes* the condition per thread block and per point in time: a
//! block is idempotent **at a given time** if it has not yet executed an
//! atomic or a global overwrite. Because those operations cluster at the end
//! of GPU kernels, a block of a non-idempotent kernel is still flushable for
//! most of its execution.
//!
//! The relaxed condition is detected in software: the compiler inserts a
//! *protect store* — a store to a predefined non-cacheable address — in front
//! of every atomic / overwrite operation. The (in-order) SM executes the store
//! before the dangerous operation, so the scheduler always learns that the
//! block left its idempotent region *before* it actually does.
//!
//! This crate provides exactly that pass over the `gpu-sim` kernel IR:
//!
//! ```
//! use gpu_sim::{KernelDesc, Program, Segment};
//! use idem::{analyze, instrument_kernel};
//!
//! let k = KernelDesc::builder("scatter")
//!     .grid_blocks(4)
//!     .program(Program::new(vec![
//!         Segment::load(32),
//!         Segment::compute(400),
//!         Segment::overwrite(32), // writes back in place: non-idempotent
//!     ]))
//!     .build()?;
//! let report = analyze(k.program());
//! assert!(!report.strict_idempotent);
//! let instrumented = instrument_kernel(&k);
//! assert!(matches!(
//!     instrumented.program().segments()[2],
//!     Segment::ProtectStore
//! ));
//! # Ok::<(), gpu_sim::KernelError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use gpu_sim::{KernelDesc, Program, Segment};
use std::fmt;

/// Why a segment breaks idempotence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NonIdemReason {
    /// An atomic read-modify-write.
    Atomic,
    /// A store that overwrites a global location read by the block.
    GlobalOverwrite,
}

impl fmt::Display for NonIdemReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NonIdemReason::Atomic => f.write_str("atomic operation"),
            NonIdemReason::GlobalOverwrite => f.write_str("global overwrite"),
        }
    }
}

/// One idempotence-breaking site in a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NonIdemSite {
    /// Segment index in the program.
    pub seg_idx: usize,
    /// Why it breaks idempotence.
    pub reason: NonIdemReason,
}

/// The result of analysing a program.
#[derive(Debug, Clone, PartialEq)]
pub struct IdemAnalysis {
    /// Whether the whole kernel satisfies the strict condition.
    pub strict_idempotent: bool,
    /// Every idempotence-breaking segment, in program order.
    pub sites: Vec<NonIdemSite>,
    /// Fraction of per-warp instructions executed before the first breaking
    /// segment (1.0 for strictly idempotent programs). This is how long the
    /// *relaxed* condition keeps a block flushable.
    pub idempotent_fraction: f64,
}

impl IdemAnalysis {
    /// The first idempotence-breaking segment, if any.
    pub fn first_site(&self) -> Option<NonIdemSite> {
        self.sites.first().copied()
    }
}

/// Analyse a program for the strict and relaxed idempotence conditions.
///
/// Atomic segments are trivially found (separate instructions); overwrite
/// stores are assumed to have been classified by the front end's pointer
/// analysis, which the paper notes is precise for the restricted pointer use
/// in GPU kernels — the IR records the result in
/// [`Segment::GlobalStore`]'s `overwrite` flag.
pub fn analyze(program: &Program) -> IdemAnalysis {
    let mut sites = Vec::new();
    for (i, seg) in program.segments().iter().enumerate() {
        match seg {
            Segment::Atomic { .. } => {
                sites.push(NonIdemSite {
                    seg_idx: i,
                    reason: NonIdemReason::Atomic,
                });
            }
            Segment::GlobalStore {
                overwrite: true, ..
            } => {
                sites.push(NonIdemSite {
                    seg_idx: i,
                    reason: NonIdemReason::GlobalOverwrite,
                });
            }
            _ => {}
        }
    }
    IdemAnalysis {
        strict_idempotent: sites.is_empty(),
        idempotent_fraction: program.idempotent_fraction(),
        sites,
    }
}

/// Insert a protect store in front of the first idempotence-breaking segment.
///
/// One store suffices: the scheduler's "past the idempotence point" flag is
/// sticky, so protecting later sites would be redundant. Instrumenting an
/// already-instrumented program is a no-op, and strictly idempotent programs
/// are returned unchanged.
pub fn instrument(program: &Program) -> Program {
    let mut out = Vec::with_capacity(program.segments().len() + 1);
    let mut protected = false;
    for seg in program.segments() {
        match seg {
            Segment::ProtectStore => {
                protected = true;
                out.push(*seg);
            }
            s if s.is_non_idempotent() => {
                if !protected {
                    out.push(Segment::ProtectStore);
                    protected = true;
                }
                out.push(*s);
            }
            s => out.push(*s),
        }
    }
    Program::new(out)
}

/// Instrument a kernel's program (see [`instrument`]).
pub fn instrument_kernel(kernel: &KernelDesc) -> KernelDesc {
    kernel.with_program(instrument(kernel.program()))
}

/// Kernel-level idempotence classification for reports (Table 2's
/// "Idempotent" column).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KernelIdempotence {
    /// The kernel satisfies the strict condition ("Yes" in Table 2).
    Strict,
    /// Only the relaxed per-block condition applies; blocks stay flushable
    /// for the given fraction of their execution.
    Relaxed {
        /// Flushable fraction of a block's instruction stream.
        idempotent_fraction: f64,
    },
}

impl KernelIdempotence {
    /// Classify a kernel.
    pub fn of(kernel: &KernelDesc) -> Self {
        let a = analyze(kernel.program());
        if a.strict_idempotent {
            KernelIdempotence::Strict
        } else {
            KernelIdempotence::Relaxed {
                idempotent_fraction: a.idempotent_fraction,
            }
        }
    }

    /// `true` for strictly idempotent kernels.
    pub fn is_strict(&self) -> bool {
        matches!(self, KernelIdempotence::Strict)
    }
}

impl fmt::Display for KernelIdempotence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelIdempotence::Strict => f.write_str("Yes"),
            KernelIdempotence::Relaxed { .. } => f.write_str("No"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prog(segs: Vec<Segment>) -> Program {
        Program::new(segs)
    }

    #[test]
    fn idempotent_program_passes_strict() {
        let p = prog(vec![
            Segment::load(10),
            Segment::compute(100),
            Segment::store(10),
        ]);
        let a = analyze(&p);
        assert!(a.strict_idempotent);
        assert!(a.sites.is_empty());
        assert_eq!(a.idempotent_fraction, 1.0);
        assert_eq!(a.first_site(), None);
    }

    #[test]
    fn atomic_and_overwrite_both_detected() {
        let p = prog(vec![
            Segment::compute(50),
            Segment::atomic(1),
            Segment::compute(10),
            Segment::overwrite(5),
        ]);
        let a = analyze(&p);
        assert!(!a.strict_idempotent);
        assert_eq!(a.sites.len(), 2);
        assert_eq!(a.sites[0].reason, NonIdemReason::Atomic);
        assert_eq!(a.sites[1].reason, NonIdemReason::GlobalOverwrite);
        assert_eq!(a.first_site().unwrap().seg_idx, 1);
    }

    #[test]
    fn idempotent_fraction_reflects_position() {
        let p = prog(vec![Segment::compute(90), Segment::atomic(10)]);
        assert!((analyze(&p).idempotent_fraction - 0.9).abs() < 1e-12);
        let p = prog(vec![Segment::atomic(10), Segment::compute(90)]);
        assert!(analyze(&p).idempotent_fraction < 1e-12);
    }

    #[test]
    fn instrument_inserts_before_first_breaking_segment() {
        let p = prog(vec![Segment::compute(50), Segment::atomic(1)]);
        let out = instrument(&p);
        assert_eq!(
            out.segments(),
            &[
                Segment::compute(50),
                Segment::ProtectStore,
                Segment::atomic(1)
            ]
        );
    }

    #[test]
    fn instrument_protects_once_for_clustered_sites() {
        let p = prog(vec![
            Segment::compute(10),
            Segment::atomic(1),
            Segment::overwrite(4),
        ]);
        let out = instrument(&p);
        let protects = out
            .segments()
            .iter()
            .filter(|s| matches!(s, Segment::ProtectStore))
            .count();
        assert_eq!(protects, 1);
        assert!(matches!(out.segments()[1], Segment::ProtectStore));
    }

    #[test]
    fn instrument_is_idempotent_pass() {
        let p = prog(vec![Segment::compute(10), Segment::overwrite(4)]);
        let once = instrument(&p);
        let twice = instrument(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn instrument_leaves_idempotent_programs_alone() {
        let p = prog(vec![
            Segment::load(5),
            Segment::compute(10),
            Segment::store(2),
        ]);
        assert_eq!(instrument(&p), p);
    }

    #[test]
    fn classification_matches_analysis() {
        let k = KernelDesc::builder("a")
            .grid_blocks(1)
            .program(prog(vec![Segment::compute(10)]))
            .build()
            .unwrap();
        assert!(KernelIdempotence::of(&k).is_strict());
        assert_eq!(KernelIdempotence::of(&k).to_string(), "Yes");
        let k = k.with_program(prog(vec![Segment::compute(10), Segment::atomic(1)]));
        assert!(!KernelIdempotence::of(&k).is_strict());
        assert_eq!(KernelIdempotence::of(&k).to_string(), "No");
    }

    #[test]
    fn instrumented_kernel_keeps_geometry() {
        let k = KernelDesc::builder("a")
            .grid_blocks(7)
            .threads_per_block(256)
            .regs_per_thread(20)
            .program(prog(vec![Segment::compute(10), Segment::atomic(1)]))
            .build()
            .unwrap();
        let ik = instrument_kernel(&k);
        assert_eq!(ik.grid_blocks(), 7);
        assert_eq!(ik.threads_per_block(), 256);
        assert_eq!(ik.program().segments().len(), 3);
    }

    #[test]
    fn relaxed_fraction_reported_in_classification() {
        let k = KernelDesc::builder("a")
            .grid_blocks(1)
            .program(prog(vec![Segment::compute(80), Segment::overwrite(20)]))
            .build()
            .unwrap();
        match KernelIdempotence::of(&k) {
            KernelIdempotence::Relaxed {
                idempotent_fraction,
            } => {
                assert!((idempotent_fraction - 0.8).abs() < 1e-12);
            }
            other => panic!("expected relaxed, got {other:?}"),
        }
    }
}
