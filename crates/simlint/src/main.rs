//! The `simlint` binary: lint the workspace (default) or an arbitrary tree.
//!
//! ```text
//! cargo run -p simlint                  # lint the workspace, exit 1 on any diagnostic
//! cargo run -p simlint -- --root DIR    # lint every .rs under DIR with every rule
//! cargo run -p simlint -- --list-rules  # print the rule catalog
//! ```
//!
//! See `LINTS.md` for the rule catalog and suppression policy.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use simlint::{lint_tree, Scope, RULES};

fn usage() -> ExitCode {
    eprintln!("usage: simlint [--root DIR] [--list-rules]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut list = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage(),
            },
            "--list-rules" => list = true,
            _ => return usage(),
        }
    }
    if list {
        for (id, summary) in RULES {
            println!("{id}: {summary}");
        }
        return ExitCode::SUCCESS;
    }
    // Default root: the workspace this binary was built from.
    let (root, scope) = match root {
        Some(dir) => (dir, Scope::everything()),
        None => {
            let ws = Path::new(env!("CARGO_MANIFEST_DIR"))
                .parent()
                .and_then(Path::parent)
                .expect("simlint lives two levels under the workspace root")
                .to_path_buf();
            (ws, Scope::workspace())
        }
    };
    let diags = match lint_tree(&root, &scope) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("simlint: cannot lint {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!("simlint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("simlint: {} diagnostic(s)", diags.len());
        ExitCode::FAILURE
    }
}
