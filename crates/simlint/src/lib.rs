//! # simlint — source-level determinism lints for the Chimera workspace
//!
//! The engine's byte-identical three-mode contract is only as strong as the
//! conventions that keep shared-state code deterministic. Two real bug
//! classes have already slipped through review: iteration over a `HashMap`
//! leaked OS-randomized ordering into flush-wait polling (fixed in PR 4),
//! and `partial_cmp().unwrap()` on floats panicked on NaN (fixed in PR 9).
//! This crate turns those conventions into machine-checked rules: it
//! tokenizes the workspace's Rust sources with a small dependency-free
//! lexer (comments and string literals stripped, so the rules see only
//! code) and reports each violation with `file:line` provenance and a rule
//! id. The dynamic counterpart — the shard-race sanitizer in
//! `gpu_sim::race` — cross-validates the same contract at run time.
//!
//! See `LINTS.md` at the workspace root for the rule catalog, scopes and
//! suppression policy. The short version:
//!
//! | rule id            | requirement                                         |
//! |--------------------|-----------------------------------------------------|
//! | `hash-iter`        | no iteration over `HashMap`/`HashSet` (use `BTreeMap`/`BTreeSet` or sort first) |
//! | `float-partial-cmp`| no `partial_cmp` (use `total_cmp` on floats)        |
//! | `as-narrowing`     | no unchecked narrowing `as` casts in accounting code |
//! | `nondet-source`    | no `Instant::now`/`SystemTime::now`/`RandomState`/`std::thread` outside sanctioned modules |
//!
//! A diagnostic can be suppressed inline with a justified comment on the
//! same line or the line directly above:
//!
//! ```text
//! // simlint: allow(as-narrowing) -- bounded by issue_chunk <= u32::MAX
//! ```
//!
//! The justification after `--` is mandatory; a suppression without one is
//! itself a diagnostic (`bad-suppression`).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// A single lint finding with file:line provenance.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// File the finding is in (as given to the linter).
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule id (see [`RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Rule ids enforced by [`lint_source`].
pub const RULES: &[(&str, &str)] = &[
    (
        "hash-iter",
        "iteration over HashMap/HashSet has OS-randomized order; use BTreeMap/BTreeSet or sort keys first",
    ),
    (
        "float-partial-cmp",
        "partial_cmp on floats is a NaN panic or a silent misordering; use total_cmp",
    ),
    (
        "as-narrowing",
        "unchecked `as` narrowing casts silently truncate accounting values; use try_from or widen",
    ),
    (
        "nondet-source",
        "wall clocks, RandomState and ad-hoc threads are nondeterminism sources; keep them in sanctioned modules",
    ),
    (
        "bad-suppression",
        "a `simlint: allow(..)` suppression must name a known rule and carry a `-- justification`",
    ),
];

const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "f32"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// One token of blanked source: an identifier/number word or a single
/// punctuation character, with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Tok {
    line: usize,
    s: String,
}

/// Source split into lint-ready form: code with comments/literals blanked,
/// plus the comment text per line (for suppression parsing).
#[derive(Debug)]
struct Prepared {
    code_lines: Vec<String>,
    comment_lines: Vec<String>,
}

/// Strip comments, string/char literals and raw strings, preserving line
/// structure. Comments are collected separately so suppressions stay
/// visible. Nested block comments, escapes and `r#".."#` raw strings are
/// handled; this is a lexer, not a parser — it never needs to understand
/// the code, only to avoid false matches inside text.
fn prepare(source: &str) -> Prepared {
    let chars: Vec<char> = source.chars().collect();
    let mut code = String::with_capacity(source.len());
    let mut comment = String::with_capacity(64);
    let mut i = 0;
    let n = chars.len();
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    while i < n {
        let c = chars[i];
        // Line comment.
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            while i < n && chars[i] != '\n' {
                comment.push(chars[i]);
                code.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let mut depth = 0usize;
            while i < n {
                if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    comment.push_str("/*");
                    code.push_str("  ");
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    comment.push_str("*/");
                    code.push_str("  ");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if chars[i] == '\n' {
                        comment.push('\n');
                        code.push('\n');
                    } else {
                        comment.push(chars[i]);
                        code.push(' ');
                    }
                    i += 1;
                }
            }
            continue;
        }
        // Raw (byte) string: r"..", r#".."#, br#".."# ...
        if (c == 'r' || c == 'b') && (i == 0 || !is_ident(chars[i - 1])) {
            let mut j = i;
            if chars[j] == 'b' && j + 1 < n && chars[j + 1] == 'r' {
                j += 1;
            }
            if chars[j] == 'r' {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while k < n && chars[k] == '#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && chars[k] == '"' {
                    // Blank from i through the closing quote + hashes.
                    let mut m = k + 1;
                    'raw: while m < n {
                        if chars[m] == '"' {
                            let mut h = 0usize;
                            while m + 1 + h < n && h < hashes && chars[m + 1 + h] == '#' {
                                h += 1;
                            }
                            if h == hashes {
                                m += 1 + hashes;
                                break 'raw;
                            }
                        }
                        m += 1;
                    }
                    for &ch in &chars[i..m.min(n)] {
                        comment.push(' ');
                        code.push(if ch == '\n' { '\n' } else { ' ' });
                    }
                    i = m;
                    continue;
                }
            }
        }
        // String literal (incl. b"..").
        if c == '"'
            || (c == 'b' && i + 1 < n && chars[i + 1] == '"' && (i == 0 || !is_ident(chars[i - 1])))
        {
            if c == 'b' {
                code.push(' ');
                comment.push(' ');
                i += 1;
            }
            code.push(' ');
            comment.push(' ');
            i += 1; // past opening quote
            while i < n {
                if chars[i] == '\\' && i + 1 < n {
                    code.push_str("  ");
                    comment.push_str("  ");
                    i += 2;
                    continue;
                }
                if chars[i] == '"' {
                    code.push(' ');
                    comment.push(' ');
                    i += 1;
                    break;
                }
                code.push(if chars[i] == '\n' { '\n' } else { ' ' });
                comment.push(if chars[i] == '\n' { '\n' } else { ' ' });
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let is_char_lit = if i + 1 < n && chars[i + 1] == '\\' {
                true
            } else {
                i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\''
            };
            if is_char_lit {
                code.push(' ');
                comment.push(' ');
                i += 1;
                while i < n {
                    if chars[i] == '\\' && i + 1 < n {
                        code.push_str("  ");
                        comment.push_str("  ");
                        i += 2;
                        continue;
                    }
                    if chars[i] == '\'' {
                        code.push(' ');
                        comment.push(' ');
                        i += 1;
                        break;
                    }
                    code.push(' ');
                    comment.push(' ');
                    i += 1;
                }
                continue;
            }
        }
        code.push(c);
        comment.push(if c == '\n' { '\n' } else { ' ' });
        i += 1;
    }
    Prepared {
        code_lines: code.lines().map(str::to_string).collect(),
        comment_lines: comment.lines().map(str::to_string).collect(),
    }
}

fn tokenize(code_lines: &[String]) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (ln, line) in code_lines.iter().enumerate() {
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphanumeric() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    line: ln + 1,
                    s: chars[start..i].iter().collect(),
                });
            } else {
                toks.push(Tok {
                    line: ln + 1,
                    s: c.to_string(),
                });
                i += 1;
            }
        }
    }
    toks
}

/// Parsed inline suppressions: line → rules allowed on that line.
#[derive(Debug, Default)]
struct Suppressions {
    by_line: BTreeMap<usize, Vec<String>>,
    bad: Vec<(usize, String)>,
}

fn parse_suppressions(prep: &Prepared) -> Suppressions {
    let mut sup = Suppressions::default();
    for (ix, comment) in prep.comment_lines.iter().enumerate() {
        let line = ix + 1;
        let Some(pos) = comment.find("simlint:") else {
            continue;
        };
        let rest = comment[pos + "simlint:".len()..].trim_start();
        let Some(inner) = rest.strip_prefix("allow(").and_then(|r| r.split_once(')')) else {
            sup.bad.push((
                line,
                "malformed suppression: expected `simlint: allow(rule) -- justification`"
                    .to_string(),
            ));
            continue;
        };
        let (rule, after) = inner;
        let rule = rule.trim();
        if !RULES.iter().any(|(id, _)| *id == rule) {
            sup.bad
                .push((line, format!("suppression names unknown rule `{rule}`")));
            continue;
        }
        let justified = after
            .trim_start()
            .strip_prefix("--")
            .is_some_and(|j| !j.trim().is_empty());
        if !justified {
            sup.bad.push((
                line,
                format!("suppression of `{rule}` lacks a `-- justification`"),
            ));
            continue;
        }
        // A suppression applies to its own line; when the comment stands
        // alone (no code on the line), it covers the next line instead.
        let code_blank = prep.code_lines.get(ix).is_none_or(|l| l.trim().is_empty());
        let target = if code_blank { line + 1 } else { line };
        sup.by_line
            .entry(target)
            .or_default()
            .push(rule.to_string());
    }
    sup
}

/// Which rules to run (all on by default; scoping happens at the file
/// level in [`lint_tree`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleSet {
    /// Run `hash-iter`.
    pub hash_iter: bool,
    /// Run `float-partial-cmp`.
    pub float_partial_cmp: bool,
    /// Run `as-narrowing`.
    pub as_narrowing: bool,
    /// Run `nondet-source`.
    pub nondet_source: bool,
}

impl RuleSet {
    /// Every rule enabled.
    pub const ALL: RuleSet = RuleSet {
        hash_iter: true,
        float_partial_cmp: true,
        as_narrowing: true,
        nondet_source: true,
    };
}

/// Identifiers declared (or bound) as `HashMap`/`HashSet` in this token
/// stream: the receiver set for `hash-iter`.
fn hash_bound_idents(toks: &[Tok]) -> BTreeSet<String> {
    let mut bound = BTreeSet::new();
    let is_kw = |s: &str| {
        matches!(
            s,
            "let" | "mut" | "pub" | "ref" | "use" | "crate" | "self" | "super" | "std"
        )
    };
    for (i, t) in toks.iter().enumerate() {
        if t.s != "HashMap" && t.s != "HashSet" {
            continue;
        }
        // Walk left over a path qualifier (`std::collections::`), then over
        // the declaration punctuation (`:` for a type ascription, `=` for a
        // binding), and take the identifier being declared.
        let mut j = i;
        while j >= 3 && toks[j - 1].s == ":" && toks[j - 2].s == ":" {
            j -= 3; // skip `ident ::`
        }
        if j == 0 {
            continue;
        }
        let mut k = j - 1;
        if toks[k].s == "&" && k > 0 {
            k -= 1;
        }
        if toks[k].s != ":" && toks[k].s != "=" {
            continue;
        }
        if k == 0 {
            continue;
        }
        let mut m = k - 1;
        while m > 0 && (toks[m].s == "mut" || toks[m].s == "&") {
            m -= 1;
        }
        let name = &toks[m].s;
        if !name.is_empty()
            && name
                .chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
            && !is_kw(name)
        {
            bound.insert(name.clone());
        }
    }
    bound
}

/// Run every enabled rule over one source file. `path` is used only for
/// provenance.
pub fn lint_source(path: &Path, source: &str, rules: RuleSet) -> Vec<Diagnostic> {
    let prep = prepare(source);
    let sup = parse_suppressions(&prep);
    let toks = tokenize(&prep.code_lines);
    let mut diags = Vec::new();
    for (line, msg) in &sup.bad {
        diags.push(Diagnostic {
            path: path.to_path_buf(),
            line: *line,
            rule: "bad-suppression",
            message: msg.clone(),
        });
    }
    let mut push = |line: usize, rule: &'static str, message: String| {
        let suppressed = sup
            .by_line
            .get(&line)
            .is_some_and(|rs| rs.iter().any(|r| r == rule));
        if !suppressed {
            diags.push(Diagnostic {
                path: path.to_path_buf(),
                line,
                rule,
                message,
            });
        }
    };

    if rules.hash_iter {
        let bound = hash_bound_idents(&toks);
        for i in 0..toks.len() {
            // `map.iter()` / `map.keys()` / ... on a hash-bound receiver.
            if toks[i].s == "."
                && i > 0
                && i + 1 < toks.len()
                && ITER_METHODS.contains(&toks[i + 1].s.as_str())
                && bound.contains(&toks[i - 1].s)
            {
                push(
                    toks[i + 1].line,
                    "hash-iter",
                    format!(
                        "iteration over hash-ordered `{}` (.{}()) is nondeterministic; \
                         use BTreeMap/BTreeSet or collect-and-sort",
                        toks[i - 1].s,
                        toks[i + 1].s
                    ),
                );
            }
            // `for x in map` / `for x in &map` (without an explicit method).
            if toks[i].s == "in" && i + 1 < toks.len() {
                let mut j = i + 1;
                while j < toks.len() && (toks[j].s == "&" || toks[j].s == "mut") {
                    j += 1;
                }
                if j < toks.len()
                    && bound.contains(&toks[j].s)
                    && toks.get(j + 1).is_none_or(|t| t.s != ".")
                {
                    push(
                        toks[j].line,
                        "hash-iter",
                        format!(
                            "`for .. in {}` iterates a hash-ordered container \
                             nondeterministically; use BTreeMap/BTreeSet or collect-and-sort",
                            toks[j].s
                        ),
                    );
                }
            }
        }
    }

    if rules.float_partial_cmp {
        for i in 1..toks.len() {
            if toks[i].s == "partial_cmp" && toks[i - 1].s == "." {
                push(
                    toks[i].line,
                    "float-partial-cmp",
                    "partial_cmp returns None on NaN (panic or silent misorder); \
                     use total_cmp for floats"
                        .to_string(),
                );
            }
        }
    }

    if rules.as_narrowing {
        for i in 0..toks.len().saturating_sub(1) {
            if toks[i].s == "as" && NARROW_TARGETS.contains(&toks[i + 1].s.as_str()) {
                push(
                    toks[i + 1].line,
                    "as-narrowing",
                    format!(
                        "unchecked narrowing cast `as {}` silently truncates; \
                         use try_from/From or a justified suppression",
                        toks[i + 1].s
                    ),
                );
            }
        }
    }

    if rules.nondet_source {
        let path_is = |i: usize, head: &str, tail: &str| {
            toks[i].s == head
                && toks.get(i + 1).is_some_and(|t| t.s == ":")
                && toks.get(i + 2).is_some_and(|t| t.s == ":")
                && toks.get(i + 3).is_some_and(|t| t.s == tail)
        };
        for i in 0..toks.len() {
            if path_is(i, "Instant", "now") || path_is(i, "SystemTime", "now") {
                push(
                    toks[i].line,
                    "nondet-source",
                    format!(
                        "`{}::now` reads the wall clock; simulation state must be a pure \
                         function of the seed",
                        toks[i].s
                    ),
                );
            }
            if toks[i].s == "RandomState" {
                push(
                    toks[i].line,
                    "nondet-source",
                    "`RandomState` is OS-seeded; use a fixed-seed hasher or ordered container"
                        .to_string(),
                );
            }
            if toks[i].s == "thread" {
                let from_std = i >= 3
                    && toks[i - 1].s == ":"
                    && toks[i - 2].s == ":"
                    && toks[i - 3].s == "std";
                let spawns = ["spawn", "scope", "Builder", "sleep"]
                    .iter()
                    .any(|m| path_is(i, "thread", m));
                if from_std || spawns {
                    push(
                        toks[i].line,
                        "nondet-source",
                        "ad-hoc threading outside the sanctioned parallel/pool modules can \
                         leak scheduling order into results"
                            .to_string(),
                    );
                }
            }
        }
    }

    diags.sort();
    diags
}

/// A lint scope: which directories each rule covers and which files are
/// allowlisted (with a recorded reason).
#[derive(Debug, Clone)]
pub struct Scope {
    /// Directories (relative to the lint root) covered by `hash-iter` and
    /// `as-narrowing` — the engine-mutating/accounting code.
    pub strict_roots: Vec<PathBuf>,
    /// Directories covered by `float-partial-cmp` and `nondet-source`.
    pub wide_roots: Vec<PathBuf>,
    /// `(file, reason)` pairs exempt from `nondet-source`: the sanctioned
    /// parallel/pool/progress modules.
    pub nondet_allow: Vec<(PathBuf, String)>,
}

impl Scope {
    /// The workspace scope (see `LINTS.md`): strict rules over the engine
    /// and policy crates, wide rules over every non-vendored crate, with
    /// the sanctioned threading/wall-clock modules allowlisted. The
    /// vendored `proptest`/`criterion` shims are out of scope entirely —
    /// they emulate upstream APIs (including their nondeterminism).
    pub fn workspace() -> Scope {
        let strict = ["crates/gpu-sim/src", "crates/core/src"];
        let wide = [
            "crates/gpu-sim/src",
            "crates/core/src",
            "crates/workloads/src",
            "crates/idem/src",
            "crates/bench/src",
            "crates/simlint/src",
        ];
        Scope {
            strict_roots: strict.iter().map(PathBuf::from).collect(),
            wide_roots: wide.iter().map(PathBuf::from).collect(),
            nondet_allow: vec![
                (
                    PathBuf::from("crates/gpu-sim/src/engine.rs"),
                    "sanctioned parallel module: scoped Phase-A shard workers, \
                     determinism pinned by tests/engine_equivalence.rs and the race sanitizer"
                        .to_string(),
                ),
                (
                    PathBuf::from("crates/bench/src/pool.rs"),
                    "sanctioned work-stealing pool: output merged in deterministic \
                     cell order regardless of worker scheduling"
                        .to_string(),
                ),
                (
                    PathBuf::from("crates/bench/src/progress.rs"),
                    "wall-clock progress display only; never feeds simulation state".to_string(),
                ),
            ],
        }
    }

    /// Everything under the root, every rule, no allowlist (fixture mode).
    pub fn everything() -> Scope {
        Scope {
            strict_roots: vec![PathBuf::from("")],
            wide_roots: vec![PathBuf::from("")],
            nondet_allow: Vec::new(),
        }
    }
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn under(rel: &Path, roots: &[PathBuf]) -> bool {
    roots
        .iter()
        .any(|r| r.as_os_str().is_empty() || rel.starts_with(r))
}

/// Lint the tree under `root` with the given scope. Paths in diagnostics
/// are relative to `root`.
pub fn lint_tree(root: &Path, scope: &Scope) -> std::io::Result<Vec<Diagnostic>> {
    let mut roots: Vec<PathBuf> = scope
        .strict_roots
        .iter()
        .chain(scope.wide_roots.iter())
        .cloned()
        .collect();
    roots.sort();
    roots.dedup();
    let mut files = Vec::new();
    for r in &roots {
        let abs = root.join(r);
        if abs.is_file() {
            files.push(abs);
        } else {
            walk_rs(&abs, &mut files);
        }
    }
    files.sort();
    files.dedup();
    let mut diags = Vec::new();
    for file in files {
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        let rules = RuleSet {
            hash_iter: under(&rel, &scope.strict_roots),
            as_narrowing: under(&rel, &scope.strict_roots),
            float_partial_cmp: under(&rel, &scope.wide_roots),
            nondet_source: under(&rel, &scope.wide_roots)
                && !scope.nondet_allow.iter().any(|(p, _)| *p == rel),
        };
        let source = std::fs::read_to_string(&file)?;
        diags.extend(lint_source(&rel, &source, rules));
    }
    diags.sort();
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str) -> Vec<Diagnostic> {
        lint_source(Path::new("test.rs"), src, RuleSet::ALL)
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn clean_code_produces_no_diagnostics() {
        let src = r#"
            use std::collections::BTreeMap;
            fn f(m: &BTreeMap<u32, u64>) -> u64 {
                let mut total = 0u64;
                for (_k, v) in m.iter() {
                    total += *v;
                }
                total
            }
        "#;
        assert_eq!(lint(src), vec![]);
    }

    #[test]
    fn hashmap_iteration_is_flagged_with_provenance() {
        // The PR 4 bug pattern: polling a HashMap in iteration order.
        let src = "use std::collections::HashMap;\n\
                   fn poll(flush_wait: &HashMap<usize, u64>) {\n\
                       for (sm, t) in flush_wait.iter() {\n\
                           let _ = (sm, t);\n\
                       }\n\
                   }\n";
        let diags = lint(src);
        assert_eq!(rules_of(&diags), vec!["hash-iter"]);
        assert_eq!(diags[0].line, 3);
        assert_eq!(diags[0].path, PathBuf::from("test.rs"));
    }

    #[test]
    fn for_in_hashset_is_flagged() {
        let src = "use std::collections::HashSet;\n\
                   fn f() {\n\
                       let seen: HashSet<u32> = HashSet::new();\n\
                       for x in &seen { let _ = x; }\n\
                   }\n";
        assert_eq!(rules_of(&lint(src)), vec!["hash-iter"]);
    }

    #[test]
    fn keyed_hashmap_access_is_not_iteration() {
        let src = "use std::collections::HashMap;\n\
                   fn f(m: &mut HashMap<u32, u64>) {\n\
                       m.insert(1, 2);\n\
                       let _ = m.get(&1);\n\
                       let _ = m.len();\n\
                   }\n";
        assert_eq!(lint(src), vec![]);
    }

    #[test]
    fn partial_cmp_is_flagged() {
        // The PR 9 bug pattern.
        let src = "fn sort(xs: &mut Vec<f64>) {\n\
                       xs.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());\n\
                   }\n";
        let diags = lint(src);
        assert_eq!(rules_of(&diags), vec!["float-partial-cmp"]);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn total_cmp_is_fine() {
        let src = "fn sort(xs: &mut Vec<f64>) {\n\
                       xs.sort_unstable_by(|a, b| a.total_cmp(b));\n\
                   }\n";
        assert_eq!(lint(src), vec![]);
    }

    #[test]
    fn narrowing_casts_are_flagged_but_widening_is_not() {
        let src = "fn f(x: u64) -> u32 { x as u32 }\n\
                   fn g(x: u32) -> u64 { x as u64 }\n\
                   fn h(x: u32) -> usize { x as usize }\n";
        let diags = lint(src);
        assert_eq!(rules_of(&diags), vec!["as-narrowing"]);
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn nondet_sources_are_flagged() {
        let src = "fn f() {\n\
                       let _t = std::time::Instant::now();\n\
                       std::thread::spawn(|| {});\n\
                   }\n";
        let diags = lint(src);
        assert!(diags.iter().all(|d| d.rule == "nondet-source"), "{diags:?}");
        // One diagnostic per offending token: Instant::now, then the single
        // `thread` token of `std::thread::spawn`.
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert_eq!((diags[0].line, diags[1].line), (2, 3));
    }

    #[test]
    fn matches_inside_strings_and_comments_are_ignored() {
        let src = "fn f() -> &'static str {\n\
                       // HashMap iter() and a.partial_cmp(b) in a comment\n\
                       /* x as u32 */\n\
                       \"Instant::now x as u32 RandomState\"\n\
                   }\n";
        assert_eq!(lint(src), vec![]);
    }

    #[test]
    fn raw_strings_and_char_literals_are_ignored() {
        let src = "fn f() {\n\
                       let _a = r#\"x as u32 Instant::now\"#;\n\
                       let _b = '\\n';\n\
                       let _c: &'static [u8] = b\"as u8\";\n\
                   }\n";
        assert_eq!(lint(src), vec![]);
    }

    #[test]
    fn justified_suppression_silences_same_line_and_next_line() {
        let src = "fn f(x: u64) -> u32 { x as u32 } // simlint: allow(as-narrowing) -- bounded by caller\n\
                   // simlint: allow(as-narrowing) -- bounded by grid size\n\
                   fn g(x: u64) -> u16 { x as u16 }\n";
        assert_eq!(lint(src), vec![]);
    }

    #[test]
    fn unjustified_suppression_is_itself_a_diagnostic() {
        let src = "// simlint: allow(as-narrowing)\n\
                   fn g(x: u64) -> u16 { x as u16 }\n";
        let diags = lint(src);
        // Sorted by line: the bad suppression comment (line 1) precedes the
        // cast it failed to silence (line 2).
        assert_eq!(rules_of(&diags), vec!["bad-suppression", "as-narrowing"]);
    }

    #[test]
    fn unknown_rule_suppression_is_a_diagnostic() {
        let src = "// simlint: allow(no-such-rule) -- whatever\nfn f() {}\n";
        assert_eq!(rules_of(&lint(src)), vec!["bad-suppression"]);
    }

    #[test]
    fn suppression_only_covers_its_rule() {
        let src = "// simlint: allow(hash-iter) -- wrong rule\n\
                   fn g(x: u64) -> u16 { x as u16 }\n";
        assert_eq!(rules_of(&lint(src)), vec!["as-narrowing"]);
    }

    #[test]
    fn fixtures_reproduce_the_known_bug_patterns() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
        let diags = lint_tree(&root, &Scope::everything()).expect("fixtures readable");
        let has = |rule: &str, file: &str| {
            diags
                .iter()
                .any(|d| d.rule == rule && d.path.to_string_lossy().contains(file))
        };
        assert!(has("hash-iter", "pr4_hash_iteration"), "{diags:#?}");
        assert!(has("float-partial-cmp", "pr9_partial_cmp"), "{diags:#?}");
        assert!(has("as-narrowing", "narrowing_cast"), "{diags:#?}");
        assert!(has("nondet-source", "nondet"), "{diags:#?}");
        assert!(diags.iter().all(|d| d.line > 0));
    }

    #[test]
    fn the_workspace_lints_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let diags = lint_tree(root, &Scope::workspace()).expect("workspace readable");
        assert!(
            diags.is_empty(),
            "workspace must lint clean:\n{}",
            diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
