//! Fixture: nondeterminism sources in engine code. Wall clocks, OS-seeded
//! hashers and ad-hoc threads all leak host state into what must be a pure
//! function of the seed.

use std::time::Instant;

pub fn timestamped_tick() -> u64 {
    // BUG (nondet-source): wall clock in simulation state.
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn racy_sum(xs: Vec<u64>) -> u64 {
    // BUG (nondet-source): ad-hoc thread outside the sanctioned pool.
    let h = std::thread::spawn(move || xs.iter().sum());
    h.join().unwrap()
}
