//! Fixture: the PR 4 determinism leak, reduced. Flush-wait polling iterated
//! a `HashMap` directly, so the order SMs were re-armed in followed the
//! OS-randomized hash seed — byte-different event streams run to run.
//! simlint must flag the iteration with file:line provenance.

use std::collections::HashMap;

pub struct FlushWait {
    flush_wait: HashMap<usize, u64>,
}

impl FlushWait {
    pub fn poll(&mut self, now: u64) -> Vec<usize> {
        let mut ready = Vec::new();
        // BUG (hash-iter): iteration order is OS-randomized.
        for (&sm, &t) in self.flush_wait.iter() {
            if t <= now {
                ready.push(sm);
            }
        }
        for sm in &ready {
            self.flush_wait.remove(sm);
        }
        ready
    }

    pub fn pending(&self) -> usize {
        // Fine: size queries don't observe ordering.
        self.flush_wait.len()
    }
}
