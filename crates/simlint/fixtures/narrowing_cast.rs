//! Fixture: unchecked narrowing casts in accounting code. A u64 sample
//! count cast `as u32` saturates silently past 4Gi — exactly the u32
//! sample-saturation bug the PR 4 accounting audit fixed.

pub fn record(total_insts: u64) -> u32 {
    // BUG (as-narrowing): silently truncates past u32::MAX.
    total_insts as u32
}

pub fn widen(x: u32) -> u64 {
    // Fine: widening casts are lossless.
    u64::from(x)
}

pub fn justified(x: u64) -> u32 {
    // Suppressed with a justification: accepted.
    (x % 7) as u32 // simlint: allow(as-narrowing) -- remainder mod 7 fits in u32
}
