//! Fixture: the PR 9 robustness bug, reduced. Sorting float cost samples
//! with `partial_cmp().unwrap()` panics the whole run the moment a NaN
//! (e.g. a 0/0 utilization ratio) enters the samples. simlint must flag
//! both call sites.

pub fn quantile(samples: &mut Vec<f64>, q: f64) -> f64 {
    // BUG (float-partial-cmp): unwrap panics on NaN.
    samples.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    let ix = ((samples.len() - 1) as f64 * q).round() as usize;
    samples[ix]
}

pub fn max_cost(samples: &[f64]) -> Option<f64> {
    // BUG (float-partial-cmp): NaN silently misorders the max.
    samples
        .iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
}
