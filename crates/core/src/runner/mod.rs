//! Experiment drivers reproducing the paper's evaluation scenarios.

pub mod cluster;
pub mod common;
pub mod job;
pub mod multiprog;
pub mod periodic;
pub mod serve;
pub mod solo;

pub use common::RunCommon;
pub use job::Job;

use gpu_sim::{Engine, SmPreemptPlan, Technique};

/// Statistics are keyed per kernel code: LUD's per-iteration launches are
/// named `LUD.0#3` but share the `LUD.0` statistics registers.
pub(crate) fn periodic_name(name: &str) -> String {
    match name.find('#') {
        Some(ix) => name[..ix].to_string(),
        None => name.to_string(),
    }
}

/// Flush an SM if every resident block is currently flushable; returns
/// whether the SM was vacated (an empty SM counts as an instant win).
pub(crate) fn periodic_try_flush(engine: &mut Engine, sm: usize) -> bool {
    if engine.sm_is_preempting(sm) {
        return false;
    }
    let snap = engine.sm_snapshot(sm);
    if snap.blocks.is_empty() {
        engine.assign_sm(sm, None);
        return true;
    }
    if snap.blocks.iter().any(|b| b.past_idem_point) {
        return false;
    }
    let plan = SmPreemptPlan::uniform(snap.blocks.iter().map(|b| b.index), Technique::Flush);
    matches!(engine.preempt_sm(sm, &plan), Ok(true))
}

/// Panic with the full race report if the engine's shard-race sanitizer is
/// enabled and recorded any Phase-A violation. A no-op when the sanitizer
/// is off, so every runner calls this unconditionally at the end of a run.
pub(crate) fn assert_race_clean(engine: &Engine, context: &str) {
    if let Some(report) = engine.race_sanitizer().map(|s| s.report()) {
        assert!(
            report.is_clean(),
            "shard-race sanitizer found violations in {context}:\n{report}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_name_normalisation() {
        assert_eq!(periodic_name("LUD.0#3"), "LUD.0");
        assert_eq!(periodic_name("BS.0"), "BS.0");
    }
}
