//! Pairwise multiprogrammed workloads with spatial partitioning (§4.4), plus
//! the non-preemptive FCFS baseline.
//!
//! Two benchmarks share the GPU. The SM partitioning policy is the paper's
//! Smart-Even/Rounds mix: SMs are split evenly except when a kernel is
//! *size-bound* (its remaining blocks cannot fill its share). Every kernel
//! launch/finish changes demand and triggers a repartition, which generates
//! preemption requests served by the configured policy — LUD's launch churn
//! is what makes these workloads preemption-heavy.

use crate::cost::{EstimatorConfig, ObsBank};
use crate::partition::PartitionPolicy;
use crate::policy::Policy;
use crate::runner::{Job, RunCommon};
use crate::select::{select_preemptions, SelectionRequest};
use gpu_sim::{Engine, Event, GpuConfig, SmPreemptPlan, Technique};
use std::collections::BTreeMap;
use workloads::Benchmark;

/// Configuration of a multiprogrammed run.
///
/// Shared runner knobs (seed, horizon, constraint, estimator, sanitizer)
/// live in [`common`](MultiprogConfig::common); the builder-style setters
/// below forward to it. The constraint is 30 µs in §4.4 — the maximum
/// possible context-switch latency of the configuration.
#[derive(Debug, Clone)]
pub struct MultiprogConfig {
    /// Knobs shared with every other runner. (`common.sanitize` is accepted
    /// for uniformity but multiprog runs do not flush-sanitize today.)
    pub common: RunCommon,
    /// Measurement budget per benchmark, useful warp instructions
    /// (the paper's 1-billion-instruction cap, scaled).
    pub budget_insts: u64,
    /// SM partitioning policy (the paper's evaluation uses
    /// [`PartitionPolicy::SmartEven`]).
    pub partition: PartitionPolicy,
}

impl MultiprogConfig {
    /// Defaults scaled for laptop runs.
    pub fn paper_default() -> Self {
        MultiprogConfig {
            common: RunCommon::new(400_000.0, 30.0),
            budget_insts: 3_000_000,
            partition: PartitionPolicy::SmartEven,
        }
    }

    /// Replace the shared runner knobs wholesale.
    pub fn common(mut self, common: RunCommon) -> Self {
        self.common = common;
        self
    }

    /// Set the determinism seed (forwards to [`RunCommon::seed`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.common.seed = seed;
        self
    }

    /// Set the failsafe horizon, µs (forwards to [`RunCommon::horizon_us`]).
    pub fn horizon_us(mut self, horizon_us: f64) -> Self {
        self.common.horizon_us = horizon_us;
        self
    }

    /// Set Chimera's latency constraint, µs (forwards to
    /// [`RunCommon::constraint_us`]).
    pub fn constraint_us(mut self, constraint_us: f64) -> Self {
        self.common.constraint_us = constraint_us;
        self
    }

    /// Set the estimator configuration (forwards to
    /// [`RunCommon::estimator`]).
    pub fn estimator(mut self, estimator: EstimatorConfig) -> Self {
        self.common.estimator = estimator;
        self
    }

    /// Set the per-benchmark measurement budget, useful warp instructions.
    pub fn budget_insts(mut self, budget: u64) -> Self {
        self.budget_insts = budget;
        self
    }

    /// Set the SM partitioning policy.
    pub fn partition(mut self, partition: PartitionPolicy) -> Self {
        self.partition = partition;
        self
    }
}

/// Outcome for one job of a pair run.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Benchmark name.
    pub name: String,
    /// Cycles to reach the measurement target under contention.
    pub t_multi: Option<u64>,
    /// Useful instructions at measurement.
    pub insts: u64,
}

/// Outcome of a pair run.
#[derive(Debug, Clone)]
pub struct PairOutcome {
    /// Per-job outcomes, in input order.
    pub jobs: [JobOutcome; 2],
    /// Number of SM preemptions performed.
    pub preemptions: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InFlight {
    Preempting,
    FlushWait { src: usize },
}

/// Run two benchmarks concurrently under `policy`.
pub fn run_pair(
    cfg: &GpuConfig,
    a: &Benchmark,
    b: &Benchmark,
    policy: Policy,
    mcfg: &MultiprogConfig,
) -> PairOutcome {
    let mut engine = Engine::with_seed(cfg.clone(), mcfg.common.seed);
    engine.set_exec_mode(mcfg.common.exec_mode());
    engine.set_break_on_kernel_finish(true);
    if mcfg.common.race_check {
        engine.enable_race_sanitizer();
    }
    if policy.is_oracle() {
        engine.set_free_context_moves(true);
    }
    let mut jobs = [
        Job::new(a.clone(), Some(mcfg.budget_insts)),
        Job::new(b.clone(), Some(mcfg.budget_insts)),
    ];
    let mut obs = ObsBank::with_estimator(mcfg.common.estimator);
    // Initial even ownership.
    let half = cfg.num_sms / 2;
    let mut owner: Vec<usize> = (0..cfg.num_sms).map(|sm| usize::from(sm >= half)).collect();
    // Ordered map: `in_flight` is iterated while mutating the engine, so a
    // HashMap would leak the OS-randomized hash seed into the simulation.
    let mut in_flight: BTreeMap<usize, InFlight> = BTreeMap::new();
    for j in jobs.iter_mut() {
        j.ensure_running(&mut engine);
    }
    let horizon = cfg.us_to_cycles(mcfg.common.horizon_us);
    let tick = cfg.us_to_cycles(10.0);
    let poll = cfg.us_to_cycles(0.5).max(1);

    while engine.cycle() < horizon {
        let step = if in_flight
            .values()
            .any(|f| matches!(f, InFlight::FlushWait { .. }))
        {
            poll
        } else {
            tick
        };
        let events = engine.run_until(engine.cycle() + step);
        for ev in events {
            match ev {
                Event::TbCompleted {
                    kernel,
                    insts,
                    cycles,
                    ..
                } => {
                    let name = super::periodic_name(&engine.kernel_stats(kernel).name);
                    obs.record_tb(&name, insts, cycles);
                }
                Event::PreemptionCompleted { sm, .. }
                    if in_flight.get(&sm) == Some(&InFlight::Preempting) =>
                {
                    in_flight.remove(&sm);
                }
                _ => {}
            }
        }
        // Flush-wait polling: `in_flight` is a BTreeMap, so this snapshot is
        // already ordered by SM index — `try_flush` mutates the engine, so
        // iteration order must be deterministic.
        let waiting: Vec<usize> = in_flight
            .iter()
            .filter(|(_, f)| matches!(f, InFlight::FlushWait { .. }))
            .map(|(&sm, _)| sm)
            .collect();
        for sm in waiting {
            if super::periodic_try_flush(&mut engine, sm) {
                in_flight.remove(&sm);
            }
        }
        // Advance launches.
        for j in jobs.iter_mut() {
            j.ensure_running(&mut engine);
        }
        // Repartition on demand.
        rebalance(
            &mut engine,
            cfg,
            &jobs,
            &mut owner,
            &mut in_flight,
            policy,
            mcfg,
            &obs,
        );
        // Assignment pass.
        for sm in 0..cfg.num_sms {
            match in_flight.get(&sm) {
                Some(InFlight::Preempting) => {}
                Some(&InFlight::FlushWait { src }) => {
                    let k = jobs[src].current();
                    if engine.sm_assigned(sm) != k && !engine.sm_is_preempting(sm) {
                        engine.assign_sm(sm, k);
                    }
                }
                None => {
                    if !engine.sm_is_preempting(sm) {
                        let k = jobs[owner[sm]].current();
                        if engine.sm_assigned(sm) != k {
                            engine.assign_sm(sm, k);
                        }
                    }
                }
            }
        }
        let done0 = jobs[0].check_measured(&engine);
        let done1 = jobs[1].check_measured(&engine);
        if done0 && done1 {
            break;
        }
    }
    let preemptions = engine.preempt_records().len();
    let out = |j: &Job, engine: &Engine| JobOutcome {
        name: j.name().to_string(),
        t_multi: j.measured_at(),
        insts: j.useful_insts(engine),
    };
    super::assert_race_clean(&engine, "run_pair");
    PairOutcome {
        jobs: [out(&jobs[0], &engine), out(&jobs[1], &engine)],
        preemptions,
    }
}

/// Demand in SMs of a job's current kernel (size-bound adjustment).
fn demand(engine: &Engine, job: &Job) -> usize {
    match job.current() {
        None => 0,
        Some(k) => {
            let stats = engine.kernel_stats(k);
            if stats.finished {
                return 0;
            }
            let unfinished = u64::from(stats.grid_blocks - stats.completed_tbs);
            let occ = u64::from(engine.kernel_occupancy(k)).max(1);
            unfinished.div_ceil(occ) as usize
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn rebalance(
    engine: &mut Engine,
    cfg: &GpuConfig,
    jobs: &[Job; 2],
    owner: &mut [usize],
    in_flight: &mut BTreeMap<usize, InFlight>,
    policy: Policy,
    mcfg: &MultiprogConfig,
    obs: &ObsBank,
) {
    let total = cfg.num_sms;
    let d = [demand(engine, &jobs[0]), demand(engine, &jobs[1])];
    let desired = mcfg.partition.shares(total, &d);
    let counts = [
        owner.iter().filter(|&&o| o == 0).count(),
        owner.iter().filter(|&&o| o == 1).count(),
    ];
    // Move SMs from the over-provisioned job to the under-provisioned one.
    let (src, dst) = if counts[0] > desired[0] && counts[1] < desired[1] {
        (0usize, 1usize)
    } else if counts[1] > desired[1] && counts[0] < desired[0] {
        (1, 0)
    } else {
        return;
    };
    let n = (counts[src] - desired[src]).min(desired[dst] - counts[dst]);
    if n == 0 {
        return;
    }
    // Candidates owned by src and not already moving.
    let mut cands: Vec<usize> = (0..total)
        .filter(|sm| {
            owner[*sm] == src && !in_flight.contains_key(sm) && !engine.sm_is_preempting(*sm)
        })
        .collect();
    cands.sort_by_key(|&sm| (engine.sm_resident_count(sm), sm));
    let mut moved = 0usize;
    let mut occupied: Vec<usize> = Vec::new();
    for sm in cands {
        if moved >= n {
            break;
        }
        if engine.sm_resident_count(sm) == 0 {
            owner[sm] = dst;
            moved += 1;
        } else {
            occupied.push(sm);
        }
    }
    let remaining = n - moved;
    if remaining == 0 || occupied.is_empty() {
        return;
    }
    match policy {
        Policy::Switch | Policy::Drain | Policy::Oracle => {
            let tech = if policy == Policy::Drain {
                Technique::Drain
            } else {
                Technique::Switch
            };
            for &sm in occupied.iter().take(remaining) {
                let plan = SmPreemptPlan::uniform(engine.sm_resident_indices(sm), tech);
                match engine.preempt_sm(sm, &plan) {
                    Ok(true) | Err(_) => {
                        owner[sm] = dst;
                    }
                    Ok(false) => {
                        owner[sm] = dst;
                        in_flight.insert(sm, InFlight::Preempting);
                    }
                }
            }
        }
        Policy::Flush => {
            for &sm in occupied.iter().take(remaining) {
                if super::periodic_try_flush(engine, sm) {
                    owner[sm] = dst;
                } else {
                    owner[sm] = dst;
                    in_flight.insert(sm, InFlight::FlushWait { src });
                }
            }
        }
        Policy::Chimera { limit_us } => {
            let Some(kid) = jobs[src].current() else {
                return;
            };
            let desc = engine.kernel_desc(kid);
            let name = super::periodic_name(desc.name());
            let req = SelectionRequest {
                limit_cycles: cfg.us_to_cycles(limit_us),
                num_preempts: remaining,
                ctx_bytes_per_tb: desc.block_context_bytes(),
                obs: obs.obs(&name),
                flush_allowed: true,
                estimator: mcfg.common.estimator,
            };
            let snaps: Vec<_> = occupied.iter().map(|&sm| engine.sm_snapshot(sm)).collect();
            for plan in select_preemptions(cfg, &req, &snaps) {
                match engine.preempt_sm(plan.sm, &plan.plan) {
                    Ok(true) | Err(_) => {
                        owner[plan.sm] = dst;
                    }
                    Ok(false) => {
                        owner[plan.sm] = dst;
                        in_flight.insert(plan.sm, InFlight::Preempting);
                    }
                }
            }
        }
    }
}

/// Run two benchmarks under non-preemptive FCFS: every kernel launch waits
/// for the previously launched kernel to finish and then gets the whole GPU.
pub fn run_fcfs(
    cfg: &GpuConfig,
    a: &Benchmark,
    b: &Benchmark,
    mcfg: &MultiprogConfig,
) -> PairOutcome {
    let mut engine = Engine::with_seed(cfg.clone(), mcfg.common.seed);
    engine.set_exec_mode(mcfg.common.exec_mode());
    engine.set_break_on_kernel_finish(true);
    if mcfg.common.race_check {
        engine.enable_race_sanitizer();
    }
    let mut jobs = [
        Job::new(a.clone(), Some(mcfg.budget_insts)),
        Job::new(b.clone(), Some(mcfg.budget_insts)),
    ];
    let horizon = cfg.us_to_cycles(mcfg.common.horizon_us);
    let mut queue = std::collections::VecDeque::from([0usize, 1usize]);
    'outer: while let Some(turn) = queue.pop_front() {
        jobs[turn].ensure_running(&mut engine);
        let kid = jobs[turn].current().expect("ensure_running launches");
        for sm in 0..cfg.num_sms {
            engine.assign_sm(sm, Some(kid));
        }
        // Run this kernel to completion (it owns the whole GPU), checking
        // the measurement budgets as it runs so `t_multi` is not rounded up
        // to a kernel boundary.
        loop {
            let events = engine.run_for(cfg.us_to_cycles(50.0));
            jobs[turn].check_measured(&engine);
            if events
                .iter()
                .any(|e| matches!(e, Event::KernelFinished { kernel } if *kernel == kid))
                || engine.kernel_stats(kid).finished
            {
                break;
            }
            if engine.cycle() >= horizon {
                break 'outer;
            }
        }
        let m0 = jobs[0].check_measured(&engine);
        let m1 = jobs[1].check_measured(&engine);
        if m0 && m1 {
            break;
        }
        // The job that just ran re-queues its next kernel behind the other's.
        queue.push_back(turn);
        // Keep only jobs that still need to run... both always re-queue:
        // contention persists even after one job is measured (§4.4).
        if !queue.contains(&(1 - turn)) {
            queue.push_front(1 - turn);
        }
    }
    let out = |j: &Job, engine: &Engine| JobOutcome {
        name: j.name().to_string(),
        t_multi: j.measured_at(),
        insts: j.useful_insts(engine),
    };
    super::assert_race_clean(&engine, "run_fcfs");
    PairOutcome {
        jobs: [out(&jobs[0], &engine), out(&jobs[1], &engine)],
        preemptions: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::Suite;

    fn quick() -> MultiprogConfig {
        MultiprogConfig::paper_default()
            .budget_insts(300_000)
            .horizon_us(100_000.0)
    }

    #[test]
    fn pair_run_measures_both_jobs() {
        let suite = Suite::standard();
        let cfg = suite.config();
        let out = run_pair(
            cfg,
            suite.require("LUD"),
            suite.require("SAD"),
            Policy::chimera_us(30.0),
            &quick(),
        );
        assert!(out.jobs[0].t_multi.is_some(), "LUD should be measured");
        assert!(out.jobs[1].t_multi.is_some(), "SAD should be measured");
        assert!(
            out.preemptions > 0,
            "LUD launch churn must trigger preemptions"
        );
    }

    #[test]
    fn fcfs_serializes_kernels() {
        let suite = Suite::standard();
        let cfg = suite.config();
        let fcfs = run_fcfs(cfg, suite.require("LUD"), suite.require("SAD"), &quick());
        let pre = run_pair(
            cfg,
            suite.require("LUD"),
            suite.require("SAD"),
            Policy::Drain,
            &quick(),
        );
        let f = fcfs.jobs[0].t_multi.expect("LUD measured under FCFS");
        let p = pre.jobs[0].t_multi.expect("LUD measured under drain");
        assert!(
            f > p,
            "FCFS should slow LUD down vs preemptive sharing: fcfs={f}, drain={p}"
        );
    }
}
