//! The periodic hard-deadline experiment of §4.1–4.3.
//!
//! A GPGPU benchmark owns the whole GPU. A synthetic real-time task arrives
//! every period, needs half of the SMs, executes for a fixed time and is
//! killed if its deadline — execution time plus the required preemption
//! latency — would be missed. A preemption request therefore *violates* the
//! deadline when the SMs are not all handed over within the latency
//! constraint.
//!
//! To keep throughput accounting fair when deadlines are missed (the paper
//! "ignores the throughput additionally gained" by killed tasks), acquired
//! SMs are reserved for the task's execution window even when the request was
//! late — the benchmark never pockets bonus SM-time from violations.

use crate::cost::{EstimatorConfig, EstimatorMode, ObsBank};
use crate::obs::{DrainSample, DrainTracker};
use crate::policy::Policy;
use crate::runner::RunCommon;
use crate::select::{select_preemptions, SelectionRequest};
use gpu_sim::{Engine, Event, GpuConfig, SmPreemptPlan, Technique};
use std::collections::{BTreeMap, HashMap};
use workloads::{Benchmark, RtTask};

/// Configuration for a periodic run.
///
/// Shared runner knobs (seed, horizon, constraint, estimator, sanitizer)
/// live in [`common`](PeriodicConfig::common); the builder-style setters
/// below forward to it so call sites need not spell the nesting out.
#[derive(Debug, Clone)]
pub struct PeriodicConfig {
    /// Knobs shared with every other runner; the constraint is 15 µs in
    /// Figures 6–7.
    pub common: RunCommon,
    /// The periodic task.
    pub task: RtTask,
    /// Use the strict idempotence condition for flushing decisions (§4.3).
    pub strict_idem: bool,
    /// Re-dispatch preempted blocks before fresh ones (the paper's policy;
    /// `false` is the ablation in `bench --bin ablation-tb-queue`).
    pub prefer_preempted: bool,
    /// Execute the real-time task as an actual kernel on its acquired SMs
    /// (contending for memory bandwidth) instead of a pure reservation.
    /// Off by default — the paper isolates the benchmark's throughput and
    /// neglects the synthetic task's, so a reservation is the faithful
    /// model; this switch is the fidelity ablation
    /// (`bench --bin ablation-task-sim`).
    pub simulate_task: bool,
}

impl PeriodicConfig {
    /// The paper's §4.1 setup (15 µs constraint) over a default horizon.
    pub fn paper_default(cfg: &GpuConfig) -> Self {
        PeriodicConfig {
            common: RunCommon::new(24_000.0, 15.0),
            task: RtTask::paper_default(cfg),
            strict_idem: false,
            prefer_preempted: true,
            simulate_task: false,
        }
    }

    /// Replace the shared runner knobs wholesale.
    pub fn common(mut self, common: RunCommon) -> Self {
        self.common = common;
        self
    }

    /// Set the determinism seed (forwards to [`RunCommon::seed`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.common.seed = seed;
        self
    }

    /// Set the simulated horizon, µs (forwards to [`RunCommon::horizon_us`]).
    pub fn horizon_us(mut self, horizon_us: f64) -> Self {
        self.common.horizon_us = horizon_us;
        self
    }

    /// Set the latency constraint, µs (forwards to
    /// [`RunCommon::constraint_us`]).
    pub fn constraint_us(mut self, constraint_us: f64) -> Self {
        self.common.constraint_us = constraint_us;
        self
    }

    /// Set the estimator configuration (forwards to
    /// [`RunCommon::estimator`]).
    pub fn estimator(mut self, estimator: EstimatorConfig) -> Self {
        self.common.estimator = estimator;
        self
    }

    /// Enable or disable the dynamic flush sanitizer (forwards to
    /// [`RunCommon::sanitize`]).
    pub fn sanitize(mut self, sanitize: bool) -> Self {
        self.common.sanitize = sanitize;
        self
    }

    /// Set the periodic task.
    pub fn task(mut self, task: RtTask) -> Self {
        self.task = task;
        self
    }

    /// Use the strict idempotence condition for flushing decisions (§4.3).
    pub fn strict_idem(mut self, strict: bool) -> Self {
        self.strict_idem = strict;
        self
    }

    /// Re-dispatch preempted blocks before fresh ones.
    pub fn prefer_preempted(mut self, prefer: bool) -> Self {
        self.prefer_preempted = prefer;
        self
    }

    /// Execute the real-time task as an actual kernel (fidelity ablation).
    pub fn simulate_task(mut self, simulate: bool) -> Self {
        self.simulate_task = simulate;
        self
    }
}

/// Build the synthetic task's kernel: compute-bound, sized so one wave of
/// blocks across the task's SMs executes for `exec_us`.
fn task_kernel(cfg: &GpuConfig, task: &workloads::RtTask) -> gpu_sim::KernelDesc {
    use gpu_sim::{KernelDesc, Program, Segment};
    let tbs_per_sm = 8u32;
    let warps = 4u64;
    let cycles = cfg.us_to_cycles(task.exec_us);
    // Checked narrowing: the old `as u32` silently wrapped for execution
    // windows past ~49 s of straight-line work, producing a tiny (or zero-
    // padded) task kernel instead of a long one. Saturate and flag instead.
    let insts64 = (cycles / (cfg.issue_interval() * warps * u64::from(tbs_per_sm))).max(8);
    debug_assert!(
        u32::try_from(insts64).is_ok(),
        "task kernel of {insts64} insts/warp exceeds u32 grid maths"
    );
    let insts = u32::try_from(insts64).unwrap_or(u32::MAX);
    KernelDesc::builder("rt-task")
        .grid_blocks(u32::try_from(task.sms_needed).expect("SM count fits u32") * tbs_per_sm)
        .threads_per_block(128)
        .regs_per_thread(16)
        .program(Program::new(vec![
            Segment::load((insts / 50).max(1)),
            Segment::compute(insts - (insts / 50).max(1)),
        ]))
        .build()
        .expect("task kernel is valid")
}

/// Result of a periodic run.
#[derive(Debug, Clone)]
pub struct PeriodicResult {
    /// Policy that served the preemption requests.
    pub policy: String,
    /// Benchmark that was preempted.
    pub benchmark: String,
    /// Preemption requests issued.
    pub requests: u64,
    /// Requests that missed the latency constraint.
    pub violations: u64,
    /// Useful warp instructions the benchmark completed in the horizon.
    pub useful_insts: u64,
    /// Per-block technique usage across all SM preemptions.
    pub technique_counts: HashMap<Technique, u64>,
    /// Mean hand-over latency of non-violating requests, µs; `None` when
    /// every request violated (the former `f64::NAN` representation poisoned
    /// any downstream sum or average).
    pub mean_ok_latency_us: Option<f64>,
    /// Per-request log: `(request time µs, hand-over latency µs if all SMs
    /// were acquired, SMs acquired by the end of the run)`.
    pub request_log: Vec<(f64, Option<f64>, usize)>,
    /// Warp instructions the benchmark lost to flush re-execution.
    pub wasted_flush_insts: u64,
    /// Blocks context-switched out across the run.
    pub switch_count: u64,
    /// Blocks flushed across the run.
    pub flush_count: u64,
    /// Predicted-vs-actual latency of every drained block, joined
    /// incrementally during the run (completion order). Empty for
    /// non-Chimera policies, which never consult the estimator. Aggregate
    /// with [`crate::obs::accuracy_per_kernel`].
    pub drain_samples: Vec<DrainSample>,
}

impl PeriodicResult {
    /// Percentage of requests that violated the constraint.
    pub fn violation_pct(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            100.0 * self.violations as f64 / self.requests as f64
        }
    }

    /// Throughput overhead versus an oracle run of the same scenario, %.
    ///
    /// Clamped at 0: a policy that misses deadlines keeps SMs longer than the
    /// task period allows, and the paper's *effective throughput* explicitly
    /// "ignores the throughput additionally gained" that way (§4.1).
    pub fn overhead_pct_vs(&self, oracle: &PeriodicResult) -> f64 {
        if oracle.useful_insts == 0 {
            return 0.0;
        }
        (100.0 * (1.0 - self.useful_insts as f64 / oracle.useful_insts as f64)).max(0.0)
    }
}

#[derive(Debug)]
struct Request {
    t: u64,
    needed: usize,
    acquired: usize,
    completed_at: Option<u64>,
    evaluated: bool,
    task_kid: Option<gpu_sim::KernelId>,
}

/// Shared mutable run state.
#[derive(Debug)]
struct RunState {
    /// SM → release cycle (reserved by the RT task). Ordered: the map is
    /// iterated while mutating the engine, so a `HashMap` here would leak the
    /// OS-randomized hash seed into the simulation (the hash-iter lint).
    reserved: BTreeMap<usize, u64>,
    /// SM → request index (engine-level preemption in flight for the task).
    pending_preempt: HashMap<usize, usize>,
    /// SM → request index (flush policy waiting for an idempotent moment).
    /// Ordered for the same reason as `reserved`.
    flush_wait: BTreeMap<usize, usize>,
    /// Task kernel → SMs it occupies (only when `simulate_task` is on).
    task_sms: HashMap<gpu_sim::KernelId, Vec<usize>>,
    requests: Vec<Request>,
    obs: ObsBank,
    /// Incremental drain decision↔completion join (tentpole closed loop).
    drains: DrainTracker,
}

/// Run the periodic experiment for one benchmark under one policy.
pub fn run_periodic(
    cfg: &GpuConfig,
    bench: &Benchmark,
    policy: Policy,
    pcfg: &PeriodicConfig,
) -> PeriodicResult {
    run_periodic_traced(cfg, bench, policy, pcfg, 0).0
}

/// Like [`run_periodic`], but with the engine's
/// [event log](gpu_sim::EventLog) enabled (ring capacity `event_capacity`;
/// `0` leaves it disabled) and the finished [`Engine`] returned alongside the
/// result, so the caller can export a Chrome trace
/// ([`gpu_sim::trace::chrome_trace_json`]), dump the raw events, or compute
/// estimator accuracy ([`crate::obs::drain_accuracy`]).
///
/// ```
/// use chimera::policy::Policy;
/// use chimera::runner::periodic::{run_periodic_traced, PeriodicConfig};
/// use workloads::Suite;
///
/// let suite = Suite::standard();
/// let cfg = suite.config();
/// let pcfg = PeriodicConfig::paper_default(cfg).horizon_us(4_000.0);
/// let (result, engine) = run_periodic_traced(
///     cfg,
///     suite.require("BS"),
///     Policy::chimera_us(15.0),
///     &pcfg,
///     1 << 16,
/// );
/// assert!(result.requests > 0);
/// let log = engine.event_log().expect("tracing was enabled");
/// assert!(log.iter().any(|e| e.kind() == "decision"));
/// ```
pub fn run_periodic_traced(
    cfg: &GpuConfig,
    bench: &Benchmark,
    policy: Policy,
    pcfg: &PeriodicConfig,
    event_capacity: usize,
) -> (PeriodicResult, Engine) {
    let mut engine = Engine::with_seed(cfg.clone(), pcfg.common.seed);
    engine.set_exec_mode(pcfg.common.exec_mode());
    if event_capacity > 0 {
        engine.enable_event_log(event_capacity);
    }
    if pcfg.common.sanitize {
        engine.enable_sanitizer();
    }
    if pcfg.common.race_check {
        engine.enable_race_sanitizer();
    }
    engine.set_break_on_kernel_finish(true);
    engine.set_prefer_preempted(pcfg.prefer_preempted);
    if policy.is_oracle() {
        engine.set_free_context_moves(true);
    }
    let mut job = crate::runner::Job::new(bench.clone(), None);
    job.ensure_running(&mut engine);
    let mut st = RunState {
        reserved: BTreeMap::new(),
        pending_preempt: HashMap::new(),
        flush_wait: BTreeMap::new(),
        task_sms: HashMap::new(),
        requests: Vec::new(),
        obs: ObsBank::with_estimator(pcfg.common.estimator),
        drains: DrainTracker::new(),
    };
    let horizon = cfg.us_to_cycles(pcfg.common.horizon_us);
    let period = pcfg.task.period_cycles(cfg);
    let exec = pcfg.task.exec_cycles(cfg);
    let constraint = cfg.us_to_cycles(pcfg.common.constraint_us);
    let poll = cfg.us_to_cycles(0.5).max(1);
    let mut next_request = period;

    while engine.cycle() < horizon {
        // Next interesting time point.
        let mut t_next = horizon.min(next_request);
        if let Some(&r) = st.reserved.values().min() {
            t_next = t_next.min(r);
        }
        if !st.flush_wait.is_empty() {
            t_next = t_next.min(engine.cycle() + poll);
        }
        for rq in &st.requests {
            if !rq.evaluated {
                t_next = t_next.min(rq.t + constraint);
            }
        }
        let t_next = t_next.max(engine.cycle() + 1);
        let events = engine.run_until(t_next);
        let now = engine.cycle();
        for ev in events {
            match ev {
                Event::TbCompleted {
                    kernel,
                    sm,
                    block,
                    insts,
                    cycles,
                    cycle,
                } => {
                    let name = base_kernel_name(&engine.kernel_stats(kernel).name);
                    st.obs.record_tb(&name, insts, cycles);
                    st.drains.note_completion(&name, sm, kernel.0, block, cycle);
                    // Periodically surface the live estimator state to the
                    // observability event log: at the moment the quantile
                    // becomes trusted and every 256 completions after.
                    if pcfg.common.estimator.mode == EstimatorMode::Online {
                        let n = st.obs.samples(&name);
                        if n == pcfg.common.estimator.min_samples || n.is_multiple_of(256) {
                            let o = st.obs.obs(&name);
                            engine.record_estimator_update(
                                kernel,
                                n,
                                o.avg_tb_insts.unwrap_or(0.0).round() as u64,
                                o.quantile_tb_insts.unwrap_or(0.0).round() as u64,
                                pcfg.common.estimator.risk_pct(),
                            );
                        }
                    }
                }
                Event::PreemptionCompleted { sm, .. } => {
                    if let Some(req_idx) = st.pending_preempt.remove(&sm) {
                        acquire(&mut engine, &mut st, pcfg, cfg, req_idx, sm, now, exec);
                    }
                }
                Event::KernelFinished { kernel } => {
                    // A finished task kernel returns its SMs to the benchmark.
                    if let Some(sms) = st.task_sms.remove(&kernel) {
                        for sm in sms {
                            st.reserved.remove(&sm);
                        }
                    }
                }
                _ => {}
            }
        }
        // Flush policy: reset SMs the moment every resident block is safe.
        // `flush_wait` is a BTreeMap, so this snapshot is already ordered by
        // SM index — `try_flush`/`acquire` mutate the engine, so iteration
        // order must be deterministic.
        let waiting: Vec<(usize, usize)> = st.flush_wait.iter().map(|(&s, &r)| (s, r)).collect();
        for (sm, req_idx) in waiting {
            if periodic_try_flush(&mut engine, sm) {
                st.flush_wait.remove(&sm);
                acquire(&mut engine, &mut st, pcfg, cfg, req_idx, sm, now, exec);
            }
        }
        // Release expired reservations back to the benchmark.
        st.reserved.retain(|_, &mut release| release > now);
        // Evaluate deadline violations.
        for rq in &mut st.requests {
            if !rq.evaluated && now >= rq.t + constraint {
                rq.evaluated = true;
            }
        }
        // New periodic request.
        if now >= next_request && next_request < horizon {
            issue_request(&mut engine, &mut st, policy, pcfg, cfg, now, exec, &job);
            next_request += period;
        }
        // Keep the benchmark running and (re)assigned to all free SMs.
        job.ensure_running(&mut engine);
        let current = job.current();
        for sm in 0..cfg.num_sms {
            if st.reserved.contains_key(&sm)
                || st.pending_preempt.contains_key(&sm)
                || engine.sm_is_preempting(sm)
            {
                continue;
            }
            if engine.sm_assigned(sm) != current {
                engine.assign_sm(sm, current);
            }
        }
    }

    // Final accounting.
    let mut technique_counts: HashMap<Technique, u64> = HashMap::new();
    for rec in engine.preempt_records() {
        for &t in &rec.techniques {
            *technique_counts.entry(t).or_insert(0) += 1;
        }
    }
    let mut violations = 0u64;
    let mut ok_lat = Vec::new();
    for rq in &st.requests {
        let ok = matches!(rq.completed_at,
            Some(done) if done <= rq.t + constraint && rq.acquired >= rq.needed);
        if ok {
            ok_lat.push(cfg.cycles_to_us(rq.completed_at.expect("ok implies completed") - rq.t));
        } else {
            violations += 1;
        }
    }
    let mean_ok_latency_us =
        (!ok_lat.is_empty()).then(|| ok_lat.iter().sum::<f64>() / ok_lat.len() as f64);
    let request_log = st
        .requests
        .iter()
        .map(|rq| {
            (
                cfg.cycles_to_us(rq.t),
                rq.completed_at.map(|c| cfg.cycles_to_us(c - rq.t)),
                rq.acquired,
            )
        })
        .collect();
    let (mut wasted_flush_insts, mut switch_count, mut flush_count) = (0u64, 0u64, 0u64);
    for &kid in job.instances() {
        let s = engine.kernel_stats(kid);
        wasted_flush_insts += s.wasted_flush_insts;
        switch_count += s.switch_count;
        flush_count += s.flush_count;
    }
    let result = PeriodicResult {
        policy: policy.to_string(),
        benchmark: bench.name().to_string(),
        requests: u64::try_from(st.requests.len()).expect("request count fits u64"),
        violations,
        useful_insts: job.useful_insts(&engine),
        technique_counts,
        mean_ok_latency_us,
        request_log,
        wasted_flush_insts,
        switch_count,
        flush_count,
        drain_samples: st.drains.into_samples(),
    };
    super::assert_race_clean(&engine, "run_periodic");
    (result, engine)
}

use super::{periodic_name as base_kernel_name, periodic_try_flush};

#[allow(clippy::too_many_arguments)]
fn acquire(
    engine: &mut Engine,
    st: &mut RunState,
    pcfg: &PeriodicConfig,
    cfg: &GpuConfig,
    req_idx: usize,
    sm: usize,
    now: u64,
    exec: u64,
) {
    if pcfg.simulate_task {
        // Hand the SM to a real task kernel; it is released when the kernel
        // finishes.
        let kid = match st.requests[req_idx].task_kid {
            Some(k) => k,
            None => {
                let k = engine.launch_kernel(task_kernel(cfg, &pcfg.task));
                st.requests[req_idx].task_kid = Some(k);
                k
            }
        };
        engine.assign_sm(sm, Some(kid));
        st.task_sms.entry(kid).or_default().push(sm);
        st.reserved.insert(sm, u64::MAX);
    } else {
        engine.assign_sm(sm, None);
        st.reserved.insert(sm, now + exec);
    }
    let rq = &mut st.requests[req_idx];
    rq.acquired += 1;
    if rq.acquired >= rq.needed && rq.completed_at.is_none() {
        rq.completed_at = Some(now);
    }
}

#[allow(clippy::too_many_arguments)]
fn issue_request(
    engine: &mut Engine,
    st: &mut RunState,
    policy: Policy,
    pcfg: &PeriodicConfig,
    cfg: &GpuConfig,
    now: u64,
    exec: u64,
    job: &crate::runner::Job,
) {
    let needed = pcfg.task.sms_needed;
    st.requests.push(Request {
        t: now,
        needed,
        acquired: 0,
        completed_at: None,
        evaluated: false,
        task_kid: None,
    });
    let req_idx = st.requests.len() - 1;
    // Candidate SMs: not already reserved / claimed / mid-preemption.
    let mut candidates: Vec<usize> = (0..cfg.num_sms)
        .filter(|sm| {
            !st.reserved.contains_key(sm)
                && !st.pending_preempt.contains_key(sm)
                && !st.flush_wait.contains_key(sm)
                && !engine.sm_is_preempting(*sm)
        })
        .collect();
    // Idle SMs are free wins (size-bound kernels leave SMs empty, §4.1).
    candidates.sort_by_key(|&sm| (engine.sm_resident_count(sm), sm));
    let mut remaining = needed;
    let mut occupied = Vec::new();
    for sm in candidates {
        if remaining == 0 {
            break;
        }
        if engine.sm_resident_count(sm) == 0 {
            acquire(engine, st, pcfg, cfg, req_idx, sm, now, exec);
            remaining -= 1;
        } else {
            occupied.push(sm);
        }
    }
    if remaining == 0 {
        return;
    }
    // Flush eligibility comes from the dataflow analysis over the program's
    // access regions; the sanitizer cross-checks its verdict dynamically
    // when enabled.
    let kernel_strictly_idempotent = job
        .current()
        .map(|k| idem::analyze(engine.kernel_desc(k).program()).strict_idempotent)
        .unwrap_or(true);
    match policy {
        Policy::Switch | Policy::Drain | Policy::Oracle => {
            let tech = if policy == Policy::Drain {
                Technique::Drain
            } else {
                Technique::Switch
            };
            for &sm in occupied.iter().take(remaining) {
                let plan = SmPreemptPlan::uniform(engine.sm_resident_indices(sm), tech);
                match engine.preempt_sm(sm, &plan) {
                    Ok(true) => acquire(engine, st, pcfg, cfg, req_idx, sm, now, exec),
                    Ok(false) => {
                        st.pending_preempt.insert(sm, req_idx);
                    }
                    Err(_) => {
                        // Became empty in the meantime: a free win.
                        acquire(engine, st, pcfg, cfg, req_idx, sm, now, exec);
                    }
                }
            }
        }
        Policy::Flush => {
            // Strict condition: a non-idempotent kernel is never flushable.
            if pcfg.strict_idem && !kernel_strictly_idempotent {
                // The SMs can never be reset; the request is doomed to
                // violate. (No state to track — nothing will ever acquire.)
                return;
            }
            for &sm in occupied.iter().take(remaining) {
                if periodic_try_flush(engine, sm) {
                    acquire(engine, st, pcfg, cfg, req_idx, sm, now, exec);
                } else {
                    st.flush_wait.insert(sm, req_idx);
                }
            }
        }
        Policy::Chimera { limit_us } => {
            let limit = cfg.us_to_cycles(limit_us);
            let Some(kid) = job.current() else { return };
            let desc = engine.kernel_desc(kid);
            let name = base_kernel_name(desc.name());
            let req = SelectionRequest {
                limit_cycles: limit,
                num_preempts: remaining,
                ctx_bytes_per_tb: desc.block_context_bytes(),
                obs: st.obs.obs(&name),
                flush_allowed: !pcfg.strict_idem || kernel_strictly_idempotent,
                estimator: pcfg.common.estimator,
            };
            let snapshots: Vec<_> = occupied.iter().map(|&sm| engine.sm_snapshot(sm)).collect();
            for plan in select_preemptions(cfg, &req, &snapshots) {
                // Feed the Algorithm 1 decision (inputs + choice) to the
                // observability event log before executing it, and register
                // drain decisions with the live estimator-accuracy join.
                for d in &plan.decisions {
                    engine.record_decision(plan.sm, kid, limit, *d);
                    if d.chosen == Technique::Drain {
                        if let Some(est) = d.est_drain {
                            st.drains.note_decision(
                                plan.sm,
                                kid.0,
                                d.block,
                                now,
                                est.latency_cycles,
                            );
                        }
                    }
                }
                match engine.preempt_sm(plan.sm, &plan.plan) {
                    Ok(true) => acquire(engine, st, pcfg, cfg, req_idx, plan.sm, now, exec),
                    Ok(false) => {
                        st.pending_preempt.insert(plan.sm, req_idx);
                    }
                    Err(_) => {
                        acquire(engine, st, pcfg, cfg, req_idx, plan.sm, now, exec);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::Suite;

    fn quick_cfg(cfg: &GpuConfig, horizon_us: f64) -> PeriodicConfig {
        PeriodicConfig::paper_default(cfg).horizon_us(horizon_us)
    }

    #[test]
    fn all_violations_yield_no_ok_latency() {
        // A task demanding more SMs than the GPU has can never be fully
        // served, so every request violates. The mean OK latency must be
        // the empty case (`None`) — not the former NaN, which poisoned any
        // downstream sum or average over per-benchmark results.
        let suite = Suite::standard();
        let cfg = suite.config();
        let mut pc = quick_cfg(cfg, 3_000.0);
        pc.common.constraint_us = 2.0;
        pc.task.sms_needed = cfg.num_sms + 1;
        let r = run_periodic(cfg, suite.require("BS"), Policy::Switch, &pc);
        assert!(r.requests > 0);
        assert_eq!(r.violations, r.requests, "every request must violate");
        assert_eq!(r.mean_ok_latency_us, None);
        assert!((r.violation_pct() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn violation_pct_survives_counts_past_u32() {
        // Regression for the former u32 `requests`/`violations` fields: a
        // run long enough to issue more than u32::MAX requests silently
        // truncated its request count.
        let r = PeriodicResult {
            policy: "switch".into(),
            benchmark: "X".into(),
            requests: u64::from(u32::MAX) + 10,
            violations: u64::from(u32::MAX) / 2,
            useful_insts: 0,
            technique_counts: HashMap::new(),
            mean_ok_latency_us: None,
            request_log: Vec::new(),
            wasted_flush_insts: 0,
            switch_count: 0,
            flush_count: 0,
            drain_samples: Vec::new(),
        };
        let pct = r.violation_pct();
        assert!(pct > 0.0 && pct < 100.0 && pct.is_finite(), "{pct}");
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "exceeds u32 grid maths"))]
    fn task_kernel_insts_never_wrap() {
        // An absurd execution window used to wrap `as u32` into a tiny task
        // kernel; now it trips the debug_assert (debug builds) or saturates
        // at u32::MAX (release builds).
        let suite = Suite::standard();
        let cfg = suite.config();
        let mut task = RtTask::paper_default(cfg);
        task.exec_us = 1.0e13;
        let k = task_kernel(cfg, &task);
        assert!(
            k.program().insts_per_warp() >= u64::from(u32::MAX) / 2,
            "saturated, not wrapped: {}",
            k.program().insts_per_warp()
        );
    }

    #[test]
    fn incremental_drain_join_matches_post_mortem() {
        // The tentpole's live DrainTracker must reproduce the event-log
        // post-mortem join exactly (same decisions, same completion cycles).
        let suite = Suite::standard();
        let cfg = suite.config();
        let pc = quick_cfg(cfg, 4_000.0);
        let (r, engine) = run_periodic_traced(
            cfg,
            suite.require("BS"),
            Policy::chimera_us(15.0),
            &pc,
            1 << 18,
        );
        assert!(!r.drain_samples.is_empty(), "chimera on BS drains blocks");
        let live = crate::obs::accuracy_per_kernel(cfg, &r.drain_samples);
        let post = crate::obs::drain_accuracy(&engine);
        assert_eq!(live, post);
    }

    #[test]
    fn online_estimator_runs_and_keeps_request_cadence() {
        let suite = Suite::standard();
        let cfg = suite.config();
        let static_r = run_periodic(
            cfg,
            suite.require("BS"),
            Policy::chimera_us(15.0),
            &quick_cfg(cfg, 4_000.0),
        );
        let mut pc = quick_cfg(cfg, 4_000.0);
        pc.common.estimator = crate::cost::EstimatorConfig::online(0.95);
        let online_r = run_periodic(cfg, suite.require("BS"), Policy::chimera_us(15.0), &pc);
        // The request schedule is policy-independent.
        assert_eq!(online_r.requests, static_r.requests);
        assert!(online_r.requests > 0);
        // The online estimator may only help the violation rate here.
        assert!(
            online_r.violations <= static_r.violations,
            "online {} vs static {}",
            online_r.violations,
            static_r.violations
        );
    }

    #[test]
    fn online_estimator_emits_update_events() {
        let suite = Suite::standard();
        let cfg = suite.config();
        let mut pc = quick_cfg(cfg, 4_000.0);
        pc.common.estimator = crate::cost::EstimatorConfig::online(0.95);
        let (_, engine) = run_periodic_traced(
            cfg,
            suite.require("BS"),
            Policy::chimera_us(15.0),
            &pc,
            1 << 18,
        );
        let log = engine.event_log().expect("tracing enabled");
        let updates: Vec<_> = log
            .iter()
            .filter(|e| e.kind() == "estimator_update")
            .collect();
        assert!(
            !updates.is_empty(),
            "online mode must log estimator updates"
        );
        // Static mode logs none.
        let (_, engine) = run_periodic_traced(
            cfg,
            suite.require("BS"),
            Policy::chimera_us(15.0),
            &quick_cfg(cfg, 4_000.0),
            1 << 18,
        );
        let log = engine.event_log().expect("tracing enabled");
        assert!(log.iter().all(|e| e.kind() != "estimator_update"));
    }

    #[test]
    fn oracle_never_violates() {
        let suite = Suite::standard();
        let bench = suite.require("SAD");
        let r = run_periodic(
            suite.config(),
            bench,
            Policy::Oracle,
            &quick_cfg(suite.config(), 5_000.0),
        );
        assert!(r.requests >= 4, "requests={}", r.requests);
        assert_eq!(r.violations, 0, "oracle must be instant");
        assert!(r.useful_insts > 0);
    }

    #[test]
    fn drain_violates_for_long_blocks_but_not_short() {
        let suite = Suite::standard();
        let cfg = suite.config();
        // BS blocks run 60.9 us >> 15 us constraint: draining must violate.
        let long = run_periodic(
            cfg,
            suite.require("BS"),
            Policy::Drain,
            &quick_cfg(cfg, 5_000.0),
        );
        assert!(
            long.violation_pct() > 50.0,
            "BS drain: {}",
            long.violation_pct()
        );
        // BP blocks run ~2-3 us: draining meets 15 us easily.
        let short = run_periodic(
            cfg,
            suite.require("BP"),
            Policy::Drain,
            &quick_cfg(cfg, 5_000.0),
        );
        assert!(
            short.violation_pct() < 10.0,
            "BP drain: {}",
            short.violation_pct()
        );
    }

    #[test]
    fn flush_is_instant_for_idempotent_kernels() {
        let suite = Suite::standard();
        let cfg = suite.config();
        let r = run_periodic(
            cfg,
            suite.require("HS"),
            Policy::Flush,
            &quick_cfg(cfg, 5_000.0),
        );
        assert_eq!(r.violations, 0, "HS is idempotent; flushing is instant");
    }

    #[test]
    fn chimera_meets_constraint_where_singles_fail() {
        let suite = Suite::standard();
        let cfg = suite.config();
        // BS: drain violates (long blocks), switch violates (17 us > 15 us);
        // Chimera flushes young blocks / drains old ones.
        let c = run_periodic(
            cfg,
            suite.require("BS"),
            Policy::chimera_us(15.0),
            &quick_cfg(cfg, 5_000.0),
        );
        assert!(
            c.violation_pct() < 10.0,
            "chimera on BS: {}",
            c.violation_pct()
        );
        let s = run_periodic(
            cfg,
            suite.require("BS"),
            Policy::Switch,
            &quick_cfg(cfg, 5_000.0),
        );
        assert!(
            s.violation_pct() > 50.0,
            "switch on BS: {}",
            s.violation_pct()
        );
    }

    #[test]
    fn overhead_breakdown_matches_policy() {
        let suite = Suite::standard();
        let cfg = suite.config();
        let bench = suite.require("HS");
        let flush = run_periodic(cfg, bench, Policy::Flush, &quick_cfg(cfg, 4_000.0));
        assert!(flush.flush_count > 0);
        assert_eq!(flush.switch_count, 0);
        assert!(flush.wasted_flush_insts > 0, "flushing must discard work");
        let switch = run_periodic(cfg, bench, Policy::Switch, &quick_cfg(cfg, 4_000.0));
        assert!(switch.switch_count > 0);
        assert_eq!(switch.flush_count, 0);
        assert_eq!(switch.wasted_flush_insts, 0, "switching preserves all work");
    }

    #[test]
    fn simulated_task_contends_but_still_meets_deadlines() {
        let suite = Suite::standard();
        let cfg = suite.config();
        let mut pc = quick_cfg(cfg, 5_000.0);
        pc.simulate_task = true;
        let sim = run_periodic(cfg, suite.require("SAD"), Policy::chimera_us(15.0), &pc);
        let res = run_periodic(
            cfg,
            suite.require("SAD"),
            Policy::chimera_us(15.0),
            &quick_cfg(cfg, 5_000.0),
        );
        assert_eq!(sim.requests, res.requests);
        assert_eq!(sim.violations, 0, "simulated task must not break deadlines");
        // The real task's memory traffic can only slow the benchmark down.
        assert!(
            sim.useful_insts <= res.useful_insts + res.useful_insts / 50,
            "sim {} vs reservation {}",
            sim.useful_insts,
            res.useful_insts
        );
    }

    #[test]
    fn sanitizer_validates_flush_decisions_across_the_suite() {
        // The dynamic oracle must agree with the static analysis: no flushed
        // block may have overwritten a location it read (unsafe flush), no
        // statically-idempotent block may turn out dirty (false negative),
        // and no statically-dirty block may finish with a clean footprint
        // (the analysis would be imprecise, not unsound — but our regions
        // are exact, so it must not happen either).
        let suite = Suite::standard();
        let cfg = suite.config();
        for bench in ["BS", "HS", "NW", "FWT", "BT"] {
            for policy in [Policy::Flush, Policy::chimera_us(15.0)] {
                let mut pc = quick_cfg(cfg, 4_000.0);
                pc.common.sanitize = true;
                let (r, mut engine) =
                    run_periodic_traced(cfg, suite.require(bench), policy, &pc, 0);
                let san = engine.take_sanitizer().expect("sanitizer was enabled");
                let rep = san.report();
                assert!(
                    rep.is_clean(),
                    "{bench}/{policy}: unsafe flushes {} false negatives {}",
                    rep.unsafe_flushes,
                    rep.false_negatives
                );
                assert_eq!(
                    rep.static_dirty_but_clean, 0,
                    "{bench}/{policy}: static/dynamic disagreement"
                );
                assert!(rep.blocks_completed > 0, "{bench}/{policy}: ran no blocks");
                if policy == Policy::Flush && r.flush_count > 0 {
                    assert!(rep.flushes_checked > 0, "{bench}: flushes unchecked");
                }
            }
        }
    }

    #[test]
    fn strict_idempotence_dooms_flush_on_non_idempotent_kernels() {
        let strict_suite = Suite::strict();
        let cfg = strict_suite.config();
        let mut pc = quick_cfg(cfg, 5_000.0);
        pc.strict_idem = true;
        let r = run_periodic(cfg, strict_suite.require("NW"), Policy::Flush, &pc);
        // Most requests fail (only end-of-kernel idle windows can ever be
        // acquired, since NW's kernels are non-idempotent under the strict
        // condition).
        assert!(
            r.violation_pct() > 60.0,
            "strict flush on NW: {}",
            r.violation_pct()
        );
        // Relaxed condition rescues the same benchmark.
        let suite = Suite::standard();
        let r2 = run_periodic(
            suite.config(),
            suite.require("NW"),
            Policy::Flush,
            &quick_cfg(suite.config(), 5_000.0),
        );
        assert!(
            r2.violation_pct() < r.violation_pct(),
            "relaxed {} vs strict {}",
            r2.violation_pct(),
            r.violation_pct()
        );
    }
}
