//! Config fields shared by every runner.
//!
//! Three runners ([`run_periodic`](crate::runner::periodic::run_periodic),
//! [`run_pair`](crate::runner::multiprog::run_pair),
//! [`run_serve`](crate::runner::serve::run_serve)) used to duplicate the
//! same knobs — seed, horizon, latency constraint, estimator, sanitizer —
//! so every new knob was threaded by hand through N config structs and ~15
//! bench binaries. [`RunCommon`] holds them once; each runner config embeds
//! it as a public `common` field and forwards builder-style setters, so
//! adding a shared knob is one change here, not N.

use crate::cost::EstimatorConfig;

/// Runner knobs shared by every experiment driver.
///
/// Construct with [`RunCommon::new`] and chain setters; runner configs
/// embed this as their `common` field.
///
/// ```
/// use chimera::runner::RunCommon;
/// use chimera::EstimatorConfig;
///
/// let c = RunCommon::new(24_000.0, 15.0)
///     .seed(7)
///     .estimator(EstimatorConfig::online(0.9));
/// assert_eq!(c.seed, 7);
/// assert_eq!(c.horizon_us, 24_000.0);
/// assert!(!c.sanitize);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunCommon {
    /// Determinism seed. Every runner's output is a pure function of its
    /// config (including this seed), independent of worker-thread count.
    pub seed: u64,
    /// Simulated horizon, µs.
    pub horizon_us: f64,
    /// Preemption latency constraint, µs (Chimera's deadline input).
    pub constraint_us: f64,
    /// Drain/flush cost estimator configuration.
    pub estimator: EstimatorConfig,
    /// Run with the dynamic flush sanitizer enabled (slower; for
    /// verification passes, not measurement runs).
    pub sanitize: bool,
    /// Run with the shard-race sanitizer enabled: every access to shared
    /// engine state during the parallel engine's pure Phase A is checked
    /// against the shadow ownership map (see `gpu_sim::RaceSanitizer`).
    /// Zero-cost in serial modes; for verification passes, not measurement
    /// runs.
    pub race_check: bool,
    /// Number of SM shards for the engine's parallel execution mode
    /// (`gpu_sim::ExecMode::Parallel`). `0` (the default) keeps the serial
    /// event-calendar engine; any positive value shards intra-run SM
    /// advancement across that many worker threads with byte-identical
    /// output (see `PARALLELISM.md`). Orthogonal to the bench harness
    /// `--jobs` flag, which parallelises across *cells*, not within a run.
    pub par_shards: usize,
}

impl RunCommon {
    /// Shared knobs with the given horizon and latency constraint; seed 42,
    /// static estimator, sanitizer off.
    ///
    /// There is deliberately no `Default`: a zero horizon silently measures
    /// nothing, so both time knobs must be spelled out.
    pub fn new(horizon_us: f64, constraint_us: f64) -> Self {
        RunCommon {
            seed: 42,
            horizon_us,
            constraint_us,
            estimator: EstimatorConfig::default(),
            sanitize: false,
            race_check: false,
            par_shards: 0,
        }
    }

    /// Set the determinism seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the simulated horizon, µs.
    pub fn horizon_us(mut self, horizon_us: f64) -> Self {
        self.horizon_us = horizon_us;
        self
    }

    /// Set the preemption latency constraint, µs.
    pub fn constraint_us(mut self, constraint_us: f64) -> Self {
        self.constraint_us = constraint_us;
        self
    }

    /// Set the estimator configuration.
    pub fn estimator(mut self, estimator: EstimatorConfig) -> Self {
        self.estimator = estimator;
        self
    }

    /// Enable or disable the dynamic flush sanitizer.
    pub fn sanitize(mut self, sanitize: bool) -> Self {
        self.sanitize = sanitize;
        self
    }

    /// Enable or disable the shard-race sanitizer.
    pub fn race_check(mut self, race_check: bool) -> Self {
        self.race_check = race_check;
        self
    }

    /// Set the intra-run shard count (0 = serial engine).
    pub fn par_shards(mut self, par_shards: usize) -> Self {
        self.par_shards = par_shards;
        self
    }

    /// The engine execution mode implied by [`par_shards`](Self::par_shards).
    pub fn exec_mode(&self) -> gpu_sim::ExecMode {
        if self.par_shards > 0 {
            gpu_sim::ExecMode::Parallel {
                shards: self.par_shards,
            }
        } else {
            gpu_sim::ExecMode::Event
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::EstimatorMode;

    #[test]
    fn builder_chains_and_defaults() {
        let c = RunCommon::new(1_000.0, 15.0);
        assert_eq!(c.seed, 42);
        assert_eq!(c.estimator, EstimatorConfig::default());
        assert!(!c.sanitize);
        assert!(!c.race_check);
        assert_eq!(c.par_shards, 0);
        assert_eq!(c.exec_mode(), gpu_sim::ExecMode::Event);
        let c = c
            .seed(9)
            .horizon_us(2_000.0)
            .constraint_us(30.0)
            .estimator(EstimatorConfig::online(0.5))
            .sanitize(true)
            .race_check(true)
            .par_shards(4);
        assert_eq!(c.seed, 9);
        assert_eq!(c.horizon_us, 2_000.0);
        assert_eq!(c.constraint_us, 30.0);
        assert_eq!(c.estimator.mode, EstimatorMode::Online);
        assert!(c.sanitize);
        assert!(c.race_check);
        assert_eq!(c.par_shards, 4);
        assert_eq!(c.exec_mode(), gpu_sim::ExecMode::Parallel { shards: 4 });
    }
}
