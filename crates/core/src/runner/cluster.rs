//! Multi-device serving: a cluster front-end over N independent GPUs.
//!
//! The single-device serve runner ([`crate::runner::serve`]) models one GPU
//! behind an admission controller. Real deployments spread a request stream
//! over a *fleet* of devices, each running its own Chimera scheduler; the
//! interesting questions move up a level — how should the front door *place*
//! requests, and how unevenly does load land? This module answers them with
//! the smallest faithful model: N fully independent [`GpuScheduler`]s
//! stepped in lockstep by one front-end loop, with a pluggable
//! [`Placement`] policy routing every arrival to exactly one device at
//! admission time. Below the placement decision each device reuses the
//! exact per-device serve mechanics (tenant queues, admission control,
//! weighted-fair lanes), so single-device behaviour is unchanged and the
//! cluster run degenerates to the serve runner at `devices = 1`.
//!
//! Determinism: the arrival stream is materialised once by
//! [`materialize_arrivals`] (a pure function of workload and config), the
//! devices are stepped in index order with identical `run_for_us` step
//! sequences (so their clocks stay in lockstep), and every placement policy
//! breaks ties by lower device index. A cluster sweep is therefore
//! byte-identical across worker-thread counts, like every other runner.

use crate::runner::serve::{
    materialize_arrivals, obs_id, slack_quantile, Pending, ServeConfig, ServeResult,
};
use crate::scheduler::{GpuScheduler, ProcId, SchedEvent};
use gpu_sim::rng::hash_combine;
use gpu_sim::{GpuConfig, ShedReason};
use std::collections::VecDeque;
use workloads::ServeWorkload;

/// Salt separating per-device scheduler seeds from every other stream.
const SALT_DEVICE: u64 = 0x5EAF_00D6;

/// How the cluster front-end routes an admitted-for-consideration arrival
/// to a device. Placement happens *before* admission control: the chosen
/// device's own queue cap and feasibility test then accept or shed the
/// request. All policies break ties toward the lower device index, so
/// placement is deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Requests round-robin across devices in arrival order. Oblivious,
    /// but spreads load evenly when requests are statistically similar.
    RoundRobin,
    /// Each request goes to the device with the least outstanding work
    /// (queued plus in-flight service time). The classic join-shortest-
    /// queue front door; adapts to service-time skew.
    LeastLoaded,
    /// All of a tenant's requests go to `tenant mod devices`. Keeps a
    /// tenant's cache/working-set on one device and isolates tenants from
    /// each other, at the price of tenant-skew imbalance.
    TenantAffine,
}

impl Placement {
    /// Parse a CLI spelling. Accepts `rr`/`round-robin`, `least-loaded`
    /// and `tenant`/`tenant-affine`.
    pub fn parse(s: &str) -> Option<Placement> {
        match s {
            "rr" | "round-robin" => Some(Placement::RoundRobin),
            "least-loaded" => Some(Placement::LeastLoaded),
            "tenant" | "tenant-affine" => Some(Placement::TenantAffine),
            _ => None,
        }
    }

    /// Canonical name, matching [`parse`](Self::parse).
    pub fn name(&self) -> &'static str {
        match self {
            Placement::RoundRobin => "round-robin",
            Placement::LeastLoaded => "least-loaded",
            Placement::TenantAffine => "tenant-affine",
        }
    }
}

/// Configuration of a cluster serving run: the per-device serve config
/// plus the cluster-level knobs.
#[derive(Debug, Clone)]
pub struct ClusterServeConfig {
    /// Per-device serving knobs (horizon, arrivals, admission, lanes...).
    /// The arrival stream described here is offered to the *cluster*; the
    /// placement policy splits it across devices.
    pub serve: ServeConfig,
    /// Number of independent GPU devices.
    pub devices: usize,
    /// Arrival routing policy.
    pub placement: Placement,
    /// Engine execution-mode override for every device. `None` (the
    /// default) derives the mode from `serve.common` like the other
    /// runners; benches use `Some` to drive the cluster through a specific
    /// mode. Results are byte-identical for every choice (`PARALLELISM.md`).
    pub exec_mode: Option<gpu_sim::ExecMode>,
}

impl ClusterServeConfig {
    /// A cluster of `devices` GPUs with round-robin placement over the
    /// given per-device serve config.
    pub fn new(serve: ServeConfig, devices: usize) -> Self {
        ClusterServeConfig {
            serve,
            devices,
            placement: Placement::RoundRobin,
            exec_mode: None,
        }
    }

    /// Set the placement policy.
    pub fn placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }
}

/// Per-device outcome of a cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceOutcome {
    /// Device index.
    pub device: usize,
    /// Arrivals routed to this device.
    pub offered: u64,
    /// Requests admitted past this device's admission control.
    pub admitted: u64,
    /// Requests shed by this device (any reason).
    pub shed: u64,
    /// Requests completed within the horizon.
    pub completed: u64,
    /// Completed requests that missed their deadline.
    pub violations: u64,
    /// Admitted requests still queued or in flight at the horizon.
    pub unfinished: u64,
    /// Total service time of completed requests, µs — the device's useful
    /// work, and the load measure behind the imbalance metric.
    pub served_us: f64,
    /// System throughput proxy: completed service time over the horizon,
    /// i.e. the fraction of one device-equivalent kept busy with work
    /// that finished (lanes let this exceed 1.0 under deep overlap).
    pub stp: f64,
    /// Average normalized turnaround time `(finish − arrival) / service`
    /// over completed requests; `None` if nothing completed.
    pub antt: Option<f64>,
}

/// Aggregate result of a cluster serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterServeResult {
    /// Per-device outcomes, in device order.
    pub devices: Vec<DeviceOutcome>,
    /// Requests that arrived at the cluster front door.
    pub offered: u64,
    /// Requests admitted by some device.
    pub admitted: u64,
    /// Requests shed anywhere (queue-full, infeasible or late).
    pub shed: u64,
    /// Requests completed within the horizon.
    pub completed: u64,
    /// Completed requests that missed their deadline.
    pub violations: u64,
    /// Cluster goodput: deadline-meeting completions per second.
    pub goodput_per_s: f64,
    /// Cluster STP: sum of per-device STPs (device-equivalents of useful
    /// completed work).
    pub stp: f64,
    /// Completion-weighted cluster ANTT; `None` if nothing completed.
    pub antt: Option<f64>,
    /// Inter-device load imbalance: `(max − min) / mean` of per-device
    /// completed service time. 0 means perfectly even; 0 by convention
    /// when the cluster did no work at all.
    pub imbalance: f64,
    /// Median deadline slack across all devices' completions, µs.
    pub slack_p50_us: Option<f64>,
    /// 99th-percentile worst deadline slack across the cluster, µs.
    pub slack_p99_us: Option<f64>,
}

/// The serve-loop state of one device: its scheduler plus the tenant
/// queues, lanes and counters of the single-device serve runner.
struct DeviceState {
    gpu: GpuScheduler,
    lanes: Vec<ProcId>,
    lane_req: Vec<Option<Pending>>,
    queues: Vec<VecDeque<Pending>>,
    queued_service_us: f64,
    inflight_service_us: f64,
    served_by_tenant_us: Vec<f64>,
    offered: u64,
    admitted: u64,
    shed: u64,
    completed: u64,
    deadline_met: u64,
    violations: u64,
    shed_late: u64,
    served_us: f64,
    ntt_sum: f64,
    slacks: Vec<f64>,
}

impl DeviceState {
    fn new(gpu: GpuScheduler, lanes: usize, tenants: usize) -> Self {
        let mut gpu = gpu;
        let lanes: Vec<ProcId> = (0..lanes).map(|_| gpu.add_process()).collect();
        let lane_req = vec![None; lanes.len()];
        DeviceState {
            gpu,
            lanes,
            lane_req,
            queues: vec![VecDeque::new(); tenants],
            queued_service_us: 0.0,
            inflight_service_us: 0.0,
            served_by_tenant_us: vec![0.0; tenants],
            offered: 0,
            admitted: 0,
            shed: 0,
            completed: 0,
            deadline_met: 0,
            violations: 0,
            shed_late: 0,
            served_us: 0.0,
            ntt_sum: 0.0,
            slacks: Vec::new(),
        }
    }

    /// Outstanding work: the load signal the least-loaded placement reads.
    fn backlog_us(&self) -> f64 {
        self.queued_service_us + self.inflight_service_us
    }

    /// Offer one arrival to this device's admission control — the same
    /// queue-cap and feasibility tests as the single-device serve loop.
    fn admit(&mut self, p: Pending, cfg: &GpuConfig, scfg: &ServeConfig) {
        let tenant = p.tenant;
        self.offered += 1;
        self.gpu.record_request_arrival(
            p.req,
            obs_id(tenant, "tenant"),
            obs_id(p.class_ix, "class"),
            cfg.us_to_cycles(p.deadline_us),
        );
        if self.queues[tenant].len() >= scfg.admission.queue_cap {
            self.shed += 1;
            self.gpu
                .record_request_shed(p.req, obs_id(tenant, "tenant"), ShedReason::QueueFull);
            return;
        }
        let backlog = self.backlog_us() / self.lanes.len() as f64;
        if scfg.admission.shed_infeasible && backlog + p.service_us > p.deadline_us - p.arrival_us {
            self.shed += 1;
            self.gpu
                .record_request_shed(p.req, obs_id(tenant, "tenant"), ShedReason::Infeasible);
            return;
        }
        self.admitted += 1;
        self.queued_service_us += p.service_us;
        self.queues[tenant].push_back(p.clone());
        let depth = u32::try_from(self.queues[tenant].len()).unwrap_or(u32::MAX);
        self.gpu
            .record_request_admitted(p.req, obs_id(tenant, "tenant"), depth);
    }

    /// Fill free lanes weighted-fair across tenants (least weighted
    /// service wins, ties to the lower tenant index), shedding requests
    /// already past their deadline.
    fn dispatch(&mut self, now_us: f64, wl: &ServeWorkload, tenant_weights: &[u32]) {
        let nt = self.queues.len();
        for lane in 0..self.lanes.len() {
            if self.lane_req[lane].is_some() {
                continue;
            }
            while let Some(tenant) =
                (0..nt)
                    .filter(|&t| !self.queues[t].is_empty())
                    .min_by(|&a, &b| {
                        let ka = self.served_by_tenant_us[a] / f64::from(tenant_weights[a].max(1));
                        let kb = self.served_by_tenant_us[b] / f64::from(tenant_weights[b].max(1));
                        ka.total_cmp(&kb).then(a.cmp(&b))
                    })
            {
                let p = self.queues[tenant].pop_front().expect("non-empty queue");
                self.queued_service_us -= p.service_us;
                if now_us + p.service_us > p.deadline_us {
                    self.shed += 1;
                    self.shed_late += 1;
                    self.gpu
                        .record_request_shed(p.req, obs_id(tenant, "tenant"), ShedReason::Late);
                    continue;
                }
                self.served_by_tenant_us[tenant] += p.service_us;
                self.inflight_service_us += p.service_us;
                self.gpu
                    .submit(self.lanes[lane], wl.classes[p.class_ix].kernel(p.req));
                self.lane_req[lane] = Some(p);
                break;
            }
        }
    }

    /// Advance this device's scheduler by `step_us` and account finished
    /// requests.
    fn advance(&mut self, step_us: f64, cfg: &GpuConfig) {
        for ev in self.gpu.run_for_us(step_us) {
            if let SchedEvent::KernelFinished { proc, kernel } = ev {
                let lane = self
                    .lanes
                    .iter()
                    .position(|&l| l == proc)
                    .expect("known lane");
                let p = self.lane_req[lane].take().expect("lane was busy");
                self.inflight_service_us -= p.service_us;
                let finish_cycle = self
                    .gpu
                    .engine()
                    .kernel_stats(kernel)
                    .finished_at
                    .expect("finished kernel has a finish cycle");
                let finish_us = cfg.cycles_to_us(finish_cycle);
                let slack = p.deadline_us - finish_us;
                self.slacks.push(slack);
                self.completed += 1;
                self.served_us += p.service_us;
                self.ntt_sum += (finish_us - p.arrival_us) / p.service_us.max(1e-9);
                if slack >= 0.0 {
                    self.deadline_met += 1;
                } else {
                    self.violations += 1;
                }
            }
        }
    }
}

/// Run an open-loop serving experiment over a cluster of independent GPUs.
///
/// One arrival stream is materialised for the whole cluster; the placement
/// policy routes each arrival to a device, whose own admission control and
/// weighted-fair dispatcher take it from there. Devices are stepped in
/// lockstep, so the run is deterministic in device order.
///
/// ```no_run
/// use chimera::runner::cluster::{run_serve_cluster, ClusterServeConfig, Placement};
/// use chimera::runner::serve::ServeConfig;
/// use gpu_sim::GpuConfig;
/// use workloads::ServeWorkload;
///
/// let cfg = GpuConfig::fermi();
/// let wl = ServeWorkload::standard(&cfg);
/// let ccfg = ClusterServeConfig::new(ServeConfig::paper_default(), 2)
///     .placement(Placement::LeastLoaded);
/// let res = run_serve_cluster(&cfg, &wl, &ccfg);
/// assert_eq!(res.offered, res.admitted + res.shed);
/// ```
pub fn run_serve_cluster(
    cfg: &GpuConfig,
    wl: &ServeWorkload,
    ccfg: &ClusterServeConfig,
) -> ClusterServeResult {
    assert!(ccfg.devices > 0, "a cluster needs at least one device");
    assert!(!wl.classes.is_empty() && !wl.tenants.is_empty());
    let scfg = &ccfg.serve;
    let horizon_us = scfg.common.horizon_us;
    let tenant_weights: Vec<u32> = wl.tenants.iter().map(|t| t.weight).collect();
    let arrivals = materialize_arrivals(wl, scfg);

    let mut devs: Vec<DeviceState> = (0..ccfg.devices)
        .map(|d| {
            // Device 0 keeps the configured seed so a one-device cluster
            // reproduces the serve runner exactly; further devices get
            // salted seeds for independent engine-internal draws, still a
            // pure function of the config.
            let seed = if d == 0 {
                scfg.common.seed
            } else {
                hash_combine(&[scfg.common.seed, SALT_DEVICE, d as u64])
            };
            let mut b = GpuScheduler::builder(cfg.clone())
                .policy(scfg.effective_policy())
                .partition(scfg.partition.clone())
                .estimator(scfg.common.estimator)
                .seed(seed);
            b = match ccfg.exec_mode {
                Some(gpu_sim::ExecMode::Scan) => b.scan_scheduler(true),
                Some(gpu_sim::ExecMode::Parallel { shards }) => b.par_shards(shards),
                Some(gpu_sim::ExecMode::Event) => b,
                None => b.par_shards(scfg.common.par_shards),
            };
            b = b.race_check(scfg.common.race_check);
            let gpu = b.build();
            DeviceState::new(gpu, scfg.lanes, wl.tenants.len())
        })
        .collect();

    let mut rr_next = 0usize;
    let mut next_arrival = 0usize;
    loop {
        // All devices share one clock: identical step sequences keep them
        // in lockstep, so any device's cycle is "now".
        let now_us = cfg.cycles_to_us(devs[0].gpu.cycle());
        while next_arrival < arrivals.len() && arrivals[next_arrival].arrival_us <= now_us {
            let p = arrivals[next_arrival].clone();
            next_arrival += 1;
            let d = match ccfg.placement {
                Placement::RoundRobin => {
                    let d = rr_next;
                    rr_next = (rr_next + 1) % devs.len();
                    d
                }
                Placement::LeastLoaded => (0..devs.len())
                    .min_by(|&a, &b| {
                        devs[a]
                            .backlog_us()
                            .total_cmp(&devs[b].backlog_us())
                            .then(a.cmp(&b))
                    })
                    .expect("at least one device"),
                Placement::TenantAffine => p.tenant % devs.len(),
            };
            devs[d].admit(p, cfg, scfg);
        }
        for dev in devs.iter_mut() {
            dev.dispatch(now_us, wl, &tenant_weights);
        }
        if now_us >= horizon_us {
            break;
        }
        let mut target = horizon_us.min(now_us + 5.0);
        if next_arrival < arrivals.len() {
            target = target.min(arrivals[next_arrival].arrival_us);
        }
        let step_us = (target - now_us).max(0.01);
        for dev in devs.iter_mut() {
            dev.advance(step_us, cfg);
        }
    }

    for (d, dev) in devs.iter().enumerate() {
        super::assert_race_clean(dev.gpu.engine(), &format!("run_cluster device {d}"));
    }
    let horizon_s = horizon_us / 1e6;
    let devices: Vec<DeviceOutcome> = devs
        .iter()
        .enumerate()
        .map(|(d, dev)| DeviceOutcome {
            device: d,
            offered: dev.offered,
            admitted: dev.admitted,
            shed: dev.shed,
            completed: dev.completed,
            violations: dev.violations,
            unfinished: dev.admitted - dev.completed - dev.shed_late,
            served_us: dev.served_us,
            stp: dev.served_us / horizon_us,
            antt: (dev.completed > 0).then(|| dev.ntt_sum / dev.completed as f64),
        })
        .collect();
    let offered: u64 = devices.iter().map(|d| d.offered).sum();
    let admitted: u64 = devices.iter().map(|d| d.admitted).sum();
    let shed: u64 = devices.iter().map(|d| d.shed).sum();
    let completed: u64 = devices.iter().map(|d| d.completed).sum();
    let violations: u64 = devices.iter().map(|d| d.violations).sum();
    let deadline_met: u64 = devs.iter().map(|d| d.deadline_met).sum();
    let ntt_sum: f64 = devs.iter().map(|d| d.ntt_sum).sum();
    let served: Vec<f64> = devices.iter().map(|d| d.served_us).collect();
    let mean = served.iter().sum::<f64>() / served.len() as f64;
    let imbalance = if mean > 0.0 {
        let max = served.iter().cloned().fold(f64::MIN, f64::max);
        let min = served.iter().cloned().fold(f64::MAX, f64::min);
        (max - min) / mean
    } else {
        0.0
    };
    let mut slacks: Vec<f64> = devs.iter().flat_map(|d| d.slacks.iter().copied()).collect();
    slacks.sort_by(f64::total_cmp);
    ClusterServeResult {
        devices,
        offered,
        admitted,
        shed,
        completed,
        violations,
        goodput_per_s: deadline_met as f64 / horizon_s,
        stp: served.iter().sum::<f64>() / horizon_us,
        antt: (completed > 0).then(|| ntt_sum / completed as f64),
        imbalance,
        slack_p50_us: slack_quantile(&slacks, 0.50),
        slack_p99_us: slack_quantile(&slacks, 0.99),
    }
}

/// Check that a single-device cluster run agrees with the plain serve
/// runner on every shared counter — the cluster loop must be a faithful
/// generalisation, not a fork.
pub fn assert_degenerates_to_serve(cluster: &ClusterServeResult, serve: &ServeResult) {
    assert_eq!(cluster.offered, serve.offered);
    assert_eq!(cluster.admitted, serve.admitted);
    assert_eq!(
        cluster.shed,
        serve.shed_queue_full + serve.shed_infeasible + serve.shed_late
    );
    assert_eq!(cluster.completed, serve.completed);
    assert_eq!(cluster.violations, serve.violations);
    assert_eq!(cluster.slack_p50_us, serve.slack_p50_us);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::serve::{run_serve, ArrivalProcess};

    fn small_cfg() -> (GpuConfig, ServeWorkload, ServeConfig) {
        let cfg = GpuConfig::fermi();
        let wl = ServeWorkload::standard(&cfg);
        let scfg = ServeConfig::paper_default()
            .horizon_us(4_000.0)
            .arrivals(ArrivalProcess::poisson(3.0));
        (cfg, wl, scfg)
    }

    #[test]
    fn one_device_cluster_matches_the_serve_runner() {
        let (cfg, wl, scfg) = small_cfg();
        // The single device must see the scheduler seed the serve runner
        // uses, not the device-salted one, for event-exact agreement on
        // counters that depend on engine randomness.
        let serve = run_serve(&cfg, &wl, &scfg);
        for placement in [
            Placement::RoundRobin,
            Placement::LeastLoaded,
            Placement::TenantAffine,
        ] {
            let ccfg = ClusterServeConfig::new(scfg.clone(), 1).placement(placement);
            let cluster = run_serve_cluster(&cfg, &wl, &ccfg);
            assert_eq!(cluster.devices.len(), 1);
            assert_eq!(cluster.imbalance, 0.0);
            assert_degenerates_to_serve(&cluster, &serve);
        }
    }

    #[test]
    fn cluster_runs_are_deterministic() {
        let (cfg, wl, scfg) = small_cfg();
        let ccfg = ClusterServeConfig::new(scfg, 2).placement(Placement::LeastLoaded);
        let a = run_serve_cluster(&cfg, &wl, &ccfg);
        let b = run_serve_cluster(&cfg, &wl, &ccfg);
        assert_eq!(a, b);
    }

    #[test]
    fn more_devices_never_serve_less() {
        let (cfg, wl, mut scfg) = small_cfg();
        // Overload one device so extra capacity shows up as goodput.
        scfg.arrivals = ArrivalProcess::poisson(2.0 * wl.saturation_per_ms());
        let one = run_serve_cluster(&cfg, &wl, &ClusterServeConfig::new(scfg.clone(), 1));
        let two = run_serve_cluster(&cfg, &wl, &ClusterServeConfig::new(scfg, 2));
        assert_eq!(one.offered, two.offered, "same front-door stream");
        assert!(
            two.completed >= one.completed,
            "2 devices completed {} < 1 device's {}",
            two.completed,
            one.completed
        );
    }

    #[test]
    fn tenant_affinity_pins_each_tenant_to_one_device() {
        let (cfg, wl, scfg) = small_cfg();
        let nt = wl.tenants.len();
        let ccfg = ClusterServeConfig::new(scfg.clone(), 2).placement(Placement::TenantAffine);
        let res = run_serve_cluster(&cfg, &wl, &ccfg);
        // Count offered per device directly from the routing rule.
        let mut want = vec![0u64; 2];
        for p in materialize_arrivals(&wl, &scfg) {
            assert!(p.tenant < nt);
            want[p.tenant % 2] += 1;
        }
        let got: Vec<u64> = res.devices.iter().map(|d| d.offered).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn placement_parse_round_trips() {
        for p in [
            Placement::RoundRobin,
            Placement::LeastLoaded,
            Placement::TenantAffine,
        ] {
            assert_eq!(Placement::parse(p.name()), Some(p));
        }
        assert_eq!(Placement::parse("rr"), Some(Placement::RoundRobin));
        assert_eq!(Placement::parse("tenant"), Some(Placement::TenantAffine));
        assert_eq!(Placement::parse("nope"), None);
    }
}
