//! A job: one benchmark driven through the engine, launch by launch,
//! restarting from the beginning when a pass completes (§4.4 methodology).

use gpu_sim::{Engine, KernelId};
use workloads::Benchmark;

/// A benchmark being executed: serial kernel launches with wrap-around.
#[derive(Debug, Clone)]
pub struct Job {
    benchmark: Benchmark,
    launch_idx: usize,
    passes: u32,
    current: Option<KernelId>,
    instances: Vec<KernelId>,
    /// Measurement budget in useful warp instructions (`None` = unbounded).
    budget: Option<u64>,
    measured_at: Option<u64>,
}

impl Job {
    /// Create a job for a benchmark with an optional measurement budget.
    pub fn new(benchmark: Benchmark, budget: Option<u64>) -> Self {
        Job {
            benchmark,
            launch_idx: 0,
            passes: 0,
            current: None,
            instances: Vec::new(),
            budget,
            measured_at: None,
        }
    }

    /// The benchmark's name.
    pub fn name(&self) -> &str {
        self.benchmark.name()
    }

    /// The currently running kernel instance, if any.
    pub fn current(&self) -> Option<KernelId> {
        self.current
    }

    /// Completed full passes over the launch sequence.
    pub fn passes(&self) -> u32 {
        self.passes
    }

    /// All kernel instances this job has launched.
    pub fn instances(&self) -> &[KernelId] {
        &self.instances
    }

    /// Ensure a kernel is running: launch the next one if the current
    /// finished (or none was launched yet). Returns `true` when a new kernel
    /// was launched — the scheduler must then (re)assign SMs.
    pub fn ensure_running(&mut self, engine: &mut Engine) -> bool {
        let needs_launch = match self.current {
            None => true,
            Some(k) => engine.kernel_stats(k).finished,
        };
        if !needs_launch {
            return false;
        }
        if self.current.is_some() {
            // Advance past the finished launch.
            self.launch_idx += 1;
            if self.launch_idx >= self.benchmark.launches().len() {
                self.launch_idx = 0;
                self.passes += 1;
            }
        }
        let desc = self.benchmark.launches()[self.launch_idx].clone();
        let kid = engine.launch_kernel(desc);
        self.instances.push(kid);
        self.current = Some(kid);
        true
    }

    /// Useful warp instructions executed so far (issued minus flush-discarded
    /// across every instance).
    pub fn useful_insts(&self, engine: &Engine) -> u64 {
        self.instances
            .iter()
            .map(|&k| {
                let s = engine.kernel_stats(k);
                s.issued_insts.saturating_sub(s.wasted_flush_insts)
            })
            .sum()
    }

    /// Check whether the measurement target is reached (first full pass, or
    /// the instruction budget) and record the cycle if so. Returns `true`
    /// once measured.
    pub fn check_measured(&mut self, engine: &Engine) -> bool {
        if self.measured_at.is_some() {
            return true;
        }
        let budget_hit = self.budget.is_some_and(|b| self.useful_insts(engine) >= b);
        if self.passes >= 1 || budget_hit {
            self.measured_at = Some(engine.cycle());
            return true;
        }
        false
    }

    /// Cycle at which the measurement target was reached.
    pub fn measured_at(&self) -> Option<u64> {
        self.measured_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{Engine, GpuConfig, KernelDesc, Program, Segment};
    use workloads::Benchmark;

    fn bench() -> Benchmark {
        let k = |name: &str, grid| {
            KernelDesc::builder(name)
                .grid_blocks(grid)
                .threads_per_block(64)
                .regs_per_thread(8)
                .program(Program::new(vec![Segment::compute(100)]))
                .build()
                .unwrap()
        };
        Benchmark::new("T", vec![k("t0", 4), k("t1", 4)])
    }

    #[test]
    fn job_advances_through_launches_and_passes() {
        let mut e = Engine::new(GpuConfig::tiny());
        let mut j = Job::new(bench(), None);
        assert!(j.ensure_running(&mut e));
        let first = j.current().expect("job has a running kernel");
        for sm in 0..2 {
            e.assign_sm(sm, Some(first));
        }
        // Drive to completion of pass 1 (two launches).
        let mut launches = 1;
        for _ in 0..200 {
            e.run_for(100_000);
            if j.ensure_running(&mut e) {
                launches += 1;
                for sm in 0..2 {
                    e.assign_sm(sm, Some(j.current().expect("job has a running kernel")));
                }
            }
            if j.passes() >= 1 {
                break;
            }
        }
        assert!(j.passes() >= 1, "job should wrap around");
        assert!(launches >= 3, "t0, t1, then restart t0");
        assert!(j.useful_insts(&e) > 0);
        assert_eq!(j.instances().len(), launches);
    }

    #[test]
    fn measurement_by_pass_and_by_budget() {
        let mut e = Engine::new(GpuConfig::tiny());
        let mut j = Job::new(bench(), Some(100));
        j.ensure_running(&mut e);
        for sm in 0..2 {
            e.assign_sm(sm, Some(j.current().expect("job has a running kernel")));
        }
        assert!(!j.check_measured(&e));
        e.run_for(2_000_000);
        // 100-inst budget is tiny; the first launch alone exceeds it.
        assert!(j.check_measured(&e));
        assert!(j.measured_at().is_some());
    }
}
