//! Open-loop serving front-end: arrivals, admission control, SLO metrics.
//!
//! The periodic and multiprogramming runners are *closed-loop*: the next
//! kernel launches when the previous one finishes, so offered load can never
//! exceed capacity and overload behaviour is invisible. This runner replays
//! an *open-loop* request stream — arrivals keep coming whether or not the
//! GPU keeps up — through an admission controller and a fair dispatcher onto
//! a [`GpuScheduler`], and reports serving metrics (deadline-slack
//! percentiles, goodput versus offered load, per-tenant outcomes).
//!
//! Everything is a pure function of the config: arrival times, tenant and
//! class assignments, and admission decisions are all derived from
//! counter-based hashes of the seed, so a sweep parallelised across worker
//! threads is byte-identical to a serial one.

use crate::cost::EstimatorConfig;
use crate::partition::PartitionPolicy;
use crate::policy::Policy;
use crate::runner::RunCommon;
use crate::scheduler::{GpuScheduler, SchedEvent};
use gpu_sim::rng::{hash_combine, unit_f64};
use gpu_sim::{GpuConfig, ShedReason};
use std::collections::VecDeque;
use workloads::ServeWorkload;

/// Hash salts separating the independent random streams of a serve run.
const SALT_GAP: u64 = 0x5EAF_00D1;
const SALT_SOJOURN: u64 = 0x5EAF_00D2;
const SALT_THIN: u64 = 0x5EAF_00D3;
pub(crate) const SALT_TENANT: u64 = 0x5EAF_00D4;
pub(crate) const SALT_CLASS: u64 = 0x5EAF_00D5;

/// An arrival process: when requests reach the front door.
///
/// [`generate`](Self::generate) is a pure function of `(self, seed,
/// horizon)`: every draw is a counter-based hash, so the stream does not
/// depend on evaluation order or worker-thread count.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant mean rate.
    Poisson {
        /// Mean arrival rate, requests per millisecond.
        rate_per_ms: f64,
    },
    /// A two-state Markov-modulated Poisson process: calm stretches
    /// punctuated by bursts, each state holding for an exponentially
    /// distributed sojourn.
    Bursty {
        /// Arrival rate in the calm state, requests per millisecond.
        calm_per_ms: f64,
        /// Arrival rate in the burst state, requests per millisecond.
        burst_per_ms: f64,
        /// Mean sojourn in the calm state, µs.
        mean_calm_us: f64,
        /// Mean sojourn in the burst state, µs.
        mean_burst_us: f64,
    },
    /// A sinusoidally modulated rate mimicking a compressed day/night
    /// cycle, sampled by thinning a max-rate Poisson stream.
    Diurnal {
        /// Mean arrival rate, requests per millisecond.
        mean_per_ms: f64,
        /// Peak-to-mean rate swing in `[0, 1]`: the instantaneous rate is
        /// `mean · (1 + amplitude · sin(2πt / period))`.
        relative_amplitude: f64,
        /// Cycle period, µs.
        period_us: f64,
    },
}

impl ArrivalProcess {
    /// Constant-rate Poisson arrivals.
    pub fn poisson(rate_per_ms: f64) -> Self {
        ArrivalProcess::Poisson { rate_per_ms }
    }

    /// Time-averaged arrival rate, requests per millisecond.
    pub fn mean_rate_per_ms(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_ms } => rate_per_ms,
            ArrivalProcess::Bursty {
                calm_per_ms,
                burst_per_ms,
                mean_calm_us,
                mean_burst_us,
            } => {
                (calm_per_ms * mean_calm_us + burst_per_ms * mean_burst_us)
                    / (mean_calm_us + mean_burst_us)
            }
            ArrivalProcess::Diurnal { mean_per_ms, .. } => mean_per_ms,
        }
    }

    /// The same process with every rate scaled by `factor` (sojourns and
    /// the diurnal period are untouched, so the *shape* is preserved).
    pub fn scaled(&self, factor: f64) -> Self {
        match *self {
            ArrivalProcess::Poisson { rate_per_ms } => ArrivalProcess::Poisson {
                rate_per_ms: rate_per_ms * factor,
            },
            ArrivalProcess::Bursty {
                calm_per_ms,
                burst_per_ms,
                mean_calm_us,
                mean_burst_us,
            } => ArrivalProcess::Bursty {
                calm_per_ms: calm_per_ms * factor,
                burst_per_ms: burst_per_ms * factor,
                mean_calm_us,
                mean_burst_us,
            },
            ArrivalProcess::Diurnal {
                mean_per_ms,
                relative_amplitude,
                period_us,
            } => ArrivalProcess::Diurnal {
                mean_per_ms: mean_per_ms * factor,
                relative_amplitude,
                period_us,
            },
        }
    }

    /// Generate the sorted arrival times (µs, strictly within the horizon)
    /// for the given seed.
    pub fn generate(&self, seed: u64, horizon_us: f64) -> Vec<f64> {
        let mut out = Vec::new();
        match *self {
            ArrivalProcess::Poisson { rate_per_ms } => {
                let rate = rate_per_ms / 1_000.0;
                if rate <= 0.0 {
                    return out;
                }
                let mut t = 0.0;
                let mut ctr = 0u64;
                loop {
                    t += exp_gap(seed, SALT_GAP, &mut ctr, rate);
                    if t >= horizon_us {
                        return out;
                    }
                    out.push(t);
                }
            }
            ArrivalProcess::Bursty {
                calm_per_ms,
                burst_per_ms,
                mean_calm_us,
                mean_burst_us,
            } => {
                let rates = [calm_per_ms / 1_000.0, burst_per_ms / 1_000.0];
                let sojourns = [mean_calm_us, mean_burst_us];
                let mut t = 0.0;
                let mut state = 0usize;
                let mut gap_ctr = 0u64;
                let mut soj_ctr = 0u64;
                let mut seg_end = exp_gap(
                    seed,
                    SALT_SOJOURN,
                    &mut soj_ctr,
                    1.0 / sojourns[state].max(1e-9),
                );
                while t < horizon_us {
                    if rates[state] <= 0.0 {
                        t = seg_end;
                    } else {
                        let next = t + exp_gap(seed, SALT_GAP, &mut gap_ctr, rates[state]);
                        if next < seg_end {
                            t = next;
                            if t < horizon_us {
                                out.push(t);
                            }
                            continue;
                        }
                        // Memorylessness lets us discard the partial gap at
                        // the state boundary and redraw in the new state.
                        t = seg_end;
                    }
                    state = 1 - state;
                    seg_end = t + exp_gap(
                        seed,
                        SALT_SOJOURN,
                        &mut soj_ctr,
                        1.0 / sojourns[state].max(1e-9),
                    );
                }
                out
            }
            ArrivalProcess::Diurnal {
                mean_per_ms,
                relative_amplitude,
                period_us,
            } => {
                let mean = mean_per_ms / 1_000.0;
                let amp = relative_amplitude.clamp(0.0, 1.0);
                let max_rate = mean * (1.0 + amp);
                if max_rate <= 0.0 {
                    return out;
                }
                let mut t = 0.0;
                let mut gap_ctr = 0u64;
                let mut thin_ctr = 0u64;
                loop {
                    t += exp_gap(seed, SALT_GAP, &mut gap_ctr, max_rate);
                    if t >= horizon_us {
                        return out;
                    }
                    let rate_t = mean * (1.0 + amp * (std::f64::consts::TAU * t / period_us).sin());
                    let u = unit_f64(hash_combine(&[seed, SALT_THIN, thin_ctr]));
                    thin_ctr += 1;
                    if u < rate_t / max_rate {
                        out.push(t);
                    }
                }
            }
        }
    }
}

/// One exponential inter-event gap with the given rate (events per µs),
/// drawn from the counter-based stream `(seed, salt, *ctr)`.
fn exp_gap(seed: u64, salt: u64, ctr: &mut u64, rate_per_us: f64) -> f64 {
    let u = unit_f64(hash_combine(&[seed, salt, *ctr]));
    *ctr += 1;
    -(1.0 - u).ln() / rate_per_us
}

/// Pick an index from `weights` proportionally, using a uniform `u ∈ [0,1)`.
pub(crate) fn pick_weighted(weights: &[u32], u: f64) -> usize {
    let total: u64 = weights.iter().map(|&w| u64::from(w)).sum();
    debug_assert!(total > 0, "weights must not all be zero");
    let mut x = (u * total as f64) as u64;
    for (i, &w) in weights.iter().enumerate() {
        let w = u64::from(w);
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// Admission-control knobs for the serving front-end.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Per-tenant queue cap: an arrival finding its tenant's queue at this
    /// depth is shed with [`ShedReason::QueueFull`].
    pub queue_cap: usize,
    /// Shed arrivals whose deadline is already infeasible given the queued
    /// backlog ([`ShedReason::Infeasible`]); late requests are always shed
    /// at dispatch time regardless.
    pub shed_infeasible: bool,
}

impl Default for AdmissionConfig {
    /// Queue cap 64 per tenant, infeasibility shedding on.
    fn default() -> Self {
        AdmissionConfig {
            queue_cap: 64,
            shed_infeasible: true,
        }
    }
}

/// Configuration of an open-loop serving run.
///
/// ```
/// use chimera::runner::serve::{ArrivalProcess, ServeConfig};
///
/// let scfg = ServeConfig::paper_default()
///     .horizon_us(4_000.0)
///     .arrivals(ArrivalProcess::poisson(2.0))
///     .lanes(2);
/// assert_eq!(scfg.common.seed, 42);
/// assert_eq!(scfg.lanes, 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Shared runner knobs. `common.sanitize` is accepted for uniformity
    /// but serve runs do not flush-sanitize today.
    pub common: RunCommon,
    /// The arrival process replayed against the front door.
    pub arrivals: ArrivalProcess,
    /// Admission-control knobs.
    pub admission: AdmissionConfig,
    /// Preemption policy; `None` means Chimera at `common.constraint_us`.
    pub policy: Option<Policy>,
    /// SM partitioning policy between lanes.
    pub partition: PartitionPolicy,
    /// Dispatch lanes: concurrently running requests (one scheduler
    /// process each). More lanes trade per-request latency for throughput.
    pub lanes: usize,
}

impl ServeConfig {
    /// Paper-style defaults: 40 ms horizon, 15 µs constraint, Poisson
    /// arrivals at 5 requests/ms, default admission, Chimera policy,
    /// Smart-Even partitioning, 4 lanes.
    pub fn paper_default() -> Self {
        ServeConfig {
            common: RunCommon::new(40_000.0, 15.0),
            arrivals: ArrivalProcess::poisson(5.0),
            admission: AdmissionConfig::default(),
            policy: None,
            partition: PartitionPolicy::SmartEven,
            lanes: 4,
        }
    }

    /// Replace the shared runner knobs wholesale.
    pub fn common(mut self, common: RunCommon) -> Self {
        self.common = common;
        self
    }

    /// Set the determinism seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.common.seed = seed;
        self
    }

    /// Set the simulated horizon, µs.
    pub fn horizon_us(mut self, horizon_us: f64) -> Self {
        self.common.horizon_us = horizon_us;
        self
    }

    /// Set the preemption latency constraint, µs.
    pub fn constraint_us(mut self, constraint_us: f64) -> Self {
        self.common.constraint_us = constraint_us;
        self
    }

    /// Set the estimator configuration.
    pub fn estimator(mut self, estimator: EstimatorConfig) -> Self {
        self.common.estimator = estimator;
        self
    }

    /// Set the arrival process.
    pub fn arrivals(mut self, arrivals: ArrivalProcess) -> Self {
        self.arrivals = arrivals;
        self
    }

    /// Set the admission-control knobs.
    pub fn admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }

    /// Pin an explicit preemption policy (default: Chimera at the
    /// configured constraint).
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Set the SM partitioning policy.
    pub fn partition(mut self, partition: PartitionPolicy) -> Self {
        self.partition = partition;
        self
    }

    /// Set the number of dispatch lanes (≥ 1).
    pub fn lanes(mut self, lanes: usize) -> Self {
        self.lanes = lanes.max(1);
        self
    }

    /// The policy actually used: the pinned one, else Chimera at the
    /// configured constraint.
    pub fn effective_policy(&self) -> Policy {
        self.policy.unwrap_or(Policy::Chimera {
            limit_us: self.common.constraint_us,
        })
    }
}

/// Per-tenant outcome of a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantOutcome {
    /// Tenant name (from the workload spec).
    pub name: String,
    /// Requests that arrived for this tenant.
    pub offered: u64,
    /// Requests admitted past admission control.
    pub admitted: u64,
    /// Requests shed (any reason).
    pub shed: u64,
    /// Requests that ran to completion within the horizon.
    pub completed: u64,
    /// Completed requests that missed their deadline.
    pub violations: u64,
    /// Average normalized turnaround time over completed requests:
    /// `(finish − arrival) / service`, the serving analogue of ANTT.
    pub antt: Option<f64>,
    /// This tenant's share of all deadline violations (0 when none
    /// occurred anywhere).
    pub violation_share: f64,
}

/// Aggregate result of an open-loop serving run.
///
/// Accounting identities: `offered = admitted + shed_queue_full +
/// shed_infeasible` and `admitted = completed + shed_late + unfinished`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResult {
    /// Requests that arrived within the horizon.
    pub offered: u64,
    /// Requests admitted past admission control.
    pub admitted: u64,
    /// Arrivals shed because the tenant queue was at its cap.
    pub shed_queue_full: u64,
    /// Arrivals shed because the backlog made the deadline infeasible.
    pub shed_infeasible: u64,
    /// Admitted requests shed at dispatch time, already past their
    /// deadline.
    pub shed_late: u64,
    /// Requests that ran to completion within the horizon.
    pub completed: u64,
    /// Completed requests that met their deadline.
    pub deadline_met: u64,
    /// Completed requests that missed their deadline.
    pub violations: u64,
    /// Admitted requests still queued or in flight at the horizon.
    pub unfinished: u64,
    /// Offered load, requests per second.
    pub offered_per_s: f64,
    /// Goodput: deadline-meeting completions per second.
    pub goodput_per_s: f64,
    /// Median deadline slack over completed requests, µs (negative =
    /// missed).
    pub slack_p50_us: Option<f64>,
    /// 99th-percentile *worst* deadline slack, µs: 99% of completed
    /// requests had at least this much slack.
    pub slack_p99_us: Option<f64>,
    /// 99.9th-percentile worst deadline slack, µs.
    pub slack_p999_us: Option<f64>,
    /// Deepest any tenant queue got.
    pub max_queue_depth: usize,
    /// Per-tenant outcomes, in workload tenant order.
    pub tenants: Vec<TenantOutcome>,
}

/// A request sitting in a tenant queue or running on a lane. Shared with
/// the multi-device cluster runner ([`crate::runner::cluster`]), which
/// routes the same materialised stream across devices.
#[derive(Debug, Clone)]
pub(crate) struct Pending {
    pub(crate) req: u64,
    pub(crate) tenant: usize,
    pub(crate) class_ix: usize,
    pub(crate) arrival_us: f64,
    pub(crate) deadline_us: f64,
    pub(crate) service_us: f64,
}

/// Convert a tenant/class index for the observability log. Indices are
/// bounded by the workload spec, so exceeding `u32` is a config bug —
/// report it instead of silently truncating the id (the old `as u32`).
pub(crate) fn obs_id(ix: usize, what: &str) -> u32 {
    u32::try_from(ix).unwrap_or_else(|_| panic!("{what} index {ix} does not fit in a u32 event id"))
}

/// Worst-tail quantile over the *ascending* slack list: indexing from the
/// low end means `q = 0.99` lands near the worst (smallest) slacks. Edge
/// cases: a one-element list (`len - 1 = 0`) and `q = 1.0` both resolve to
/// index 0 — the single worst slack; the final clamp guards the rounding
/// against float drift so the index can never run past the end.
pub(crate) fn slack_quantile(slacks: &[f64], q: f64) -> Option<f64> {
    (!slacks.is_empty()).then(|| {
        let ix = (((1.0 - q) * (slacks.len() - 1) as f64).round() as usize).min(slacks.len() - 1);
        slacks[ix]
    })
}

/// Materialise the arrival stream with tenant/class/deadline stamps — a
/// pure function of `(workload, serve config)`, shared between the
/// single-device serve loop and the cluster runner so both replay the
/// identical request stream.
pub(crate) fn materialize_arrivals(wl: &ServeWorkload, scfg: &ServeConfig) -> Vec<Pending> {
    let seed = scfg.common.seed;
    let class_weights: Vec<u32> = wl.classes.iter().map(|c| c.weight).collect();
    let tenant_weights: Vec<u32> = wl.tenants.iter().map(|t| t.weight).collect();
    scfg.arrivals
        .generate(seed, scfg.common.horizon_us)
        .into_iter()
        .enumerate()
        .map(|(i, t)| {
            let req = i as u64;
            let tenant = pick_weighted(
                &tenant_weights,
                unit_f64(hash_combine(&[seed, SALT_TENANT, req])),
            );
            let class_ix = pick_weighted(
                &class_weights,
                unit_f64(hash_combine(&[seed, SALT_CLASS, req])),
            );
            let class = &wl.classes[class_ix];
            Pending {
                req,
                tenant,
                class_ix,
                arrival_us: t,
                deadline_us: t + class.deadline_us,
                service_us: class.service_us,
            }
        })
        .collect()
}

/// Run an open-loop serving experiment on a fresh scheduler.
///
/// ```no_run
/// use chimera::runner::serve::{run_serve, ServeConfig};
/// use gpu_sim::GpuConfig;
/// use workloads::ServeWorkload;
///
/// let cfg = GpuConfig::fermi();
/// let wl = ServeWorkload::standard(&cfg);
/// let res = run_serve(&cfg, &wl, &ServeConfig::paper_default());
/// assert_eq!(res.offered, res.admitted + res.shed_queue_full + res.shed_infeasible);
/// ```
pub fn run_serve(cfg: &GpuConfig, wl: &ServeWorkload, scfg: &ServeConfig) -> ServeResult {
    let mut gpu = GpuScheduler::builder(cfg.clone())
        .policy(scfg.effective_policy())
        .partition(scfg.partition.clone())
        .estimator(scfg.common.estimator)
        .seed(scfg.common.seed)
        .par_shards(scfg.common.par_shards)
        .race_check(scfg.common.race_check)
        .build();
    run_serve_on(&mut gpu, wl, scfg)
}

/// Like [`run_serve`] but with the engine's event log enabled (ring
/// capacity `event_capacity`); returns the scheduler so the caller can
/// export the arrival/admission/shed track via
/// [`gpu_sim::trace::chrome_trace_json`].
pub fn run_serve_traced(
    cfg: &GpuConfig,
    wl: &ServeWorkload,
    scfg: &ServeConfig,
    event_capacity: usize,
) -> (ServeResult, GpuScheduler) {
    let mut gpu = GpuScheduler::builder(cfg.clone())
        .policy(scfg.effective_policy())
        .partition(scfg.partition.clone())
        .estimator(scfg.common.estimator)
        .seed(scfg.common.seed)
        .par_shards(scfg.common.par_shards)
        .race_check(scfg.common.race_check)
        .event_log(event_capacity)
        .build();
    let res = run_serve_on(&mut gpu, wl, scfg);
    (res, gpu)
}

/// Run the serving loop on a caller-built scheduler (which must have no
/// processes registered yet — the runner adds one per lane). This is the
/// entry point for benches that need a custom-built scheduler, e.g. one
/// with the scan-mode engine.
pub fn run_serve_on(gpu: &mut GpuScheduler, wl: &ServeWorkload, scfg: &ServeConfig) -> ServeResult {
    assert_eq!(
        gpu.num_processes(),
        0,
        "run_serve_on needs a fresh scheduler"
    );
    assert!(!wl.classes.is_empty() && !wl.tenants.is_empty());
    let cfg = gpu.engine().config().clone();
    let horizon_us = scfg.common.horizon_us;
    let lanes: Vec<_> = (0..scfg.lanes).map(|_| gpu.add_process()).collect();
    let mut lane_req: Vec<Option<Pending>> = vec![None; lanes.len()];

    let tenant_weights: Vec<u32> = wl.tenants.iter().map(|t| t.weight).collect();
    let arrivals = materialize_arrivals(wl, scfg);

    let nt = wl.tenants.len();
    let mut queues: Vec<VecDeque<Pending>> = vec![VecDeque::new(); nt];
    let mut queued_service_us = 0.0f64;
    let mut inflight_service_us = 0.0f64;
    let mut served_us = vec![0.0f64; nt];
    let mut max_queue_depth = 0usize;

    let mut t_offered = vec![0u64; nt];
    let mut t_admitted = vec![0u64; nt];
    let mut t_shed = vec![0u64; nt];
    let mut t_completed = vec![0u64; nt];
    let mut t_violations = vec![0u64; nt];
    let mut t_ntt_sum = vec![0.0f64; nt];

    let mut shed_queue_full = 0u64;
    let mut shed_infeasible = 0u64;
    let mut shed_late = 0u64;
    let mut deadline_met = 0u64;
    let mut slacks: Vec<f64> = Vec::new();

    let mut next_arrival = 0usize;
    loop {
        let now_us = cfg.cycles_to_us(gpu.cycle());
        // Admission: process every arrival at or before `now`.
        while next_arrival < arrivals.len() && arrivals[next_arrival].arrival_us <= now_us {
            let p = arrivals[next_arrival].clone();
            next_arrival += 1;
            let tenant = p.tenant;
            t_offered[tenant] += 1;
            gpu.record_request_arrival(
                p.req,
                obs_id(tenant, "tenant"),
                obs_id(p.class_ix, "class"),
                cfg.us_to_cycles(p.deadline_us),
            );
            if queues[tenant].len() >= scfg.admission.queue_cap {
                shed_queue_full += 1;
                t_shed[tenant] += 1;
                gpu.record_request_shed(p.req, obs_id(tenant, "tenant"), ShedReason::QueueFull);
                continue;
            }
            // Feasibility: the backlog ahead of this request (queued plus
            // in flight, drained across the lanes) must leave room for its
            // own service before the deadline.
            let backlog_us = (queued_service_us + inflight_service_us) / lanes.len() as f64;
            if scfg.admission.shed_infeasible
                && backlog_us + p.service_us > p.deadline_us - p.arrival_us
            {
                shed_infeasible += 1;
                t_shed[tenant] += 1;
                gpu.record_request_shed(p.req, obs_id(tenant, "tenant"), ShedReason::Infeasible);
                continue;
            }
            t_admitted[tenant] += 1;
            queued_service_us += p.service_us;
            queues[tenant].push_back(p.clone());
            max_queue_depth = max_queue_depth.max(queues[tenant].len());
            // The queue-depth gauge is diagnostic; saturate rather than
            // panic if a cap-less config ever exceeds u32.
            let depth = u32::try_from(queues[tenant].len()).unwrap_or(u32::MAX);
            gpu.record_request_admitted(p.req, obs_id(tenant, "tenant"), depth);
        }
        // Dispatch: fill free lanes, weighted-fair across tenants.
        for lane in 0..lanes.len() {
            if lane_req[lane].is_some() {
                continue;
            }
            // Tenant with the least weighted service so far wins; ties
            // break to the lower index, deterministically. `total_cmp`:
            // a degenerate workload spec (NaN/zero service times) must
            // starve fairness, not panic the serve loop.
            while let Some(tenant) = (0..nt).filter(|&t| !queues[t].is_empty()).min_by(|&a, &b| {
                let ka = served_us[a] / f64::from(tenant_weights[a].max(1));
                let kb = served_us[b] / f64::from(tenant_weights[b].max(1));
                ka.total_cmp(&kb).then(a.cmp(&b))
            }) {
                let p = queues[tenant].pop_front().expect("non-empty queue");
                queued_service_us -= p.service_us;
                if now_us + p.service_us > p.deadline_us {
                    shed_late += 1;
                    t_shed[tenant] += 1;
                    gpu.record_request_shed(p.req, obs_id(tenant, "tenant"), ShedReason::Late);
                    continue;
                }
                served_us[tenant] += p.service_us;
                inflight_service_us += p.service_us;
                gpu.submit(lanes[lane], wl.classes[p.class_ix].kernel(p.req));
                lane_req[lane] = Some(p);
                break;
            }
        }
        if now_us >= horizon_us {
            break;
        }
        // Advance to the next decision point: the next arrival, the
        // scheduler's own 5 µs tick, or the horizon — whichever is first.
        let mut target = horizon_us.min(now_us + 5.0);
        if next_arrival < arrivals.len() {
            target = target.min(arrivals[next_arrival].arrival_us);
        }
        let step_us = (target - now_us).max(0.01);
        for ev in gpu.run_for_us(step_us) {
            if let SchedEvent::KernelFinished { proc, kernel } = ev {
                let lane = lanes.iter().position(|&l| l == proc).expect("known lane");
                let p = lane_req[lane].take().expect("lane was busy");
                inflight_service_us -= p.service_us;
                let finish_cycle = gpu
                    .engine()
                    .kernel_stats(kernel)
                    .finished_at
                    .expect("finished kernel has a finish cycle");
                let finish_us = cfg.cycles_to_us(finish_cycle);
                let slack = p.deadline_us - finish_us;
                slacks.push(slack);
                t_completed[p.tenant] += 1;
                t_ntt_sum[p.tenant] += (finish_us - p.arrival_us) / p.service_us.max(1e-9);
                if slack >= 0.0 {
                    deadline_met += 1;
                } else {
                    t_violations[p.tenant] += 1;
                }
            }
        }
    }

    let offered = arrivals.len() as u64;
    let admitted: u64 = t_admitted.iter().sum();
    let completed: u64 = t_completed.iter().sum();
    let violations: u64 = t_violations.iter().sum();
    let horizon_s = horizon_us / 1e6;
    // `total_cmp` orders NaN slacks (possible only with a degenerate
    // workload spec) after every finite value instead of panicking.
    slacks.sort_by(f64::total_cmp);
    let quantile = |q: f64| slack_quantile(&slacks, q);
    let tenants = wl
        .tenants
        .iter()
        .enumerate()
        .map(|(t, spec)| TenantOutcome {
            name: spec.name.clone(),
            offered: t_offered[t],
            admitted: t_admitted[t],
            shed: t_shed[t],
            completed: t_completed[t],
            violations: t_violations[t],
            antt: (t_completed[t] > 0).then(|| t_ntt_sum[t] / t_completed[t] as f64),
            violation_share: if violations > 0 {
                t_violations[t] as f64 / violations as f64
            } else {
                0.0
            },
        })
        .collect();
    super::assert_race_clean(gpu.engine(), "run_serve");
    ServeResult {
        offered,
        admitted,
        shed_queue_full,
        shed_infeasible,
        shed_late,
        completed,
        deadline_met,
        violations,
        unfinished: admitted - completed - shed_late,
        offered_per_s: offered as f64 / horizon_s,
        goodput_per_s: deadline_met as f64 / horizon_s,
        slack_p50_us: quantile(0.50),
        slack_p99_us: quantile(0.99),
        slack_p999_us: quantile(0.999),
        max_queue_depth,
        tenants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_sorted_within(times: &[f64], horizon: f64) {
        for w in times.windows(2) {
            assert!(w[0] <= w[1], "arrivals out of order");
        }
        for &t in times {
            assert!((0.0..horizon).contains(&t), "t={t}");
        }
    }

    #[test]
    fn poisson_rate_and_determinism() {
        let p = ArrivalProcess::poisson(5.0);
        let a = p.generate(42, 100_000.0);
        let b = p.generate(42, 100_000.0);
        assert_eq!(a, b);
        assert_ne!(a, p.generate(43, 100_000.0));
        assert_sorted_within(&a, 100_000.0);
        // 5/ms over 100 ms → ~500 arrivals.
        assert!((350..650).contains(&a.len()), "n={}", a.len());
    }

    #[test]
    fn bursty_mean_rate_is_time_weighted() {
        let p = ArrivalProcess::Bursty {
            calm_per_ms: 1.0,
            burst_per_ms: 9.0,
            mean_calm_us: 3_000.0,
            mean_burst_us: 1_000.0,
        };
        assert!((p.mean_rate_per_ms() - 3.0).abs() < 1e-9);
        let a = p.generate(7, 200_000.0);
        assert_sorted_within(&a, 200_000.0);
        // ~3/ms over 200 ms → ~600; generous band for burstiness.
        assert!((300..900).contains(&a.len()), "n={}", a.len());
    }

    #[test]
    fn diurnal_thinning_tracks_mean() {
        let p = ArrivalProcess::Diurnal {
            mean_per_ms: 4.0,
            relative_amplitude: 0.8,
            period_us: 10_000.0,
        };
        let a = p.generate(11, 100_000.0);
        assert_sorted_within(&a, 100_000.0);
        assert!((280..520).contains(&a.len()), "n={}", a.len());
    }

    #[test]
    fn scaled_doubles_the_offered_load() {
        let p = ArrivalProcess::poisson(2.0).scaled(2.0);
        assert!((p.mean_rate_per_ms() - 4.0).abs() < 1e-9);
        let n1 = ArrivalProcess::poisson(2.0).generate(3, 50_000.0).len();
        let n2 = p.generate(3, 50_000.0).len();
        assert!(n2 > n1, "scaling must raise the arrival count");
    }

    #[test]
    fn weighted_pick_respects_boundaries() {
        let w = [1, 3];
        assert_eq!(pick_weighted(&w, 0.0), 0);
        assert_eq!(pick_weighted(&w, 0.24), 0);
        assert_eq!(pick_weighted(&w, 0.26), 1);
        assert_eq!(pick_weighted(&w, 0.999), 1);
    }

    #[test]
    fn serve_smoke_accounting_identities() {
        let cfg = GpuConfig::fermi();
        let wl = ServeWorkload::standard(&cfg);
        let scfg = ServeConfig::paper_default()
            .horizon_us(6_000.0)
            .arrivals(ArrivalProcess::poisson(2.0));
        let res = run_serve(&cfg, &wl, &scfg);
        assert!(res.offered > 0);
        assert!(res.completed > 0, "some requests must finish");
        assert_eq!(
            res.offered,
            res.admitted + res.shed_queue_full + res.shed_infeasible
        );
        assert_eq!(res.admitted, res.completed + res.shed_late + res.unfinished);
        assert_eq!(res.completed, res.deadline_met + res.violations);
        let t_off: u64 = res.tenants.iter().map(|t| t.offered).sum();
        assert_eq!(t_off, res.offered);
        assert!(res.slack_p50_us.is_some());
        assert!(res.goodput_per_s > 0.0);
    }

    #[test]
    fn overload_sheds_instead_of_queueing_unboundedly() {
        let cfg = GpuConfig::fermi();
        let wl = ServeWorkload::standard(&cfg);
        let rate = 2.0 * wl.saturation_per_ms();
        let scfg = ServeConfig::paper_default()
            .horizon_us(8_000.0)
            .arrivals(ArrivalProcess::poisson(rate));
        let res = run_serve(&cfg, &wl, &scfg);
        let shed = res.shed_queue_full + res.shed_infeasible + res.shed_late;
        assert!(shed > 0, "2× overload must shed: {res:?}");
        assert!(
            res.max_queue_depth <= scfg.admission.queue_cap,
            "queues must stay bounded"
        );
        assert!(res.completed > 0, "overload must not collapse goodput to 0");
    }

    /// A deliberately degenerate workload: one class advertises a NaN
    /// analytic service time and another a zero one. Every fairness key
    /// (`served_us / weight`) and every slack can therefore be NaN or tied
    /// at zero. The serve loop must keep running — `total_cmp` orders these
    /// instead of panicking — and the accounting identities must still hold.
    fn degenerate_workload(cfg: &GpuConfig) -> ServeWorkload {
        use workloads::TenantSpec;
        let mut wl = ServeWorkload::standard(cfg);
        let mut nan_class = wl.classes[0].clone();
        nan_class.name = "nan-service".into();
        nan_class.service_us = f64::NAN;
        nan_class.deadline_us = f64::NAN;
        let mut zero_class = wl.classes[1].clone();
        zero_class.name = "zero-service".into();
        zero_class.service_us = 0.0;
        wl.classes = vec![nan_class, zero_class];
        wl.tenants = vec![
            TenantSpec {
                name: "t0".into(),
                weight: 2,
            },
            TenantSpec {
                name: "t1".into(),
                weight: 1,
            },
        ];
        wl
    }

    #[test]
    fn nan_and_zero_service_classes_do_not_panic_the_serve_loop() {
        let cfg = GpuConfig::fermi();
        let wl = degenerate_workload(&cfg);
        let scfg = ServeConfig::paper_default()
            .horizon_us(4_000.0)
            .arrivals(ArrivalProcess::poisson(2.0));
        // Regression: the weighted-fair key and the slack sort used
        // `partial_cmp().unwrap()`, which panicked on the first NaN.
        let res = run_serve(&cfg, &wl, &scfg);
        assert!(res.offered > 0);
        assert_eq!(
            res.offered,
            res.admitted + res.shed_queue_full + res.shed_infeasible
        );
        assert_eq!(res.admitted, res.completed + res.shed_late + res.unfinished);
    }

    #[test]
    fn slack_quantiles_collapse_on_a_single_sample() {
        // One element: every quantile, including q = 1.0, is that element.
        assert_eq!(slack_quantile(&[3.5], 0.5), Some(3.5));
        assert_eq!(slack_quantile(&[3.5], 0.999), Some(3.5));
        assert_eq!(slack_quantile(&[3.5], 1.0), Some(3.5));
        assert_eq!(slack_quantile(&[], 0.5), None);
        // q = 0.0 is the *best* slack (last of the ascending list) and
        // q = 1.0 the worst (first); the index never escapes the slice.
        let s = [-2.0, 1.0, 4.0];
        assert_eq!(slack_quantile(&s, 0.0), Some(4.0));
        assert_eq!(slack_quantile(&s, 1.0), Some(-2.0));
        assert_eq!(slack_quantile(&s, 0.5), Some(1.0));
    }

    #[test]
    fn traced_run_records_request_events() {
        let cfg = GpuConfig::fermi();
        let wl = ServeWorkload::standard(&cfg);
        let scfg = ServeConfig::paper_default()
            .horizon_us(3_000.0)
            .arrivals(ArrivalProcess::poisson(2.0));
        let (res, gpu) = run_serve_traced(&cfg, &wl, &scfg, 1 << 14);
        let log = gpu.engine().event_log().expect("log enabled");
        let arrivals = log.iter().filter(|e| e.kind() == "request_arrival").count() as u64;
        assert_eq!(arrivals, res.offered);
        let admitted = log
            .iter()
            .filter(|e| e.kind() == "request_admitted")
            .count() as u64;
        assert_eq!(admitted, res.admitted);
    }
}
