//! Solo runs: a benchmark alone on the whole GPU (the `T_single` /
//! `CPI_single` baseline of the ANTT and STP metrics).

use crate::runner::Job;
use gpu_sim::{Engine, GpuConfig};
use workloads::Benchmark;

/// Outcome of a solo run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoloResult {
    /// Cycles until the measurement target (first pass or budget) was hit.
    pub cycles: u64,
    /// Useful warp instructions at that point.
    pub insts: u64,
}

/// Run `bench` alone on all SMs until its first full pass or `budget` useful
/// instructions, whichever comes first. `horizon_cycles` is a failsafe.
pub fn run_solo(
    cfg: &GpuConfig,
    bench: &Benchmark,
    budget: Option<u64>,
    horizon_cycles: u64,
    seed: u64,
) -> SoloResult {
    let mut engine = Engine::with_seed(cfg.clone(), seed);
    engine.set_break_on_kernel_finish(true);
    let mut job = Job::new(bench.clone(), budget);
    job.ensure_running(&mut engine);
    loop {
        if job.ensure_running(&mut engine) {
            let k = job.current();
            for sm in 0..cfg.num_sms {
                engine.assign_sm(sm, k);
            }
        } else {
            // Make sure assignment is in place on the first iteration too.
            let k = job.current();
            for sm in 0..cfg.num_sms {
                if engine.sm_assigned(sm) != k {
                    engine.assign_sm(sm, k);
                }
            }
        }
        engine.run_for(cfg.us_to_cycles(20.0));
        if job.check_measured(&engine) || engine.cycle() >= horizon_cycles {
            break;
        }
    }
    SoloResult {
        cycles: job.measured_at().unwrap_or_else(|| engine.cycle()),
        insts: job.useful_insts(&engine),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::Suite;

    #[test]
    fn solo_run_measures_budgeted_portion() {
        let suite = Suite::standard();
        let cfg = suite.config();
        let r = run_solo(cfg, suite.require("SAD"), Some(300_000), 200_000_000, 42);
        assert!(r.insts >= 300_000, "insts={}", r.insts);
        assert!(r.cycles > 0);
    }

    #[test]
    fn solo_run_is_deterministic() {
        let suite = Suite::standard();
        let cfg = suite.config();
        let r1 = run_solo(cfg, suite.require("NW"), Some(200_000), 200_000_000, 7);
        let r2 = run_solo(cfg, suite.require("NW"), Some(200_000), 200_000_000, 7);
        assert_eq!(r1, r2);
    }
}
