//! Multiprogram performance metrics (Eyerman & Eeckhout) and helpers.

/// Average normalized turnaround time (lower is better):
/// `ANTT = (1/N) Σ T_multi_i / T_single_i`.
///
/// `pairs` holds `(T_multi, T_single)` per job, in any time unit.
///
/// ```
/// // Two jobs, each slowed 2x by sharing: ANTT = 2, STP = 1.
/// let pairs = [(20.0, 10.0), (8.0, 4.0)];
/// assert_eq!(chimera::metrics::antt(&pairs), 2.0);
/// assert_eq!(chimera::metrics::stp(&pairs), 1.0);
/// ```
///
/// # Panics
///
/// Panics if `pairs` is empty or any `T_single` is zero.
pub fn antt(pairs: &[(f64, f64)]) -> f64 {
    assert!(!pairs.is_empty(), "ANTT needs at least one job");
    let sum: f64 = pairs
        .iter()
        .map(|&(multi, single)| {
            assert!(single > 0.0, "solo turnaround must be positive");
            multi / single
        })
        .sum();
    sum / pairs.len() as f64
}

/// System throughput (higher is better):
/// `STP = Σ T_single_i / T_multi_i`.
///
/// # Panics
///
/// Panics if `pairs` is empty or any `T_multi` is zero.
pub fn stp(pairs: &[(f64, f64)]) -> f64 {
    assert!(!pairs.is_empty(), "STP needs at least one job");
    pairs
        .iter()
        .map(|&(multi, single)| {
            assert!(multi > 0.0, "multi turnaround must be positive");
            single / multi
        })
        .sum()
}

/// Geometric mean of positive values.
///
/// # Panics
///
/// Panics if `xs` is empty or contains a non-positive value.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean needs at least one value");
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean needs positive values");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn antt_of_unslowed_jobs_is_one() {
        assert!((antt(&[(10.0, 10.0), (5.0, 5.0)]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn antt_averages_slowdowns() {
        // Slowdowns 2x and 4x -> ANTT 3.
        assert!((antt(&[(20.0, 10.0), (20.0, 5.0)]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn stp_of_perfect_sharing_is_n() {
        // Two jobs each running as fast as solo: STP = 2.
        assert!((stp(&[(10.0, 10.0), (5.0, 5.0)]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stp_of_serialized_jobs_approaches_one() {
        // Each job takes twice its solo time: STP = 1.
        assert!((stp(&[(20.0, 10.0), (10.0, 5.0)]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn antt_rejects_empty() {
        let _ = antt(&[]);
    }
}
