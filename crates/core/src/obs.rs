//! Post-run analysis of the observability event log.
//!
//! The engine's [event log](gpu_sim::EventLog) records every Algorithm 1
//! decision *with the estimates that produced it* and, later, the actual
//! fate of each block. This module joins the two: for every block the
//! algorithm chose to **drain**, it pairs the predicted drain latency (the
//! §3.2 cost model output) with the cycles the block actually took to finish
//! after the decision, grouped per kernel. This is the quantitative check
//! behind the paper's claim that the drain estimator is accurate enough to
//! steer technique selection (§3.2, Figure 12 discussion) — and the data
//! source for the `est-accuracy` bench binary.

use gpu_sim::{BlockExit, Engine, GpuConfig, ObsEvent, Technique};
use std::collections::{BTreeMap, HashMap};

/// Predicted-vs-actual drain latency for one kernel.
///
/// Produced by [`drain_accuracy`]; one entry aggregates every block of the
/// kernel that Algorithm 1 decided to drain and that subsequently completed.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelAccuracy {
    /// Kernel name, normalised across repeated launches (`LUD.0#3` → `LUD.0`).
    pub kernel: String,
    /// Drained blocks with both a prediction and an observed completion.
    pub samples: usize,
    /// Mean predicted drain latency, µs.
    pub mean_est_us: f64,
    /// Mean observed drain latency (decision → block completion), µs.
    pub mean_actual_us: f64,
    /// Mean of the per-block absolute relative error, percent
    /// (`|est − actual| / actual`, actual clamped to ≥ 1 cycle).
    pub mean_abs_err_pct: f64,
}

/// Join drain *decisions* with the eventual block completions in the
/// engine's event log and report per-kernel estimator accuracy.
///
/// Returns one [`KernelAccuracy`] per kernel, sorted by kernel name; kernels
/// whose drained blocks never completed inside the log's window (or whose
/// begin/end events were evicted from the ring) contribute no samples and
/// are omitted. Returns an empty vector when the event log is disabled.
///
/// ```
/// use chimera::obs::drain_accuracy;
/// use chimera::policy::Policy;
/// use chimera::runner::periodic::{run_periodic_traced, PeriodicConfig};
/// use workloads::Suite;
///
/// let suite = Suite::standard();
/// let cfg = suite.config();
/// let pcfg = PeriodicConfig::paper_default(cfg).horizon_us(2_000.0);
/// let (_, engine) = run_periodic_traced(
///     cfg,
///     suite.require("BS"),
///     Policy::chimera_us(15.0),
///     &pcfg,
///     1 << 18,
/// );
/// for k in drain_accuracy(&engine) {
///     assert!(k.samples > 0);
///     assert!(k.mean_actual_us > 0.0);
///     assert!(k.mean_abs_err_pct.is_finite());
/// }
/// ```
pub fn drain_accuracy(engine: &Engine) -> Vec<KernelAccuracy> {
    let Some(log) = engine.event_log() else {
        return Vec::new();
    };
    let mut tracker = DrainTracker::new();
    for ev in log.iter() {
        match *ev {
            ObsEvent::Decision {
                cycle,
                sm,
                kernel,
                decision,
                ..
            } if decision.chosen == Technique::Drain => {
                if let Some(est) = decision.est_drain {
                    tracker.note_decision(sm, kernel.0, decision.block, cycle, est.latency_cycles);
                }
            }
            ObsEvent::BlockEnd {
                cycle,
                sm,
                kernel,
                block,
                exit: BlockExit::Completed,
                ..
            } => {
                let name = crate::runner::periodic_name(&engine.kernel_stats(kernel).name);
                tracker.note_completion(&name, sm, kernel.0, block, cycle);
            }
            _ => {}
        }
    }
    tracker.per_kernel(engine.config())
}

/// One drained block's predicted-vs-actual latency, joined incrementally.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainSample {
    /// Normalised kernel name (`LUD.0#3` → `LUD.0`).
    pub kernel: String,
    /// Cycle Algorithm 1 decided to drain the block.
    pub decided_at: u64,
    /// Predicted drain latency at decision time, cycles.
    pub est_cycles: u64,
    /// Observed decision-to-completion latency, cycles.
    pub actual_cycles: u64,
}

impl DrainSample {
    /// Absolute relative error of the prediction, percent (actual clamped to
    /// ≥ 1 cycle so a same-cycle completion cannot divide by zero).
    pub fn abs_err_pct(&self) -> f64 {
        let a = self.actual_cycles.max(1) as f64;
        100.0 * ((self.est_cycles as f64) - a).abs() / a
    }
}

/// Incremental join of drain decisions with block completions.
///
/// The post-mortem [`drain_accuracy`] needs the full event log alive at the
/// end of the run, so long runs lose samples to ring eviction and the
/// estimator's error is only known after the fact. A `DrainTracker` is fed
/// *as the run progresses* — [`note_decision`](Self::note_decision) when
/// Algorithm 1 picks drain, [`note_completion`](Self::note_completion) on
/// every block completion — and accumulates joined samples in completion
/// order, bounded by the number of drained blocks rather than the log
/// capacity. The periodic runner carries one and returns its samples in
/// [`PeriodicResult`](crate::runner::periodic::PeriodicResult), which is what
/// the `est-accuracy` binary reports live-vs-static error from.
#[derive(Debug, Clone, Default)]
pub struct DrainTracker {
    /// (sm, kernel, block) -> (decision cycle, predicted drain cycles).
    pending: HashMap<(usize, usize, u32), (u64, u64)>,
    samples: Vec<DrainSample>,
}

impl DrainTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a drain decision for `block` of kernel index `kernel` on `sm`,
    /// predicted to finish in `est_cycles`.
    pub fn note_decision(
        &mut self,
        sm: usize,
        kernel: usize,
        block: u32,
        cycle: u64,
        est_cycles: u64,
    ) {
        self.pending
            .insert((sm, kernel, block), (cycle, est_cycles));
    }

    /// Record a block completion; joins with a pending drain decision for the
    /// same (sm, kernel, block) if one exists, otherwise does nothing.
    pub fn note_completion(
        &mut self,
        kernel_name: &str,
        sm: usize,
        kernel: usize,
        block: u32,
        cycle: u64,
    ) {
        if let Some((t0, est)) = self.pending.remove(&(sm, kernel, block)) {
            self.samples.push(DrainSample {
                kernel: kernel_name.to_string(),
                decided_at: t0,
                est_cycles: est,
                actual_cycles: cycle.saturating_sub(t0),
            });
        }
    }

    /// Joined samples so far, in completion order.
    pub fn samples(&self) -> &[DrainSample] {
        &self.samples
    }

    /// Consume the tracker, keeping the joined samples (pending decisions
    /// whose blocks never completed are dropped, as in the post-mortem join).
    pub fn into_samples(self) -> Vec<DrainSample> {
        self.samples
    }

    /// Drain decisions still waiting for their block to complete.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Aggregate the joined samples per kernel, sorted by kernel name.
    pub fn per_kernel(&self, cfg: &GpuConfig) -> Vec<KernelAccuracy> {
        accuracy_per_kernel(cfg, &self.samples)
    }
}

/// Aggregate drain samples into per-kernel accuracy, sorted by kernel name.
pub fn accuracy_per_kernel(cfg: &GpuConfig, samples: &[DrainSample]) -> Vec<KernelAccuracy> {
    let mut grouped: BTreeMap<&str, Vec<&DrainSample>> = BTreeMap::new();
    for s in samples {
        grouped.entry(&s.kernel).or_default().push(s);
    }
    grouped
        .into_iter()
        .filter(|(_, group)| !group.is_empty())
        .map(|(kernel, group)| {
            let n = group.len() as f64;
            let mean_est = group.iter().map(|s| s.est_cycles as f64).sum::<f64>() / n;
            let mean_actual = group.iter().map(|s| s.actual_cycles as f64).sum::<f64>() / n;
            let mean_abs_err_pct = group.iter().map(|s| s.abs_err_pct()).sum::<f64>() / n;
            KernelAccuracy {
                kernel: kernel.to_string(),
                samples: group.len(),
                mean_est_us: cfg.cycles_to_us(mean_est.round() as u64),
                mean_actual_us: cfg.cycles_to_us(mean_actual.round() as u64),
                mean_abs_err_pct,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use crate::runner::periodic::{run_periodic_traced, PeriodicConfig};
    use workloads::Suite;

    #[test]
    fn tracker_joins_decisions_with_completions() {
        let cfg = gpu_sim::GpuConfig::fermi();
        let mut tr = DrainTracker::new();
        // Completion without a pending decision: ignored.
        tr.note_completion("K", 0, 0, 7, 500);
        assert!(tr.samples().is_empty());
        tr.note_decision(0, 0, 7, 1_000, 800);
        tr.note_decision(1, 0, 9, 1_000, 4_000);
        assert_eq!(tr.pending_len(), 2);
        tr.note_completion("K", 0, 0, 7, 2_000);
        // Wrong SM: block 9 on SM 0 is not block 9 on SM 1.
        tr.note_completion("K", 0, 0, 9, 2_500);
        assert_eq!(tr.pending_len(), 1);
        tr.note_completion("K", 1, 0, 9, 4_500);
        assert_eq!(tr.pending_len(), 0);
        let s = tr.samples();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].actual_cycles, 1_000);
        assert_eq!(s[0].est_cycles, 800);
        assert!((s[0].abs_err_pct() - 20.0).abs() < 1e-9);
        let agg = accuracy_per_kernel(&cfg, tr.samples());
        assert_eq!(agg.len(), 1);
        assert_eq!(agg[0].kernel, "K");
        assert_eq!(agg[0].samples, 2);
        // Mean err: (20% + |4000-3500|/3500)%... per-sample: 20 and 14.285..
        assert!((agg[0].mean_abs_err_pct - (20.0 + 100.0 * 500.0 / 3500.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn disabled_log_yields_empty_report() {
        let suite = Suite::standard();
        let cfg = suite.config();
        let pcfg = PeriodicConfig::paper_default(cfg).horizon_us(1_000.0);
        let (_, engine) =
            run_periodic_traced(cfg, suite.require("BS"), Policy::chimera_us(15.0), &pcfg, 0);
        assert!(engine.event_log().is_none());
        assert!(drain_accuracy(&engine).is_empty());
    }

    #[test]
    fn chimera_on_bs_produces_drain_samples() {
        // BS has long blocks: Chimera drains the nearly-finished ones, so the
        // log must contain drain decisions that later complete.
        let suite = Suite::standard();
        let cfg = suite.config();
        let pcfg = PeriodicConfig::paper_default(cfg).horizon_us(4_000.0);
        let (_, engine) = run_periodic_traced(
            cfg,
            suite.require("BS"),
            Policy::chimera_us(15.0),
            &pcfg,
            1 << 18,
        );
        let report = drain_accuracy(&engine);
        assert!(!report.is_empty(), "chimera on BS must drain some blocks");
        for k in &report {
            assert!(k.samples > 0);
            assert!(k.mean_est_us > 0.0);
            assert!(k.mean_actual_us > 0.0);
            assert!(k.mean_abs_err_pct.is_finite());
        }
    }

    #[test]
    fn report_is_deterministic() {
        let suite = Suite::standard();
        let cfg = suite.config();
        let pcfg = PeriodicConfig::paper_default(cfg).horizon_us(2_000.0);
        let run = || {
            let (_, engine) = run_periodic_traced(
                cfg,
                suite.require("BS"),
                Policy::chimera_us(15.0),
                &pcfg,
                1 << 18,
            );
            drain_accuracy(&engine)
        };
        assert_eq!(run(), run());
    }
}
