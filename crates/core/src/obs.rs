//! Post-run analysis of the observability event log.
//!
//! The engine's [event log](gpu_sim::EventLog) records every Algorithm 1
//! decision *with the estimates that produced it* and, later, the actual
//! fate of each block. This module joins the two: for every block the
//! algorithm chose to **drain**, it pairs the predicted drain latency (the
//! §3.2 cost model output) with the cycles the block actually took to finish
//! after the decision, grouped per kernel. This is the quantitative check
//! behind the paper's claim that the drain estimator is accurate enough to
//! steer technique selection (§3.2, Figure 12 discussion) — and the data
//! source for the `est-accuracy` bench binary.

use gpu_sim::{BlockExit, Engine, ObsEvent, Technique};
use std::collections::{BTreeMap, HashMap};

/// Predicted-vs-actual drain latency for one kernel.
///
/// Produced by [`drain_accuracy`]; one entry aggregates every block of the
/// kernel that Algorithm 1 decided to drain and that subsequently completed.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelAccuracy {
    /// Kernel name, normalised across repeated launches (`LUD.0#3` → `LUD.0`).
    pub kernel: String,
    /// Drained blocks with both a prediction and an observed completion.
    pub samples: usize,
    /// Mean predicted drain latency, µs.
    pub mean_est_us: f64,
    /// Mean observed drain latency (decision → block completion), µs.
    pub mean_actual_us: f64,
    /// Mean of the per-block absolute relative error, percent
    /// (`|est − actual| / actual`, actual clamped to ≥ 1 cycle).
    pub mean_abs_err_pct: f64,
}

/// Join drain *decisions* with the eventual block completions in the
/// engine's event log and report per-kernel estimator accuracy.
///
/// Returns one [`KernelAccuracy`] per kernel, sorted by kernel name; kernels
/// whose drained blocks never completed inside the log's window (or whose
/// begin/end events were evicted from the ring) contribute no samples and
/// are omitted. Returns an empty vector when the event log is disabled.
///
/// ```
/// use chimera::obs::drain_accuracy;
/// use chimera::policy::Policy;
/// use chimera::runner::periodic::{run_periodic_traced, PeriodicConfig};
/// use workloads::Suite;
///
/// let suite = Suite::standard();
/// let cfg = suite.config();
/// let pcfg = PeriodicConfig {
///     horizon_us: 2_000.0,
///     ..PeriodicConfig::paper_default(cfg)
/// };
/// let (_, engine) = run_periodic_traced(
///     cfg,
///     suite.benchmark("BS").unwrap(),
///     Policy::chimera_us(15.0),
///     &pcfg,
///     1 << 18,
/// );
/// for k in drain_accuracy(&engine) {
///     assert!(k.samples > 0);
///     assert!(k.mean_actual_us > 0.0);
///     assert!(k.mean_abs_err_pct.is_finite());
/// }
/// ```
pub fn drain_accuracy(engine: &Engine) -> Vec<KernelAccuracy> {
    let Some(log) = engine.event_log() else {
        return Vec::new();
    };
    // (sm, kernel, block) -> (decision cycle, predicted drain cycles)
    let mut pending: HashMap<(usize, usize, u32), (u64, u64)> = HashMap::new();
    // kernel name -> (est, actual) cycle pairs
    let mut samples: BTreeMap<String, Vec<(u64, u64)>> = BTreeMap::new();
    for ev in log.iter() {
        match *ev {
            ObsEvent::Decision {
                cycle,
                sm,
                kernel,
                decision,
                ..
            } if decision.chosen == Technique::Drain => {
                if let Some(est) = decision.est_drain {
                    pending.insert((sm, kernel.0, decision.block), (cycle, est.latency_cycles));
                }
            }
            ObsEvent::BlockEnd {
                cycle,
                sm,
                kernel,
                block,
                exit: BlockExit::Completed,
                ..
            } => {
                if let Some((t0, est)) = pending.remove(&(sm, kernel.0, block)) {
                    let name = crate::runner::periodic_name(&engine.kernel_stats(kernel).name);
                    samples
                        .entry(name)
                        .or_default()
                        .push((est, cycle.saturating_sub(t0)));
                }
            }
            _ => {}
        }
    }
    let cfg = engine.config();
    samples
        .into_iter()
        .filter(|(_, pairs)| !pairs.is_empty())
        .map(|(kernel, pairs)| {
            let n = pairs.len() as f64;
            let mean_est = pairs.iter().map(|&(e, _)| e as f64).sum::<f64>() / n;
            let mean_actual = pairs.iter().map(|&(_, a)| a as f64).sum::<f64>() / n;
            let mean_abs_err_pct = pairs
                .iter()
                .map(|&(e, a)| {
                    let a = a.max(1) as f64;
                    100.0 * ((e as f64) - a).abs() / a
                })
                .sum::<f64>()
                / n;
            KernelAccuracy {
                kernel,
                samples: pairs.len(),
                mean_est_us: cfg.cycles_to_us((mean_est).round() as u64),
                mean_actual_us: cfg.cycles_to_us((mean_actual).round() as u64),
                mean_abs_err_pct,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;
    use crate::runner::periodic::{run_periodic_traced, PeriodicConfig};
    use workloads::Suite;

    #[test]
    fn disabled_log_yields_empty_report() {
        let suite = Suite::standard();
        let cfg = suite.config();
        let pcfg = PeriodicConfig {
            horizon_us: 1_000.0,
            ..PeriodicConfig::paper_default(cfg)
        };
        let (_, engine) = run_periodic_traced(
            cfg,
            suite.benchmark("BS").unwrap(),
            Policy::chimera_us(15.0),
            &pcfg,
            0,
        );
        assert!(engine.event_log().is_none());
        assert!(drain_accuracy(&engine).is_empty());
    }

    #[test]
    fn chimera_on_bs_produces_drain_samples() {
        // BS has long blocks: Chimera drains the nearly-finished ones, so the
        // log must contain drain decisions that later complete.
        let suite = Suite::standard();
        let cfg = suite.config();
        let pcfg = PeriodicConfig {
            horizon_us: 4_000.0,
            ..PeriodicConfig::paper_default(cfg)
        };
        let (_, engine) = run_periodic_traced(
            cfg,
            suite.benchmark("BS").unwrap(),
            Policy::chimera_us(15.0),
            &pcfg,
            1 << 18,
        );
        let report = drain_accuracy(&engine);
        assert!(!report.is_empty(), "chimera on BS must drain some blocks");
        for k in &report {
            assert!(k.samples > 0);
            assert!(k.mean_est_us > 0.0);
            assert!(k.mean_actual_us > 0.0);
            assert!(k.mean_abs_err_pct.is_finite());
        }
    }

    #[test]
    fn report_is_deterministic() {
        let suite = Suite::standard();
        let cfg = suite.config();
        let pcfg = PeriodicConfig {
            horizon_us: 2_000.0,
            ..PeriodicConfig::paper_default(cfg)
        };
        let run = || {
            let (_, engine) = run_periodic_traced(
                cfg,
                suite.benchmark("BS").unwrap(),
                Policy::chimera_us(15.0),
                &pcfg,
                1 << 18,
            );
            drain_accuracy(&engine)
        };
        assert_eq!(run(), run());
    }
}
