//! SM partitioning policies.
//!
//! The paper keeps the partitioning policy orthogonal to preemption (§3.1):
//! "An SM partitioning policy in the kernel scheduler tells how many SMs each
//! kernel will run on" — it may depend on kernel characteristics (Adriaens et
//! al.'s spatial multitasking) or priorities (Tanasic et al.). Chimera then
//! *realises* whatever partition the policy asks for. The evaluation uses a
//! mix of Smart-Even and Rounds: even shares, except that size-bound kernels
//! yield their unused share.

use std::fmt;

/// How SMs are divided among concurrently running jobs.
///
/// ```
/// use chimera::partition::PartitionPolicy;
///
/// // Job 1 is size-bound at 3 SMs; Smart-Even donates its unused share.
/// let shares = PartitionPolicy::SmartEven.shares(30, &[100, 3]);
/// assert_eq!(shares, vec![27, 3]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum PartitionPolicy {
    /// Plain even split; surplus SMs of size-bound jobs stay idle.
    Even,
    /// Even split, with unused share donated to jobs that can use it —
    /// the paper's evaluation policy (§4: "SMs are distributed evenly across
    /// the kernels except when the kernel requires less SMs").
    SmartEven,
    /// Shares proportional to the given weights (normalised), each capped by
    /// the job's demand; leftovers are donated greedily by weight.
    Proportional(Vec<f64>),
    /// One job is prioritised: it receives min(total, demand) SMs first and
    /// the rest share evenly (priority-based scheduling à la Tanasic et al.).
    Priority(usize),
}

impl fmt::Display for PartitionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionPolicy::Even => f.write_str("even"),
            PartitionPolicy::SmartEven => f.write_str("smart-even"),
            PartitionPolicy::Proportional(w) => write!(f, "proportional{w:?}"),
            PartitionPolicy::Priority(j) => write!(f, "priority(job {j})"),
        }
    }
}

impl PartitionPolicy {
    /// Compute the desired SM share per job given each job's *demand* (the
    /// number of SMs its remaining blocks can occupy).
    ///
    /// Invariants: `sum(shares) <= total`, `shares[i] <= demands[i]`, and no
    /// SM is left idle while some job has unmet demand (except under `Even`,
    /// which deliberately strands surplus).
    ///
    /// # Panics
    ///
    /// Panics if `demands` is empty, or if a `Proportional` weight vector has
    /// the wrong length or non-positive entries, or a `Priority` index is out
    /// of range.
    pub fn shares(&self, total: usize, demands: &[usize]) -> Vec<usize> {
        assert!(!demands.is_empty(), "at least one job required");
        let n = demands.len();
        match self {
            PartitionPolicy::Even => {
                let base = total / n;
                demands.iter().map(|&d| d.min(base)).collect()
            }
            PartitionPolicy::SmartEven => {
                let base = total / n;
                let mut shares: Vec<usize> = demands.iter().map(|&d| d.min(base)).collect();
                donate_leftovers(total, demands, &mut shares, &(0..n).collect::<Vec<_>>());
                shares
            }
            PartitionPolicy::Proportional(weights) => {
                assert_eq!(weights.len(), n, "one weight per job");
                assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
                let wsum: f64 = weights.iter().sum();
                let mut shares: Vec<usize> = weights
                    .iter()
                    .zip(demands)
                    .map(|(&w, &d)| ((total as f64 * w / wsum).floor() as usize).min(d))
                    .collect();
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| weights[b].total_cmp(&weights[a]));
                donate_leftovers(total, demands, &mut shares, &order);
                shares
            }
            PartitionPolicy::Priority(p) => {
                assert!(*p < n, "priority job index out of range");
                // Anti-starvation floor: "starvation can also be avoided by
                // scheduling at least one SM to each available kernel"
                // (§2.1) — every job with demand keeps one SM even when a
                // priority job could consume the whole GPU.
                let floor: usize = (0..n)
                    .filter(|&i| i != *p && demands[i] > 0)
                    .count()
                    .min(total);
                let mut shares = vec![0usize; n];
                shares[*p] = demands[*p].min(total - floor);
                let rest = total - shares[*p];
                let others: Vec<usize> = (0..n).filter(|i| i != p).collect();
                if !others.is_empty() {
                    let base = rest / others.len();
                    for &i in &others {
                        shares[i] = demands[i].min(base.max(1));
                    }
                    donate_leftovers(total, demands, &mut shares, &others);
                }
                shares
            }
        }
    }
}

/// Give unassigned SMs to jobs (in `order`) that still have unmet demand.
fn donate_leftovers(total: usize, demands: &[usize], shares: &mut [usize], order: &[usize]) {
    let mut left = total - shares.iter().sum::<usize>();
    for &i in order.iter() {
        if left == 0 {
            break;
        }
        let want = demands[i].saturating_sub(shares[i]).min(left);
        shares[i] += want;
        left -= want;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_strands_surplus() {
        let s = PartitionPolicy::Even.shares(30, &[100, 3]);
        assert_eq!(s, vec![15, 3]);
    }

    #[test]
    fn smart_even_donates_unused_share() {
        // The paper's policy: job 1 is size-bound at 3 SMs; job 0 takes 27.
        let s = PartitionPolicy::SmartEven.shares(30, &[100, 3]);
        assert_eq!(s, vec![27, 3]);
    }

    #[test]
    fn smart_even_is_even_when_both_saturate() {
        let s = PartitionPolicy::SmartEven.shares(30, &[100, 100]);
        assert_eq!(s, vec![15, 15]);
    }

    #[test]
    fn proportional_respects_weights_and_demand() {
        let s = PartitionPolicy::Proportional(vec![2.0, 1.0]).shares(30, &[100, 100]);
        assert_eq!(s, vec![20, 10]);
        let s = PartitionPolicy::Proportional(vec![2.0, 1.0]).shares(30, &[4, 100]);
        assert_eq!(s, vec![4, 26], "capped by demand, leftover donated");
    }

    #[test]
    fn priority_takes_all_it_needs_but_never_starves() {
        let s = PartitionPolicy::Priority(1).shares(30, &[100, 22]);
        assert_eq!(s, vec![8, 22]);
        // The anti-starvation floor (paper §2.1): the background job keeps
        // one SM even under a greedy priority job.
        let s = PartitionPolicy::Priority(0).shares(30, &[100, 22]);
        assert_eq!(s, vec![29, 1]);
        // With no background demand, the priority job takes everything.
        let s = PartitionPolicy::Priority(0).shares(30, &[100, 0]);
        assert_eq!(s, vec![30, 0]);
    }

    #[test]
    fn shares_never_exceed_total_or_demand() {
        let policies = [
            PartitionPolicy::Even,
            PartitionPolicy::SmartEven,
            PartitionPolicy::Proportional(vec![1.0, 3.0, 2.0]),
            PartitionPolicy::Priority(2),
        ];
        for policy in policies {
            for demands in [[0usize, 5, 9], [30, 30, 30], [1, 0, 50], [7, 7, 7]] {
                let s = policy.shares(30, &demands);
                assert!(s.iter().sum::<usize>() <= 30, "{policy}: {s:?}");
                for (i, &x) in s.iter().enumerate() {
                    assert!(x <= demands[i], "{policy}: {s:?} vs {demands:?}");
                }
            }
        }
    }

    #[test]
    fn no_stranding_with_unmet_demand_under_smart_even() {
        for demands in [[20usize, 20], [30, 1], [2, 40], [16, 16]] {
            let s = PartitionPolicy::SmartEven.shares(30, &demands);
            let used: usize = s.iter().sum();
            let unmet: usize = demands
                .iter()
                .zip(&s)
                .map(|(&d, &x)| d.saturating_sub(x))
                .sum();
            assert!(
                used == 30 || unmet == 0,
                "stranded SMs: {s:?} for {demands:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "one weight per job")]
    fn proportional_checks_weight_length() {
        PartitionPolicy::Proportional(vec![1.0]).shares(30, &[1, 2]);
    }

    #[test]
    fn display_names() {
        assert_eq!(PartitionPolicy::Even.to_string(), "even");
        assert_eq!(PartitionPolicy::SmartEven.to_string(), "smart-even");
        assert!(PartitionPolicy::Priority(0)
            .to_string()
            .contains("priority"));
    }
}
