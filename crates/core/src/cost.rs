//! Cost estimation (§3.2) and the closed-form estimators of §2.4.
//!
//! Chimera compares techniques in common units: **cycles** for preemption
//! latency and **warp instructions** for throughput overhead. The online
//! model consumes two per-kernel statistics gathered in hardware — average
//! instructions per completed block and average cycles-per-instruction — plus
//! the per-block progress counters of the SM snapshot.

use gpu_sim::{GpuConfig, KernelStats, Technique};
use std::collections::HashMap;

/// Sentinel cost used when statistics are missing: "conservatively use the
/// maximum value as the estimated cost to avoid selecting affected
/// techniques" (§3.2). Kept far from `u64::MAX` so sums cannot overflow.
pub const MAX_COST: u64 = u64::MAX / 1024;

/// Which estimator drives the §3.2 cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EstimatorMode {
    /// The paper's offline-shaped model: drain bounds come from the
    /// worst-case headroom `max(avg + 2σ, observed max)` only.
    #[default]
    Static,
    /// Live closed-loop estimation: per-kernel block-length *distributions*
    /// are tracked as the run progresses (streaming [`P2Quantile`] sketches)
    /// and the drain bound uses the configured risk quantile, falling back
    /// to the static headroom for blocks beyond it or while samples are
    /// thin.
    Online,
}

impl std::str::FromStr for EstimatorMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "static" => Ok(EstimatorMode::Static),
            "online" => Ok(EstimatorMode::Online),
            other => Err(format!("unknown estimator '{other}' (static|online)")),
        }
    }
}

impl std::fmt::Display for EstimatorMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EstimatorMode::Static => "static",
            EstimatorMode::Online => "online",
        })
    }
}

/// Configuration of the cost estimator: the mode and the risk knob.
///
/// The **risk quantile** prices the tail risk of draining: a bound at p95
/// says "95 % of observed blocks were at most this long", so a drain chosen
/// under it misses its estimate for at most the longest 5 % of blocks. Lower
/// quantiles give sharper (smaller) estimates but more frequent
/// underestimates; `1.0` degenerates to the observed maximum. The static
/// mode ignores the knob entirely.
///
/// ```
/// use chimera::cost::{EstimatorConfig, EstimatorMode};
///
/// let est = EstimatorConfig::default();
/// assert_eq!(est.mode, EstimatorMode::Static);
/// let online = EstimatorConfig::online(0.95);
/// assert_eq!(online.mode, EstimatorMode::Online);
/// assert!((online.risk_quantile - 0.95).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorConfig {
    /// Static (offline-shaped) or online (closed-loop) estimation.
    pub mode: EstimatorMode,
    /// Quantile of the block-length distribution used as the drain bound in
    /// online mode, in `(0, 1]`. Defaults to 0.95.
    pub risk_quantile: f64,
    /// Completed blocks required before the quantile is trusted; below this
    /// the estimator falls back to the static mean-based headroom.
    pub min_samples: u64,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            mode: EstimatorMode::Static,
            risk_quantile: 0.95,
            min_samples: 16,
        }
    }
}

impl EstimatorConfig {
    /// Online estimation at the given risk quantile (clamped to `(0, 1]`).
    pub fn online(risk_quantile: f64) -> Self {
        EstimatorConfig {
            mode: EstimatorMode::Online,
            risk_quantile: risk_quantile.clamp(f64::EPSILON, 1.0),
            ..EstimatorConfig::default()
        }
    }

    /// The configured risk quantile as an integer percentage (for event
    /// logs: all-integer fields keep the JSON schema byte-stable).
    pub fn risk_pct(&self) -> u32 {
        // simlint: allow(as-narrowing) -- risk_quantile is clamped to [0,1], so the product rounds into 0..=100
        (self.risk_quantile * 100.0).round() as u32
    }
}

/// A streaming quantile tracker: the P² algorithm (Jain & Chlamtac, 1985).
///
/// Maintains five markers that approximate the `q`-quantile of everything
/// observed so far in O(1) memory and O(1) deterministic time per
/// observation — no sampling, no randomness, so estimates are reproducible
/// and independent of thread count. Below five observations the exact order
/// statistic of the buffered values is returned.
///
/// ```
/// use chimera::cost::P2Quantile;
///
/// let mut p95 = P2Quantile::new(0.95);
/// assert_eq!(p95.estimate(), None);
/// for i in 1..=1000u64 {
///     p95.observe(i as f64);
/// }
/// let est = p95.estimate().unwrap();
/// assert!((est - 950.0).abs() < 25.0, "{est}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct P2Quantile {
    q: f64,
    /// Observations so far.
    count: u64,
    /// Marker heights (the first `count` entries are a raw buffer until five
    /// observations arrive).
    heights: [f64; 5],
    /// Actual marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
}

impl P2Quantile {
    /// A tracker for the `q`-quantile (clamped to `(0, 1]`).
    pub fn new(q: f64) -> Self {
        let q = q.clamp(f64::EPSILON, 1.0);
        P2Quantile {
            q,
            count: 0,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
        }
    }

    /// The quantile this tracker approximates.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Record one observation.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let n = self.count as usize;
        self.count += 1;
        if n < 5 {
            // Fill the initial buffer; sort once it is full.
            self.heights[n] = x;
            if n == 4 {
                self.heights.sort_unstable_by(|a, b| a.total_cmp(b));
            }
            return;
        }
        // Find the cell k with h[k] <= x < h[k+1], extending the extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            while k < 3 && x >= self.heights[k + 1] {
                k += 1;
            }
            k
        };
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        let dn = [0.0, self.q / 2.0, self.q, (1.0 + self.q) / 2.0, 1.0];
        for (d, step) in self.desired.iter_mut().zip(dn) {
            *d += step;
        }
        // Adjust interior markers toward their desired positions with the
        // piecewise-parabolic (P²) update, falling back to linear when the
        // parabola would leave the bracket.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let h = self.parabolic(i, d);
                let h = if self.heights[i - 1] < h && h < self.heights[i + 1] {
                    h
                } else {
                    self.linear(i, d)
                };
                self.heights[i] = h;
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (hm, h, hp) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (nm, n, np) = (
            self.positions[i - 1],
            self.positions[i],
            self.positions[i + 1],
        );
        h + d / (np - nm)
            * ((n - nm + d) * (hp - h) / (np - n) + (np - n - d) * (h - hm) / (n - nm))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current quantile estimate, `None` before the first observation.
    ///
    /// With fewer than five observations this is the exact nearest-rank
    /// order statistic of the values seen so far.
    pub fn estimate(&self) -> Option<f64> {
        let n = self.count as usize;
        match n {
            0 => None,
            1..=4 => {
                let mut buf = [0.0; 5];
                buf[..n].copy_from_slice(&self.heights[..n]);
                buf[..n].sort_unstable_by(|a, b| a.total_cmp(b));
                let rank = ((self.q * n as f64).ceil() as usize).clamp(1, n);
                Some(buf[rank - 1])
            }
            _ => Some(self.heights[2]),
        }
    }
}

/// Online observations about one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelObs {
    /// Average warp instructions per completed block.
    pub avg_tb_insts: Option<f64>,
    /// Average cycles-per-instruction of a completed block (at occupancy).
    pub avg_tb_cpi: Option<f64>,
    /// Standard deviation of per-block instructions (0 when unknown).
    ///
    /// Used as headroom in the drain-latency estimate: the paper observes
    /// that its rare deadline misses come from drain-latency misestimation
    /// and that they "can be avoided by providing a headroom" (§4.1); an
    /// `avg + 2σ` upper bound is that headroom, derived from the measured
    /// block-length variance.
    pub std_tb_insts: f64,
    /// Largest per-block instruction count observed (0 when unknown).
    pub max_tb_insts: u64,
    /// Online-tracked risk-quantile of per-block instructions (e.g. the p95
    /// block length), when an [online estimator](EstimatorMode::Online) has
    /// seen enough samples. `None` under the static estimator, with thin
    /// samples, or when observations came from engine statistics (which
    /// carry mean/variance/max but no quantile sketch).
    ///
    /// When present, the drain-latency bound uses this instead of the
    /// worst-case `max(avg + 2σ, max)` headroom for blocks that have not yet
    /// exceeded it — a sharper, risk-priced estimate.
    pub quantile_tb_insts: Option<f64>,
}

impl KernelObs {
    /// Extract observations from engine statistics.
    ///
    /// The engine tracks the block-length distribution's mean, variance
    /// (Welford) and maximum, so the §4.1 drain-latency headroom survives
    /// this path; an earlier version zeroed `std_tb_insts`/`max_tb_insts`
    /// here, silently discarding the headroom whenever observations came
    /// from engine stats instead of an [`ObsBank`]. Quantile sketches are
    /// not kept in hardware statistics registers, so `quantile_tb_insts`
    /// stays `None`.
    pub fn from_stats(stats: &KernelStats) -> Self {
        KernelObs {
            avg_tb_insts: stats.avg_tb_insts(),
            avg_tb_cpi: stats.avg_tb_cpi(),
            std_tb_insts: stats.std_tb_insts(),
            max_tb_insts: stats.max_tb_insts,
            quantile_tb_insts: None,
        }
    }

    /// This observation set as seen through `est`: the static mode strips
    /// the quantile so selection is provably identical to the paper's
    /// offline-shaped model regardless of what the bank tracked.
    pub fn for_estimator(self, est: &EstimatorConfig) -> Self {
        match est.mode {
            EstimatorMode::Static => KernelObs {
                quantile_tb_insts: None,
                ..self
            },
            EstimatorMode::Online => self,
        }
    }
}

/// Accumulates per-kernel observations across kernel instances (relaunches
/// and benchmark restarts), keyed by kernel name — the hardware's statistics
/// registers survive re-launches of the same kernel code.
#[derive(Debug, Clone, Default)]
pub struct ObsBank {
    acc: HashMap<String, Acc>,
    est: EstimatorConfig,
}

/// Per-kernel accumulator. Variance is tracked with Welford's online
/// algorithm (`mean`/`m2`) rather than the sum-of-squares formula
/// `E[x²] − E[x]²`, which catastrophically cancels for long-running kernels:
/// with per-block counts around 10⁹ instructions the squared sums exceed
/// f64's 53-bit integer range and the subtraction of two ~10¹⁸ quantities
/// silently clamps a real variance to 0 — removing the §4.1 drain headroom
/// exactly where misestimation is most dangerous.
#[derive(Debug, Clone, Copy, Default)]
struct Acc {
    /// Completed blocks observed.
    count: u64,
    /// Welford running mean of per-block instructions.
    mean: f64,
    /// Welford running sum of squared deviations.
    m2: f64,
    /// Total instructions (u128: immune to overflow however long the run).
    insts: u128,
    /// Total cycles (u128 for the same reason).
    cycles: u128,
    max_insts: u64,
    /// Streaming risk-quantile sketch of per-block instructions; allocated
    /// on first record when the bank's estimator is online, absent (and
    /// zero-cost) under the static estimator.
    quant: Option<P2Quantile>,
}

impl ObsBank {
    /// An empty bank with the default (static) estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty bank feeding the given estimator: with
    /// [`EstimatorMode::Online`] every recorded block also updates a
    /// per-kernel [`P2Quantile`] sketch at `est.risk_quantile`, and
    /// [`ObsBank::obs`] exposes the quantile once `est.min_samples` blocks
    /// were seen.
    pub fn with_estimator(est: EstimatorConfig) -> Self {
        ObsBank {
            acc: HashMap::new(),
            est,
        }
    }

    /// The estimator configuration this bank feeds.
    pub fn estimator(&self) -> EstimatorConfig {
        self.est
    }

    /// Record one completed block of kernel `name`.
    pub fn record_tb(&mut self, name: &str, insts: u64, cycles: u64) {
        let est = self.est;
        let e = self.acc.entry(name.to_string()).or_default();
        e.count += 1;
        let x = insts as f64;
        let delta = x - e.mean;
        e.mean += delta / e.count as f64;
        e.m2 += delta * (x - e.mean);
        e.insts += u128::from(insts);
        e.cycles += u128::from(cycles);
        e.max_insts = e.max_insts.max(insts);
        if est.mode == EstimatorMode::Online {
            e.quant
                .get_or_insert_with(|| P2Quantile::new(est.risk_quantile))
                .observe(x);
        }
    }

    /// Current observations for kernel `name`.
    pub fn obs(&self, name: &str) -> KernelObs {
        match self.acc.get(name) {
            Some(a) if a.count > 0 && a.insts > 0 => {
                // Population variance, matching the hardware-register model
                // (the paper's statistics are whole-population counters).
                let var = (a.m2 / a.count as f64).max(0.0);
                // The quantile is trusted only past the thin-sample
                // threshold; before that selection falls back to the
                // mean-based static headroom.
                let quantile_tb_insts = match a.quant {
                    Some(q) if a.count >= self.est.min_samples => q.estimate(),
                    _ => None,
                };
                KernelObs {
                    // Exact totals give a sharper mean than the running one.
                    avg_tb_insts: Some(a.insts as f64 / a.count as f64),
                    avg_tb_cpi: Some(a.cycles as f64 / a.insts as f64),
                    std_tb_insts: var.sqrt(),
                    max_tb_insts: a.max_insts,
                    quantile_tb_insts,
                }
            }
            _ => KernelObs::default(),
        }
    }

    /// Number of blocks observed for `name`.
    ///
    /// Returns the exact `u64` count: the former `u32` return type silently
    /// saturated at `u32::MAX`, which let very long-running kernels
    /// under-weight their observation history and quietly skew drain-cost
    /// estimates.
    pub fn samples(&self, name: &str) -> u64 {
        self.acc.get(name).map_or(0, |e| e.count)
    }
}

/// Estimated cost of preempting one block with one technique.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TbCost {
    /// The technique.
    pub technique: Technique,
    /// Estimated preemption latency, cycles.
    pub latency_cycles: u64,
    /// Estimated throughput overhead, warp instructions.
    pub overhead_insts: u64,
}

/// Per-block progress inputs to the estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TbProgress {
    /// Warp instructions the block has executed.
    pub executed_insts: u64,
    /// Whether the block may be flushed (idempotent-now, and — in strict
    /// mode — the kernel itself idempotent).
    pub flushable: bool,
}

/// The §3.2 cost model for one kernel on one SM.
///
/// ```
/// use chimera::cost::{CostModel, KernelObs, TbProgress};
/// use gpu_sim::{GpuConfig, Technique};
///
/// let cfg = GpuConfig::fermi();
/// let obs = KernelObs {
///     avg_tb_insts: Some(1000.0),
///     avg_tb_cpi: Some(16.0),
///     ..KernelObs::default()
/// };
/// let model = CostModel::new(&cfg, 24 * 1024, obs);
/// // A young block: flushing costs almost nothing.
/// let costs = model.estimate(
///     TbProgress { executed_insts: 20, flushable: true },
///     4,
///     900,
/// );
/// let flush = costs.iter().find(|c| c.technique == Technique::Flush).unwrap();
/// assert_eq!(flush.latency_cycles, 0);
/// assert_eq!(flush.overhead_insts, 20);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    cfg: &'a GpuConfig,
    ctx_bytes_per_tb: u64,
    obs: KernelObs,
}

impl<'a> CostModel<'a> {
    /// Create a model for a kernel with the given per-block context size.
    pub fn new(cfg: &'a GpuConfig, ctx_bytes_per_tb: u64, obs: KernelObs) -> Self {
        CostModel {
            cfg,
            ctx_bytes_per_tb,
            obs,
        }
    }

    /// Context-switch latency for an SM holding `resident` blocks (cycles).
    ///
    /// The paper treats this as a per-SM constant: the SM's whole context
    /// moved through its share of memory bandwidth.
    pub fn switch_latency_cycles(&self, resident: usize) -> u64 {
        self.cfg
            .sm_transfer_cycles(self.ctx_bytes_per_tb * resident.max(1) as u64)
    }

    /// Estimate costs of every applicable technique for one block.
    ///
    /// `resident` is the number of blocks on the SM; `max_executed` is the
    /// largest executed-instruction count among them (for the drain-skew
    /// overhead estimate).
    pub fn estimate(&self, tb: TbProgress, resident: usize, max_executed: u64) -> Vec<TbCost> {
        let mut out = Vec::with_capacity(3);
        // Context switch: latency = constant save time; overhead = 2x the
        // latency of lost issue at the kernel's per-SM IPC.
        let sw_lat = self.switch_latency_cycles(resident);
        let ipc = match self.obs.avg_tb_cpi {
            Some(cpi) if cpi > 0.0 => resident as f64 / cpi,
            // Without statistics, assume peak issue (pessimistic overhead).
            _ => 1.0 / self.cfg.issue_interval() as f64,
        };
        out.push(TbCost {
            technique: Technique::Switch,
            latency_cycles: sw_lat,
            overhead_insts: (2.0 * sw_lat as f64 * ipc) as u64,
        });
        // Drain: remaining instructions x CPI. Instructions are used instead
        // of raw cycles because their variance is lower (§3.2); missing
        // statistics degrade to the conservative maximum.
        match (self.obs.avg_tb_insts, self.obs.avg_tb_cpi) {
            (Some(avg_insts), Some(cpi)) => {
                // Static upper bound on the block length: max(avg + 2 sigma,
                // observed max) — the headroom the paper recommends against
                // drain misestimation (§4.1). With an online-tracked risk
                // quantile (e.g. p95), blocks still under the quantile get
                // the sharper risk-priced bound; blocks past it but under the
                // static bound fall back to the worst-case headroom. A block
                // that has exceeded even the static bound is a straggler
                // whose remaining time cannot be estimated — per §3.2,
                // unestimable costs become maximal.
                let static_bound =
                    (avg_insts + 2.0 * self.obs.std_tb_insts).max(self.obs.max_tb_insts as f64);
                let executed = tb.executed_insts as f64;
                let bound = match self.obs.quantile_tb_insts {
                    Some(q) if executed < q => q,
                    _ => static_bound,
                };
                if executed >= bound {
                    out.push(TbCost {
                        technique: Technique::Drain,
                        latency_cycles: MAX_COST,
                        overhead_insts: max_executed.saturating_sub(tb.executed_insts),
                    });
                } else {
                    let remaining = bound - executed;
                    out.push(TbCost {
                        technique: Technique::Drain,
                        latency_cycles: (remaining * cpi) as u64,
                        overhead_insts: max_executed.saturating_sub(tb.executed_insts),
                    });
                }
            }
            _ => out.push(TbCost {
                technique: Technique::Drain,
                latency_cycles: MAX_COST,
                overhead_insts: MAX_COST,
            }),
        }
        // Flush: zero latency, all executed work discarded. Only available
        // while the block is idempotent.
        if tb.flushable {
            out.push(TbCost {
                technique: Technique::Flush,
                latency_cycles: 0,
                overhead_insts: tb.executed_insts,
            });
        }
        out
    }
}

/// Closed-form estimators behind Figures 2 and 3 (§2.4).
///
/// These treat a kernel analytically: blocks in sync, a uniformly random
/// preemption point, and overheads expressed as `lost / (lost + useful)`.
pub mod analytic {
    use gpu_sim::GpuConfig;

    /// Estimated context-switch preemption latency, µs (Figure 2 "Switch").
    pub fn switch_latency_us(cfg: &GpuConfig, ctx_bytes_per_tb: u64, tbs_per_sm: u32) -> f64 {
        cfg.cycles_to_us(cfg.sm_transfer_cycles(ctx_bytes_per_tb * u64::from(tbs_per_sm)))
    }

    /// Estimated drain preemption latency, µs (Figure 2 "Drain"): the worst
    /// case of a preemption arriving just after blocks started.
    pub fn drain_latency_us(drain_time_us: f64) -> f64 {
        drain_time_us
    }

    /// Estimated flush preemption latency, µs (Figure 2 "Flush").
    pub fn flush_latency_us() -> f64 {
        0.0
    }

    /// Estimated context-switch throughput overhead, % (Figure 3 "Switch"):
    /// `2L / (2L + D)` — both saving and restoring stall the SM.
    pub fn switch_overhead_pct(switch_latency_us: f64, drain_time_us: f64) -> f64 {
        let lost = 2.0 * switch_latency_us;
        100.0 * lost / (lost + drain_time_us)
    }

    /// Estimated drain throughput overhead, % (Figure 3 "Drain"): zero under
    /// the blocks-in-sync assumption.
    pub fn drain_overhead_pct() -> f64 {
        0.0
    }

    /// Estimated flush throughput overhead, % (Figure 3 "Flush"):
    /// for a uniform preemption point `p`, the wasted fraction is
    /// `E[p/(1+p)] = 1 − ln 2 ≈ 30.7 %`, independent of the kernel.
    pub fn flush_overhead_pct() -> f64 {
        100.0 * (1.0 - std::f64::consts::LN_2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    fn cfg() -> GpuConfig {
        GpuConfig::fermi()
    }

    fn obs(insts: f64, cpi: f64) -> KernelObs {
        KernelObs {
            avg_tb_insts: Some(insts),
            avg_tb_cpi: Some(cpi),
            ..KernelObs::default()
        }
    }

    #[test]
    fn switch_latency_matches_table2_blackscholes() {
        let c = cfg();
        let m = CostModel::new(&c, 24 * 1024, KernelObs::default());
        let us = c.cycles_to_us(m.switch_latency_cycles(4));
        assert!((us - 16.6).abs() < 1.0, "{us}");
    }

    #[test]
    fn drain_latency_shrinks_with_progress() {
        let c = cfg();
        let m = CostModel::new(&c, 1024, obs(1000.0, 16.0));
        let early = m
            .estimate(
                TbProgress {
                    executed_insts: 100,
                    flushable: true,
                },
                4,
                100,
            )
            .iter()
            .find(|t| t.technique == Technique::Drain)
            .unwrap()
            .latency_cycles;
        let late = m
            .estimate(
                TbProgress {
                    executed_insts: 900,
                    flushable: true,
                },
                4,
                900,
            )
            .iter()
            .find(|t| t.technique == Technique::Drain)
            .unwrap()
            .latency_cycles;
        assert!(late < early);
        assert_eq!(early, (900.0 * 16.0) as u64);
    }

    #[test]
    fn flush_overhead_grows_with_progress_and_vanishes_when_unflushable() {
        let c = cfg();
        let m = CostModel::new(&c, 1024, obs(1000.0, 16.0));
        let costs = m.estimate(
            TbProgress {
                executed_insts: 600,
                flushable: true,
            },
            4,
            800,
        );
        let flush = costs
            .iter()
            .find(|t| t.technique == Technique::Flush)
            .unwrap();
        assert_eq!(flush.latency_cycles, 0);
        assert_eq!(flush.overhead_insts, 600);
        let costs = m.estimate(
            TbProgress {
                executed_insts: 600,
                flushable: false,
            },
            4,
            800,
        );
        assert!(costs.iter().all(|t| t.technique != Technique::Flush));
    }

    #[test]
    fn missing_stats_make_drain_maximal_but_switch_usable() {
        let c = cfg();
        let m = CostModel::new(&c, 24 * 1024, KernelObs::default());
        let costs = m.estimate(
            TbProgress {
                executed_insts: 5,
                flushable: true,
            },
            4,
            5,
        );
        let drain = costs
            .iter()
            .find(|t| t.technique == Technique::Drain)
            .unwrap();
        assert_eq!(drain.latency_cycles, MAX_COST);
        let switch = costs
            .iter()
            .find(|t| t.technique == Technique::Switch)
            .unwrap();
        assert!(switch.latency_cycles < MAX_COST);
        assert!(switch.overhead_insts > 0);
    }

    #[test]
    fn drain_skew_overhead_uses_max_executed() {
        let c = cfg();
        let m = CostModel::new(&c, 1024, obs(1000.0, 16.0));
        let costs = m.estimate(
            TbProgress {
                executed_insts: 300,
                flushable: true,
            },
            4,
            750,
        );
        let drain = costs
            .iter()
            .find(|t| t.technique == Technique::Drain)
            .unwrap();
        assert_eq!(drain.overhead_insts, 450);
    }

    #[test]
    fn obs_bank_accumulates_across_instances() {
        let mut bank = ObsBank::new();
        assert_eq!(bank.obs("k").avg_tb_insts, None);
        bank.record_tb("k", 1000, 16_000);
        bank.record_tb("k", 2000, 24_000);
        let o = bank.obs("k");
        assert_eq!(o.avg_tb_insts, Some(1500.0));
        assert!((o.avg_tb_cpi.unwrap() - 40_000.0 / 3000.0).abs() < 1e-9);
        assert_eq!(bank.samples("k"), 2);
        assert_eq!(bank.samples("other"), 0);
    }

    #[test]
    fn obs_bank_variance_survives_large_instruction_counts() {
        // Long-running kernels: per-block counts around 3·10⁹ instructions
        // with a spread of ±1000. The old `E[x²] − E[x]²` accumulator loses
        // the variance entirely (the squares are ~9·10¹⁸, far past f64's
        // 53-bit integer range, so the subtraction cancels to ~0 or worse);
        // Welford keeps it.
        let mut bank = ObsBank::new();
        let base = 3_000_000_000u64;
        bank.record_tb("big", base - 1000, 16 * (base - 1000));
        bank.record_tb("big", base, 16 * base);
        bank.record_tb("big", base + 1000, 16 * (base + 1000));
        let o = bank.obs("big");
        // Population std of {-1000, 0, +1000} around the mean.
        let expect = (2_000_000.0f64 / 3.0).sqrt();
        assert!(
            (o.std_tb_insts - expect).abs() < 1.0,
            "std {} vs expected {expect}",
            o.std_tb_insts
        );
        assert_eq!(o.avg_tb_insts, Some(base as f64));
        assert!((o.avg_tb_cpi.unwrap() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn obs_bank_accumulation_does_not_overflow() {
        // Totals that would overflow u64 accumulation must stay finite and
        // ordered (u128 totals; Welford state is f64 throughout).
        let mut bank = ObsBank::new();
        for _ in 0..8 {
            bank.record_tb("huge", u64::MAX / 2, u64::MAX / 2);
        }
        let o = bank.obs("huge");
        assert_eq!(bank.samples("huge"), 8);
        assert!((o.avg_tb_cpi.unwrap() - 1.0).abs() < 1e-9);
        assert!(o.std_tb_insts < 1e6, "identical samples: std ~0");
        assert!(o.avg_tb_insts.unwrap().is_finite());
    }

    #[test]
    fn p2_exact_below_five_samples() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.estimate(), None);
        p.observe(30.0);
        assert_eq!(p.estimate(), Some(30.0));
        p.observe(10.0);
        // Nearest-rank median of {10, 30} is the rank-1 element.
        assert_eq!(p.estimate(), Some(10.0));
        p.observe(20.0);
        assert_eq!(p.estimate(), Some(20.0));
    }

    #[test]
    fn p2_converges_on_uniform_stream() {
        // Deterministic low-discrepancy uniform-ish stream on [0, 1000).
        for &(q, expect) in &[(0.5, 500.0), (0.9, 900.0), (0.95, 950.0)] {
            let mut p = P2Quantile::new(q);
            let mut x = 0.0f64;
            for _ in 0..10_000 {
                x = (x + 617.0) % 1000.0; // golden-ratio-like lattice walk
                p.observe(x);
            }
            let est = p.estimate().unwrap();
            assert!(
                (est - expect).abs() < 20.0,
                "q={q}: estimate {est} vs expected {expect}"
            );
        }
    }

    #[test]
    fn p2_converges_on_bimodal_stream() {
        // 90 % short blocks (~100), 10 % long blocks (~2000): the p95 must
        // land in the long mode, far above mean + 2σ of the short mode.
        let mut p = P2Quantile::new(0.95);
        for i in 0..5000u64 {
            let x = if i % 10 == 9 { 2000.0 } else { 100.0 };
            p.observe(x + (i % 7) as f64);
        }
        let est = p.estimate().unwrap();
        assert!(
            est > 1000.0,
            "p95 of bimodal stream should be long-mode: {est}"
        );
    }

    #[test]
    fn p2_ignores_non_finite_and_is_copy_deterministic() {
        let mut a = P2Quantile::new(0.9);
        for i in 0..100 {
            a.observe(i as f64);
            a.observe(f64::NAN);
            a.observe(f64::INFINITY);
        }
        assert_eq!(a.count(), 100);
        let b = a; // Copy
        assert_eq!(a, b);
        assert_eq!(a.estimate(), b.estimate());
    }

    #[test]
    fn from_stats_preserves_headroom() {
        // Satellite regression: KernelObs::from_stats used to zero
        // std/max, so a mixed engine-stats path lost the §4.1 headroom.
        let stats = KernelStats {
            completed_insts: 3000,
            completed_tbs: 3,
            sum_completed_cycles: 48_000,
            mean_tb_insts: 1000.0,
            m2_tb_insts: 20_000.0, // population std of {900,1000,1100}
            max_tb_insts: 1100,
            ..KernelStats::default()
        };
        let o = KernelObs::from_stats(&stats);
        assert!(o.std_tb_insts > 0.0, "variance must survive from_stats");
        assert_eq!(o.max_tb_insts, 1100);
        assert_eq!(o.quantile_tb_insts, None);
        // The drain bound must exceed the plain average: nonzero headroom.
        let c = cfg();
        let m = CostModel::new(&c, 1024, o);
        let costs = m.estimate(
            TbProgress {
                executed_insts: 0,
                flushable: false,
            },
            3,
            0,
        );
        let drain = costs
            .iter()
            .find(|t| t.technique == Technique::Drain)
            .unwrap();
        let avg_only = (1000.0 * o.avg_tb_cpi.unwrap()) as u64;
        assert!(
            drain.latency_cycles > avg_only,
            "drain bound {} must carry headroom above mean-only {}",
            drain.latency_cycles,
            avg_only
        );
    }

    #[test]
    fn mixed_path_headroom_is_consistent() {
        // The same completions fed through engine stats and through an
        // ObsBank must yield the same headroom inputs.
        let mut stats = KernelStats::default();
        let mut bank = ObsBank::new();
        for &(insts, cycles) in &[(900u64, 14_400u64), (1000, 16_000), (1100, 17_600)] {
            stats.completed_tbs += 1;
            stats.completed_insts += insts;
            stats.sum_completed_cycles += cycles;
            let x = insts as f64;
            let delta = x - stats.mean_tb_insts;
            stats.mean_tb_insts += delta / f64::from(stats.completed_tbs);
            stats.m2_tb_insts += delta * (x - stats.mean_tb_insts);
            stats.max_tb_insts = stats.max_tb_insts.max(insts);
            bank.record_tb("k", insts, cycles);
        }
        let a = KernelObs::from_stats(&stats);
        let b = bank.obs("k");
        assert!((a.std_tb_insts - b.std_tb_insts).abs() < 1e-6);
        assert_eq!(a.max_tb_insts, b.max_tb_insts);
        assert!((a.avg_tb_insts.unwrap() - b.avg_tb_insts.unwrap()).abs() < 1e-9);
    }

    #[test]
    fn obs_bank_online_exposes_quantile_after_min_samples() {
        let est = EstimatorConfig {
            min_samples: 8,
            ..EstimatorConfig::online(0.95)
        };
        let mut bank = ObsBank::with_estimator(est);
        for i in 0..7u64 {
            bank.record_tb("k", 1000 + i, 16_000);
        }
        assert_eq!(
            bank.obs("k").quantile_tb_insts,
            None,
            "thin samples: no quantile"
        );
        bank.record_tb("k", 1007, 16_000);
        let q = bank
            .obs("k")
            .quantile_tb_insts
            .expect("quantile after min_samples");
        assert!((1000.0..=1007.0).contains(&q), "{q}");
        // A static bank over the same data never reports one.
        let mut st = ObsBank::new();
        for i in 0..8u64 {
            st.record_tb("k", 1000 + i, 16_000);
        }
        assert_eq!(st.obs("k").quantile_tb_insts, None);
    }

    #[test]
    fn for_estimator_strips_quantile_in_static_mode() {
        let o = KernelObs {
            quantile_tb_insts: Some(1234.0),
            ..obs(1000.0, 16.0)
        };
        assert_eq!(
            o.for_estimator(&EstimatorConfig::default())
                .quantile_tb_insts,
            None
        );
        assert_eq!(
            o.for_estimator(&EstimatorConfig::online(0.9))
                .quantile_tb_insts,
            Some(1234.0)
        );
    }

    #[test]
    fn quantile_bound_sharpens_drain_estimate() {
        let c = cfg();
        // Bimodal kernel: mean 290, huge max → static bound is the max.
        let base = KernelObs {
            avg_tb_insts: Some(290.0),
            avg_tb_cpi: Some(16.0),
            std_tb_insts: 570.0,
            max_tb_insts: 2000,
            quantile_tb_insts: None,
        };
        let risky = KernelObs {
            quantile_tb_insts: Some(350.0),
            ..base
        };
        let young = TbProgress {
            executed_insts: 100,
            flushable: false,
        };
        let static_drain = CostModel::new(&c, 1024, base)
            .estimate(young, 4, 100)
            .iter()
            .find(|t| t.technique == Technique::Drain)
            .unwrap()
            .latency_cycles;
        let online_drain = CostModel::new(&c, 1024, risky)
            .estimate(young, 4, 100)
            .iter()
            .find(|t| t.technique == Technique::Drain)
            .unwrap()
            .latency_cycles;
        assert_eq!(static_drain, ((2000.0 - 100.0) * 16.0) as u64);
        assert_eq!(online_drain, ((350.0 - 100.0) * 16.0) as u64);
        assert!(online_drain < static_drain);
        // A block past the quantile falls back to the static bound...
        let past_q = TbProgress {
            executed_insts: 400,
            flushable: false,
        };
        let fallback = CostModel::new(&c, 1024, risky)
            .estimate(past_q, 4, 400)
            .iter()
            .find(|t| t.technique == Technique::Drain)
            .unwrap()
            .latency_cycles;
        assert_eq!(fallback, ((2000.0 - 400.0) * 16.0) as u64);
        // ...and a straggler past even the static bound is unestimable.
        let straggler = TbProgress {
            executed_insts: 2500,
            flushable: false,
        };
        let maxed = CostModel::new(&c, 1024, risky)
            .estimate(straggler, 4, 2500)
            .iter()
            .find(|t| t.technique == Technique::Drain)
            .unwrap()
            .latency_cycles;
        assert_eq!(maxed, MAX_COST);
    }

    #[test]
    fn estimator_mode_parses_and_displays() {
        assert_eq!("static".parse::<EstimatorMode>(), Ok(EstimatorMode::Static));
        assert_eq!("online".parse::<EstimatorMode>(), Ok(EstimatorMode::Online));
        assert!("p95".parse::<EstimatorMode>().is_err());
        assert_eq!(EstimatorMode::Online.to_string(), "online");
        assert_eq!(EstimatorConfig::online(0.95).risk_pct(), 95);
        // Out-of-range quantiles clamp instead of panicking.
        assert!(EstimatorConfig::online(7.0).risk_quantile <= 1.0);
        assert!(EstimatorConfig::online(-1.0).risk_quantile > 0.0);
    }

    #[test]
    fn analytic_flush_overhead_is_one_minus_ln2() {
        assert!((analytic::flush_overhead_pct() - 30.685).abs() < 0.01);
    }

    #[test]
    fn analytic_switch_overhead_caps_naturally_below_100() {
        let o = analytic::switch_overhead_pct(15.9, 3.5); // BT.0
        assert!(o > 85.0 && o < 100.0, "{o}");
        let o = analytic::switch_overhead_pct(10.4, 746.9); // CP
        assert!(o < 5.0, "{o}");
    }
}
