//! Cost estimation (§3.2) and the closed-form estimators of §2.4.
//!
//! Chimera compares techniques in common units: **cycles** for preemption
//! latency and **warp instructions** for throughput overhead. The online
//! model consumes two per-kernel statistics gathered in hardware — average
//! instructions per completed block and average cycles-per-instruction — plus
//! the per-block progress counters of the SM snapshot.

use gpu_sim::{GpuConfig, KernelStats, Technique};
use std::collections::HashMap;

/// Sentinel cost used when statistics are missing: "conservatively use the
/// maximum value as the estimated cost to avoid selecting affected
/// techniques" (§3.2). Kept far from `u64::MAX` so sums cannot overflow.
pub const MAX_COST: u64 = u64::MAX / 1024;

/// Online observations about one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelObs {
    /// Average warp instructions per completed block.
    pub avg_tb_insts: Option<f64>,
    /// Average cycles-per-instruction of a completed block (at occupancy).
    pub avg_tb_cpi: Option<f64>,
    /// Standard deviation of per-block instructions (0 when unknown).
    ///
    /// Used as headroom in the drain-latency estimate: the paper observes
    /// that its rare deadline misses come from drain-latency misestimation
    /// and that they "can be avoided by providing a headroom" (§4.1); an
    /// `avg + 2σ` upper bound is that headroom, derived from the measured
    /// block-length variance.
    pub std_tb_insts: f64,
    /// Largest per-block instruction count observed (0 when unknown).
    pub max_tb_insts: u64,
}

impl KernelObs {
    /// Extract observations from engine statistics (no variance available).
    pub fn from_stats(stats: &KernelStats) -> Self {
        KernelObs {
            avg_tb_insts: stats.avg_tb_insts(),
            avg_tb_cpi: stats.avg_tb_cpi(),
            std_tb_insts: 0.0,
            max_tb_insts: 0,
        }
    }
}

/// Accumulates per-kernel observations across kernel instances (relaunches
/// and benchmark restarts), keyed by kernel name — the hardware's statistics
/// registers survive re-launches of the same kernel code.
#[derive(Debug, Clone, Default)]
pub struct ObsBank {
    acc: HashMap<String, Acc>,
}

/// Per-kernel accumulator. Variance is tracked with Welford's online
/// algorithm (`mean`/`m2`) rather than the sum-of-squares formula
/// `E[x²] − E[x]²`, which catastrophically cancels for long-running kernels:
/// with per-block counts around 10⁹ instructions the squared sums exceed
/// f64's 53-bit integer range and the subtraction of two ~10¹⁸ quantities
/// silently clamps a real variance to 0 — removing the §4.1 drain headroom
/// exactly where misestimation is most dangerous.
#[derive(Debug, Clone, Copy, Default)]
struct Acc {
    /// Completed blocks observed.
    count: u64,
    /// Welford running mean of per-block instructions.
    mean: f64,
    /// Welford running sum of squared deviations.
    m2: f64,
    /// Total instructions (u128: immune to overflow however long the run).
    insts: u128,
    /// Total cycles (u128 for the same reason).
    cycles: u128,
    max_insts: u64,
}

impl ObsBank {
    /// An empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed block of kernel `name`.
    pub fn record_tb(&mut self, name: &str, insts: u64, cycles: u64) {
        let e = self.acc.entry(name.to_string()).or_default();
        e.count += 1;
        let x = insts as f64;
        let delta = x - e.mean;
        e.mean += delta / e.count as f64;
        e.m2 += delta * (x - e.mean);
        e.insts += u128::from(insts);
        e.cycles += u128::from(cycles);
        e.max_insts = e.max_insts.max(insts);
    }

    /// Current observations for kernel `name`.
    pub fn obs(&self, name: &str) -> KernelObs {
        match self.acc.get(name) {
            Some(a) if a.count > 0 && a.insts > 0 => {
                // Population variance, matching the hardware-register model
                // (the paper's statistics are whole-population counters).
                let var = (a.m2 / a.count as f64).max(0.0);
                KernelObs {
                    // Exact totals give a sharper mean than the running one.
                    avg_tb_insts: Some(a.insts as f64 / a.count as f64),
                    avg_tb_cpi: Some(a.cycles as f64 / a.insts as f64),
                    std_tb_insts: var.sqrt(),
                    max_tb_insts: a.max_insts,
                }
            }
            _ => KernelObs::default(),
        }
    }

    /// Number of blocks observed for `name`.
    ///
    /// Returns the exact `u64` count: the former `u32` return type silently
    /// saturated at `u32::MAX`, which let very long-running kernels
    /// under-weight their observation history and quietly skew drain-cost
    /// estimates.
    pub fn samples(&self, name: &str) -> u64 {
        self.acc.get(name).map_or(0, |e| e.count)
    }
}

/// Estimated cost of preempting one block with one technique.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TbCost {
    /// The technique.
    pub technique: Technique,
    /// Estimated preemption latency, cycles.
    pub latency_cycles: u64,
    /// Estimated throughput overhead, warp instructions.
    pub overhead_insts: u64,
}

/// Per-block progress inputs to the estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TbProgress {
    /// Warp instructions the block has executed.
    pub executed_insts: u64,
    /// Whether the block may be flushed (idempotent-now, and — in strict
    /// mode — the kernel itself idempotent).
    pub flushable: bool,
}

/// The §3.2 cost model for one kernel on one SM.
///
/// ```
/// use chimera::cost::{CostModel, KernelObs, TbProgress};
/// use gpu_sim::{GpuConfig, Technique};
///
/// let cfg = GpuConfig::fermi();
/// let obs = KernelObs {
///     avg_tb_insts: Some(1000.0),
///     avg_tb_cpi: Some(16.0),
///     ..KernelObs::default()
/// };
/// let model = CostModel::new(&cfg, 24 * 1024, obs);
/// // A young block: flushing costs almost nothing.
/// let costs = model.estimate(
///     TbProgress { executed_insts: 20, flushable: true },
///     4,
///     900,
/// );
/// let flush = costs.iter().find(|c| c.technique == Technique::Flush).unwrap();
/// assert_eq!(flush.latency_cycles, 0);
/// assert_eq!(flush.overhead_insts, 20);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    cfg: &'a GpuConfig,
    ctx_bytes_per_tb: u64,
    obs: KernelObs,
}

impl<'a> CostModel<'a> {
    /// Create a model for a kernel with the given per-block context size.
    pub fn new(cfg: &'a GpuConfig, ctx_bytes_per_tb: u64, obs: KernelObs) -> Self {
        CostModel {
            cfg,
            ctx_bytes_per_tb,
            obs,
        }
    }

    /// Context-switch latency for an SM holding `resident` blocks (cycles).
    ///
    /// The paper treats this as a per-SM constant: the SM's whole context
    /// moved through its share of memory bandwidth.
    pub fn switch_latency_cycles(&self, resident: usize) -> u64 {
        self.cfg
            .sm_transfer_cycles(self.ctx_bytes_per_tb * resident.max(1) as u64)
    }

    /// Estimate costs of every applicable technique for one block.
    ///
    /// `resident` is the number of blocks on the SM; `max_executed` is the
    /// largest executed-instruction count among them (for the drain-skew
    /// overhead estimate).
    pub fn estimate(&self, tb: TbProgress, resident: usize, max_executed: u64) -> Vec<TbCost> {
        let mut out = Vec::with_capacity(3);
        // Context switch: latency = constant save time; overhead = 2x the
        // latency of lost issue at the kernel's per-SM IPC.
        let sw_lat = self.switch_latency_cycles(resident);
        let ipc = match self.obs.avg_tb_cpi {
            Some(cpi) if cpi > 0.0 => resident as f64 / cpi,
            // Without statistics, assume peak issue (pessimistic overhead).
            _ => 1.0 / self.cfg.issue_interval() as f64,
        };
        out.push(TbCost {
            technique: Technique::Switch,
            latency_cycles: sw_lat,
            overhead_insts: (2.0 * sw_lat as f64 * ipc) as u64,
        });
        // Drain: remaining instructions x CPI. Instructions are used instead
        // of raw cycles because their variance is lower (§3.2); missing
        // statistics degrade to the conservative maximum.
        match (self.obs.avg_tb_insts, self.obs.avg_tb_cpi) {
            (Some(avg_insts), Some(cpi)) => {
                // Upper-bound the block length by max(avg + 2 sigma, observed
                // max): the headroom the paper recommends against drain
                // misestimation (§4.1). A block that has already *exceeded*
                // the bound is a straggler whose remaining time cannot be
                // estimated — per §3.2, unestimable costs become maximal.
                let bound =
                    (avg_insts + 2.0 * self.obs.std_tb_insts).max(self.obs.max_tb_insts as f64);
                if tb.executed_insts as f64 >= bound {
                    out.push(TbCost {
                        technique: Technique::Drain,
                        latency_cycles: MAX_COST,
                        overhead_insts: max_executed.saturating_sub(tb.executed_insts),
                    });
                } else {
                    let remaining = bound - tb.executed_insts as f64;
                    out.push(TbCost {
                        technique: Technique::Drain,
                        latency_cycles: (remaining * cpi) as u64,
                        overhead_insts: max_executed.saturating_sub(tb.executed_insts),
                    });
                }
            }
            _ => out.push(TbCost {
                technique: Technique::Drain,
                latency_cycles: MAX_COST,
                overhead_insts: MAX_COST,
            }),
        }
        // Flush: zero latency, all executed work discarded. Only available
        // while the block is idempotent.
        if tb.flushable {
            out.push(TbCost {
                technique: Technique::Flush,
                latency_cycles: 0,
                overhead_insts: tb.executed_insts,
            });
        }
        out
    }
}

/// Closed-form estimators behind Figures 2 and 3 (§2.4).
///
/// These treat a kernel analytically: blocks in sync, a uniformly random
/// preemption point, and overheads expressed as `lost / (lost + useful)`.
pub mod analytic {
    use gpu_sim::GpuConfig;

    /// Estimated context-switch preemption latency, µs (Figure 2 "Switch").
    pub fn switch_latency_us(cfg: &GpuConfig, ctx_bytes_per_tb: u64, tbs_per_sm: u32) -> f64 {
        cfg.cycles_to_us(cfg.sm_transfer_cycles(ctx_bytes_per_tb * u64::from(tbs_per_sm)))
    }

    /// Estimated drain preemption latency, µs (Figure 2 "Drain"): the worst
    /// case of a preemption arriving just after blocks started.
    pub fn drain_latency_us(drain_time_us: f64) -> f64 {
        drain_time_us
    }

    /// Estimated flush preemption latency, µs (Figure 2 "Flush").
    pub fn flush_latency_us() -> f64 {
        0.0
    }

    /// Estimated context-switch throughput overhead, % (Figure 3 "Switch"):
    /// `2L / (2L + D)` — both saving and restoring stall the SM.
    pub fn switch_overhead_pct(switch_latency_us: f64, drain_time_us: f64) -> f64 {
        let lost = 2.0 * switch_latency_us;
        100.0 * lost / (lost + drain_time_us)
    }

    /// Estimated drain throughput overhead, % (Figure 3 "Drain"): zero under
    /// the blocks-in-sync assumption.
    pub fn drain_overhead_pct() -> f64 {
        0.0
    }

    /// Estimated flush throughput overhead, % (Figure 3 "Flush"):
    /// for a uniform preemption point `p`, the wasted fraction is
    /// `E[p/(1+p)] = 1 − ln 2 ≈ 30.7 %`, independent of the kernel.
    pub fn flush_overhead_pct() -> f64 {
        100.0 * (1.0 - std::f64::consts::LN_2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    fn cfg() -> GpuConfig {
        GpuConfig::fermi()
    }

    fn obs(insts: f64, cpi: f64) -> KernelObs {
        KernelObs {
            avg_tb_insts: Some(insts),
            avg_tb_cpi: Some(cpi),
            ..KernelObs::default()
        }
    }

    #[test]
    fn switch_latency_matches_table2_blackscholes() {
        let c = cfg();
        let m = CostModel::new(&c, 24 * 1024, KernelObs::default());
        let us = c.cycles_to_us(m.switch_latency_cycles(4));
        assert!((us - 16.6).abs() < 1.0, "{us}");
    }

    #[test]
    fn drain_latency_shrinks_with_progress() {
        let c = cfg();
        let m = CostModel::new(&c, 1024, obs(1000.0, 16.0));
        let early = m
            .estimate(
                TbProgress {
                    executed_insts: 100,
                    flushable: true,
                },
                4,
                100,
            )
            .iter()
            .find(|t| t.technique == Technique::Drain)
            .unwrap()
            .latency_cycles;
        let late = m
            .estimate(
                TbProgress {
                    executed_insts: 900,
                    flushable: true,
                },
                4,
                900,
            )
            .iter()
            .find(|t| t.technique == Technique::Drain)
            .unwrap()
            .latency_cycles;
        assert!(late < early);
        assert_eq!(early, (900.0 * 16.0) as u64);
    }

    #[test]
    fn flush_overhead_grows_with_progress_and_vanishes_when_unflushable() {
        let c = cfg();
        let m = CostModel::new(&c, 1024, obs(1000.0, 16.0));
        let costs = m.estimate(
            TbProgress {
                executed_insts: 600,
                flushable: true,
            },
            4,
            800,
        );
        let flush = costs
            .iter()
            .find(|t| t.technique == Technique::Flush)
            .unwrap();
        assert_eq!(flush.latency_cycles, 0);
        assert_eq!(flush.overhead_insts, 600);
        let costs = m.estimate(
            TbProgress {
                executed_insts: 600,
                flushable: false,
            },
            4,
            800,
        );
        assert!(costs.iter().all(|t| t.technique != Technique::Flush));
    }

    #[test]
    fn missing_stats_make_drain_maximal_but_switch_usable() {
        let c = cfg();
        let m = CostModel::new(&c, 24 * 1024, KernelObs::default());
        let costs = m.estimate(
            TbProgress {
                executed_insts: 5,
                flushable: true,
            },
            4,
            5,
        );
        let drain = costs
            .iter()
            .find(|t| t.technique == Technique::Drain)
            .unwrap();
        assert_eq!(drain.latency_cycles, MAX_COST);
        let switch = costs
            .iter()
            .find(|t| t.technique == Technique::Switch)
            .unwrap();
        assert!(switch.latency_cycles < MAX_COST);
        assert!(switch.overhead_insts > 0);
    }

    #[test]
    fn drain_skew_overhead_uses_max_executed() {
        let c = cfg();
        let m = CostModel::new(&c, 1024, obs(1000.0, 16.0));
        let costs = m.estimate(
            TbProgress {
                executed_insts: 300,
                flushable: true,
            },
            4,
            750,
        );
        let drain = costs
            .iter()
            .find(|t| t.technique == Technique::Drain)
            .unwrap();
        assert_eq!(drain.overhead_insts, 450);
    }

    #[test]
    fn obs_bank_accumulates_across_instances() {
        let mut bank = ObsBank::new();
        assert_eq!(bank.obs("k").avg_tb_insts, None);
        bank.record_tb("k", 1000, 16_000);
        bank.record_tb("k", 2000, 24_000);
        let o = bank.obs("k");
        assert_eq!(o.avg_tb_insts, Some(1500.0));
        assert!((o.avg_tb_cpi.unwrap() - 40_000.0 / 3000.0).abs() < 1e-9);
        assert_eq!(bank.samples("k"), 2);
        assert_eq!(bank.samples("other"), 0);
    }

    #[test]
    fn obs_bank_variance_survives_large_instruction_counts() {
        // Long-running kernels: per-block counts around 3·10⁹ instructions
        // with a spread of ±1000. The old `E[x²] − E[x]²` accumulator loses
        // the variance entirely (the squares are ~9·10¹⁸, far past f64's
        // 53-bit integer range, so the subtraction cancels to ~0 or worse);
        // Welford keeps it.
        let mut bank = ObsBank::new();
        let base = 3_000_000_000u64;
        bank.record_tb("big", base - 1000, 16 * (base - 1000));
        bank.record_tb("big", base, 16 * base);
        bank.record_tb("big", base + 1000, 16 * (base + 1000));
        let o = bank.obs("big");
        // Population std of {-1000, 0, +1000} around the mean.
        let expect = (2_000_000.0f64 / 3.0).sqrt();
        assert!(
            (o.std_tb_insts - expect).abs() < 1.0,
            "std {} vs expected {expect}",
            o.std_tb_insts
        );
        assert_eq!(o.avg_tb_insts, Some(base as f64));
        assert!((o.avg_tb_cpi.unwrap() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn obs_bank_accumulation_does_not_overflow() {
        // Totals that would overflow u64 accumulation must stay finite and
        // ordered (u128 totals; Welford state is f64 throughout).
        let mut bank = ObsBank::new();
        for _ in 0..8 {
            bank.record_tb("huge", u64::MAX / 2, u64::MAX / 2);
        }
        let o = bank.obs("huge");
        assert_eq!(bank.samples("huge"), 8);
        assert!((o.avg_tb_cpi.unwrap() - 1.0).abs() < 1e-9);
        assert!(o.std_tb_insts < 1e6, "identical samples: std ~0");
        assert!(o.avg_tb_insts.unwrap().is_finite());
    }

    #[test]
    fn analytic_flush_overhead_is_one_minus_ln2() {
        assert!((analytic::flush_overhead_pct() - 30.685).abs() < 0.01);
    }

    #[test]
    fn analytic_switch_overhead_caps_naturally_below_100() {
        let o = analytic::switch_overhead_pct(15.9, 3.5); // BT.0
        assert!(o > 85.0 && o < 100.0, "{o}");
        let o = analytic::switch_overhead_pct(10.4, 746.9); // CP
        assert!(o < 5.0, "{o}");
    }
}
