//! Preemption policies compared in the paper's evaluation.

use gpu_sim::GpuConfig;
use std::fmt;

/// How preemption requests are served.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// Context-switch every block of every selected SM.
    Switch,
    /// Stop dispatching and let every selected SM drain.
    Drain,
    /// Reset an SM the moment all of its resident blocks are idempotent
    /// (all-or-nothing, since flushing is an SM-wide reset); keep running —
    /// and keep dispatching — until that moment arrives.
    Flush,
    /// Chimera: Algorithm 1 with the given latency limit (µs).
    Chimera {
        /// Preemption latency constraint, µs.
        limit_us: f64,
    },
    /// Measurement-only oracle: instant, cost-free context moves. Used as the
    /// fair baseline when computing throughput overhead (§4.1).
    Oracle,
}

impl Policy {
    /// Chimera with a latency limit in microseconds.
    pub fn chimera_us(limit_us: f64) -> Self {
        Policy::Chimera { limit_us }
    }

    /// The policies of Figures 6, 7, 10 and 11, in the paper's order, with
    /// Chimera at the given constraint.
    pub fn paper_lineup(chimera_limit_us: f64) -> [Policy; 4] {
        [
            Policy::Switch,
            Policy::Drain,
            Policy::Flush,
            Policy::chimera_us(chimera_limit_us),
        ]
    }

    /// The Chimera latency limit in cycles, if this is the Chimera policy.
    pub fn chimera_limit_cycles(&self, cfg: &GpuConfig) -> Option<u64> {
        match self {
            Policy::Chimera { limit_us } => Some(cfg.us_to_cycles(*limit_us)),
            _ => None,
        }
    }

    /// Whether this policy preserves progress with zero cost (oracle).
    pub fn is_oracle(&self) -> bool {
        matches!(self, Policy::Oracle)
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Policy::Switch => f.write_str("Switch"),
            Policy::Drain => f.write_str("Drain"),
            Policy::Flush => f.write_str("Flush"),
            Policy::Chimera { limit_us } => write!(f, "Chimera({limit_us}us)"),
            Policy::Oracle => f.write_str("Oracle"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineup_order_matches_figures() {
        let l = Policy::paper_lineup(15.0);
        assert_eq!(l[0], Policy::Switch);
        assert_eq!(l[1], Policy::Drain);
        assert_eq!(l[2], Policy::Flush);
        assert_eq!(l[3], Policy::Chimera { limit_us: 15.0 });
    }

    #[test]
    fn chimera_limit_conversion() {
        let cfg = GpuConfig::fermi();
        assert_eq!(
            Policy::chimera_us(15.0).chimera_limit_cycles(&cfg),
            Some(21_000)
        );
        assert_eq!(Policy::Drain.chimera_limit_cycles(&cfg), None);
    }

    #[test]
    fn display_names() {
        assert_eq!(Policy::Switch.to_string(), "Switch");
        assert_eq!(Policy::chimera_us(5.0).to_string(), "Chimera(5us)");
        assert!(Policy::Oracle.is_oracle());
    }
}
