//! # chimera — collaborative preemption for a shared GPU
//!
//! A from-scratch reproduction of *Chimera: Collaborative Preemption for
//! Multitasking on a Shared GPU* (ASPLOS 2015). Chimera preempts a GPU with a
//! **required preemption latency** and **minimal throughput overhead** by
//! choosing, per streaming multiprocessor and per thread block, among three
//! techniques with complementary trade-offs:
//!
//! | technique | latency | throughput cost |
//! |---|---|---|
//! | context switch | mid-range, ~constant | 2 × switch time of lost issue |
//! | drain | remaining block time (can be huge) | ~none (skew only) |
//! | flush | ≈ 0 (idempotent blocks only) | all executed work discarded |
//!
//! The crate layers policy on top of the `gpu-sim` substrate:
//!
//! * [`cost`] — §3.2's online cost estimation (instruction/cycle statistics →
//!   latency and overhead estimates in common units), plus the closed-form
//!   §2.4 estimators behind Figures 2–3;
//! * [`select`] — Algorithm 1: pick a technique per block and a subset of SMs
//!   under a latency limit, minimising estimated throughput overhead;
//! * [`policy`] — the preemption policies compared in the paper (pure
//!   switch / drain / flush, Chimera, and the measurement-only oracle);
//! * [`runner`] — the experiment drivers: periodic hard-deadline multitasking
//!   (§4.1–4.3), pairwise multiprogrammed workloads with an FCFS baseline
//!   (§4.4), and an open-loop serving front-end (arrivals, admission
//!   control, SLO metrics) for studying overload behaviour;
//! * [`metrics`] — ANTT and STP (Eyerman & Eeckhout) and violation-rate
//!   accounting;
//! * [`obs`] — post-run analysis of the decision-level
//!   [event log](gpu_sim::EventLog): predicted-vs-actual drain latency per
//!   kernel (see `OBSERVABILITY.md` at the repository root for the event
//!   schema and the Chrome-trace export pipeline).
//!
//! ## Quick example: a periodic real-time task preempting a GPGPU benchmark
//!
//! ```
//! use chimera::policy::Policy;
//! use chimera::runner::periodic::{run_periodic, PeriodicConfig};
//! use workloads::Suite;
//!
//! let suite = Suite::standard();
//! let bench = suite.benchmark("LUD").expect("suite contains LUD");
//! // keep the doctest fast with a short horizon
//! let cfg = PeriodicConfig::paper_default(suite.config()).horizon_us(3_000.0);
//! let result = run_periodic(suite.config(), bench, Policy::chimera_us(15.0), &cfg);
//! assert!(result.requests >= 2);
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod metrics;
pub mod obs;
pub mod partition;
pub mod policy;
pub mod runner;
pub mod scheduler;
pub mod select;

pub use cost::{CostModel, EstimatorConfig, EstimatorMode, KernelObs, ObsBank, P2Quantile, TbCost};
pub use metrics::{antt, geomean, stp};
pub use obs::{accuracy_per_kernel, drain_accuracy, DrainSample, DrainTracker, KernelAccuracy};
pub use partition::PartitionPolicy;
pub use policy::Policy;
pub use runner::serve::{
    run_serve, run_serve_on, run_serve_traced, AdmissionConfig, ArrivalProcess, ServeConfig,
    ServeResult, TenantOutcome,
};
pub use runner::RunCommon;
pub use scheduler::{GpuScheduler, GpuSchedulerBuilder, ProcId, SchedEvent};
pub use select::{select_preemptions, PlanForSm, SelectionRequest};
