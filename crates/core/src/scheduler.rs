//! The Figure 5 two-level GPU scheduler, as a reusable component.
//!
//! The *kernel scheduler* decides which process owns which SMs (via a
//! [`PartitionPolicy`]) and realises
//! ownership changes by issuing preemption requests served by a
//! [`Policy`] — Chimera by default. The *thread block
//! scheduler* is the `gpu-sim` engine, which dispatches and preempts blocks
//! and re-issues preempted ones first.
//!
//! This is the "what a downstream user would adopt" API: build a scheduler
//! ([`GpuScheduler::builder`]), register processes, submit kernels, and
//! drive time forward; multitasking, spatial partitioning and collaborative
//! preemption happen inside.
//!
//! ```
//! use chimera::scheduler::GpuScheduler;
//! use chimera::policy::Policy;
//! use chimera::partition::PartitionPolicy;
//! use gpu_sim::{GpuConfig, KernelDesc, Program, Segment};
//!
//! let mut gpu = GpuScheduler::builder(GpuConfig::fermi())
//!     .policy(Policy::chimera_us(15.0))
//!     .partition(PartitionPolicy::SmartEven)
//!     .build();
//! let p1 = gpu.add_process();
//! let p2 = gpu.add_process();
//! let kernel = KernelDesc::builder("work")
//!     .grid_blocks(256)
//!     .program(Program::new(vec![Segment::compute(500)]))
//!     .build()?;
//! gpu.submit(p1, kernel.clone());
//! gpu.submit(p2, kernel.with_name("work2"));
//! while !gpu.is_idle() {
//!     gpu.run_for_us(100.0);
//! }
//! assert_eq!(gpu.completed_kernels(p1), 1);
//! assert_eq!(gpu.completed_kernels(p2), 1);
//! # Ok::<(), gpu_sim::KernelError>(())
//! ```

use crate::cost::{EstimatorConfig, ObsBank};
use crate::partition::PartitionPolicy;
use crate::policy::Policy;
use crate::select::{select_preemptions, SelectionRequest};
use gpu_sim::{Engine, Event, GpuConfig, KernelId, ShedReason, SmPreemptPlan, Technique};
use std::collections::{BTreeMap, VecDeque};

/// Identifies a registered process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcId(pub usize);

impl std::fmt::Display for ProcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Scheduler-level events returned by [`GpuScheduler::run_for_us`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEvent {
    /// A submitted kernel started executing.
    KernelStarted {
        /// Owning process.
        proc: ProcId,
        /// Engine-level kernel instance.
        kernel: KernelId,
    },
    /// A kernel finished.
    KernelFinished {
        /// Owning process.
        proc: ProcId,
        /// Engine-level kernel instance.
        kernel: KernelId,
    },
    /// An SM changed hands.
    SmReassigned {
        /// The SM that moved.
        sm: usize,
        /// New owner.
        to: ProcId,
    },
}

#[derive(Debug, Default)]
struct ProcState {
    queue: VecDeque<gpu_sim::KernelDesc>,
    current: Option<KernelId>,
    /// Completed kernel launches. `u64` like every other progress counter
    /// since the PR 5–6 widenings — a `u32` here silently truncated
    /// long-lived serving processes.
    completed: u64,
    kernels: Vec<KernelId>,
}

/// Builder for [`GpuScheduler`] (see [`GpuScheduler::builder`]).
///
/// Replaces the old construct-then-mutate sequence (`new` +
/// `set_estimator` + `enable_event_log`): all knobs are set up front and
/// [`build`](GpuSchedulerBuilder::build) wires them in the right order, so
/// there is no window where a half-configured scheduler can run.
///
/// ```
/// use chimera::scheduler::GpuScheduler;
/// use chimera::policy::Policy;
/// use chimera::EstimatorConfig;
/// use gpu_sim::GpuConfig;
///
/// let gpu = GpuScheduler::builder(GpuConfig::tiny())
///     .policy(Policy::chimera_us(30.0))
///     .estimator(EstimatorConfig::online(0.9))
///     .seed(7)
///     .event_log(4096)
///     .build();
/// assert_eq!(gpu.estimator(), EstimatorConfig::online(0.9));
/// assert!(gpu.engine().event_log().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct GpuSchedulerBuilder {
    cfg: GpuConfig,
    policy: Policy,
    partition: PartitionPolicy,
    estimator: EstimatorConfig,
    seed: u64,
    event_log_capacity: usize,
    scan_scheduler: bool,
    par_shards: usize,
    race_check: bool,
}

impl GpuSchedulerBuilder {
    /// Set the preemption policy (default: Chimera at 15 µs).
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Set the SM partitioning policy (default:
    /// [`PartitionPolicy::SmartEven`]).
    pub fn partition(mut self, partition: PartitionPolicy) -> Self {
        self.partition = partition;
        self
    }

    /// Set the cost estimator (default: static §4.1 bounds). With
    /// [`EstimatorMode::Online`](crate::cost::EstimatorMode::Online) block
    /// completions feed per-kernel quantile sketches and Chimera's drain
    /// bounds use the configured risk quantile.
    pub fn estimator(mut self, estimator: EstimatorConfig) -> Self {
        self.estimator = estimator;
        self
    }

    /// Set the engine's determinism seed (default 42). The old `new` path
    /// always used the engine default; the builder makes the seed a
    /// first-class knob.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enable the engine's observability [event log](gpu_sim::EventLog)
    /// with the given ring capacity (default 0 = disabled).
    pub fn event_log(mut self, capacity: usize) -> Self {
        self.event_log_capacity = capacity;
        self
    }

    /// Use the engine's legacy linear-scan scheduler instead of the event
    /// calendar (default off; for differential benchmarks). Overrides
    /// [`par_shards`](GpuSchedulerBuilder::par_shards) when set.
    pub fn scan_scheduler(mut self, scan: bool) -> Self {
        self.scan_scheduler = scan;
        self
    }

    /// Run the engine in [`gpu_sim::ExecMode::Parallel`] with this many SM
    /// shards advanced on worker threads between epoch barriers (default 0
    /// = the serial event calendar). Output is byte-identical for every
    /// value; see `PARALLELISM.md`.
    pub fn par_shards(mut self, shards: usize) -> Self {
        self.par_shards = shards;
        self
    }

    /// Enable the engine's shard-race sanitizer (default off): shared-state
    /// accesses during the parallel engine's pure Phase A are checked
    /// against a shadow ownership map (see [`gpu_sim::RaceSanitizer`]).
    /// Zero-cost in serial modes; for verification passes, not measurement
    /// runs.
    pub fn race_check(mut self, race_check: bool) -> Self {
        self.race_check = race_check;
        self
    }

    /// Build the scheduler over a fresh engine.
    pub fn build(self) -> GpuScheduler {
        let mut engine = Engine::with_seed(self.cfg, self.seed);
        engine.set_break_on_kernel_finish(true);
        if self.policy.is_oracle() {
            engine.set_free_context_moves(true);
        }
        if self.event_log_capacity > 0 {
            engine.enable_event_log(self.event_log_capacity);
        }
        engine.set_exec_mode(if self.scan_scheduler {
            gpu_sim::ExecMode::Scan
        } else if self.par_shards > 0 {
            gpu_sim::ExecMode::Parallel {
                shards: self.par_shards,
            }
        } else {
            gpu_sim::ExecMode::Event
        });
        if self.race_check {
            engine.enable_race_sanitizer();
        }
        let n = engine.config().num_sms;
        GpuScheduler {
            engine,
            policy: self.policy,
            partition: self.partition,
            obs: ObsBank::with_estimator(self.estimator),
            procs: Vec::new(),
            owner: vec![None; n],
            in_flight: BTreeMap::new(),
            events: Vec::new(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InFlight {
    Preempting,
    FlushWait,
}

/// A multitasking GPU: engine + kernel scheduler (see module docs).
#[derive(Debug)]
pub struct GpuScheduler {
    engine: Engine,
    policy: Policy,
    partition: PartitionPolicy,
    obs: ObsBank,
    procs: Vec<ProcState>,
    /// Owning process per SM (`None` until first partition).
    owner: Vec<Option<usize>>,
    /// Ordered map: iterated while mutating the engine, so a `HashMap` would
    /// leak the OS-randomized hash seed into the simulation.
    in_flight: BTreeMap<usize, InFlight>,
    events: Vec<SchedEvent>,
}

impl GpuScheduler {
    /// Start building a scheduler over a fresh engine with the given GPU
    /// configuration. Defaults: Chimera at 15 µs, Smart-Even partitioning,
    /// static estimator, seed 42, event log off.
    pub fn builder(cfg: GpuConfig) -> GpuSchedulerBuilder {
        GpuSchedulerBuilder {
            cfg,
            policy: Policy::chimera_us(15.0),
            partition: PartitionPolicy::SmartEven,
            estimator: EstimatorConfig::default(),
            seed: 42,
            event_log_capacity: 0,
            scan_scheduler: false,
            par_shards: 0,
            race_check: false,
        }
    }

    /// Create a scheduler over a fresh engine.
    #[deprecated(
        since = "0.1.0",
        note = "use `GpuScheduler::builder(cfg).policy(..).partition(..).build()`"
    )]
    pub fn new(cfg: GpuConfig, policy: Policy, partition: PartitionPolicy) -> Self {
        Self::builder(cfg)
            .policy(policy)
            .partition(partition)
            .build()
    }

    /// Switch the scheduler's cost estimator (static by default). Resets
    /// accumulated observations, so call right after construction.
    #[deprecated(
        since = "0.1.0",
        note = "set the estimator up front via `GpuScheduler::builder(cfg).estimator(..)`"
    )]
    pub fn set_estimator(&mut self, est: EstimatorConfig) {
        self.obs = ObsBank::with_estimator(est);
    }

    /// The active cost-estimator configuration.
    pub fn estimator(&self) -> EstimatorConfig {
        self.obs.estimator()
    }

    /// Register a process (a serial stream of kernel launches).
    pub fn add_process(&mut self) -> ProcId {
        self.procs.push(ProcState::default());
        ProcId(self.procs.len() - 1)
    }

    /// Submit a kernel launch for a process; launches run in order.
    pub fn submit(&mut self, proc: ProcId, kernel: gpu_sim::KernelDesc) {
        self.procs[proc.0].queue.push_back(kernel);
    }

    /// Kernels completed by a process so far.
    ///
    /// Widened to `u64`: an open-loop serving run at a few thousand requests
    /// per second over a long horizon overflows a 32-bit counter well within
    /// a simulated day.
    pub fn completed_kernels(&self, proc: ProcId) -> u64 {
        self.procs[proc.0].completed
    }

    /// Number of registered processes.
    pub fn num_processes(&self) -> usize {
        self.procs.len()
    }

    /// Whether every submitted kernel of every process has finished.
    pub fn is_idle(&self) -> bool {
        self.procs
            .iter()
            .all(|p| p.current.is_none() && p.queue.is_empty())
    }

    /// The engine (read access for statistics and snapshots).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Enable the engine's observability [event log](gpu_sim::EventLog)
    /// (ring capacity `capacity` events). Chimera decisions made by the
    /// kernel scheduler are recorded with their Algorithm 1 inputs; export
    /// with [`gpu_sim::trace::chrome_trace_json`] via [`Self::engine`].
    ///
    /// ```
    /// use chimera::scheduler::GpuScheduler;
    /// use gpu_sim::{GpuConfig, KernelDesc, Program, Segment};
    ///
    /// let mut gpu = GpuScheduler::builder(GpuConfig::tiny())
    ///     .event_log(4096)
    ///     .build();
    /// let p = gpu.add_process();
    /// let kernel = KernelDesc::builder("work")
    ///     .grid_blocks(8)
    ///     .program(Program::new(vec![Segment::compute(200)]))
    ///     .build()?;
    /// gpu.submit(p, kernel);
    /// while !gpu.is_idle() {
    ///     gpu.run_for_us(100.0);
    /// }
    /// let log = gpu.engine().event_log().expect("enabled above");
    /// assert!(!log.is_empty(), "block lifecycle events were recorded");
    /// # Ok::<(), gpu_sim::KernelError>(())
    /// ```
    #[deprecated(
        since = "0.1.0",
        note = "enable up front via `GpuScheduler::builder(cfg).event_log(capacity)`"
    )]
    pub fn enable_event_log(&mut self, capacity: usize) {
        self.engine.enable_event_log(capacity);
    }

    /// Record a serving-request arrival in the event log (no-op when the
    /// log is disabled). `deadline_cycle` is the absolute cycle by which the
    /// request must complete to meet its SLO.
    pub fn record_request_arrival(
        &mut self,
        request: u64,
        tenant: u32,
        class: u32,
        deadline_cycle: u64,
    ) {
        self.engine
            .record_request_arrival(request, tenant, class, deadline_cycle);
    }

    /// Record a request passing admission control, with the tenant's queue
    /// depth after enqueue (no-op when the log is disabled).
    pub fn record_request_admitted(&mut self, request: u64, tenant: u32, queued: u32) {
        self.engine.record_request_admitted(request, tenant, queued);
    }

    /// Record a request being shed by admission control (no-op when the
    /// log is disabled).
    pub fn record_request_shed(&mut self, request: u64, tenant: u32, reason: ShedReason) {
        self.engine.record_request_shed(request, tenant, reason);
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.engine.cycle()
    }

    /// Total useful instructions a process has executed.
    pub fn useful_insts(&self, proc: ProcId) -> u64 {
        self.procs[proc.0]
            .kernels
            .iter()
            .map(|&k| {
                let s = self.engine.kernel_stats(k);
                s.issued_insts.saturating_sub(s.wasted_flush_insts)
            })
            .sum()
    }

    /// Advance simulated time by `us` microseconds, scheduling as needed.
    pub fn run_for_us(&mut self, us: f64) -> Vec<SchedEvent> {
        let cfg = self.engine.config().clone();
        let target = self.engine.cycle() + cfg.us_to_cycles(us);
        let tick = cfg.us_to_cycles(5.0).max(1);
        while self.engine.cycle() < target {
            let step = if self.in_flight.values().any(|f| *f == InFlight::FlushWait) {
                cfg.us_to_cycles(0.5).max(1)
            } else {
                tick
            };
            let until = (self.engine.cycle() + step).min(target);
            let events = self.engine.run_until(until);
            for ev in events {
                match ev {
                    Event::TbCompleted {
                        kernel,
                        insts,
                        cycles,
                        ..
                    } => {
                        let name =
                            super::runner::periodic_name(&self.engine.kernel_stats(kernel).name);
                        self.obs.record_tb(&name, insts, cycles);
                    }
                    Event::KernelFinished { kernel } => {
                        if let Some(pi) = self.procs.iter().position(|p| p.current == Some(kernel))
                        {
                            self.procs[pi].current = None;
                            self.procs[pi].completed += 1;
                            self.events.push(SchedEvent::KernelFinished {
                                proc: ProcId(pi),
                                kernel,
                            });
                        }
                    }
                    Event::PreemptionCompleted { sm, .. }
                        if self.in_flight.get(&sm) == Some(&InFlight::Preempting) =>
                    {
                        self.in_flight.remove(&sm);
                    }
                    _ => {}
                }
            }
            self.schedule();
        }
        std::mem::take(&mut self.events)
    }

    /// One kernel-scheduler pass: launch queued kernels, repartition, serve
    /// preemptions, and keep SM assignments consistent with ownership.
    fn schedule(&mut self) {
        // Launch next kernels.
        for pi in 0..self.procs.len() {
            if self.procs[pi].current.is_none() {
                if let Some(desc) = self.procs[pi].queue.pop_front() {
                    let kid = self.engine.launch_kernel(desc);
                    self.procs[pi].current = Some(kid);
                    self.procs[pi].kernels.push(kid);
                    self.events.push(SchedEvent::KernelStarted {
                        proc: ProcId(pi),
                        kernel: kid,
                    });
                }
            }
        }
        if self.procs.is_empty() {
            return;
        }
        // Flush-wait polling: `in_flight` is a BTreeMap, so this snapshot is
        // already ordered by SM index — `try_flush` mutates the engine, so
        // iteration order must be deterministic.
        let waiting: Vec<usize> = self
            .in_flight
            .iter()
            .filter(|(_, f)| **f == InFlight::FlushWait)
            .map(|(&sm, _)| sm)
            .collect();
        for sm in waiting {
            if super::runner::periodic_try_flush(&mut self.engine, sm) {
                self.in_flight.remove(&sm);
            }
        }
        self.repartition();
        // Assignment pass.
        let n_sms = self.engine.config().num_sms;
        for sm in 0..n_sms {
            if self.in_flight.contains_key(&sm) || self.engine.sm_is_preempting(sm) {
                continue;
            }
            let want = self.owner[sm].and_then(|pi| self.procs[pi].current);
            if self.engine.sm_assigned(sm) != want {
                self.engine.assign_sm(sm, want);
            }
        }
    }

    fn demand(&self, pi: usize) -> usize {
        match self.procs[pi].current {
            None => 0,
            Some(k) => {
                let stats = self.engine.kernel_stats(k);
                if stats.finished {
                    return 0;
                }
                let unfinished = u64::from(stats.grid_blocks - stats.completed_tbs);
                let occ = u64::from(self.engine.kernel_occupancy(k)).max(1);
                usize::try_from(unfinished.div_ceil(occ))
                    .expect("per-kernel SM demand exceeds usize")
            }
        }
    }

    fn repartition(&mut self) {
        let n_procs = self.procs.len();
        let n_sms = self.engine.config().num_sms;
        let demands: Vec<usize> = (0..n_procs).map(|pi| self.demand(pi)).collect();
        if demands.iter().all(|&d| d == 0) {
            return;
        }
        let desired = self.partition.shares(n_sms, &demands);
        let mut counts = vec![0usize; n_procs];
        for &o in &self.owner {
            if let Some(pi) = o {
                counts[pi] += 1;
            }
        }
        // Unowned SMs go to whoever is short.
        for sm in 0..n_sms {
            if self.owner[sm].is_none() {
                if let Some(pi) = (0..n_procs).find(|&pi| counts[pi] < desired[pi]) {
                    self.owner[sm] = Some(pi);
                    counts[pi] += 1;
                    self.events
                        .push(SchedEvent::SmReassigned { sm, to: ProcId(pi) });
                }
            }
        }
        // Move SMs from over- to under-provisioned processes.
        while let (Some(dst), Some(src)) = (
            (0..n_procs).find(|&pi| counts[pi] < desired[pi]),
            (0..n_procs).find(|&pi| counts[pi] > desired[pi]),
        ) {
            let moved = self.take_one_sm(src, dst);
            if moved == 0 {
                break;
            }
            counts[src] -= moved;
            counts[dst] += moved;
        }
    }

    /// Move one SM from `src` to `dst`, preempting if necessary. Returns how
    /// many SMs changed owner (0 when nothing was movable right now).
    fn take_one_sm(&mut self, src: usize, dst: usize) -> usize {
        let n_sms = self.engine.config().num_sms;
        let mut cands: Vec<usize> = (0..n_sms)
            .filter(|&sm| {
                self.owner[sm] == Some(src)
                    && !self.in_flight.contains_key(&sm)
                    && !self.engine.sm_is_preempting(sm)
            })
            .collect();
        cands.sort_by_key(|&sm| (self.engine.sm_resident_count(sm), sm));
        let Some(&sm) = cands.first() else { return 0 };
        if self.engine.sm_resident_count(sm) == 0 {
            self.owner[sm] = Some(dst);
            self.events.push(SchedEvent::SmReassigned {
                sm,
                to: ProcId(dst),
            });
            return 1;
        }
        match self.policy {
            Policy::Switch | Policy::Drain | Policy::Oracle => {
                let tech = if self.policy == Policy::Drain {
                    Technique::Drain
                } else {
                    Technique::Switch
                };
                let plan = SmPreemptPlan::uniform(self.engine.sm_resident_indices(sm), tech);
                match self.engine.preempt_sm(sm, &plan) {
                    Ok(true) | Err(_) => {}
                    Ok(false) => {
                        self.in_flight.insert(sm, InFlight::Preempting);
                    }
                }
            }
            Policy::Flush => {
                if !super::runner::periodic_try_flush(&mut self.engine, sm) {
                    self.in_flight.insert(sm, InFlight::FlushWait);
                }
            }
            Policy::Chimera { limit_us } => {
                let Some(kid) = self.procs[src].current else {
                    return 0;
                };
                let cfg = self.engine.config().clone();
                let desc = self.engine.kernel_desc(kid);
                let name = super::runner::periodic_name(desc.name());
                let req = SelectionRequest {
                    limit_cycles: cfg.us_to_cycles(limit_us),
                    num_preempts: 1,
                    ctx_bytes_per_tb: desc.block_context_bytes(),
                    obs: self.obs.obs(&name),
                    flush_allowed: true,
                    estimator: self.obs.estimator(),
                };
                let snaps = vec![self.engine.sm_snapshot(sm)];
                for plan in select_preemptions(&cfg, &req, &snaps) {
                    for d in &plan.decisions {
                        self.engine
                            .record_decision(plan.sm, kid, req.limit_cycles, *d);
                    }
                    match self.engine.preempt_sm(plan.sm, &plan.plan) {
                        Ok(true) | Err(_) => {}
                        Ok(false) => {
                            self.in_flight.insert(plan.sm, InFlight::Preempting);
                        }
                    }
                }
            }
        }
        self.owner[sm] = Some(dst);
        self.events.push(SchedEvent::SmReassigned {
            sm,
            to: ProcId(dst),
        });
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{KernelDesc, Program, Segment};

    fn kernel(name: &str, grid: u32, insts: u32) -> KernelDesc {
        KernelDesc::builder(name)
            .grid_blocks(grid)
            .threads_per_block(128)
            .regs_per_thread(16)
            .program(Program::new(vec![
                Segment::load(4),
                Segment::compute(insts),
                Segment::store(4),
            ]))
            .build()
            .unwrap()
    }

    fn drive_until_idle(gpu: &mut GpuScheduler, max_ms: u32) -> Vec<SchedEvent> {
        let mut all = Vec::new();
        for _ in 0..max_ms * 10 {
            all.extend(gpu.run_for_us(100.0));
            if gpu.is_idle() {
                return all;
            }
        }
        panic!("scheduler did not go idle");
    }

    #[test]
    fn two_processes_share_and_finish() {
        let mut gpu = GpuScheduler::builder(GpuConfig::fermi())
            .policy(Policy::chimera_us(15.0))
            .partition(PartitionPolicy::SmartEven)
            .build();
        let p1 = gpu.add_process();
        let p2 = gpu.add_process();
        gpu.submit(p1, kernel("a", 300, 400));
        gpu.submit(p1, kernel("a2", 300, 400));
        gpu.submit(p2, kernel("b", 300, 400));
        let events = drive_until_idle(&mut gpu, 100);
        assert_eq!(gpu.completed_kernels(p1), 2);
        assert_eq!(gpu.completed_kernels(p2), 1);
        assert!(gpu.useful_insts(p1) > 0);
        let starts = events
            .iter()
            .filter(|e| matches!(e, SchedEvent::KernelStarted { .. }))
            .count();
        assert_eq!(starts, 3);
        let finishes = events
            .iter()
            .filter(|e| matches!(e, SchedEvent::KernelFinished { .. }))
            .count();
        assert_eq!(finishes, 3);
    }

    #[test]
    fn late_arrival_takes_sms_from_running_process() {
        let mut gpu = GpuScheduler::builder(GpuConfig::fermi())
            .policy(Policy::chimera_us(30.0))
            .build();
        let p1 = gpu.add_process();
        let p2 = gpu.add_process();
        gpu.submit(p1, kernel("hog", 4_000, 2_000));
        gpu.run_for_us(300.0);
        // p1 owns the whole GPU by now.
        let owned_by_p1 = gpu.owner.iter().filter(|o| **o == Some(0)).count();
        assert_eq!(owned_by_p1, 30);
        // p2 arrives and must receive its half via preemption.
        gpu.submit(p2, kernel("newcomer", 4_000, 2_000));
        let events = gpu.run_for_us(400.0);
        let reassigned_to_p2 = events
            .iter()
            .filter(|e| matches!(e, SchedEvent::SmReassigned { to, .. } if *to == ProcId(1)))
            .count();
        assert!(reassigned_to_p2 >= 15, "p2 got only {reassigned_to_p2} SMs");
        assert!(
            !gpu.engine().preempt_records().is_empty(),
            "must actually preempt"
        );
        assert!(gpu.useful_insts(p2) > 0);
    }

    #[test]
    fn priority_partition_starves_background_but_not_fully() {
        let mut gpu = GpuScheduler::builder(GpuConfig::fermi())
            .policy(Policy::chimera_us(30.0))
            .partition(PartitionPolicy::Priority(0))
            .build();
        let hi = gpu.add_process();
        let lo = gpu.add_process();
        gpu.submit(hi, kernel("hi", 6_000, 1_000));
        gpu.submit(lo, kernel("lo", 6_000, 1_000));
        gpu.run_for_us(1_000.0);
        let hi_insts = gpu.useful_insts(hi);
        let lo_insts = gpu.useful_insts(lo);
        assert!(
            hi_insts > lo_insts * 3,
            "priority job should dominate: hi={hi_insts}, lo={lo_insts}"
        );
    }

    #[test]
    fn works_with_every_policy() {
        for policy in [
            Policy::Switch,
            Policy::Drain,
            Policy::Flush,
            Policy::chimera_us(30.0),
            Policy::Oracle,
        ] {
            let mut gpu = GpuScheduler::builder(GpuConfig::fermi())
                .policy(policy)
                .build();
            let p1 = gpu.add_process();
            let p2 = gpu.add_process();
            gpu.submit(p1, kernel("x", 240, 300));
            gpu.submit(p2, kernel("y", 240, 300));
            drive_until_idle(&mut gpu, 200);
            assert_eq!(gpu.completed_kernels(p1), 1, "{policy}");
            assert_eq!(gpu.completed_kernels(p2), 1, "{policy}");
            // Semantics intact under every policy.
            for &k in gpu.procs[0].kernels.iter().chain(&gpu.procs[1].kernels) {
                assert_eq!(gpu.engine().output_mismatches(k), 0, "{policy}");
            }
        }
    }

    #[test]
    fn idle_scheduler_reports_idle() {
        let mut gpu = GpuScheduler::builder(GpuConfig::fermi())
            .policy(Policy::Drain)
            .partition(PartitionPolicy::Even)
            .build();
        assert!(gpu.is_idle());
        let p = gpu.add_process();
        assert!(gpu.is_idle());
        gpu.submit(p, kernel("k", 10, 50));
        assert!(!gpu.is_idle());
        drive_until_idle(&mut gpu, 50);
        assert!(gpu.is_idle());
        assert_eq!(gpu.completed_kernels(p), 1);
    }

    /// The deprecated `new` shim must construct the exact scheduler the
    /// builder does; this is the one sanctioned use of the deprecated API
    /// until the shims are removed.
    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_builder() {
        let mut old = GpuScheduler::new(
            GpuConfig::fermi(),
            Policy::chimera_us(15.0),
            PartitionPolicy::SmartEven,
        );
        old.set_estimator(EstimatorConfig::online(0.9));
        old.enable_event_log(256);
        let mut new = GpuScheduler::builder(GpuConfig::fermi())
            .estimator(EstimatorConfig::online(0.9))
            .event_log(256)
            .build();
        for gpu in [&mut old, &mut new] {
            let p1 = gpu.add_process();
            let p2 = gpu.add_process();
            gpu.submit(p1, kernel("a", 300, 400));
            gpu.submit(p2, kernel("b", 300, 400));
        }
        let ev_old = drive_until_idle(&mut old, 100);
        let ev_new = drive_until_idle(&mut new, 100);
        assert_eq!(format!("{ev_old:?}"), format!("{ev_new:?}"));
        assert_eq!(old.cycle(), new.cycle());
        assert_eq!(old.estimator().mode, new.estimator().mode);
    }
}
